#!/usr/bin/env bash
# The full CI gate for the DStress reproduction.
#
# Mirrors the tier-1 verify command in ROADMAP.md and adds the
# documentation gate. Runs fully offline: all external dependencies are
# pinned to the in-tree shims under shims/ (see shims/README.md).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo bench (compile only)"
cargo bench -p dstress-bench --no-run

echo "CI gate passed."
