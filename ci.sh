#!/usr/bin/env bash
# The full CI gate for the DStress reproduction.
#
# Mirrors the tier-1 verify command in ROADMAP.md and adds the lint,
# formatting, documentation and determinism gates. Runs fully offline:
# all external dependencies are pinned to the in-tree shims under shims/
# (see shims/README.md). The rustfmt/clippy steps skip gracefully when
# those toolchain components are not installed.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --all --check"
    cargo fmt --all --check
else
    echo "==> cargo fmt unavailable; skipping format check"
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy unavailable; skipping lint check"
fi

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> nondeterminism lint (no HashMap/HashSet/Instant::now/SystemTime on the share path)"
./scripts/nondeterminism_lint.sh

echo "==> static analysis: positive certification of every shipped program"
# Range + sensitivity + information-flow certification (dstress-analyze):
# the four analytics and the modular counter certify clean, and both
# finance case studies certify on a live shocked network.
cargo test -q -p dstress-analyze --test certify
cargo test -q -p dstress-analyze --test finance

echo "==> static analysis: golden rejections, guard refinements, interval soundness"
# Deliberately broken artifacts (width overflow, under-declared
# sensitivity, leak around the noise path, release outside the recovery
# window) must fail with their exact typed findings; the guard/dominance
# refinements are pinned; proptests check concrete runs always land
# inside certified intervals.
cargo test -q -p dstress-analyze --test golden
cargo test -q -p dstress-analyze --test refinement
cargo test -q -p dstress-analyze --test soundness
cargo test -q -p dstress-analyze --lib

echo "==> repro -- analyze smoke (release; exits non-zero on any finding)"
cargo run --release -q -p dstress-bench --bin repro -- analyze > /dev/null

echo "==> determinism suite under --release (Sim == Threaded == Socket, three-way)"
# The suite covers both GmwBatching modes (named backends_agree_batched_mode /
# backends_agree_per_gate_mode tests plus mode-crossing proptests), with the
# real-TCP SocketTransport held to the same bit-identity contract as the
# in-process backends.
cargo test --release -q -p dstress-mpc --test transport_determinism
cargo test --release -q -p dstress-core concurrency_mode_does_not_change_results
cargo test --release -q -p dstress-core gmw_batching_modes_agree_end_to_end
cargo test --release -q -p dstress-bench concurrency_modes_agree_on_small_point

echo "==> round model: batched rounds scale with depth, not AND-gate count"
cargo test --release -q -p dstress-mpc batched_rounds_scale_with_depth_not_gate_count

echo "==> crypto kernels: windowed/multi-exp/dlog kernels pinned to the naive path"
# Fixed-base tables, Straus/Pippenger multi-exp and the signed-BSGS /
# fingerprint dlog recovery must be bit-identical to square-and-multiply
# on both groups; the transfer protocol must produce identical shares and
# wire bytes with kernels off, auto and precomputed.
cargo test -q -p dstress-crypto kernels::
cargo test -q -p dstress-crypto dlog::
cargo test -q -p dstress-transfer kernel
cargo test -q -p dstress-bench kernel_and_naive_arms_agree
cargo test -q -p dstress-core transfer_modes_account_identically

echo "==> crypto kernels: release A/B speedup gate (kernels >= 5x naive on the 256-bit group)"
cargo test --release -q -p dstress-bench kernel_speedup_exceeds_5x -- --ignored

echo "==> repro -- transfer smoke (time/traffic/ablation/kernels A/B into BENCH_results.json)"
cargo run --release -q -p dstress-bench --bin repro -- transfer --threads 2 > /dev/null

echo "==> wire format: round-trip, rejection and golden byte-layout suites"
# Primitive layouts and the per-crate message codecs (GMW, transfer, engine).
cargo test -q -p dstress-net --test wire_golden
cargo test -q -p dstress-net wire::
cargo test -q -p dstress-mpc wire::
cargo test -q -p dstress-transfer wire::
cargo test -q -p dstress-core wire::
cargo test -q -p dstress-deploy proto::

echo "==> wire bytes: release-mode byte determinism + measured/modeled reconciliation"
cargo test --release -q -p dstress-mpc --test transport_determinism measured_wire_bytes_bit_identical_across_the_grid
cargo test --release -q -p dstress-mpc --test transport_determinism batched_choices_payload_is_bit_packed_on_the_wire
cargo test --release -q -p dstress-bench --test byte_reconciliation

echo "==> streaming generators: streaming build == materialised build, degree bounds, determinism"
cargo test -q -p dstress-graph stream::
cargo test -q -p dstress-graph csr_
cargo test -q -p dstress-finance streaming_core_periphery

echo "==> block-streaming execution: streaming == materialised, Sequential == Threaded"
cargo test --release -q -p dstress-core streaming_execution_matches_materialised
cargo test --release -q -p dstress-core streaming_sequential_and_threaded_agree
cargo test --release -q -p dstress-core streaming_runs_csr_graphs_from_edge_streams

echo "==> lazy OT setup: zero-AND circuits charge no setup rounds or bytes"
cargo test -q -p dstress-mpc zero_and_circuit_pays_no_ot_setup
cargo test -q -p dstress-mpc ot_payload_content_is_seed_derived_and_replayable
cargo test -q -p dstress-mpc wire_payload_content_is_derived_from_the_pair_seed

echo "==> scale acceptance: measured streaming point past the 2,000-vertex wall"
# Measured n > 2000 on streamed CSR graphs, Sequential == Threaded at n = 2100,
# peak memory sub-linear in edges and below the materialised schedule.
cargo test --release -q -p dstress-bench --test streaming_scale -- --ignored

echo "==> repro -- scale smoke (quick sweep includes a measured N = 2500 point)"
cargo run --release -q -p dstress-bench --bin repro -- scale --threads 2 > /dev/null

echo "==> state store: backends, spill lifecycle, checkpoint formats and recovery"
# The MemStore/SpillStore contract (bit-identical, segment geometry
# backend-invariant), spill-log compaction, run-dir cleanup on error
# paths, golden checkpoint/segment byte layouts with truncation /
# trailing-garbage / bad-digest rejection, and in-process
# kill-and-resume bit-identity (plain and spilling).
cargo test -q -p dstress-core store::
cargo test -q -p dstress-core spilling_backend_is_bit_identical_to_memory
cargo test -q -p dstress-core spill_directory_is_removed_even_when_a_round_errors
cargo test -q -p dstress-core checkpoint
cargo test -q -p dstress-core kill_and_resume_is_bit_identical
cargo test -q -p dstress-core resume_rejects_missing_and_foreign_checkpoints
cargo test -q -p dstress-bench persist::

echo "==> persist acceptance: budgeted run past the 10,000-vertex RAM wall + recovery"
# Measured N = 12,000 with the budget at 1/4 of the store bytes: real
# spill-file bytes, resident peak under budget (+ segment slack), and
# kill-and-resume bit-identity on the budgeted path.
cargo test --release -q -p dstress-bench --test persist_recovery -- --ignored

echo "==> repro -- persist smoke (quick sweep includes a measured N = 12,000 point)"
cargo run --release -q -p dstress-bench --bin repro -- persist --threads 2 > /dev/null

echo "==> DP edge cases: integer budget ledger, geometric clamp, PSA aggregation"
# The micro-ε budget accounting (max_queries == successful charges at FP
# boundaries, million-charge drift-free totals, typed errors), the
# for_epsilon underflow clamp, and the PSA encrypt/aggregate/decrypt
# round-trip with mask cancellation.
cargo test -q -p dstress-dp budget::
cargo test -q -p dstress-dp geometric::
cargo test -q -p dstress-dp psa::

echo "==> analytics suite: plaintext references, circuit programs, engine releases"
# The four scenario programs (degree histogram, WCC, SSSP, PageRank):
# circuit == reference on every vertex, engine releases inside the
# analytic error bounds, fixed-point quantisation accounting.
cargo test -q -p dstress-graph analytics::
cargo test --release -q -p dstress-core analytics::

echo "==> recurring releases: ε composition, exhaustion, full-MPC/PSA cadence"
cargo test --release -q -p dstress-core schedule::
cargo test --release -q -p dstress-finance monitor::
cargo test --release -q -p dstress-bench --lib scenarios::

echo "==> repro -- scenarios smoke (per-program releases + recurring A/B into BENCH_results.json)"
cargo run --release -q -p dstress-bench --bin repro -- scenarios --threads 2 > /dev/null

echo "==> kill-and-resume e2e (master halted between rounds, restarted from checkpoint)"
cargo test --release -q -p dstress-deploy --test kill_resume

echo "==> socket frame layer: fault injection errors cleanly, never hangs"
# Torn/partial frames, trailing garbage, oversized length prefixes,
# mid-message disconnects and silent peers all surface as typed
# TransportErrors within the stall timeout.
cargo test -q -p dstress-net --test socket_faults
cargo test -q -p dstress-net frame::
cargo test -q -p dstress-net socket::

echo "==> deployment: engine-level transport invariance + master/worker units"
cargo test --release -q -p dstress-core transport_kind_does_not_change_results
cargo test -q -p dstress-deploy --lib

echo "==> loopback deployment e2e (master + 3 workers, release mode)"
# Spawns the built dstress-master and dstress-node binaries on 127.0.0.1
# and pins the released value bit-for-bit against the in-process run.
cargo test --release -q -p dstress-deploy --test loopback

echo "==> repro -- sockets smoke (Sim vs Socket measured/modeled into BENCH_results.json)"
cargo run --release -q -p dstress-bench --bin repro -- sockets --threads 2 > /dev/null

echo "==> threaded speedup check (asserts >= 2x only on >= 4 cores)"
cargo test --release -q -p dstress-bench threaded_is_at_least_twice_as_fast_at_64_nodes -- --ignored

echo "==> cargo bench (compile only)"
cargo bench -p dstress-bench --no-run

echo "CI gate passed."
