//! # DStress — differentially private computations on distributed graphs
//!
//! This crate is the facade of a from-scratch Rust reproduction of
//! *"DStress: Efficient Differentially Private Computations on Distributed
//! Data"* (Papadimitriou, Narayan, Haeberlen — EuroSys 2017).  DStress
//! executes *vertex programs* over a graph whose vertices, edges and
//! properties are distributed across mutually distrustful participants,
//! and guarantees value privacy, edge privacy and (ε-differential) output
//! privacy.
//!
//! The facade re-exports the workspace crates under stable module names:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`math`] | `dstress-math` | big integers, Montgomery arithmetic, RNGs, fixed point |
//! | [`crypto`] | `dstress-crypto` | exponential ElGamal, key re-randomisation, secret sharing |
//! | [`circuit`] | `dstress-circuit` | Boolean circuits and gadgets |
//! | [`mpc`] | `dstress-mpc` | the GMW protocol and the monolithic-MPC baseline |
//! | [`net`] | `dstress-net` | simulated network, traffic accounting, cost model |
//! | [`dp`] | `dstress-dp` | Laplace/geometric mechanisms, budgets, policy analyses |
//! | [`transfer`] | `dstress-transfer` | trusted-party setup and the message transfer protocol |
//! | [`graph`] | `dstress-graph` | graphs, vertex programs, the plaintext reference executor |
//! | [`core`] | `dstress-core` | the DStress runtime and the scalability projection |
//! | [`finance`] | `dstress-finance` | the systemic-risk case study (EN, EGJ, generators) |
//!
//! ## Quickstart
//!
//! ```
//! use dstress::core::{DStressConfig, DStressRuntime, CounterProgram};
//! use dstress::graph::generate::ring_with_chords;
//! use dstress::math::rng::Xoshiro256;
//!
//! // A small distributed graph: 6 participants in a ring.
//! let mut rng = Xoshiro256::new(7);
//! let graph = ring_with_chords(6, 0, 2, &mut rng);
//!
//! // A toy vertex program (each vertex sums what it hears), executed with
//! // blocks of 3 nodes (collusion bound k = 2) and ε = 0.23.
//! let program = CounterProgram { width: 8, rounds: 2 };
//! let mut config = DStressConfig::small_test(2);
//! config.epsilon = 0.23;
//! let run = DStressRuntime::new(config).execute(&graph, &program).unwrap();
//!
//! // Only the noised aggregate would ever be released.
//! assert!(run.noised_output.is_finite());
//! assert!(run.phases.computation.counts.and_gates > 0);
//! ```
//!
//! For the systemic-risk case study and the full evaluation harness see
//! the `examples/` directory and the `dstress-bench` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Arithmetic substrate (re-export of `dstress-math`).
pub use dstress_math as math;

/// Cryptographic primitives (re-export of `dstress-crypto`).
pub use dstress_crypto as crypto;

/// Boolean circuits (re-export of `dstress-circuit`).
pub use dstress_circuit as circuit;

/// The GMW multi-party computation engine (re-export of `dstress-mpc`).
pub use dstress_mpc as mpc;

/// Simulated network and cost model (re-export of `dstress-net`).
pub use dstress_net as net;

/// Differential privacy mechanisms and accounting (re-export of `dstress-dp`).
pub use dstress_dp as dp;

/// Trusted-party setup and the message transfer protocol (re-export of
/// `dstress-transfer`).
pub use dstress_transfer as transfer;

/// Graphs and vertex programs (re-export of `dstress-graph`).
pub use dstress_graph as graph;

/// The DStress runtime (re-export of `dstress-core`).
pub use dstress_core as core;

/// The systemic-risk case study (re-export of `dstress-finance`).
pub use dstress_finance as finance;

/// Static circuit analysis and certification (re-export of
/// `dstress-analyze`).
pub use dstress_analyze as analyze;
