//! Cross-crate integration tests for the privacy mechanisms.
//!
//! These tests check the properties §2 of the paper promises — value
//! privacy, edge privacy and output privacy — at the level of observable
//! behaviour: shares look random, coalitions below the collusion bound
//! cannot reconstruct, transfers re-randomise the shares they carry, the
//! noised bit-sums follow the geometric mechanism, and the released output
//! follows the Laplace mechanism within the privacy budget.

use dstress::crypto::group::Group;
use dstress::crypto::sharing::{split_xor, xor_reconstruct, BitMessage};
use dstress::crypto::DlogTable;
use dstress::dp::budget::PrivacyBudget;
use dstress::dp::geometric::TwoSidedGeometric;
use dstress::dp::laplace::LaplaceMechanism;
use dstress::math::rng::{DetRng, Xoshiro256};
use dstress::net::traffic::{NodeId, TrafficAccountant};
use dstress::transfer::protocol::{transfer_message, TransferConfig};
use dstress::transfer::setup::generate_system;

/// Any `k` of the `k + 1` shares of a value are (statistically)
/// independent of the secret: flipping the secret leaves every proper
/// subset's joint distribution unchanged.  We verify the constructive
/// property that drives it: the first `k` shares are fresh uniform
/// randomness, so two different secrets produce identical prefixes when
/// the randomness is replayed.
#[test]
fn k_shares_reveal_nothing() {
    let a = BitMessage::new(0x000, 12).unwrap();
    let b = BitMessage::new(0xFFF, 12).unwrap();
    let shares_a = split_xor(a, 4, &mut Xoshiro256::new(99));
    let shares_b = split_xor(b, 4, &mut Xoshiro256::new(99));
    // First k = 3 shares are identical for both secrets...
    assert_eq!(shares_a[..3], shares_b[..3]);
    // ...and only the full set reconstructs the right value.
    assert_eq!(xor_reconstruct(&shares_a).unwrap(), a);
    assert_eq!(xor_reconstruct(&shares_b).unwrap(), b);
    assert_ne!(
        xor_reconstruct(&shares_a[..3]).unwrap(),
        a,
        "a k-subset must not already equal the secret"
    );
}

/// The transfer protocol hands the receiving block *fresh* shares: the
/// values observed by the receiving members are unrelated to the sending
/// members' shares (this is what defeats the share-recognition attack on
/// strawman #2), yet the XOR is preserved.
#[test]
fn transfers_rerandomise_shares_and_preserve_the_message() {
    let group = Group::sim64();
    let mut rng = Xoshiro256::new(0x51AB);
    let (secrets, setup) = generate_system(&group, 10, 3, 2, 12, &mut rng).unwrap();
    let dlog = DlogTable::new_signed(&group, 2_000);
    let config = TransferConfig::final_protocol(12, 0.6);

    let message = BitMessage::new(0x5A5, 12).unwrap();
    let sender_shares = split_xor(message, 4, &mut rng);
    let mut previous_receiver_shares = None;
    for round in 0..3u64 {
        let mut traffic = TrafficAccountant::new();
        let outcome = transfer_message(
            &group,
            &config,
            NodeId(0),
            NodeId(1),
            &setup.blocks[0],
            &setup.blocks[1],
            &sender_shares,
            &secrets,
            &setup.certificates[1][0],
            &secrets[1].neighbor_keys[0],
            &dlog,
            &mut traffic,
            &mut rng,
        )
        .unwrap();
        assert_eq!(xor_reconstruct(&outcome.receiver_shares).unwrap(), message);
        assert_ne!(outcome.receiver_shares, sender_shares, "round {round}");
        if let Some(previous) = previous_receiver_shares {
            assert_ne!(
                outcome.receiver_shares, previous,
                "repeated transfers must not repeat share patterns"
            );
        }
        previous_receiver_shares = Some(outcome.receiver_shares);
    }
}

/// Edge privacy relies on routing: only the two endpoint vertices of an
/// edge handle traffic for it; the members of the two blocks talk to their
/// own vertex, never to the other block directly.
#[test]
fn transfer_traffic_is_routed_through_the_edge_endpoints() {
    let group = Group::sim64();
    let mut rng = Xoshiro256::new(0x407E);
    let (secrets, setup) = generate_system(&group, 14, 3, 2, 8, &mut rng).unwrap();
    let dlog = DlogTable::new_signed(&group, 1_000);
    let config = TransferConfig::final_protocol(8, 0.6);
    let message = BitMessage::new(0x3C, 8).unwrap();
    let sender_shares = split_xor(message, 4, &mut rng);
    let mut traffic = TrafficAccountant::with_pair_tracking();
    transfer_message(
        &group,
        &config,
        NodeId(0),
        NodeId(1),
        &setup.blocks[0],
        &setup.blocks[1],
        &sender_shares,
        &secrets,
        &setup.certificates[1][0],
        &secrets[1].neighbor_keys[0],
        &dlog,
        &mut traffic,
        &mut rng,
    )
    .unwrap();

    // No member of B_0 (other than the endpoints) ever sends to a member
    // of B_1 directly.
    for &sender in &setup.blocks[0].members {
        if sender == NodeId(0) || sender == NodeId(1) {
            continue;
        }
        for &receiver in &setup.blocks[1].members {
            if receiver == NodeId(0) || receiver == NodeId(1) {
                continue;
            }
            if setup.blocks[0].members.contains(&receiver) {
                continue; // overlapping membership is routed as block-internal
            }
            assert_eq!(
                traffic.pair_bytes(sender, receiver),
                Some(0),
                "{sender} must not talk to {receiver} directly"
            );
        }
    }
    // The endpoints carry the bulk of the traffic.
    assert!(traffic.node(NodeId(0)).bytes_received > 0);
    assert!(traffic.node(NodeId(1)).bytes_sent > 0);
}

/// The geometric mechanism used on the bit-sums satisfies the defining DP
/// inequality, and the Laplace mechanism's spread matches its scale — the
/// two release mechanisms the system depends on.
#[test]
fn mechanisms_have_their_documented_distributions() {
    // Geometric: pmf ratio between adjacent outputs bounded by 1/alpha.
    let geo = TwoSidedGeometric::new(0.85);
    for d in -30i64..30 {
        let ratio = geo.pmf(d) / geo.pmf(d + 1);
        assert!((0.85 - 1e-9..=1.0 / 0.85 + 1e-9).contains(&ratio));
    }

    // Laplace: about 95% of samples fall inside the 95% bound.
    let lap = LaplaceMechanism::new(10.0, 0.23);
    let bound = lap.noise_bound(0.95);
    let mut rng = Xoshiro256::new(3);
    let inside = (0..20_000)
        .filter(|_| lap.sample_noise(&mut rng).abs() <= bound)
        .count();
    assert!((18_600..19_400).contains(&inside), "inside = {inside}");
}

/// The §4.5 budget policy: three EGJ stress tests fit in one year's ln 2
/// budget, a fourth does not, and replenishing (the annual disclosure
/// cycle) restores capacity.
#[test]
fn annual_budget_supports_three_stress_tests() {
    let mut budget = PrivacyBudget::paper_annual_budget();
    for quarter in 1..=3 {
        budget
            .charge(&format!("EGJ stress test #{quarter}"), 0.23)
            .expect("three runs fit");
    }
    assert!(budget.charge("fourth run", 0.23).is_err());
    budget.replenish();
    assert!(budget.charge("next year's first run", 0.23).is_ok());
}

/// Different joint seeds give different noise but identical ideal values —
/// the output distribution is a property of the mechanism, not the data
/// path.
#[test]
fn laplace_release_depends_only_on_seed_and_value() {
    let mechanism = LaplaceMechanism::new(10.0, 0.23);
    let mut seeds = Xoshiro256::new(1);
    let mut outputs = Vec::new();
    for _ in 0..200 {
        let mut rng = Xoshiro256::new(seeds.next_u64());
        outputs.push(mechanism.release(500.0, &mut rng));
    }
    let mean = outputs.iter().sum::<f64>() / outputs.len() as f64;
    // Unbiased around the true value, spread on the order of the scale.
    assert!((mean - 500.0).abs() < 15.0, "mean = {mean}");
    let spread = outputs.iter().map(|v| (v - 500.0).abs()).sum::<f64>() / outputs.len() as f64;
    assert!(
        (20.0..90.0).contains(&spread),
        "mean absolute noise = {spread}"
    );
}
