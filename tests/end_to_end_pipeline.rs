//! Cross-crate integration tests: the full DStress pipeline against its
//! ideal functionality.
//!
//! These tests exercise the complete stack — trusted-party setup, block
//! assignment, GMW computation steps, the message transfer protocol,
//! aggregation and noising — and compare the result against the plaintext
//! reference implementations of the same programs.

use dstress::core::{execute_plaintext, CounterProgram, DStressConfig, DStressRuntime};
use dstress::finance::contagion::recommended_iterations;
use dstress::finance::generator::{apply_shock, core_periphery};
use dstress::finance::{
    eisenberg_noe, CircuitParams, EisenbergNoeSecure, ElliottGolubJacksonSecure, GeneratorConfig,
};
use dstress::graph::generate::ring_with_chords;
use dstress::graph::{execute_reference, VertexId};
use dstress::math::rng::Xoshiro256;

/// The secure runtime must agree exactly with the plaintext evaluation of
/// the same circuits (the DP noise is the only difference, and it is added
/// after aggregation).
#[test]
fn engine_matches_circuit_plaintext_for_counter_program() {
    let mut rng = Xoshiro256::new(11);
    let graph = ring_with_chords(7, 1, 4, &mut rng);
    let program = CounterProgram {
        width: 8,
        rounds: 3,
    };
    let ideal = execute_plaintext(&graph, &program);

    for collusion_bound in [2usize, 4] {
        let config = DStressConfig::small_test(collusion_bound);
        let run = DStressRuntime::new(config)
            .execute(&graph, &program)
            .expect("engine run succeeds");
        assert_eq!(run.ideal_output, ideal, "k = {collusion_bound}");
        assert_ne!(run.noised_output, run.ideal_output);
    }
}

/// The full pipeline on the Eisenberg–Noe case study: DStress's pre-noise
/// aggregate equals the circuit ideal functionality, which in turn tracks
/// the classic clearing-vector computation.
#[test]
fn eisenberg_noe_pipeline_tracks_clearing_vector() {
    let config = GeneratorConfig::small(10, 6);
    let mut rng = Xoshiro256::new(42);
    let mut network = core_periphery(&config, &mut rng);
    apply_shock(&mut network, &[VertexId(0), VertexId(1)], 0.95);

    let iterations = recommended_iterations(network.bank_count());
    let program = EisenbergNoeSecure {
        network: &network,
        params: CircuitParams::default_params(),
        iterations,
        leverage_bound: 0.1,
    };

    // Ideal functionality of the circuits.
    let circuit_ideal = execute_plaintext(network.graph(), &program);
    // Classic full-information clearing vector.
    let clearing = eisenberg_noe::clearing_vector(&network, 64);

    // The secure run (real ElGamal transfers, small blocks).
    let run = DStressRuntime::new(DStressConfig::small_test(2))
        .execute(network.graph(), &program)
        .expect("secure EN run succeeds");

    assert_eq!(run.ideal_output, circuit_ideal);
    let tolerance = 2.0 + 0.06 * clearing.total_shortfall;
    assert!(
        (run.ideal_output - clearing.total_shortfall).abs() < tolerance,
        "secure {} vs clearing vector {}",
        run.ideal_output,
        clearing.total_shortfall
    );
    // There is a real shortfall to detect, and the noised release is in
    // the right neighbourhood (Laplace scale 10/0.23 ≈ 43).
    assert!(clearing.total_shortfall > 1.0);
    assert!((run.noised_output - run.ideal_output).abs() < 600.0);
}

/// The Elliott–Golub–Jackson pipeline agrees with its plaintext vertex
/// program within the fixed-point quantisation tolerance.
#[test]
fn elliott_golub_jackson_pipeline_matches_reference() {
    let config = GeneratorConfig::small(10, 6);
    let mut rng = Xoshiro256::new(77);
    let mut network = core_periphery(&config, &mut rng);
    apply_shock(&mut network, &[VertexId(0), VertexId(1)], 0.9);

    let iterations = 6;
    let secure = ElliottGolubJacksonSecure {
        network: &network,
        params: CircuitParams::default_params(),
        iterations,
        leverage_bound: 0.1,
    };
    let plaintext = dstress::finance::ElliottGolubJacksonProgram {
        network: &network,
        iterations,
        leverage_bound: 0.1,
    };

    let run = DStressRuntime::new(DStressConfig::benchmark(2))
        .execute(network.graph(), &secure)
        .expect("secure EGJ run succeeds");
    let reference = execute_reference(network.graph(), &plaintext);

    let tolerance = 2.0 + 0.06 * reference.aggregate.abs();
    assert!(
        (run.ideal_output - reference.aggregate).abs() < tolerance,
        "secure {} vs reference {}",
        run.ideal_output,
        reference.aggregate
    );
}

/// Determinism: identical configuration and seed produce identical runs,
/// different seeds produce different noise.
#[test]
fn runs_are_reproducible_and_noise_is_seeded() {
    let mut rng = Xoshiro256::new(5);
    let graph = ring_with_chords(5, 0, 2, &mut rng);
    let program = CounterProgram {
        width: 8,
        rounds: 2,
    };

    let mut config = DStressConfig::benchmark(2);
    config.seed = 1234;
    let a = DStressRuntime::new(config.clone())
        .execute(&graph, &program)
        .unwrap();
    let b = DStressRuntime::new(config.clone())
        .execute(&graph, &program)
        .unwrap();
    assert_eq!(a.noised_output, b.noised_output);
    assert_eq!(
        a.traffic.report().total_bytes,
        b.traffic.report().total_bytes
    );

    config.seed = 5678;
    let c = DStressRuntime::new(config)
        .execute(&graph, &program)
        .unwrap();
    assert_eq!(a.ideal_output, c.ideal_output);
    assert_ne!(a.noised_output, c.noised_output);
}

/// Larger blocks mean more protection and more cost, but never a different
/// (pre-noise) answer.
#[test]
fn block_size_affects_cost_not_correctness() {
    let mut rng = Xoshiro256::new(9);
    let graph = ring_with_chords(6, 1, 4, &mut rng);
    let program = CounterProgram {
        width: 8,
        rounds: 2,
    };

    let mut previous_bytes = 0u64;
    let mut ideal = None;
    for collusion_bound in [1usize, 2, 4] {
        let run = DStressRuntime::new(DStressConfig::benchmark(collusion_bound))
            .execute(&graph, &program)
            .unwrap();
        match ideal {
            None => ideal = Some(run.ideal_output),
            Some(v) => assert_eq!(run.ideal_output, v),
        }
        let bytes = run.traffic.report().total_bytes;
        assert!(
            bytes > previous_bytes,
            "traffic must grow with the block size"
        );
        previous_bytes = bytes;
    }
}
