//! Integration tests for the paper's headline evaluation claims.
//!
//! These are the "shape" checks the reproduction is accountable for: who
//! wins, by roughly what factor, and what scales how.  The full series are
//! produced by the `repro` binary; here we assert the qualitative
//! conclusions on reduced instances so they are enforced by `cargo test`.

use dstress_bench::mpc_micro::{run_mpc_micro, MpcCircuitKind};
use dstress_bench::naive_baseline::paper_comparison;
use dstress_bench::policy::{edge_privacy_summary, utility_table};
use dstress_bench::scalability::{fig6_sweep, headline_projection};
use dstress_bench::transfer_micro::block_size_sweep;

/// §5.5 + Figure 6: DStress completes the full-scale stress test in hours,
/// the monolithic MPC baseline needs centuries, and the gap is four-plus
/// orders of magnitude.
#[test]
fn dstress_beats_the_naive_baseline_by_orders_of_magnitude() {
    let headline = headline_projection();
    assert!(
        headline.result.hours() < 24.0,
        "{} h",
        headline.result.hours()
    );

    let baseline = paper_comparison();
    assert!(
        baseline.full_scale_years > 50.0,
        "{} years",
        baseline.full_scale_years
    );
    assert!(baseline.speedup > 10_000.0, "speedup {}", baseline.speedup);
}

/// Figure 6: projected cost grows with the degree bound, and per-node
/// traffic stays in the hundreds-of-megabytes regime at full scale.
#[test]
fn projection_series_have_paper_shapes() {
    let rows = fig6_sweep(&[500, 1750], &[10, 100]);
    let d10 = rows
        .iter()
        .find(|r| r.degree_bound == 10 && r.nodes == 1750)
        .unwrap();
    let d100 = rows
        .iter()
        .find(|r| r.degree_bound == 100 && r.nodes == 1750)
        .unwrap();
    assert!(d100.result.total_seconds > 3.0 * d10.result.total_seconds);
    let mb = d100.result.megabytes_per_node();
    assert!((50.0..5000.0).contains(&mb), "{mb} MB per node");
}

/// Figure 3/4: the per-step MPC cost ordering (EGJ > EN > initialization)
/// and the linear-in-block-size traffic shape.
#[test]
fn mpc_microbenchmarks_have_paper_ordering() {
    let init = run_mpc_micro(MpcCircuitKind::Initialization, 4, 10, 50, 1);
    let en = run_mpc_micro(MpcCircuitKind::EisenbergNoeStep, 4, 10, 50, 1);
    let egj = run_mpc_micro(MpcCircuitKind::ElliottGolubJacksonStep, 4, 10, 50, 1);
    assert!(en.projected_seconds > init.projected_seconds);
    assert!(egj.projected_seconds > en.projected_seconds);

    let en_large_block = run_mpc_micro(MpcCircuitKind::EisenbergNoeStep, 8, 10, 50, 1);
    assert!(en_large_block.traffic_per_node_bytes > en.traffic_per_node_bytes);
    assert!(en_large_block.projected_seconds > en.projected_seconds);
}

/// §5.2: the transfer protocol's completion time lands in the
/// hundreds-of-milliseconds regime and grows with the block size, far from
/// dominating the five-hour end-to-end budget.
#[test]
fn transfer_latency_is_sub_second() {
    let rows = block_size_sweep(&[4, 8], 12);
    assert!(rows.iter().all(|r| r.projected_seconds < 2.0));
    assert!(rows[1].projected_seconds > rows[0].projected_seconds);
    // Quadratic fan-in at the sending vertex.
    assert!(rows[1].vertex_i_received_bytes > 3 * rows[0].vertex_i_received_bytes);
}

/// §4.5 and Appendix B: the policy numbers the paper derives.
#[test]
fn policy_numbers_match_the_paper() {
    let utility = utility_table();
    let egj = utility
        .iter()
        .find(|r| r.model.contains("Elliott"))
        .unwrap();
    assert_eq!(egj.runs_per_year, 3);
    assert!((egj.epsilon_query - 0.23).abs() < 0.01);

    let edge = edge_privacy_summary();
    assert!((edge.budget_per_iteration - 0.0014).abs() < 1e-4);
    assert!((edge.budget_per_year - 0.0469).abs() < 1e-3);
    assert!(edge.fraction_of_annual_budget < 0.1);
}
