#!/usr/bin/env bash
# Source-level nondeterminism lint for the bit-identity invariant.
#
# The determinism suite (Sim == Threaded == Socket, kill-and-resume
# bit-identity) can only catch nondeterminism that happens to fire; this
# lint forbids the constructs that *introduce* it at the source level in
# the crates on the share-critical path:
#
#   * `HashMap` / `HashSet` — randomized iteration order (std's
#     RandomState is seeded per process); use BTreeMap/BTreeSet or an
#     index-keyed Vec instead.
#   * `Instant::now` / `SystemTime` — wall-clock reads; results must be
#     a pure function of seeds and inputs.
#
# The bench crate is exempt (it exists to measure wall time).  A use
# that is provably harmless (metrics-only timing, test-only sets whose
# order is never observed) can be allowlisted INLINE by appending:
#
#     // lint:allow-nondeterminism -- <justification>
#
# The ` -- justification` part is mandatory: a bare marker does not
# pass.  Every allowlisted line is printed so reviewers see the current
# exemption surface.
set -euo pipefail
cd "$(dirname "$0")/.."

# Crates on the share-critical path: the engine (core), the GMW runtime
# (mpc) and the DStress transfer protocol (transfer).
LINT_DIRS=(crates/core/src crates/mpc/src crates/transfer/src)
PATTERN='HashMap|HashSet|Instant::now|SystemTime'
ALLOW='lint:allow-nondeterminism -- [^ ]'

offenders=$(grep -rnE "$PATTERN" "${LINT_DIRS[@]}" --include='*.rs' \
    | grep -vE "$ALLOW" || true)

if [[ -n "$offenders" ]]; then
    echo "nondeterminism lint: forbidden constructs on the share-critical path:" >&2
    echo "$offenders" >&2
    echo >&2
    echo "Use BTreeMap/BTreeSet (deterministic iteration) or thread timing" >&2
    echo "through the bench crate.  If the use is provably harmless, append" >&2
    echo "  // lint:allow-nondeterminism -- <justification>" >&2
    exit 1
fi

allowed=$(grep -rnE "$ALLOW" "${LINT_DIRS[@]}" --include='*.rs' || true)
count=0
if [[ -n "$allowed" ]]; then
    count=$(printf '%s\n' "$allowed" | wc -l)
    echo "nondeterminism lint: ${count} allowlisted line(s):"
    printf '%s\n' "$allowed" | sed 's/^/  /'
fi
echo "nondeterminism lint: clean (${count} allowlisted)"
