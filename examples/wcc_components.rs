//! Private connected-components count via label propagation.
//!
//! A consortium wants to know how fragmented its collaboration network is
//! — the number of weakly-connected components — without any member
//! revealing who it is connected to.  Each vertex starts with its own
//! label, adopts the smallest label it hears for `rounds ≥ diameter`
//! rounds, and the aggregation counts the vertices still holding their
//! own label (the component roots).  One edge merges or splits at most
//! one pair of components, so the sensitivity is 1.
//!
//! Run with `cargo run --release --example wcc_components`.

use dstress::core::{DStressConfig, DStressRuntime, WccProgram};
use dstress::graph::{execute_reference, Graph, VertexId, WccLabels};

fn main() {
    // Three confidential clusters: a path, a triangle, and an isolate.
    let mut graph = Graph::new(8, 4);
    for i in 0..3 {
        graph
            .add_bidirectional(VertexId(i), VertexId(i + 1))
            .expect("path edges fit the degree bound");
    }
    for (a, b) in [(4, 5), (5, 6), (6, 4)] {
        graph
            .add_bidirectional(VertexId(a), VertexId(b))
            .expect("triangle edges fit the degree bound");
    }
    // Vertex 7 collaborates with nobody.

    let rounds = 4; // Covers the path's diameter of 3.
    let program = WccProgram { width: 8, rounds };

    let mut config = DStressConfig::small_test(2);
    config.epsilon = 1.0;
    let run = DStressRuntime::new(config)
        .execute(&graph, &program)
        .expect("wcc run succeeds");

    let reference = execute_reference(&graph, &WccLabels { rounds });
    println!("vertices:                  {}", graph.vertex_count());
    println!("true component count:      {}", reference.aggregate);
    println!("engine pre-noise count:    {}", run.ideal_output);
    println!("DStress released count:    {:.1}", run.noised_output);
    println!(
        "difference (Laplace noise at sensitivity 1, epsilon 1.0): {:+.1}",
        run.noised_output - reference.aggregate
    );
}
