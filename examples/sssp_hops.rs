//! Private shortest-path distance (hop count) with a truncation horizon.
//!
//! How far apart are two designated organisations in a confidential
//! contact network?  Distances propagate one hop per round, so after `I`
//! rounds the released distance is exact up to `I` hops and everything
//! farther — including unreachable — is truncated to `I + 1`.  The
//! truncation is what bounds the sensitivity: one edge can swing the
//! answer across the whole range `[0, I + 1]`, so the Laplace scale is
//! `(I + 1)/ε`.
//!
//! Run with `cargo run --release --example sssp_hops`.

use dstress::core::{DStressConfig, DStressRuntime, SsspProgram};
use dstress::graph::{execute_reference, Graph, SsspHops, VertexId};

fn main() {
    // A path 0–1–2–3–4–5 plus an unreachable pair 6–7.
    let mut graph = Graph::new(8, 4);
    for i in 0..5 {
        graph
            .add_bidirectional(VertexId(i), VertexId(i + 1))
            .expect("path edges fit the degree bound");
    }
    graph
        .add_bidirectional(VertexId(6), VertexId(7))
        .expect("pair edge fits the degree bound");

    let source = VertexId(0);
    let rounds = 4;
    let mut config = DStressConfig::small_test(2);
    config.epsilon = 2.0;

    for (label, target) in [("4 hops away", VertexId(4)), ("unreachable", VertexId(6))] {
        let program = SsspProgram {
            width: 8,
            source,
            target,
            rounds,
        };
        let run = DStressRuntime::new(config.clone())
            .execute(&graph, &program)
            .expect("sssp run succeeds");
        let reference = execute_reference(
            &graph,
            &SsspHops {
                source,
                target,
                rounds,
            },
        );
        println!("target {target:?} ({label}):");
        println!("  truncated true distance:  {}", reference.aggregate);
        println!("  DStress released:         {:.1}", run.noised_output);
        println!(
            "  (cap = rounds + 1 = {}; sensitivity {} at epsilon {})",
            program.cap(),
            program.cap(),
            config.epsilon
        );
    }
}
