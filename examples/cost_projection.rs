//! Projecting DStress to the full U.S. banking system (§5.5 / Figure 6).
//!
//! Uses the calibrated scalability model, fed with the real Eisenberg–Noe
//! circuits, to project end-to-end computation time and per-node traffic
//! for deployments from 100 to 2,000 banks, and compares the headline
//! (N = 1,750, D = 100) against the naïve monolithic-MPC baseline.
//!
//! Run with `cargo run --release --example cost_projection`.

use dstress::core::ScalabilityModel;
use dstress_bench::naive_baseline::paper_comparison;
use dstress_bench::scalability::{en_projection_inputs, fig6_sweep, headline_projection};
use dstress_bench::{format_bytes, format_seconds};

fn main() {
    println!("Projected end-to-end cost of an Eisenberg-Noe stress test (block size 20):");
    println!(
        "{:<8} {:>6} {:>6} {:>14} {:>16}",
        "N", "D", "iters", "time", "traffic/node"
    );
    for row in fig6_sweep(&[100, 500, 1000, 1750, 2000], &[10, 40, 100]) {
        println!(
            "{:<8} {:>6} {:>6} {:>14} {:>16}",
            row.nodes,
            row.degree_bound,
            row.iterations,
            format_seconds(row.result.total_seconds),
            format_bytes(row.result.bytes_per_node)
        );
    }

    let headline = headline_projection();
    println!();
    println!(
        "US banking system (N = 1750, D = 100): {} and {} per node",
        format_seconds(headline.result.total_seconds),
        format_bytes(headline.result.bytes_per_node)
    );
    println!("(the paper projects ~4.8 hours and ~750 MB per node)");

    // Phase breakdown of the headline projection.
    let b = headline.result.breakdown;
    println!(
        "  initialization {:>12}   computation {:>12}   transfers {:>12}   aggregation {:>12}",
        format_seconds(b.initialization_seconds),
        format_seconds(b.computation_seconds),
        format_seconds(b.communication_seconds),
        format_seconds(b.aggregation_seconds)
    );

    // The baseline the paper compares against: one monolithic MPC.
    let baseline = paper_comparison();
    println!();
    println!(
        "naive monolithic MPC for the same system: {} (~{:.0} years) => DStress speedup ~{:.0}x",
        format_seconds(baseline.full_scale_seconds),
        baseline.full_scale_years,
        baseline.speedup
    );

    // How the iteration rule behaves.
    println!();
    println!("iteration rule I = ceil(log2 N):");
    for n in [50usize, 100, 500, 1750] {
        println!(
            "  N = {:>5} -> I = {}",
            n,
            ScalabilityModel::default_iterations(n)
        );
    }

    // What changes if regulators demand a smaller collusion bound.
    let model = ScalabilityModel::paper_reference();
    let inputs = en_projection_inputs(100);
    println!();
    println!("sensitivity to the collusion bound (N = 1750, D = 100):");
    for k in [7usize, 11, 15, 19] {
        let r = model.project(&inputs, 1750, 100, k, 11);
        println!(
            "  k = {:>2} (blocks of {:>2}): {} and {} per node",
            k,
            k + 1,
            format_seconds(r.total_seconds),
            format_bytes(r.bytes_per_node)
        );
    }
}
