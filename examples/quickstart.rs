//! Quickstart: run a toy vertex program under the full DStress stack.
//!
//! Six participants each own one vertex of a small ring graph.  The vertex
//! program is a simple gossip counter (each vertex adds whatever its
//! in-neighbours report and forwards its running total), but it exercises
//! every mechanism of the system: block assignment by the trusted party,
//! XOR-shared state, GMW computation steps, the ElGamal message transfer
//! protocol, and the aggregation block's differentially private release.
//!
//! Run with `cargo run --release --example quickstart`.

use dstress::core::{CounterProgram, DStressConfig, DStressRuntime};
use dstress::graph::generate::ring_with_chords;
use dstress::math::rng::Xoshiro256;

fn main() {
    // The distributed graph: each of the 6 participants knows only its own
    // vertex and its ring neighbours.
    let mut rng = Xoshiro256::new(7);
    let graph = ring_with_chords(6, 1, 4, &mut rng);
    println!(
        "graph: {} vertices, {} directed edges, degree bound {}",
        graph.vertex_count(),
        graph.edge_count(),
        graph.degree_bound()
    );

    // The program: 8-bit counters, 3 iterations, sensitivity 1.
    let program = CounterProgram {
        width: 8,
        rounds: 3,
    };

    // Runtime configuration: collusion bound k = 2 (blocks of 3 nodes),
    // real cryptography for the message transfers, ε = 0.5.
    let mut config = DStressConfig::small_test(2);
    config.epsilon = 0.5;
    let runtime = DStressRuntime::new(config);

    let run = runtime
        .execute(&graph, &program)
        .expect("quickstart execution succeeds");

    println!("block size (k+1):        {}", run.block_size);
    println!("iterations executed:     {}", run.iterations);
    println!("released (noised) value: {:.2}", run.noised_output);
    println!(
        "ideal value (hidden in a real deployment): {:.2}",
        run.ideal_output
    );
    println!();
    println!("cost breakdown (operation counts, all nodes combined):");
    println!(
        "  computation steps: {} AND gates under GMW, {} oblivious transfers",
        run.phases.computation.counts.and_gates, run.phases.computation.counts.extended_ots
    );
    println!(
        "  message transfers: {} exponentiations, {} bytes",
        run.phases.communication.counts.exponentiations, run.phases.communication.counts.bytes_sent
    );
    println!(
        "  aggregation+noise: {} AND gates under GMW",
        run.phases.aggregation.counts.and_gates
    );
    println!(
        "per-node traffic: {:.1} kB",
        run.mean_bytes_per_node() / 1e3
    );
}
