//! Anatomy of the message transfer protocol (§3.5).
//!
//! Walks through one transfer of a 12-bit message from block `B_i` to
//! block `B_j` under each protocol revision — the three strawmen and the
//! final noised protocol — showing that every variant delivers the correct
//! message while their costs (and the attacks they resist) differ.
//!
//! Run with `cargo run --release --example transfer_protocol`.

use dstress::crypto::dlog::DlogTable;
use dstress::crypto::group::Group;
use dstress::crypto::sharing::{split_xor, xor_reconstruct, BitMessage};
use dstress::math::rng::Xoshiro256;
use dstress::net::traffic::{NodeId, TrafficAccountant};
use dstress::transfer::protocol::{transfer_message, ProtocolVariant, TransferConfig};
use dstress::transfer::setup::generate_system;

fn main() {
    let group = Group::sim64();
    let mut rng = Xoshiro256::new(0x5EED);
    let collusion_bound = 3; // blocks of 4 nodes
    let message_bits = 12;

    // One-time setup: 12 participants register keys with the trusted
    // party, which assigns blocks and issues re-randomised block
    // certificates without ever learning the graph.
    let (secrets, setup) =
        generate_system(&group, 12, collusion_bound, 4, message_bits, &mut rng).unwrap();
    println!(
        "trusted-party setup: {} nodes, block size {}, {} certificates per node",
        setup.node_count(),
        setup.blocks[0].size(),
        setup.degree_bound
    );

    // The secret message vertex 0 wants to send to its neighbour vertex 1.
    let message = BitMessage::new(0xABC, message_bits).unwrap();
    let sender_shares = split_xor(message, setup.blocks[0].size(), &mut rng);
    println!(
        "message 0x{:03x} is XOR-shared among B_0 = {:?}",
        message.value(),
        setup.blocks[0].members
    );

    // A signed discrete-log window wide enough both for the whole-share
    // values the strawmen encrypt (up to 2^12 - 1) and for the noised
    // bit-sums of the final protocol.
    let dlog = DlogTable::new_signed(&group, 5_000);

    println!();
    println!(
        "{:<12} {:>10} {:>16} {:>12} {:>10}",
        "variant", "correct?", "exponentiations", "bytes", "rounds"
    );
    for (name, variant) in [
        ("strawman1", ProtocolVariant::Strawman1),
        ("strawman2", ProtocolVariant::Strawman2),
        ("strawman3", ProtocolVariant::Strawman3),
        ("final", ProtocolVariant::Final { alpha: 0.9 }),
    ] {
        let config = TransferConfig {
            variant,
            message_bits,
        };
        let mut traffic = TrafficAccountant::new();
        let outcome = transfer_message(
            &group,
            &config,
            NodeId(0),
            NodeId(1),
            &setup.blocks[0],
            &setup.blocks[1],
            &sender_shares,
            &secrets,
            &setup.certificates[1][0],
            &secrets[1].neighbor_keys[0],
            &dlog,
            &mut traffic,
            &mut rng,
        )
        .expect("transfer succeeds");
        let received = xor_reconstruct(&outcome.receiver_shares).unwrap();
        println!(
            "{:<12} {:>10} {:>16} {:>12} {:>10}",
            name,
            received == message,
            outcome.counts.exponentiations,
            outcome.counts.bytes_sent,
            outcome.counts.rounds
        );
    }

    println!();
    println!("strawman #1 lets a node sitting in both blocks learn two shares;");
    println!("strawman #2 lets colluders recognise forwarded sub-shares and infer the edge;");
    println!("strawman #3 still leaks a little through the plaintext bit-sums;");
    println!("the final protocol noises those sums, making the residual leakage epsilon-DP.");
}
