//! Systemic risk on a synthetic banking network (the paper's case study).
//!
//! Builds the Appendix C two-tier banking network (10 core banks, 40
//! peripheral banks), applies a severe shock to most of the core, and
//! measures the Total Dollar Shortfall three ways:
//!
//! 1. the ideal (non-private) Eisenberg–Noe clearing computation,
//! 2. the Elliott–Golub–Jackson cross-holdings model, and
//! 3. the full DStress pipeline — blocks, GMW, the message transfer
//!    protocol and a dollar-differentially-private release.
//!
//! Run with `cargo run --release --example systemic_risk`.

use dstress::core::{DStressConfig, DStressRuntime};
use dstress::finance::contagion::{cascade_scenario, recommended_iterations, ContagionModel};
use dstress::finance::{CircuitParams, EisenbergNoeSecure, ElliottGolubJacksonSecure};
use dstress::math::rng::Xoshiro256;

fn main() {
    // Appendix C cascade scenario: 7 of the 10 core banks lose 99% of
    // their assets.
    let mut rng = Xoshiro256::new(0xC0FFEE);
    let (network, en_outcome) = cascade_scenario(&mut rng, ContagionModel::EisenbergNoe);
    let mut rng = Xoshiro256::new(0xC0FFEE);
    let (_, egj_outcome) = cascade_scenario(&mut rng, ContagionModel::ElliottGolubJackson);

    println!(
        "banking network: {} banks, {} exposures",
        network.bank_count(),
        network.graph().edge_count()
    );
    println!();
    println!("ideal (non-private) contagion results after the core shock:");
    println!(
        "  Eisenberg-Noe:          TDS = {:>8.1}  failed banks = {:>2}  converged in {} iterations",
        en_outcome.report.total_shortfall,
        en_outcome.report.failed_banks,
        en_outcome.iterations_to_converge
    );
    println!(
        "  Elliott-Golub-Jackson:  TDS = {:>8.1}  distressed banks = {:>2}  converged in {} iterations",
        egj_outcome.report.total_shortfall,
        egj_outcome.report.failed_banks,
        egj_outcome.iterations_to_converge
    );

    // Now the same computation the way DStress would actually run it:
    // nobody sees anyone else's balance sheet, and only the noised TDS is
    // released.  (Cost-accounted transfers keep the example fast.)
    let iterations = recommended_iterations(network.bank_count());
    let leverage_bound = 0.1; // Basel III, as in §4.5
    let epsilon = 0.23; // allows ~3 stress tests per year

    let mut config = DStressConfig::benchmark(3);
    config.epsilon = epsilon;
    let runtime = DStressRuntime::new(config);

    println!();
    println!("DStress runs (k = 3, epsilon = {epsilon}, I = {iterations}):");
    let en_program = EisenbergNoeSecure {
        network: &network,
        params: CircuitParams::default_params(),
        iterations,
        leverage_bound,
    };
    let run = runtime
        .execute(network.graph(), &en_program)
        .expect("EN run succeeds");
    println!(
        "  Eisenberg-Noe:          released TDS = {:>8.1}   (ideal {:>8.1}, Laplace scale {:.1})",
        run.noised_output,
        run.ideal_output,
        1.0 / leverage_bound / epsilon
    );

    let egj_program = ElliottGolubJacksonSecure {
        network: &network,
        params: CircuitParams::default_params(),
        iterations,
        leverage_bound,
    };
    let run = runtime
        .execute(network.graph(), &egj_program)
        .expect("EGJ run succeeds");
    println!(
        "  Elliott-Golub-Jackson:  released TDS = {:>8.1}   (ideal {:>8.1}, Laplace scale {:.1})",
        run.noised_output,
        run.ideal_output,
        2.0 / leverage_bound / epsilon
    );

    println!();
    println!("A regulator looking only at the released values still sees an unmistakable cascade;");
    println!("no participant learned anything beyond its own books (plus the DP-noised output).");
}
