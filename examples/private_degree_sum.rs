//! A non-financial DStress application: privately counting edges.
//!
//! §3.1 of the paper notes that the vertex-program model covers many graph
//! analyses beyond systemic risk (cloud reliability, criminal
//! intelligence, social science).  This example implements one of the
//! simplest such analyses — "how many collaboration links exist in a
//! consortium?" — where each organisation knows only its own links and
//! nobody may learn anyone else's degree.
//!
//! Each vertex's state is its out-degree; the aggregation sums the
//! degrees (= the number of directed edges); the Laplace mechanism hides
//! any single organisation's contribution.
//!
//! Run with `cargo run --release --example private_degree_sum`.

use dstress::circuit::builder::{decode_word, encode_word, CircuitBuilder};
use dstress::circuit::Circuit;
use dstress::core::{DStressConfig, DStressRuntime, SecureVertexProgram};
use dstress::graph::generate::erdos_renyi;
use dstress::graph::{Graph, VertexId};
use dstress::math::rng::Xoshiro256;

/// A vertex program whose state is the vertex's out-degree and whose
/// aggregate is the total number of directed edges.
struct DegreeSum {
    width: u32,
}

impl SecureVertexProgram for DegreeSum {
    fn state_bits(&self) -> u32 {
        self.width
    }

    fn message_bits(&self) -> u32 {
        self.width
    }

    fn aggregate_bits(&self) -> u32 {
        2 * self.width
    }

    fn iterations(&self) -> u32 {
        // Degrees are static: a single round suffices.
        1
    }

    fn sensitivity(&self) -> f64 {
        // Adding or removing one collaboration link changes the edge count
        // by one.
        1.0
    }

    fn encode_initial_state(&self, graph: &Graph, v: VertexId) -> Vec<bool> {
        encode_word(graph.out_degree(v) as u64, self.width)
    }

    fn update_circuit(&self, degree_bound: usize) -> Circuit {
        // The state is already the answer; messages are all no-ops.
        let mut b = CircuitBuilder::new();
        let state = b.input_word(self.width);
        let _incoming: Vec<_> = (0..degree_bound)
            .map(|_| b.input_word(self.width))
            .collect();
        b.output_word(&state);
        let zero = b.const_word(0, self.width);
        for _ in 0..degree_bound {
            b.output_word(&zero);
        }
        b.build().expect("builder circuits are well formed")
    }

    fn aggregation_circuit(&self, vertices: usize) -> Circuit {
        let mut b = CircuitBuilder::new();
        let states: Vec<_> = (0..vertices).map(|_| b.input_word(self.width)).collect();
        let wide: Vec<_> = states
            .iter()
            .map(|s| b.zero_extend(s, 2 * self.width))
            .collect();
        let total = b.sum(&wide);
        b.output_word(&total);
        b.build().expect("builder circuits are well formed")
    }

    fn decode_aggregate(&self, bits: &[bool]) -> f64 {
        decode_word(bits) as f64
    }
}

fn main() {
    // A consortium of 15 organisations with sparse, confidential links.
    let mut rng = Xoshiro256::new(0x0DE6);
    let graph = erdos_renyi(15, 0.18, 6, &mut rng);
    let true_edges = graph.edge_count();

    let program = DegreeSum { width: 8 };
    let mut config = DStressConfig::small_test(2);
    config.epsilon = 0.4;
    let run = DStressRuntime::new(config)
        .execute(&graph, &program)
        .expect("degree-sum run succeeds");

    println!("organisations:                 {}", graph.vertex_count());
    println!("true number of links (secret): {true_edges}");
    println!("DStress released estimate:     {:.1}", run.noised_output);
    println!(
        "difference (Laplace noise at sensitivity 1, epsilon 0.4): {:+.1}",
        run.noised_output - true_edges as f64
    );
    println!(
        "MPC work: {} AND gates; transfer work: {} exponentiations",
        run.phases.computation.counts.and_gates, run.phases.communication.counts.exponentiations
    );
}
