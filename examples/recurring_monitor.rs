//! The recurring systemic-risk monitor: a year of monthly releases on
//! one privacy budget.
//!
//! Regulators want the stress picture refreshed monthly, but the banks'
//! annual budget caps what can be released.  The monitor runs the full
//! Eisenberg–Noe MPC pipeline every third month and publishes a cheap
//! PSA distress count (encrypted aggregation under geometric noise, no
//! MPC) in between — both paths charging the same accountant, so ε
//! composes across the year and month 13 is refused until the annual
//! replenish.
//!
//! Run with `cargo run --release --example recurring_monitor`.

use dstress::core::DStressConfig;
use dstress::dp::BudgetAccountant;
use dstress::finance::{core_periphery, GeneratorConfig, SystemicRiskMonitor};
use dstress::math::rng::Xoshiro256;

fn main() {
    let mut rng = Xoshiro256::new(0x50_4e_4c);
    let network = core_periphery(&GeneratorConfig::small(6, 2), &mut rng);
    let config = DStressConfig::benchmark(2);

    // Twelve monthly releases at epsilon 0.05 fit a 0.6 annual budget.
    let mut monitor = SystemicRiskMonitor::new(
        &network,
        config,
        BudgetAccountant::new(0.6),
        0.05,
        3,   // Full MPC every third month.
        2.0, // Leverage bound for the EN balance-sheet synthesis.
        &mut rng,
    );

    println!(
        "{:<7} {:<9} {:>12} {:>8}",
        "month", "mode", "released", "spent"
    );
    for month in 0..12 {
        let release = monitor
            .publish_month(month, &mut rng)
            .expect("the annual budget covers twelve months");
        println!(
            "{:<7} {:<9} {:>12.2} {:>8.2}",
            release.month,
            format!("{:?}", release.mode),
            release.value,
            monitor.schedule().accountant().spent()
        );
    }

    match monitor.publish_month(12, &mut rng) {
        Err(e) => println!("month 12 refused (budget exhausted): {e}"),
        Ok(_) => unreachable!("the thirteenth release must be refused"),
    }
    monitor.replenish_annual();
    let release = monitor
        .publish_month(12, &mut rng)
        .expect("the replenished budget covers the new year");
    println!(
        "after replenish, month 12 publishes {:.2} via {:?}",
        release.value, release.mode
    );
}
