//! A private degree histogram as a budget-composed release sequence.
//!
//! A full histogram is not one query — it is a *sequence* of single-bin
//! counts, and every bin costs privacy.  This example publishes three
//! bins through a [`ReleaseSchedule`]: each release charges ε = 0.3
//! against one shared accountant, and the schedule refuses a fourth bin
//! once the ln 2 annual budget (§4.5) can no longer cover it.
//!
//! Run with `cargo run --release --example degree_histogram`.

use dstress::core::{DStressConfig, DStressRuntime, DegreeHistogramProgram, ReleaseSchedule};
use dstress::dp::BudgetAccountant;
use dstress::graph::generate::ring_with_chords;
use dstress::math::rng::Xoshiro256;

fn main() {
    let mut rng = Xoshiro256::new(0xD16E57);
    let graph = ring_with_chords(12, 4, 5, &mut rng);

    let mut config = DStressConfig::benchmark(2);
    config.epsilon = 0.3; // Overridden per release by the schedule's ε.

    // The paper's annual budget ln 2 covers two 0.3-bins... and no more.
    let mut schedule = ReleaseSchedule::new(BudgetAccountant::new(2f64.ln()), 0.3);
    println!(
        "budget ln 2 = {:.4}, epsilon per bin 0.3, bins affordable: {}",
        2f64.ln(),
        schedule.releases_remaining()
    );

    println!(
        "{:<10} {:>6} {:>10} {:>10}",
        "bin", "exact", "released", "spent"
    );
    for (lo, hi) in [(0u64, 2u64), (3, 4), (5, 8)] {
        let program = DegreeHistogramProgram { width: 8, lo, hi };
        let exact = DStressRuntime::new(config.clone())
            .execute(&graph, &program)
            .expect("histogram run succeeds")
            .ideal_output;
        match schedule.release_full(&config, &graph, &program, &format!("degrees [{lo}, {hi}]")) {
            Ok(released) => println!(
                "[{lo}, {hi}]  {:>8} {:>10.1} {:>10.2}",
                exact,
                released,
                schedule.accountant().spent()
            ),
            Err(e) => println!("[{lo}, {hi}]  refused: {e}"),
        }
    }
    println!("audit trail:");
    for record in schedule.releases() {
        println!("  {} (epsilon {:.1})", record.label, record.epsilon);
    }
}
