//! Private PageRank: releasing one vertex's rank without pooling the
//! graph.
//!
//! Each participant owns one vertex and its out-edges (who it links to is
//! confidential).  The fixed-point PageRank program runs the power
//! iteration inside the MPC blocks — the per-vertex `1/outdeg` rides in
//! the private state, so no division circuit is needed — and releases
//! only the Laplace-noised rank of one agreed-upon target vertex, with
//! sensitivity `2d/(1 − d) = 2/3` for the dyadic damping `d = 1/4`.
//!
//! Run with `cargo run --release --example pagerank`.

use dstress::core::{DStressConfig, DStressRuntime, PageRankProgram, SecureVertexProgram};
use dstress::graph::{execute_reference, Graph, PageRankRef, VertexId};

fn main() {
    // A small symmetric web: vertex 0 is the hub everyone links to.
    let mut graph = Graph::new(8, 7);
    for leaf in 1..8 {
        graph
            .add_bidirectional(VertexId(0), VertexId(leaf))
            .expect("star edges fit the degree bound");
    }

    let target = VertexId(0);
    let rounds = 4;
    let program = PageRankProgram {
        frac_bits: 12,
        target,
        rounds,
        vertices: graph.vertex_count(),
    };

    let mut config = DStressConfig::small_test(2);
    config.epsilon = 1.0;
    let run = DStressRuntime::new(config)
        .execute(&graph, &program)
        .expect("pagerank run succeeds");

    let reference = execute_reference(&graph, &PageRankRef::new(&graph, target, rounds));
    println!("vertices:                      {}", graph.vertex_count());
    println!("real-valued reference rank:    {:.4}", reference.aggregate);
    println!("engine pre-noise rank:         {:.4}", run.ideal_output);
    println!("DStress released rank:         {:.4}", run.noised_output);
    println!(
        "quantisation bound:            {:.4} (12 fractional bits, {} rounds)",
        program.quantisation_bound(graph.degree_bound()),
        rounds
    );
    println!(
        "sensitivity / epsilon:         {:.3} / 1.0  (Laplace scale {:.3})",
        program.sensitivity(),
        program.sensitivity()
    );
    println!(
        "MPC work: {} AND gates over {} iterations",
        run.phases.computation.counts.and_gates, run.iterations
    );
}
