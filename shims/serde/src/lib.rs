//! Offline shim for `serde` — see `shims/README.md`.
//!
//! Mirrors the name layout of the real crate with the `derive` feature:
//! `serde::Serialize` and `serde::Deserialize` resolve to a trait in the
//! type namespace and a derive macro in the macro namespace.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
