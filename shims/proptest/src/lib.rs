//! Offline shim for `proptest` — see `shims/README.md`.
//!
//! Implements the subset of the proptest 1.x API used by the unit tests in
//! this workspace: the [`proptest!`] macro, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, [`any`], range strategies over the
//! primitive integers and `f64`, [`Strategy::prop_map`],
//! [`array::uniform4`], [`collection::vec`] and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate, by design:
//!
//! * Case generation is **deterministic**: the RNG is seeded from the test
//!   function's name and the case index, so failures always reproduce.
//! * There is **no shrinking** — a failing case panics with the values the
//!   standard `assert!` machinery prints.
//! * `prop_assume!` skips the case instead of drawing a replacement.

/// A small, fast, deterministic RNG (SplitMix64) used to drive strategies.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed a generator directly.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Derive the generator for one test case from the test name.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test-case values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map the produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Types with a canonical "anything goes" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary_value(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_range_strategy!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

/// Array strategies, mirroring `proptest::array`.
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for `[S::Value; 4]`, mirroring `proptest::array::uniform4`.
    pub struct Uniform4<S>(S);

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            [
                self.0.new_value(rng),
                self.0.new_value(rng),
                self.0.new_value(rng),
                self.0.new_value(rng),
            ]
        }
    }

    /// Four independent draws from `strategy`.
    pub fn uniform4<S: Strategy>(strategy: S) -> Uniform4<S> {
        Uniform4(strategy)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A range of collection lengths, mirroring
    /// `proptest::collection::SizeRange`.
    pub struct SizeRange(std::ops::Range<usize>);

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange(*r.start()..r.end().saturating_add(1))
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.0.clone().new_value(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A vector of values from `element` whose length is drawn from `len`
    /// (a `usize` range, e.g. `1..64`).
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }
}

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Mirror of `proptest::proptest!`: expands each property into a `#[test]`
/// function that draws deterministic cases and runs the body per case.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::Strategy::new_value(&($strategy), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Mirror of `prop_assert!` (no shrinking, so it is a plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirror of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Mirror of `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Mirror of `prop_assume!`: skip the current case when the precondition
/// fails (the shim does not draw a replacement case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !$cond {
            continue;
        }
    };
}

/// Mirror of `proptest::prelude`: everything a property-test module needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}
