//! Offline shim for `criterion` — see `shims/README.md`.
//!
//! Implements the subset of the criterion 0.5 API used by the benches in
//! `crates/bench/benches/`: benchmark groups, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros. Each benchmark is
//! warmed up once, then timed for a fixed number of iterations chosen
//! from `sample_size`, and a single `mean / min / max` wall-clock line is
//! printed. No statistics, plots, or HTML reports — swap in the real
//! crate for those.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-implementation of `criterion::black_box` on top of the stable
/// `std::hint` version.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one parameterised benchmark: a function name plus a
/// displayable parameter, rendered as `name/parameter` like criterion does.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Build an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.name, self.parameter)
        }
    }
}

/// The timing callback handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, calling it once per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call.
        black_box(routine());
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark (criterion's
    /// sample count; the shim uses it directly as the iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Ignored; accepted for source compatibility.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark identified by a plain string.
    pub fn bench_function<O, R: FnMut(&mut Bencher) -> O>(
        &mut self,
        id: impl fmt::Display,
        mut routine: R,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, self.sample_size, |b| {
            routine(b);
        });
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I, O, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I) -> O,
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, self.sample_size, |b| {
            routine(b, input);
        });
        self
    }

    /// Finish the group (no-op beyond a trailing blank line).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<O, R: FnMut(&mut Bencher) -> O>(
        &mut self,
        id: &str,
        mut routine: R,
    ) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run_one(id, sample_size, |b| {
            routine(b);
        });
        self
    }

    fn run_one(&mut self, label: &str, iters: usize, mut routine: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iters: iters as u64,
            samples: Vec::with_capacity(iters),
        };
        routine(&mut bencher);
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!(
            "{label:<48} mean {:>12} min {:>12} max {:>12} ({} iters)",
            format_duration(mean),
            format_duration(min),
            format_duration(max),
            samples.len(),
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Mirror of `criterion_group!`: bundles bench functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion_main!`: the entry point for `harness = false`
/// bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
