//! Offline shim for `serde_derive` — see `shims/README.md`.
//!
//! The derives are deliberately no-ops: the workspace only uses
//! `#[derive(Serialize, Deserialize)]` as forward-looking annotations on
//! plain-old-data config structs, and nothing yet consumes the trait
//! bounds. A real serialisation backend arrives with the real crate.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
