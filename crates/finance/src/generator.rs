//! Synthetic financial-network generators.
//!
//! No dataset of real interbank linkages is publicly available — that is
//! the very problem DStress solves — so the paper (Appendix C) evaluates
//! on synthetic networks whose structure follows the empirical literature:
//! a small, densely connected *core* of large institutions surrounded by a
//! *periphery* of smaller banks each linked to one or two core banks
//! (Cocco et al. \[18\]), or a scale-free topology where centrality follows
//! a power law.  This module generates those topologies together with
//! balance sheets that respect a leverage bound `r`, plus shock scenarios
//! that reduce selected banks' assets.

use crate::network::{Exposure, FinancialNetwork};
use dstress_graph::stream::EdgeStream;
use dstress_graph::VertexId;
use dstress_math::rng::{splitmix64_finalize, DetRng};
use dstress_math::Fixed;

/// Parameters of the synthetic-network generators.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeneratorConfig {
    /// Total number of banks.
    pub banks: usize,
    /// Number of core banks (core–periphery generator only).
    pub core_banks: usize,
    /// Public degree bound `D` of the generated graph.
    pub degree_bound: usize,
    /// Cash / external assets of a core bank, in money units.
    pub core_assets: f64,
    /// Cash / external assets of a peripheral bank.
    pub periphery_assets: f64,
    /// Typical size of a core–core exposure.
    pub core_exposure: f64,
    /// Typical size of a core–periphery exposure.
    pub periphery_exposure: f64,
    /// Regulatory leverage bound `r` (equity must be ≥ `r` × assets).
    pub leverage_bound: f64,
    /// Failure threshold as a fraction of a bank's initial valuation.
    pub threshold_fraction: f64,
    /// Failure penalty as a fraction of a bank's initial valuation.
    pub penalty_fraction: f64,
}

impl GeneratorConfig {
    /// The 50-bank two-tier network of Appendix C (10 core banks, the rest
    /// peripheral, each linked to one or two core banks).
    ///
    /// The balance-sheet sizing follows the core–periphery intuition of
    /// Cocco et al.: core banks are large and densely interlinked, but
    /// their equity cushion is thin relative to their interbank book
    /// (deposits owed to the periphery plus core–core exposures), so a
    /// severe shock to several core banks can cascade through the core,
    /// whereas peripheral shocks are absorbed.
    pub fn appendix_c() -> Self {
        GeneratorConfig {
            banks: 50,
            core_banks: 10,
            degree_bound: 20,
            core_assets: 80.0,
            periphery_assets: 25.0,
            core_exposure: 25.0,
            periphery_exposure: 6.0,
            leverage_bound: 0.05,
            threshold_fraction: 0.9,
            penalty_fraction: 0.25,
        }
    }

    /// A small configuration convenient for unit tests and examples.
    pub fn small(banks: usize, degree_bound: usize) -> Self {
        GeneratorConfig {
            banks,
            core_banks: (banks / 5).max(2),
            degree_bound,
            core_assets: 100.0,
            periphery_assets: 25.0,
            core_exposure: 25.0,
            periphery_exposure: 6.0,
            leverage_bound: 0.05,
            threshold_fraction: 0.9,
            penalty_fraction: 0.2,
        }
    }

    /// Debt a core bank owes to each attached peripheral bank ("deposits"),
    /// the asymmetry that makes the core the fragile tier.
    fn deposit_size(&self) -> f64 {
        self.periphery_exposure * 2.5
    }
}

/// Draws an exposure magnitude around `typical` (±10%).
fn jitter(typical: f64, rng: &mut dyn DetRng) -> f64 {
    typical * (0.9 + 0.2 * rng.next_f64())
}

/// Fills in the EGJ-specific balance-sheet fields (initial valuations,
/// thresholds, penalties, holdings) once the topology and debts exist.
fn finish_balance_sheets(net: &mut FinancialNetwork, config: &GeneratorConfig) {
    // Initial valuation: the no-shock, no-penalty EGJ fixpoint
    // value_i = base_i + Σ_j holding(j→i)·value_j, approximated by a few
    // Jacobi sweeps (holdings sum to well under 1, so this converges fast).
    let n = net.bank_count();
    let mut values: Vec<f64> = (0..n)
        .map(|i| net.bank(VertexId(i)).external_assets.to_f64())
        .collect();
    for _ in 0..30 {
        let mut next = vec![0.0; n];
        for (i, slot) in next.iter_mut().enumerate() {
            let v = VertexId(i);
            let mut value = net.bank(v).external_assets.to_f64();
            for &holder in net.graph().in_neighbors(v) {
                // Edge (holder → v) means v holds equity of `holder`.
                let holding = net.exposure(holder, v).holding.to_f64();
                value += holding * values[holder.0];
            }
            *slot = value;
        }
        values = next;
    }
    for (i, &value) in values.iter().enumerate().take(n) {
        let v = VertexId(i);
        let valuation = Fixed::from_f64(value);
        let bank = net.bank_mut(v);
        bank.initial_valuation = valuation;
        bank.threshold = Fixed::from_f64(values[i] * config.threshold_fraction);
        bank.penalty = Fixed::from_f64(values[i] * config.penalty_fraction);
    }
}

/// Generates a core–periphery network in the style of Cocco et al. \[18\]:
/// a densely connected core of large banks and peripheral banks attached
/// to one or two core banks.
pub fn core_periphery(config: &GeneratorConfig, rng: &mut dyn DetRng) -> FinancialNetwork {
    assert!(config.core_banks >= 2 && config.core_banks < config.banks);
    let mut net = FinancialNetwork::new(config.banks, config.degree_bound);

    // Balance sheets: core banks are an order of magnitude larger.
    for i in 0..config.banks {
        let is_core = i < config.core_banks;
        let assets = if is_core {
            jitter(config.core_assets, rng)
        } else {
            jitter(config.periphery_assets, rng)
        };
        let bank = net.bank_mut(VertexId(i));
        bank.cash = Fixed::from_f64(assets);
        bank.external_assets = Fixed::from_f64(assets);
    }

    // Densely connected core: bidirectional debts between most core pairs.
    for a in 0..config.core_banks {
        for b in (a + 1)..config.core_banks {
            if rng.next_f64() < 0.8 {
                let _ = net.add_exposure(
                    VertexId(a),
                    VertexId(b),
                    Exposure {
                        debt: Fixed::from_f64(jitter(config.core_exposure, rng)),
                        holding: Fixed::from_f64(0.05 + 0.05 * rng.next_f64()),
                    },
                );
                let _ = net.add_exposure(
                    VertexId(b),
                    VertexId(a),
                    Exposure {
                        debt: Fixed::from_f64(jitter(config.core_exposure, rng)),
                        holding: Fixed::from_f64(0.05 + 0.05 * rng.next_f64()),
                    },
                );
            }
        }
    }

    // Periphery: each peripheral bank is attached to one or two core banks
    // (spread round-robin so no core bank collects a disproportionate
    // deposit base).  The peripheral bank lends a small loan to the core
    // bank and holds a larger deposit there: the deposits are what make
    // the core tier fragile.
    for p in config.core_banks..config.banks {
        let links = 1 + (rng.next_below(2) as usize);
        for link in 0..links {
            // Spread attachments evenly across the core so no single core
            // bank accumulates a disproportionate deposit base.
            let core = (p + link * 7) % config.core_banks;
            let _ = net.add_exposure(
                VertexId(p),
                VertexId(core),
                Exposure {
                    debt: Fixed::from_f64(jitter(config.periphery_exposure, rng)),
                    holding: Fixed::from_f64(0.02 + 0.03 * rng.next_f64()),
                },
            );
            let _ = net.add_exposure(
                VertexId(core),
                VertexId(p),
                Exposure {
                    debt: Fixed::from_f64(jitter(config.deposit_size(), rng)),
                    holding: Fixed::from_f64(0.02 + 0.03 * rng.next_f64()),
                },
            );
        }
    }

    finish_balance_sheets(&mut net, config);
    net
}

/// Generates a scale-free network by preferential attachment: new banks
/// attach to existing banks with probability proportional to their current
/// degree, so central banks accumulate exponentially more links.
pub fn scale_free(config: &GeneratorConfig, rng: &mut dyn DetRng) -> FinancialNetwork {
    let mut net = FinancialNetwork::new(config.banks, config.degree_bound);
    for i in 0..config.banks {
        let assets = jitter(config.periphery_assets * 2.0, rng);
        let bank = net.bank_mut(VertexId(i));
        bank.cash = Fixed::from_f64(assets);
        bank.external_assets = Fixed::from_f64(assets);
    }

    // Start from a small seed clique.
    let seed = 3.min(config.banks);
    let mut degree = vec![0usize; config.banks];
    for a in 0..seed {
        for b in 0..seed {
            if a != b
                && net
                    .add_exposure(
                        VertexId(a),
                        VertexId(b),
                        Exposure {
                            debt: Fixed::from_f64(jitter(config.periphery_exposure, rng)),
                            holding: Fixed::from_f64(0.05),
                        },
                    )
                    .is_ok()
            {
                degree[a] += 1;
                degree[b] += 1;
            }
        }
    }

    for new in seed..config.banks {
        let attachments = 2.min(new);
        for _ in 0..attachments {
            // Preferential attachment: sample proportionally to degree + 1.
            let total: usize = degree[..new].iter().map(|d| d + 1).sum();
            let mut target = rng.next_below(total as u64) as usize;
            let mut chosen = 0;
            for (i, &d) in degree[..new].iter().enumerate() {
                if target < d + 1 {
                    chosen = i;
                    break;
                }
                target -= d + 1;
            }
            let exposure = Exposure {
                debt: Fixed::from_f64(jitter(config.periphery_exposure, rng)),
                holding: Fixed::from_f64(0.02 + 0.03 * rng.next_f64()),
            };
            if net
                .add_exposure(VertexId(new), VertexId(chosen), exposure)
                .is_ok()
            {
                degree[new] += 1;
                degree[chosen] += 1;
            }
            let back = Exposure {
                debt: Fixed::from_f64(jitter(config.periphery_exposure, rng)),
                holding: Fixed::from_f64(0.02 + 0.03 * rng.next_f64()),
            };
            if net
                .add_exposure(VertexId(chosen), VertexId(new), back)
                .is_ok()
            {
                degree[new] += 1;
                degree[chosen] += 1;
            }
        }
    }

    finish_balance_sheets(&mut net, config);
    net
}

/// Generates an Erdős–Rényi financial network (each ordered pair gets an
/// exposure with probability `p`), used by the microbenchmarks where only
/// the degree matters.
pub fn erdos_renyi_financial(
    config: &GeneratorConfig,
    p: f64,
    rng: &mut dyn DetRng,
) -> FinancialNetwork {
    let mut net = FinancialNetwork::new(config.banks, config.degree_bound);
    for i in 0..config.banks {
        let assets = jitter(config.periphery_assets * 3.0, rng);
        let bank = net.bank_mut(VertexId(i));
        bank.cash = Fixed::from_f64(assets);
        bank.external_assets = Fixed::from_f64(assets);
    }
    for a in 0..config.banks {
        for b in 0..config.banks {
            if a != b && rng.next_f64() < p {
                let _ = net.add_exposure(
                    VertexId(a),
                    VertexId(b),
                    Exposure {
                        debt: Fixed::from_f64(jitter(config.periphery_exposure, rng)),
                        holding: Fixed::from_f64(0.02 + 0.02 * rng.next_f64()),
                    },
                );
            }
        }
    }
    finish_balance_sheets(&mut net, config);
    net
}

/// Parameters of the *streaming* core–periphery topology generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CorePeripheryStreamConfig {
    /// Total number of banks.
    pub banks: usize,
    /// Number of core banks.
    pub core_banks: usize,
    /// Public degree bound `D`; every emitted edge respects it.
    pub degree_bound: usize,
    /// Probability that a core pair is linked (both directions).
    pub core_link_probability: f64,
    /// Seed of the hash-derived coins.
    pub seed: u64,
}

impl CorePeripheryStreamConfig {
    /// A configuration sized for large `banks` under a bounded `D`.
    ///
    /// The core must be big enough that the periphery's ~1.5 loans per
    /// bank fit into the cores' in-capacity next to the core–core links
    /// (`core ≳ 2.2 · banks / D`, with ~√banks as the floor for small
    /// systems), and the core-pair link probability shrinks with the
    /// core so the expected core–core degree stays near `D / 4`.  At
    /// scale a dense 80%-linked core is impossible under a public degree
    /// bound — the density has to fall as the core grows; this keeps the
    /// two-tier shape (big, busy core; sparse periphery) at any size.
    ///
    /// # Panics
    ///
    /// Panics for fewer than 3 banks: a two-tier topology needs at least
    /// a 2-bank core plus one peripheral bank.
    pub fn scaled(banks: usize, degree_bound: usize, seed: u64) -> Self {
        assert!(
            banks >= 3,
            "a core-periphery topology needs at least 3 banks (2 core + 1 periphery)"
        );
        let sqrt_floor = (banks as f64).sqrt().round() as usize;
        let capacity_floor = (2.2 * banks as f64 / degree_bound.max(1) as f64).ceil() as usize;
        let core_banks = sqrt_floor.max(capacity_floor).clamp(2, banks - 1);
        let dense = degree_bound as f64 / (4.0 * core_banks.max(1) as f64);
        CorePeripheryStreamConfig {
            banks,
            core_banks,
            degree_bound,
            core_link_probability: dense.min(0.8),
            seed,
        }
    }
}

/// Emission schedule of [`CorePeripheryStream`].
#[derive(Clone, Copy, Debug)]
enum CpStage {
    /// Deciding core pair `(a, b)`, `a < b`.
    CorePairs { a: usize, b: usize },
    /// Attaching peripheral bank `p`, link number `link`.
    Periphery { p: usize, link: usize },
    /// All edges emitted.
    Done,
}

/// Streaming core–periphery topology in the style of Cocco et al. \[18\]
/// at arbitrary scale: a densely linked core and peripheral banks
/// attached to one or two core banks (a loan toward the core and a
/// deposit back), emitted edge by edge with `O(V)` state.
///
/// Every decision is a pure hash of `(seed, endpoints)`
/// ([`dstress_math::rng::splitmix64_finalize`] chain), so the stream
/// replays identically after [`EdgeStream::restart`] without storing any
/// edges.  Per-vertex degree-capacity counters clamp the topology to the
/// public bound `D`: an attachment whose target is saturated probes the
/// next core bank, and drops the link if the whole core is saturated —
/// the hub-saturation behaviour a bounded-degree deployment actually has.
pub struct CorePeripheryStream {
    config: CorePeripheryStreamConfig,
    out_used: Vec<u32>,
    in_used: Vec<u32>,
    /// Cores already attached by the in-progress peripheral bank.
    chosen: Vec<usize>,
    /// The reverse edge of a bidirectional pair, queued for the next call.
    pending: Option<(usize, usize)>,
    stage: CpStage,
}

/// A uniform coin in `[0, 1)` derived from `(seed, salt, a, b)` by a
/// splitmix64 finalizer chain.
fn hash_coin(seed: u64, salt: u64, a: u64, b: u64) -> f64 {
    let mut h = splitmix64_finalize(seed ^ salt);
    h = splitmix64_finalize(h ^ a);
    h = splitmix64_finalize(h ^ b);
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Domain salts of the stream's hash coins.
const SALT_CORE_PAIR: u64 = 0x636F_7265_7061_6972; // "corepair"
const SALT_LINK_COUNT: u64 = 0x6C69_6E6B_636E_7400; // "linkcnt"

impl CorePeripheryStream {
    /// Creates a stream over the given configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= core_banks < banks`.
    pub fn new(config: CorePeripheryStreamConfig) -> Self {
        assert!(
            config.core_banks >= 2 && config.core_banks < config.banks,
            "need 2 <= core_banks < banks"
        );
        CorePeripheryStream {
            config,
            out_used: vec![0; config.banks],
            in_used: vec![0; config.banks],
            chosen: Vec::new(),
            pending: None,
            stage: CpStage::CorePairs { a: 0, b: 1 },
        }
    }

    /// Whether a directed edge `(from, to)` still fits under the bound.
    fn fits(&self, from: usize, to: usize) -> bool {
        self.out_used[from] < self.config.degree_bound as u32
            && self.in_used[to] < self.config.degree_bound as u32
    }

    fn emit(&mut self, from: usize, to: usize) -> Option<(VertexId, VertexId)> {
        self.out_used[from] += 1;
        self.in_used[to] += 1;
        Some((VertexId(from), VertexId(to)))
    }

    /// Advances `(a, b)` over the upper triangle of the core.
    fn next_core_pair(&self, a: usize, b: usize) -> CpStage {
        let c = self.config.core_banks;
        if b + 1 < c {
            CpStage::CorePairs { a, b: b + 1 }
        } else if a + 2 < c {
            CpStage::CorePairs { a: a + 1, b: a + 2 }
        } else {
            CpStage::Periphery { p: c, link: 0 }
        }
    }
}

impl EdgeStream for CorePeripheryStream {
    fn vertex_count(&self) -> usize {
        self.config.banks
    }

    fn degree_bound(&self) -> usize {
        self.config.degree_bound
    }

    fn next_edge(&mut self) -> Option<(VertexId, VertexId)> {
        if let Some((from, to)) = self.pending.take() {
            if self.fits(from, to) {
                return self.emit(from, to);
            }
        }
        loop {
            match self.stage {
                CpStage::CorePairs { a, b } => {
                    self.stage = self.next_core_pair(a, b);
                    let seed = self.config.seed;
                    let linked = hash_coin(seed, SALT_CORE_PAIR, a as u64, b as u64)
                        < self.config.core_link_probability;
                    if linked {
                        if self.fits(b, a) {
                            self.pending = Some((b, a));
                        }
                        if self.fits(a, b) {
                            return self.emit(a, b);
                        }
                        if let Some((from, to)) = self.pending.take() {
                            return self.emit(from, to);
                        }
                    }
                }
                CpStage::Periphery { p, link } => {
                    if p >= self.config.banks {
                        self.stage = CpStage::Done;
                        return None;
                    }
                    let links = 1
                        + (splitmix64_finalize(self.config.seed ^ SALT_LINK_COUNT ^ p as u64) & 1)
                            as usize;
                    if link >= links {
                        self.stage = CpStage::Periphery { p: p + 1, link: 0 };
                        self.chosen.clear();
                        continue;
                    }
                    self.stage = CpStage::Periphery { p, link: link + 1 };
                    // Spread attachments round-robin over the core,
                    // probing past saturated or repeated cores.
                    let c = self.config.core_banks;
                    let base = (p + link * 7) % c;
                    let mut target = None;
                    for probe in 0..c {
                        let core = (base + probe) % c;
                        if !self.chosen.contains(&core) && self.fits(p, core) {
                            target = Some(core);
                            break;
                        }
                    }
                    let Some(core) = target else {
                        // The whole core is saturated for this bank: the
                        // link is clamped away.
                        continue;
                    };
                    self.chosen.push(core);
                    // Deposit back from the core bank, capacity allowing.
                    if self.fits(core, p) {
                        self.pending = Some((core, p));
                    }
                    return self.emit(p, core);
                }
                CpStage::Done => return None,
            }
        }
    }

    fn restart(&mut self) {
        self.out_used.iter_mut().for_each(|u| *u = 0);
        self.in_used.iter_mut().for_each(|u| *u = 0);
        self.chosen.clear();
        self.pending = None;
        self.stage = CpStage::CorePairs { a: 0, b: 1 };
    }
}

/// Builds a [`FinancialNetwork`] (topology *and* balance sheets) from the
/// streaming core–periphery generator: the graph comes edge by edge from
/// [`CorePeripheryStream`], exposures are sized by tier exactly as
/// [`core_periphery`] sizes them, and the EGJ fields are completed by the
/// same fixpoint sweep.  Intended for end-to-end runs of the streamed
/// topology at sizes where holding exposures is still fine; the
/// topology-only stream is what the scale sweeps feed to the engine.
pub fn core_periphery_streamed(
    stream_config: &CorePeripheryStreamConfig,
    config: &GeneratorConfig,
    rng: &mut dyn DetRng,
) -> FinancialNetwork {
    let mut net = FinancialNetwork::new(stream_config.banks, stream_config.degree_bound);
    let core = stream_config.core_banks;
    for i in 0..stream_config.banks {
        let assets = if i < core {
            jitter(config.core_assets, rng)
        } else {
            jitter(config.periphery_assets, rng)
        };
        let bank = net.bank_mut(VertexId(i));
        bank.cash = Fixed::from_f64(assets);
        bank.external_assets = Fixed::from_f64(assets);
    }
    let mut stream = CorePeripheryStream::new(*stream_config);
    while let Some((from, to)) = stream.next_edge() {
        let debt = if from.0 < core && to.0 < core {
            jitter(config.core_exposure, rng)
        } else if from.0 < core {
            // A core bank's deposit owed to a peripheral bank.
            jitter(config.deposit_size(), rng)
        } else {
            jitter(config.periphery_exposure, rng)
        };
        net.add_exposure(
            from,
            to,
            Exposure {
                debt: Fixed::from_f64(debt),
                holding: Fixed::from_f64(0.02 + 0.03 * rng.next_f64()),
            },
        )
        .expect("stream edges respect the graph invariants");
    }
    finish_balance_sheets(&mut net, config);
    net
}

/// Applies a shock: each bank in `banks` loses `severity` (in `[0, 1]`) of
/// its cash and external assets.
pub fn apply_shock(net: &mut FinancialNetwork, banks: &[VertexId], severity: f64) {
    assert!(
        (0.0..=1.0).contains(&severity),
        "severity must be in [0, 1]"
    );
    let keep = Fixed::from_f64(1.0 - severity);
    for &v in banks {
        let bank = net.bank_mut(v);
        bank.cash = bank.cash * keep;
        bank.external_assets = bank.external_assets * keep;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_math::rng::Xoshiro256;

    #[test]
    fn core_periphery_structure() {
        let config = GeneratorConfig::appendix_c();
        let mut rng = Xoshiro256::new(1);
        let net = core_periphery(&config, &mut rng);
        assert_eq!(net.bank_count(), 50);
        // Core banks are larger and better connected than peripheral ones.
        let core_degree: f64 = (0..10)
            .map(|i| net.graph().out_degree(VertexId(i)) as f64)
            .sum::<f64>()
            / 10.0;
        let periphery_degree: f64 = (10..50)
            .map(|i| net.graph().out_degree(VertexId(i)) as f64)
            .sum::<f64>()
            / 40.0;
        assert!(core_degree > 2.0 * periphery_degree);
        let core_cash = net.bank(VertexId(0)).cash.to_f64();
        let periphery_cash = net.bank(VertexId(40)).cash.to_f64();
        assert!(core_cash > 2.0 * periphery_cash);
        assert!(net.graph().max_degree() <= config.degree_bound);
    }

    #[test]
    fn balance_sheets_are_complete() {
        let config = GeneratorConfig::small(20, 8);
        let mut rng = Xoshiro256::new(2);
        let net = core_periphery(&config, &mut rng);
        for v in net.graph().vertices() {
            let b = net.bank(v);
            assert!(b.cash.to_f64() > 0.0);
            assert!(b.initial_valuation.to_f64() >= b.external_assets.to_f64());
            assert!(b.threshold < b.initial_valuation);
            assert!(b.penalty.to_f64() > 0.0);
        }
        // Values stay within the default circuit encoding range.
        assert!(
            net.max_value().to_f64() < crate::metrics::CircuitParams::default_params().max_value()
        );
    }

    #[test]
    fn generated_networks_respect_leverage() {
        let config = GeneratorConfig::appendix_c();
        let mut rng = Xoshiro256::new(3);
        let net = core_periphery(&config, &mut rng);
        // The un-shocked network is solvent and (almost) every bank meets
        // the configured leverage bound; a couple of violations from edge
        // jitter are tolerated.
        assert!(net.leverage_violations(config.leverage_bound).len() <= 3);
        // And nobody is insolvent before a shock is applied.
        let report = crate::eisenberg_noe::clearing_vector(&net, 50);
        assert!(
            report.total_shortfall < 1e-6,
            "pre-shock TDS = {}",
            report.total_shortfall
        );
    }

    #[test]
    fn scale_free_has_hubs() {
        let config = GeneratorConfig::small(60, 30);
        let mut rng = Xoshiro256::new(4);
        let net = scale_free(&config, &mut rng);
        let degrees: Vec<usize> = net
            .graph()
            .vertices()
            .map(|v| net.graph().out_degree(v) + net.graph().in_degree(v))
            .collect();
        let max = *degrees.iter().max().unwrap();
        let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        assert!(max as f64 > 3.0 * mean, "max {max}, mean {mean}");
    }

    #[test]
    fn erdos_renyi_density() {
        let config = GeneratorConfig::small(30, 30);
        let mut rng = Xoshiro256::new(5);
        let sparse = erdos_renyi_financial(&config, 0.02, &mut rng);
        let dense = erdos_renyi_financial(&config, 0.3, &mut rng);
        assert!(dense.graph().edge_count() > 3 * sparse.graph().edge_count());
    }

    #[test]
    fn shocks_reduce_assets() {
        let config = GeneratorConfig::small(10, 6);
        let mut rng = Xoshiro256::new(6);
        let mut net = core_periphery(&config, &mut rng);
        let before = net.bank(VertexId(0)).cash;
        apply_shock(&mut net, &[VertexId(0)], 0.75);
        let after = net.bank(VertexId(0)).cash;
        assert!((after.to_f64() - before.to_f64() * 0.25).abs() < 1e-6);
        // Unshocked banks are untouched.
        assert_eq!(
            net.bank(VertexId(1)).cash,
            net.bank(VertexId(1)).external_assets
        );
    }

    #[test]
    fn generators_are_deterministic() {
        let config = GeneratorConfig::appendix_c();
        let a = core_periphery(&config, &mut Xoshiro256::new(9));
        let b = core_periphery(&config, &mut Xoshiro256::new(9));
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
        assert_eq!(a.bank(VertexId(7)).cash, b.bank(VertexId(7)).cash);
    }

    fn collect_stream(stream: &mut CorePeripheryStream) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        while let Some((a, b)) = stream.next_edge() {
            edges.push((a.0, b.0));
        }
        edges
    }

    #[test]
    fn streaming_core_periphery_is_deterministic_and_restartable() {
        let config = CorePeripheryStreamConfig::scaled(300, 24, 0xC0C0);
        let mut a = CorePeripheryStream::new(config);
        let mut b = CorePeripheryStream::new(config);
        let edges = collect_stream(&mut a);
        assert_eq!(edges, collect_stream(&mut b));
        a.restart();
        assert_eq!(edges, collect_stream(&mut a), "restart must replay");
        assert!(!edges.is_empty());
        // A different seed changes the topology.
        let other = CorePeripheryStreamConfig::scaled(300, 24, 0xC0C1);
        assert_ne!(edges, collect_stream(&mut CorePeripheryStream::new(other)));
    }

    #[test]
    fn streaming_core_periphery_has_two_tiers_under_the_bound() {
        let config = CorePeripheryStreamConfig::scaled(600, 32, 7);
        let graph =
            dstress_graph::Graph::from_edge_stream(&mut CorePeripheryStream::new(config)).unwrap();
        assert!(graph.is_csr());
        assert_eq!(graph.vertex_count(), 600);
        assert!(graph.max_degree() <= 32, "degree clamp");
        // Core banks are far better connected than peripheral ones.
        let c = config.core_banks;
        let core_degree: f64 = (0..c)
            .map(|i| (graph.out_degree(VertexId(i)) + graph.in_degree(VertexId(i))) as f64)
            .sum::<f64>()
            / c as f64;
        let periphery_degree: f64 = (c..600)
            .map(|i| (graph.out_degree(VertexId(i)) + graph.in_degree(VertexId(i))) as f64)
            .sum::<f64>()
            / (600 - c) as f64;
        assert!(
            core_degree > 2.0 * periphery_degree,
            "core {core_degree}, periphery {periphery_degree}"
        );
        // Every peripheral bank that found capacity lends toward the core.
        let attached = (c..600)
            .filter(|&i| graph.out_degree(VertexId(i)) > 0)
            .count();
        assert!(attached * 10 >= (600 - c) * 9, "attached {attached}");
    }

    #[test]
    fn streamed_network_carries_complete_balance_sheets() {
        let stream_config = CorePeripheryStreamConfig {
            banks: 40,
            core_banks: 6,
            degree_bound: 16,
            core_link_probability: 0.8,
            seed: 5,
        };
        let config = GeneratorConfig::small(40, 16);
        let mut rng = Xoshiro256::new(8);
        let net = core_periphery_streamed(&stream_config, &config, &mut rng);
        assert_eq!(net.bank_count(), 40);
        assert!(net.graph().max_degree() <= 16);
        for v in net.graph().vertices() {
            let b = net.bank(v);
            assert!(b.cash.to_f64() > 0.0);
            assert!(b.initial_valuation.to_f64() >= b.external_assets.to_f64());
            assert!(b.threshold < b.initial_valuation);
        }
        // The exposure tiering matches the materialised generator's shape:
        // core banks are the big ones.
        assert!(net.bank(VertexId(0)).cash.to_f64() > 2.0 * net.bank(VertexId(39)).cash.to_f64());
        // The clearing algorithms accept the streamed network.
        let report = crate::eisenberg_noe::clearing_vector(&net, 30);
        assert!(report.total_shortfall.is_finite());
    }
}
