//! Systemic-risk case study for the DStress reproduction (§4 of the paper).
//!
//! The paper's motivating application is measuring *systemic risk* in a
//! financial network whose edges (interbank debts and equity
//! cross-holdings) are too sensitive to pool in one place.  This crate
//! provides everything that case study needs:
//!
//! * [`network`] — the financial-network data model: banks with balance
//!   sheets, directed exposures (debts and cross-holdings) attached to
//!   graph edges.
//! * [`generator`] — synthetic network generators following the empirical
//!   structure the paper's Appendix C relies on (core–periphery à la
//!   Cocco et al., scale-free, Erdős–Rényi), balance-sheet synthesis under
//!   a leverage bound, and shock scenarios.
//! * [`eisenberg_noe`] — the Eisenberg–Noe clearing model (§4.2): a
//!   classic fixpoint solver, a plaintext vertex program, and the Boolean
//!   circuit encoding executed by the DStress runtime.
//! * [`elliott_golub_jackson`] — the Elliott–Golub–Jackson
//!   cross-holdings model (§4.3) in the same three forms.
//! * [`metrics`] — the Total Dollar Shortfall metric and the sensitivity
//!   bounds of §4.4 (`1/r` for EN, `2/r` for EGJ).
//! * [`monitor`] — the recurring systemic-risk monitor: monthly releases
//!   over one annual budget, full MPC on the cadence months and cheap
//!   PSA distress counts in between.
//! * [`contagion`] — the Appendix C experiments: a 50-bank two-tier
//!   network, absorbed-shock and cascade scenarios, and the empirical
//!   iteration-count analysis behind the `I = log₂ N` rule.
//!
//! ## Example
//!
//! ```
//! use dstress_finance::eisenberg_noe::clearing_vector;
//! use dstress_finance::{core_periphery, GeneratorConfig};
//! use dstress_math::rng::Xoshiro256;
//!
//! // A small core–periphery interbank network with no shock applied:
//! // the clearing vector exists and no bank is in shortfall.
//! let mut rng = Xoshiro256::new(3);
//! let net = core_periphery(&GeneratorConfig::small(8, 3), &mut rng);
//! let report = clearing_vector(&net, net.bank_count() as u32);
//! assert_eq!(report.per_bank.len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contagion;
pub mod eisenberg_noe;
pub mod elliott_golub_jackson;
pub mod generator;
pub mod metrics;
pub mod monitor;
pub mod network;

pub use eisenberg_noe::{EisenbergNoeProgram, EisenbergNoeSecure};
pub use elliott_golub_jackson::{ElliottGolubJacksonProgram, ElliottGolubJacksonSecure};
pub use generator::{
    core_periphery, core_periphery_streamed, erdos_renyi_financial, scale_free,
    CorePeripheryStream, CorePeripheryStreamConfig, GeneratorConfig,
};
pub use metrics::{sensitivity_bound_egj, sensitivity_bound_en, CircuitParams};
pub use monitor::{MonitorRelease, SystemicRiskMonitor};
pub use network::{Bank, Exposure, FinancialNetwork};
