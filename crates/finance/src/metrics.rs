//! Systemic-risk metrics, sensitivity bounds and circuit encoding
//! parameters.
//!
//! The paper measures systemic risk as the **Total Dollar Shortfall**
//! (TDS): the amount of money the government would have to inject to
//! prevent failures (§4.1).  TDS is well suited to dollar-differential
//! privacy because re-allocating `T` dollars in one portfolio changes it
//! by at most a bounded amount: the sensitivity is `1/r` for
//! Eisenberg–Noe and `2/r` for Elliott–Golub–Jackson, where `r` is the
//! regulatory leverage bound (§4.4, citing Hemenway & Khanna).

use dstress_math::Fixed;

/// Fixed-point encoding parameters shared by the circuit forms of the two
/// models.
///
/// Every money value is encoded as an unsigned `word_bits`-bit integer
/// with `frac_bits` fractional bits.  The prototype used 12-bit shares;
/// the reproduction defaults to 16-bit words so that the synthetic
/// networks (whose values are expressed in billions of dollars) fit
/// comfortably.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CircuitParams {
    /// Width of every money word in the circuits.
    pub word_bits: u32,
    /// Number of fractional bits within the word.
    pub frac_bits: u32,
}

impl CircuitParams {
    /// Default parameters: 16-bit words with 5 fractional bits (values up
    /// to 2047 money units with ~0.03-unit resolution).
    pub fn default_params() -> Self {
        CircuitParams {
            word_bits: 16,
            frac_bits: 5,
        }
    }

    /// The largest representable money value.
    pub fn max_value(&self) -> f64 {
        ((1u64 << self.word_bits) - 1) as f64 / (1u64 << self.frac_bits) as f64
    }

    /// Encodes a non-negative [`Fixed`] money value as a circuit word.
    ///
    /// Values are clamped into the representable range; the generators are
    /// expected to produce networks that fit without clamping (checked by
    /// tests via [`crate::FinancialNetwork::max_value`]).
    pub fn encode(&self, value: Fixed) -> u64 {
        let scaled = (value.to_f64() * (1u64 << self.frac_bits) as f64).round();
        let max = ((1u64 << self.word_bits) - 1) as f64;
        scaled.clamp(0.0, max) as u64
    }

    /// Decodes a circuit word back into money units.
    pub fn decode(&self, raw: u64) -> f64 {
        raw as f64 / (1u64 << self.frac_bits) as f64
    }

    /// Encodes the constant one (used for pro-rata fractions).
    pub fn one(&self) -> u64 {
        1u64 << self.frac_bits
    }
}

impl Default for CircuitParams {
    fn default() -> Self {
        CircuitParams::default_params()
    }
}

/// The sensitivity bound of the Eisenberg–Noe total dollar shortfall under
/// dollar-differential privacy: `1/r` for leverage bound `r` (§4.4).
pub fn sensitivity_bound_en(leverage_bound: f64) -> f64 {
    assert!(leverage_bound > 0.0, "leverage bound must be positive");
    1.0 / leverage_bound
}

/// The sensitivity bound of the Elliott–Golub–Jackson total dollar
/// shortfall: `2/r` (§4.4, Hemenway & Khanna).
pub fn sensitivity_bound_egj(leverage_bound: f64) -> f64 {
    assert!(leverage_bound > 0.0, "leverage bound must be positive");
    2.0 / leverage_bound
}

/// Summary of one contagion computation.
#[derive(Clone, Debug, PartialEq)]
pub struct ShortfallReport {
    /// Total dollar shortfall in money units.
    pub total_shortfall: f64,
    /// Number of banks that failed (or fell below their threshold).
    pub failed_banks: usize,
    /// Per-bank shortfalls in money units.
    pub per_bank: Vec<f64>,
}

impl ShortfallReport {
    /// Builds a report from per-bank shortfalls.
    pub fn from_per_bank(per_bank: Vec<f64>) -> Self {
        let total_shortfall = per_bank.iter().sum();
        let failed_banks = per_bank.iter().filter(|&&s| s > 1e-9).count();
        ShortfallReport {
            total_shortfall,
            failed_banks,
            per_bank,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sensitivities() {
        // Basel III leverage bound r = 0.1 (§4.5).
        assert_eq!(sensitivity_bound_en(0.1), 10.0);
        assert_eq!(sensitivity_bound_egj(0.1), 20.0);
        assert!(sensitivity_bound_egj(0.1) > sensitivity_bound_en(0.1));
    }

    #[test]
    #[should_panic(expected = "leverage bound must be positive")]
    fn zero_leverage_panics() {
        let _ = sensitivity_bound_en(0.0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = CircuitParams::default_params();
        for value in [0.0f64, 1.0, 13.25, 512.5, 1000.0] {
            let encoded = p.encode(Fixed::from_f64(value));
            let decoded = p.decode(encoded);
            assert!(
                (decoded - value).abs() <= 1.0 / 32.0,
                "{value} -> {decoded}"
            );
        }
        assert_eq!(p.one(), 32);
        assert!(p.max_value() > 2000.0);
    }

    #[test]
    fn encode_clamps_out_of_range() {
        let p = CircuitParams {
            word_bits: 8,
            frac_bits: 4,
        };
        assert_eq!(p.encode(Fixed::from_int(1_000_000)), 255);
        assert_eq!(p.encode(Fixed::from_int(-5)), 0);
        assert!((p.max_value() - 255.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn shortfall_report_counts_failures() {
        let report = ShortfallReport::from_per_bank(vec![0.0, 12.5, 0.0, 3.5]);
        assert_eq!(report.failed_banks, 2);
        assert!((report.total_shortfall - 16.0).abs() < 1e-9);
        assert_eq!(report.per_bank.len(), 4);
    }
}
