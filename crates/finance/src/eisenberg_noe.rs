//! The Eisenberg–Noe contagion model (§4.2).
//!
//! Banks hold debt contracts against each other; when a bank's liquid
//! reserves plus incoming payments fall short of its total obligations it
//! pays its creditors pro rata, which can push *them* under water in turn.
//! Eisenberg & Noe prove that the resulting clearing-payment vector is
//! unique and is reached after at most `n` rounds of fictitious default.
//!
//! Three implementations are provided, all computing the same Total Dollar
//! Shortfall:
//!
//! * [`clearing_vector`] — the textbook fixpoint solver on the full
//!   network (the "ideal" non-private computation).
//! * [`EisenbergNoeProgram`] — the model as a plaintext vertex program,
//!   exactly the pseudocode of Figure 2(a).
//! * [`EisenbergNoeSecure`] — the same vertex program encoded as Boolean
//!   circuits for execution under the DStress runtime.
//!
//! Tests pin the three against each other; the DStress runtime is pinned
//! against [`dstress_core::execute_plaintext`] of the circuit form.

use crate::metrics::{sensitivity_bound_en, CircuitParams, ShortfallReport};
use crate::network::FinancialNetwork;
use dstress_circuit::builder::{encode_word, CircuitBuilder};
use dstress_circuit::spec::{
    Interval, ProgramInputRef, ProgramSpec, RangePremise, SensitivityModel, WordSpec,
};
use dstress_circuit::Circuit;
use dstress_core::SecureVertexProgram;
use dstress_graph::{Graph, VertexId, VertexProgram};
use dstress_math::Fixed;

/// Computes the Eisenberg–Noe clearing vector by fictitious default and
/// returns the per-bank shortfalls.
///
/// `max_iterations` bounds the fixpoint iteration; the model converges in
/// at most `n` rounds, so passing `net.bank_count()` is always sufficient.
pub fn clearing_vector(net: &FinancialNetwork, max_iterations: u32) -> ShortfallReport {
    let n = net.bank_count();
    let graph = net.graph();
    let total_debt: Vec<f64> = (0..n)
        .map(|i| net.total_debt(VertexId(i)).to_f64())
        .collect();
    let cash: Vec<f64> = (0..n)
        .map(|i| net.bank(VertexId(i)).cash.to_f64())
        .collect();
    // Payments start at full obligations.
    let mut payments = total_debt.clone();
    for _ in 0..max_iterations {
        let mut next = vec![0.0; n];
        for i in 0..n {
            let v = VertexId(i);
            // Incoming payments: every debtor j pays its debt to i scaled by
            // j's current payment ratio.
            let mut incoming = 0.0;
            for &j in graph.in_neighbors(v) {
                let debt = net.exposure(j, v).debt.to_f64();
                let ratio = if total_debt[j.0] > 0.0 {
                    payments[j.0] / total_debt[j.0]
                } else {
                    1.0
                };
                incoming += debt * ratio;
            }
            next[i] = total_debt[i].min(cash[i] + incoming);
        }
        let delta: f64 = next
            .iter()
            .zip(payments.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        payments = next;
        if delta < 1e-9 {
            break;
        }
    }
    let per_bank: Vec<f64> = (0..n)
        .map(|i| (total_debt[i] - payments[i]).max(0.0))
        .collect();
    ShortfallReport::from_per_bank(per_bank)
}

/// Per-vertex state of the plaintext vertex program: the current pro-rata
/// payment fraction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnState {
    /// Fraction of obligations the bank can currently pay, in `[0, 1]`.
    pub prorate: Fixed,
}

/// The Eisenberg–Noe model as a plaintext vertex program (Figure 2(a)).
pub struct EisenbergNoeProgram<'a> {
    /// The financial network being analysed.
    pub network: &'a FinancialNetwork,
    /// Number of iterations to run (`n` suffices; `log₂ n` in practice).
    pub iterations: u32,
    /// Regulatory leverage bound `r`, which determines the sensitivity.
    pub leverage_bound: f64,
}

impl VertexProgram for EisenbergNoeProgram<'_> {
    type State = EnState;
    type Message = Fixed;

    fn init(&self, _v: VertexId) -> EnState {
        EnState {
            prorate: Fixed::ONE,
        }
    }

    fn no_op(&self) -> Fixed {
        Fixed::ZERO
    }

    fn update(&self, v: VertexId, _state: &EnState, incoming: &[(VertexId, Fixed)]) -> EnState {
        let graph = self.network.graph();
        let mut liquid = self.network.bank(v).cash;
        for &j in graph.in_neighbors(v) {
            let credit = self.network.exposure(j, v).debt;
            let shortfall = incoming
                .iter()
                .find(|(from, _)| *from == j)
                .map(|(_, m)| *m)
                .unwrap_or(Fixed::ZERO);
            liquid += credit - shortfall;
        }
        let total_debt = self.network.total_debt(v);
        let prorate = if total_debt.is_zero() || liquid >= total_debt {
            Fixed::ONE
        } else {
            liquid / total_debt
        };
        EnState { prorate }
    }

    fn message(&self, v: VertexId, state: &EnState, to: VertexId) -> Fixed {
        self.network.exposure(v, to).debt * (Fixed::ONE - state.prorate)
    }

    fn aggregate(&self, graph: &Graph, states: &[EnState]) -> f64 {
        graph
            .vertices()
            .map(|v| self.network.total_debt(v).to_f64() * (1.0 - states[v.0].prorate.to_f64()))
            .sum()
    }

    fn iterations(&self) -> u32 {
        self.iterations
    }

    fn sensitivity(&self) -> f64 {
        sensitivity_bound_en(self.leverage_bound)
    }
}

/// The Eisenberg–Noe model as Boolean circuits for the DStress runtime.
///
/// State layout (fixed-point words of `params.word_bits` bits):
/// `[cash, totalDebt, prorate, debts_out[0..D], credits_in[0..D]]`.
/// Messages carry the shortfall amount owed to the receiving creditor.
pub struct EisenbergNoeSecure<'a> {
    /// The financial network being analysed.
    pub network: &'a FinancialNetwork,
    /// Fixed-point encoding parameters.
    pub params: CircuitParams,
    /// Number of iterations to run.
    pub iterations: u32,
    /// Regulatory leverage bound `r`.
    pub leverage_bound: f64,
}

impl EisenbergNoeSecure<'_> {
    fn degree_bound(&self) -> usize {
        self.network.graph().degree_bound()
    }
}

impl SecureVertexProgram for EisenbergNoeSecure<'_> {
    fn state_bits(&self) -> u32 {
        (3 + 2 * self.degree_bound() as u32) * self.params.word_bits
    }

    fn message_bits(&self) -> u32 {
        self.params.word_bits
    }

    fn aggregate_bits(&self) -> u32 {
        32
    }

    fn iterations(&self) -> u32 {
        self.iterations
    }

    fn sensitivity(&self) -> f64 {
        sensitivity_bound_en(self.leverage_bound)
    }

    fn encode_initial_state(&self, graph: &Graph, v: VertexId) -> Vec<bool> {
        let w = self.params.word_bits;
        let d = self.degree_bound();
        let mut bits = Vec::with_capacity(self.state_bits() as usize);
        bits.extend(encode_word(
            self.params.encode(self.network.bank(v).cash),
            w,
        ));
        bits.extend(encode_word(
            self.params.encode(self.network.total_debt(v)),
            w,
        ));
        bits.extend(encode_word(self.params.one(), w)); // prorate = 1
                                                        // Debts to out-neighbours, in slot order, padded with zeros.
        for slot in 0..d {
            let value = graph
                .out_neighbors(v)
                .get(slot)
                .map(|&to| self.params.encode(self.network.exposure(v, to).debt))
                .unwrap_or(0);
            bits.extend(encode_word(value, w));
        }
        // Credits from in-neighbours, in slot order.
        for slot in 0..d {
            let value = graph
                .in_neighbors(v)
                .get(slot)
                .map(|&from| self.params.encode(self.network.exposure(from, v).debt))
                .unwrap_or(0);
            bits.extend(encode_word(value, w));
        }
        bits
    }

    fn update_circuit(&self, degree_bound: usize) -> Circuit {
        let w = self.params.word_bits;
        let f = self.params.frac_bits;
        let mut b = CircuitBuilder::new();

        let cash = b.input_word(w);
        let total_debt = b.input_word(w);
        let _prorate_old = b.input_word(w);
        let debts: Vec<_> = (0..degree_bound).map(|_| b.input_word(w)).collect();
        let credits: Vec<_> = (0..degree_bound).map(|_| b.input_word(w)).collect();
        let messages: Vec<_> = (0..degree_bound).map(|_| b.input_word(w)).collect();

        // liquid = cash + Σ_d (credits[d] - shortfall[d])
        let mut liquid = cash.clone();
        for (credit, msg) in credits.iter().zip(messages.iter()) {
            let received = b.sub(credit, msg);
            liquid = b.add(&liquid, &received);
        }

        // prorate = liquid < totalDebt ? liquid / totalDebt : 1
        let short = b.lt_unsigned(&liquid, &total_debt);
        let ratio = b.div_fixed(&liquid, &total_debt, f);
        let one = b.const_word(1 << f, w);
        let prorate = b.mux_word(short, &ratio, &one);

        // Outgoing shortfalls: debts[d] * (1 - prorate).
        let unpaid_fraction = b.sub(&one, &prorate);
        let outgoing: Vec<_> = debts
            .iter()
            .map(|debt| b.mul_fixed(debt, &unpaid_fraction, f))
            .collect();

        // New state: cash, totalDebt, prorate, debts, credits.
        b.output_word(&cash);
        b.output_word(&total_debt);
        b.output_word(&prorate);
        for debt in &debts {
            b.output_word(debt);
        }
        for credit in &credits {
            b.output_word(credit);
        }
        for out in &outgoing {
            b.output_word(out);
        }
        b.build().expect("builder circuits are well formed")
    }

    fn aggregation_circuit(&self, vertices: usize) -> Circuit {
        let w = self.params.word_bits;
        let f = self.params.frac_bits;
        let d = self.degree_bound();
        let words_per_state = 3 + 2 * d;
        let mut b = CircuitBuilder::new();
        let one = b.const_word(1 << f, w);
        let mut total = b.const_word(0, 32);
        for _ in 0..vertices {
            let state: Vec<_> = (0..words_per_state).map(|_| b.input_word(w)).collect();
            let total_debt = &state[1];
            let prorate = &state[2];
            let unpaid = b.sub(&one, prorate);
            let shortfall = b.mul_fixed(total_debt, &unpaid, f);
            let wide = b.zero_extend(&shortfall, 32);
            total = b.add(&total, &wide);
        }
        b.output_word(&total);
        b.build().expect("builder circuits are well formed")
    }

    fn decode_aggregate(&self, bits: &[bool]) -> f64 {
        self.params
            .decode(dstress_circuit::builder::decode_word(bits))
    }

    fn analysis_spec(&self, degree_bound: usize) -> ProgramSpec {
        let w = self.params.word_bits;
        let one = 1i128 << self.params.frac_bits;
        let net = self.network;
        let graph = net.graph();
        // Per-instance bounds: the analysis certifies *this* network's
        // encoding, so the word ranges come from the live balance sheets.
        let mut cash_hi = 0i128;
        let mut total_debt_hi = 0i128;
        let mut debt_hi = 0i128;
        for v in graph.vertices() {
            cash_hi = cash_hi.max(self.params.encode(net.bank(v).cash) as i128);
            total_debt_hi = total_debt_hi.max(self.params.encode(net.total_debt(v)) as i128);
            for &to in graph.out_neighbors(v) {
                debt_hi = debt_hi.max(self.params.encode(net.exposure(v, to).debt) as i128);
            }
        }
        let mut state_words = vec![
            WordSpec::private("cash", w, Interval::new(0, cash_hi)),
            WordSpec::private("total_debt", w, Interval::new(0, total_debt_hi)),
            WordSpec::private("prorate", w, Interval::new(0, one)),
        ];
        for d in 0..degree_bound {
            state_words.push(WordSpec::private(
                &format!("debt_out[{d}]"),
                w,
                Interval::new(0, debt_hi),
            ));
        }
        for d in 0..degree_bound {
            state_words.push(WordSpec::private(
                &format!("credit_in[{d}]"),
                w,
                Interval::new(0, debt_hi),
            ));
        }
        // A reported shortfall never exceeds the debt it is about:
        // msg[d] = debt · (1 − prorate) ≤ debt = credit_in[d], which the
        // range pass needs to keep `credit − shortfall` non-negative.
        let dominance = (0..degree_bound)
            .map(|d| {
                (
                    ProgramInputRef::State(3 + degree_bound + d),
                    ProgramInputRef::Message(d, 0),
                )
            })
            .collect();
        ProgramSpec {
            name: "eisenberg-noe".to_string(),
            state_words,
            message_words: vec![WordSpec::private("shortfall", w, Interval::new(0, debt_hi))],
            sensitivity_model: SensitivityModel::ExternalLemma {
                lemma: format!(
                    "Hemenway–Khanna (§4.4): under the regulatory leverage bound \
                     r = {}, re-allocating T dollars in one portfolio moves the \
                     Eisenberg–Noe total dollar shortfall by at most T/r, provided \
                     every pro-rata payment fraction stays in [0, 1]",
                    self.leverage_bound
                ),
                premises: vec![RangePremise::StateWordWithin {
                    index: 2,
                    range: Interval::new(0, one),
                }],
            },
            modular: false,
            dominance,
            message_sum_cap: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{apply_shock, core_periphery, GeneratorConfig};
    use dstress_core::execute_plaintext;
    use dstress_graph::execute_reference;
    use dstress_math::rng::Xoshiro256;

    fn shocked_network(seed: u64) -> FinancialNetwork {
        let config = GeneratorConfig::small(12, 8);
        let mut rng = Xoshiro256::new(seed);
        let mut net = core_periphery(&config, &mut rng);
        // Wipe out two core banks' reserves to trigger shortfalls.
        apply_shock(&mut net, &[VertexId(0), VertexId(1)], 0.95);
        net
    }

    #[test]
    fn clearing_vector_no_shock_has_no_shortfall() {
        let config = GeneratorConfig::small(10, 8);
        let mut rng = Xoshiro256::new(3);
        let net = core_periphery(&config, &mut rng);
        let report = clearing_vector(&net, net.bank_count() as u32);
        // Generated banks hold more cash than debt, so everyone pays in full.
        assert!(
            report.total_shortfall < 1e-6,
            "TDS = {}",
            report.total_shortfall
        );
        assert_eq!(report.failed_banks, 0);
    }

    #[test]
    fn shock_creates_shortfall() {
        let net = shocked_network(7);
        let report = clearing_vector(&net, net.bank_count() as u32);
        assert!(
            report.total_shortfall > 1.0,
            "TDS = {}",
            report.total_shortfall
        );
        assert!(report.failed_banks >= 1);
        assert_eq!(report.per_bank.len(), 12);
    }

    #[test]
    fn vertex_program_matches_clearing_vector() {
        let net = shocked_network(11);
        let reference = clearing_vector(&net, 64);
        let program = EisenbergNoeProgram {
            network: &net,
            iterations: net.bank_count() as u32,
            leverage_bound: 0.1,
        };
        let trace = execute_reference(net.graph(), &program);
        assert!(
            (trace.aggregate - reference.total_shortfall).abs() < 0.5,
            "vertex program {} vs clearing vector {}",
            trace.aggregate,
            reference.total_shortfall
        );
    }

    #[test]
    fn circuit_program_matches_vertex_program() {
        let net = shocked_network(13);
        let iterations = 8;
        let plaintext = EisenbergNoeProgram {
            network: &net,
            iterations,
            leverage_bound: 0.1,
        };
        let trace = execute_reference(net.graph(), &plaintext);

        let secure = EisenbergNoeSecure {
            network: &net,
            params: CircuitParams::default_params(),
            iterations,
            leverage_bound: 0.1,
        };
        let circuit_result = execute_plaintext(net.graph(), &secure);
        // The circuit form quantises every value to 1/32 money units and
        // every pro-rata fraction to 1/32, and the error compounds over the
        // iterations; a few percent of slack on the aggregate absorbs it.
        let tolerance = 1.0 + 0.05 * trace.aggregate.abs();
        assert!(
            (circuit_result - trace.aggregate).abs() < tolerance,
            "circuit {} vs plaintext {}",
            circuit_result,
            trace.aggregate
        );
    }

    #[test]
    fn sensitivity_and_widths() {
        let net = shocked_network(1);
        let secure = EisenbergNoeSecure {
            network: &net,
            params: CircuitParams::default_params(),
            iterations: 4,
            leverage_bound: 0.1,
        };
        assert_eq!(secure.sensitivity(), 10.0);
        assert_eq!(secure.message_bits(), 16);
        assert_eq!(secure.state_bits(), (3 + 16) * 16);
        assert_eq!(secure.aggregate_bits(), 32);
        assert_eq!(secure.iterations(), 4);
        // The update circuit accepts exactly state + D messages.
        let circuit = secure.update_circuit(8);
        assert_eq!(circuit.num_inputs() as u32, secure.state_bits() + 8 * 16);
        assert_eq!(circuit.outputs().len() as u32, secure.state_bits() + 8 * 16);
        assert!(circuit.and_gates() > 0);
    }

    #[test]
    fn more_iterations_never_decrease_shortfall_estimate() {
        // The fictitious-default cascade only grows as it propagates, so the
        // TDS estimate is monotone in the iteration count.
        let net = shocked_network(21);
        let run = |iters: u32| {
            let program = EisenbergNoeProgram {
                network: &net,
                iterations: iters,
                leverage_bound: 0.1,
            };
            execute_reference(net.graph(), &program).aggregate
        };
        let short = run(1);
        let medium = run(4);
        let long = run(12);
        assert!(medium >= short - 1e-9);
        assert!(long >= medium - 1e-9);
    }
}
