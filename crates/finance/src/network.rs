//! The financial-network data model.
//!
//! A [`FinancialNetwork`] is a directed graph over banks together with the
//! data the two systemic-risk models need:
//!
//! * every **bank** carries liquid reserves (Eisenberg–Noe), external
//!   "base" assets, a failure threshold, a failure penalty and an original
//!   valuation (Elliott–Golub–Jackson);
//! * every **edge** `(i → j)` carries the debt that `i` owes `j`
//!   (Eisenberg–Noe) and the fraction of `i`'s equity held by `j`
//!   (Elliott–Golub–Jackson).
//!
//! Edge direction equals message-flow direction in the vertex programs:
//! `i` reports its shortfall (EN) or valuation discount (EGJ) to `j`.
//! Money is expressed in abstract units (the generators use "billions of
//! dollars") small enough to fit the fixed-point circuit encodings.

use dstress_graph::{Graph, GraphError, VertexId};
use dstress_math::Fixed;
use std::collections::HashMap;

/// Per-bank balance-sheet data.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bank {
    /// Liquid cash reserves (Eisenberg–Noe).
    pub cash: Fixed,
    /// External (non-interbank) assets (Elliott–Golub–Jackson "base").
    pub external_assets: Fixed,
    /// Failure threshold: below this valuation the bank is distressed.
    pub threshold: Fixed,
    /// Additional value lost when the bank falls below its threshold.
    pub penalty: Fixed,
    /// Pre-shock valuation, used to express discounts.
    pub initial_valuation: Fixed,
}

impl Bank {
    /// A bank with all-zero balance sheet (useful as a placeholder before
    /// the generator fills in values).
    pub fn empty() -> Self {
        Bank {
            cash: Fixed::ZERO,
            external_assets: Fixed::ZERO,
            threshold: Fixed::ZERO,
            penalty: Fixed::ZERO,
            initial_valuation: Fixed::ZERO,
        }
    }
}

/// Per-edge exposure data for the edge `(debtor → creditor)`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Exposure {
    /// Debt owed by the edge's source to its destination (Eisenberg–Noe).
    pub debt: Fixed,
    /// Fraction of the source's equity held by the destination
    /// (Elliott–Golub–Jackson), in `[0, 1]`.
    pub holding: Fixed,
}

/// A directed financial network.
#[derive(Clone, Debug)]
pub struct FinancialNetwork {
    graph: Graph,
    banks: Vec<Bank>,
    exposures: HashMap<(usize, usize), Exposure>,
}

impl FinancialNetwork {
    /// Creates a network with `banks` isolated banks and the given degree
    /// bound.
    pub fn new(banks: usize, degree_bound: usize) -> Self {
        FinancialNetwork {
            graph: Graph::new(banks, degree_bound),
            banks: vec![Bank::empty(); banks],
            exposures: HashMap::new(),
        }
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Balance sheet of a bank.
    pub fn bank(&self, v: VertexId) -> &Bank {
        &self.banks[v.0]
    }

    /// Mutable balance sheet of a bank.
    pub fn bank_mut(&mut self, v: VertexId) -> &mut Bank {
        &mut self.banks[v.0]
    }

    /// Adds an exposure edge from `debtor` to `creditor`.
    ///
    /// # Errors
    ///
    /// Propagates graph errors (degree bound, duplicates, self-loops).
    pub fn add_exposure(
        &mut self,
        debtor: VertexId,
        creditor: VertexId,
        exposure: Exposure,
    ) -> Result<(), GraphError> {
        self.graph.add_edge(debtor, creditor)?;
        self.exposures.insert((debtor.0, creditor.0), exposure);
        Ok(())
    }

    /// The exposure on the edge `(debtor → creditor)`, zero if absent.
    pub fn exposure(&self, debtor: VertexId, creditor: VertexId) -> Exposure {
        self.exposures
            .get(&(debtor.0, creditor.0))
            .copied()
            .unwrap_or_default()
    }

    /// Total debt owed by a bank to all its creditors (the EN `totalDebt`).
    pub fn total_debt(&self, v: VertexId) -> Fixed {
        self.graph
            .out_neighbors(v)
            .iter()
            .fold(Fixed::ZERO, |acc, &to| acc + self.exposure(v, to).debt)
    }

    /// Total claims a bank holds against its debtors (the EN `credits`).
    pub fn total_credits(&self, v: VertexId) -> Fixed {
        self.graph
            .in_neighbors(v)
            .iter()
            .fold(Fixed::ZERO, |acc, &from| acc + self.exposure(from, v).debt)
    }

    /// Total interbank assets plus cash of a bank (a rough "total assets"
    /// figure used to check leverage).
    pub fn total_assets(&self, v: VertexId) -> Fixed {
        self.bank(v).cash + self.total_credits(v)
    }

    /// The largest single value (cash, assets, debts, valuations) in the
    /// network, used to size the fixed-point circuit encoding.
    pub fn max_value(&self) -> Fixed {
        let mut max = Fixed::ZERO;
        for v in self.graph.vertices() {
            let b = self.bank(v);
            for candidate in [
                b.cash,
                b.external_assets,
                b.threshold,
                b.penalty,
                b.initial_valuation,
                self.total_debt(v),
                self.total_assets(v),
            ] {
                max = max.max(candidate);
            }
        }
        max
    }

    /// Checks that every bank satisfies the leverage bound `r`: equity
    /// (total assets minus total debt) must be at least `r` times total
    /// assets.  Returns the ids of the banks that violate it.
    pub fn leverage_violations(&self, r: f64) -> Vec<VertexId> {
        self.graph
            .vertices()
            .filter(|&v| {
                let assets = self.total_assets(v).to_f64();
                let debt = self.total_debt(v).to_f64();
                assets > 0.0 && (assets - debt) < r * assets - 1e-9
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> FinancialNetwork {
        // 0 owes 1, 1 owes 2, 2 owes 0.
        let mut net = FinancialNetwork::new(3, 4);
        for v in 0..3 {
            net.bank_mut(VertexId(v)).cash = Fixed::from_int(100);
        }
        for (a, b, debt) in [(0, 1, 30), (1, 2, 50), (2, 0, 20)] {
            net.add_exposure(
                VertexId(a),
                VertexId(b),
                Exposure {
                    debt: Fixed::from_int(debt),
                    holding: Fixed::from_f64(0.1),
                },
            )
            .unwrap();
        }
        net
    }

    #[test]
    fn exposures_and_totals() {
        let net = triangle();
        assert_eq!(net.bank_count(), 3);
        assert_eq!(
            net.exposure(VertexId(0), VertexId(1)).debt,
            Fixed::from_int(30)
        );
        assert_eq!(net.exposure(VertexId(1), VertexId(0)).debt, Fixed::ZERO);
        assert_eq!(net.total_debt(VertexId(1)), Fixed::from_int(50));
        assert_eq!(net.total_credits(VertexId(1)), Fixed::from_int(30));
        assert_eq!(net.total_assets(VertexId(1)), Fixed::from_int(130));
        assert_eq!(net.graph().edge_count(), 3);
    }

    #[test]
    fn max_value_covers_all_fields() {
        let mut net = triangle();
        // Bank 2 holds cash 100 plus a 50-unit claim on bank 1.
        assert_eq!(net.max_value(), Fixed::from_int(150));
        net.bank_mut(VertexId(2)).initial_valuation = Fixed::from_int(900);
        assert_eq!(net.max_value(), Fixed::from_int(900));
    }

    #[test]
    fn leverage_check() {
        let net = triangle();
        // Bank 1: assets 130, debt 50, equity 80 = 61% of assets: fine at r = 0.1.
        assert!(net.leverage_violations(0.1).is_empty());
        // At r = 0.9 every indebted bank violates.
        assert_eq!(net.leverage_violations(0.9).len(), 3);
    }

    #[test]
    fn graph_errors_propagate() {
        let mut net = FinancialNetwork::new(2, 1);
        net.add_exposure(VertexId(0), VertexId(1), Exposure::default())
            .unwrap();
        assert!(net
            .add_exposure(VertexId(0), VertexId(1), Exposure::default())
            .is_err());
        assert!(net
            .add_exposure(VertexId(1), VertexId(1), Exposure::default())
            .is_err());
    }

    #[test]
    fn empty_bank_is_zeroed() {
        let b = Bank::empty();
        assert!(b.cash.is_zero() && b.penalty.is_zero() && b.initial_valuation.is_zero());
    }
}
