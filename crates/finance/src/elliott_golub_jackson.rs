//! The Elliott–Golub–Jackson contagion model (§4.3).
//!
//! Banks hold equity cross-holdings in each other, so a bank's valuation
//! depends on the valuations of the banks it owns pieces of.  When a
//! valuation drops below a bank-specific threshold the bank is
//! "distressed" and suffers an additional discontinuous penalty, which can
//! drag further banks below their thresholds.  Unlike Eisenberg–Noe the
//! fixpoint is not unique and convergence is only monotone, so the paper
//! runs a bounded number of iterations.
//!
//! As with Eisenberg–Noe, three implementations are provided and tested
//! against each other: a full-network fixpoint solver
//! ([`egj_fixpoint`]), the plaintext vertex program of Figure 2(b)
//! ([`ElliottGolubJacksonProgram`]) and the circuit encoding executed by
//! the DStress runtime ([`ElliottGolubJacksonSecure`]).

use crate::metrics::{sensitivity_bound_egj, CircuitParams, ShortfallReport};
use crate::network::FinancialNetwork;
use dstress_circuit::builder::{encode_word, CircuitBuilder};
use dstress_circuit::spec::{Interval, ProgramSpec, RangePremise, SensitivityModel, WordSpec};
use dstress_circuit::Circuit;
use dstress_core::SecureVertexProgram;
use dstress_graph::{Graph, VertexId, VertexProgram};
use dstress_math::Fixed;

/// Runs the EGJ fixpoint on the full network for `iterations` sweeps and
/// returns the shortfall report (threshold minus valuation for every bank
/// that ends below its threshold).
pub fn egj_fixpoint(net: &FinancialNetwork, iterations: u32) -> ShortfallReport {
    let n = net.bank_count();
    let graph = net.graph();
    let mut values: Vec<f64> = (0..n)
        .map(|i| net.bank(VertexId(i)).initial_valuation.to_f64())
        .collect();
    for _ in 0..iterations {
        let mut next = vec![0.0; n];
        for (i, slot) in next.iter_mut().enumerate() {
            let v = VertexId(i);
            let bank = net.bank(v);
            let mut value = bank.external_assets.to_f64();
            for &j in graph.in_neighbors(v) {
                // Edge (j → v): v holds a fraction of j's equity.
                let holding = net.exposure(j, v).holding.to_f64();
                value += holding * values[j.0];
            }
            if value < bank.threshold.to_f64() {
                value -= bank.penalty.to_f64();
            }
            *slot = value.max(0.0);
        }
        values = next;
    }
    let per_bank: Vec<f64> = (0..n)
        .map(|i| {
            let bank = net.bank(VertexId(i));
            let threshold = bank.threshold.to_f64();
            if values[i] < threshold {
                threshold - values[i]
            } else {
                0.0
            }
        })
        .collect();
    ShortfallReport::from_per_bank(per_bank)
}

/// Per-vertex state of the plaintext vertex program: the bank's current
/// valuation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EgjState {
    /// Current valuation.
    pub value: Fixed,
}

/// The Elliott–Golub–Jackson model as a plaintext vertex program
/// (Figure 2(b)).
pub struct ElliottGolubJacksonProgram<'a> {
    /// The financial network being analysed.
    pub network: &'a FinancialNetwork,
    /// Number of iterations to run.
    pub iterations: u32,
    /// Regulatory leverage bound `r`.
    pub leverage_bound: f64,
}

impl VertexProgram for ElliottGolubJacksonProgram<'_> {
    type State = EgjState;
    type Message = Fixed;

    fn init(&self, v: VertexId) -> EgjState {
        EgjState {
            value: self.network.bank(v).initial_valuation,
        }
    }

    fn no_op(&self) -> Fixed {
        Fixed::ZERO
    }

    fn update(&self, v: VertexId, _state: &EgjState, incoming: &[(VertexId, Fixed)]) -> EgjState {
        let graph = self.network.graph();
        let bank = self.network.bank(v);
        let mut value = bank.external_assets;
        for &j in graph.in_neighbors(v) {
            let holding = self.network.exposure(j, v).holding;
            let discount = incoming
                .iter()
                .find(|(from, _)| *from == j)
                .map(|(_, m)| *m)
                .unwrap_or(Fixed::ZERO);
            let neighbor_value = (Fixed::ONE - discount) * self.network.bank(j).initial_valuation;
            value += holding * neighbor_value;
        }
        if value < bank.threshold {
            value -= bank.penalty;
        }
        EgjState {
            value: value.max(Fixed::ZERO),
        }
    }

    fn message(&self, v: VertexId, state: &EgjState, _to: VertexId) -> Fixed {
        let orig = self.network.bank(v).initial_valuation;
        if orig.is_zero() || state.value >= orig {
            Fixed::ZERO
        } else {
            Fixed::ONE - state.value / orig
        }
    }

    fn aggregate(&self, graph: &Graph, states: &[EgjState]) -> f64 {
        graph
            .vertices()
            .map(|v| {
                let threshold = self.network.bank(v).threshold.to_f64();
                let value = states[v.0].value.to_f64();
                if value < threshold {
                    threshold - value
                } else {
                    0.0
                }
            })
            .sum()
    }

    fn iterations(&self) -> u32 {
        self.iterations
    }

    fn sensitivity(&self) -> f64 {
        sensitivity_bound_egj(self.leverage_bound)
    }
}

/// The Elliott–Golub–Jackson model as Boolean circuits for the DStress
/// runtime.
///
/// State layout (fixed-point words of `params.word_bits` bits):
/// `[base, origVal, value, threshold, penalty,
///   holdings_in[0..D], neighborOrigVal_in[0..D]]`.
/// Messages carry the sender's valuation discount in `[0, 1]`.
pub struct ElliottGolubJacksonSecure<'a> {
    /// The financial network being analysed.
    pub network: &'a FinancialNetwork,
    /// Fixed-point encoding parameters.
    pub params: CircuitParams,
    /// Number of iterations to run.
    pub iterations: u32,
    /// Regulatory leverage bound `r`.
    pub leverage_bound: f64,
}

impl ElliottGolubJacksonSecure<'_> {
    fn degree_bound(&self) -> usize {
        self.network.graph().degree_bound()
    }
}

impl SecureVertexProgram for ElliottGolubJacksonSecure<'_> {
    fn state_bits(&self) -> u32 {
        (5 + 2 * self.degree_bound() as u32) * self.params.word_bits
    }

    fn message_bits(&self) -> u32 {
        self.params.word_bits
    }

    fn aggregate_bits(&self) -> u32 {
        32
    }

    fn iterations(&self) -> u32 {
        self.iterations
    }

    fn sensitivity(&self) -> f64 {
        sensitivity_bound_egj(self.leverage_bound)
    }

    fn encode_initial_state(&self, graph: &Graph, v: VertexId) -> Vec<bool> {
        let w = self.params.word_bits;
        let d = self.degree_bound();
        let bank = self.network.bank(v);
        let mut bits = Vec::with_capacity(self.state_bits() as usize);
        bits.extend(encode_word(self.params.encode(bank.external_assets), w));
        bits.extend(encode_word(self.params.encode(bank.initial_valuation), w));
        bits.extend(encode_word(self.params.encode(bank.initial_valuation), w)); // value
        bits.extend(encode_word(self.params.encode(bank.threshold), w));
        bits.extend(encode_word(self.params.encode(bank.penalty), w));
        // Holdings of in-neighbours' equity, in slot order.
        for slot in 0..d {
            let value = graph
                .in_neighbors(v)
                .get(slot)
                .map(|&from| self.params.encode(self.network.exposure(from, v).holding))
                .unwrap_or(0);
            bits.extend(encode_word(value, w));
        }
        // In-neighbours' original valuations, in slot order.
        for slot in 0..d {
            let value = graph
                .in_neighbors(v)
                .get(slot)
                .map(|&from| {
                    self.params
                        .encode(self.network.bank(from).initial_valuation)
                })
                .unwrap_or(0);
            bits.extend(encode_word(value, w));
        }
        bits
    }

    fn update_circuit(&self, degree_bound: usize) -> Circuit {
        let w = self.params.word_bits;
        let f = self.params.frac_bits;
        let mut b = CircuitBuilder::new();

        let base = b.input_word(w);
        let orig_val = b.input_word(w);
        let _value_old = b.input_word(w);
        let threshold = b.input_word(w);
        let penalty = b.input_word(w);
        let holdings: Vec<_> = (0..degree_bound).map(|_| b.input_word(w)).collect();
        let neighbor_orig: Vec<_> = (0..degree_bound).map(|_| b.input_word(w)).collect();
        let messages: Vec<_> = (0..degree_bound).map(|_| b.input_word(w)).collect();

        let one = b.const_word(1 << f, w);
        let zero = b.const_word(0, w);

        // value = base + Σ_d holdings[d] · (1 − discount[d]) · neighborOrig[d]
        let mut value = base.clone();
        for ((holding, orig), msg) in holdings
            .iter()
            .zip(neighbor_orig.iter())
            .zip(messages.iter())
        {
            let kept = b.sub(&one, msg);
            let neighbor_value = b.mul_fixed(&kept, orig, f);
            let contribution = b.mul_fixed(holding, &neighbor_value, f);
            value = b.add(&value, &contribution);
        }

        // If value < threshold, subtract the penalty (floored at zero).
        let distressed = b.lt_unsigned(&value, &threshold);
        let can_pay = b.lt_unsigned(&value, &penalty);
        let after_penalty_raw = b.sub(&value, &penalty);
        let after_penalty = b.mux_word(can_pay, &zero, &after_penalty_raw);
        let new_value = b.mux_word(distressed, &after_penalty, &value);

        // Outgoing discount: clamp(1 − value / origVal, 0, 1).
        let ratio = b.div_fixed(&new_value, &orig_val, f);
        let healthy = b.lt_unsigned(&one, &ratio);
        let at_par = b.eq_word(&one, &ratio);
        let no_discount = b.or(healthy, at_par);
        let discount_raw = b.sub(&one, &ratio);
        let discount = b.mux_word(no_discount, &zero, &discount_raw);

        // New state: base, origVal, value, threshold, penalty, holdings,
        // neighbour originals.
        b.output_word(&base);
        b.output_word(&orig_val);
        b.output_word(&new_value);
        b.output_word(&threshold);
        b.output_word(&penalty);
        for h in &holdings {
            b.output_word(h);
        }
        for o in &neighbor_orig {
            b.output_word(o);
        }
        for _ in 0..degree_bound {
            b.output_word(&discount);
        }
        b.build().expect("builder circuits are well formed")
    }

    fn aggregation_circuit(&self, vertices: usize) -> Circuit {
        let w = self.params.word_bits;
        let d = self.degree_bound();
        let words_per_state = 5 + 2 * d;
        let mut b = CircuitBuilder::new();
        let mut total = b.const_word(0, 32);
        let zero = b.const_word(0, w);
        for _ in 0..vertices {
            let state: Vec<_> = (0..words_per_state).map(|_| b.input_word(w)).collect();
            let value = &state[2];
            let threshold = &state[3];
            let below = b.lt_unsigned(value, threshold);
            let gap = b.sub(threshold, value);
            let shortfall = b.mux_word(below, &gap, &zero);
            let wide = b.zero_extend(&shortfall, 32);
            total = b.add(&total, &wide);
        }
        b.output_word(&total);
        b.build().expect("builder circuits are well formed")
    }

    fn decode_aggregate(&self, bits: &[bool]) -> f64 {
        self.params
            .decode(dstress_circuit::builder::decode_word(bits))
    }

    fn analysis_spec(&self, degree_bound: usize) -> ProgramSpec {
        let w = self.params.word_bits;
        let f = self.params.frac_bits;
        let one = 1i128 << f;
        let net = self.network;
        let graph = net.graph();
        let mut base_hi = 0i128;
        let mut orig_hi = 0i128;
        let mut threshold_hi = 0i128;
        let mut penalty_hi = 0i128;
        let mut holding_hi = 0i128;
        for v in graph.vertices() {
            let bank = net.bank(v);
            base_hi = base_hi.max(self.params.encode(bank.external_assets) as i128);
            orig_hi = orig_hi.max(self.params.encode(bank.initial_valuation) as i128);
            threshold_hi = threshold_hi.max(self.params.encode(bank.threshold) as i128);
            penalty_hi = penalty_hi.max(self.params.encode(bank.penalty) as i128);
            for &to in graph.out_neighbors(v) {
                holding_hi =
                    holding_hi.max(self.params.encode(net.exposure(v, to).holding) as i128);
            }
        }
        // A valuation starts at origVal and is re-derived every round as
        // base + Σ_d holding·(1 − discount)·neighborOrig, each product
        // truncated at `f` fractional bits.
        let contribution_hi = (holding_hi * orig_hi) >> f;
        let value_hi = orig_hi.max(base_hi + degree_bound as i128 * contribution_hi);
        let mut state_words = vec![
            WordSpec::private("base", w, Interval::new(0, base_hi)),
            WordSpec::private("orig_val", w, Interval::new(0, orig_hi)),
            WordSpec::private("value", w, Interval::new(0, value_hi)),
            WordSpec::private("threshold", w, Interval::new(0, threshold_hi)),
            WordSpec::private("penalty", w, Interval::new(0, penalty_hi)),
        ];
        for d in 0..degree_bound {
            state_words.push(WordSpec::private(
                &format!("holding_in[{d}]"),
                w,
                Interval::new(0, holding_hi),
            ));
        }
        for d in 0..degree_bound {
            state_words.push(WordSpec::private(
                &format!("neighbor_orig[{d}]"),
                w,
                Interval::new(0, orig_hi),
            ));
        }
        ProgramSpec {
            name: "elliott-golub-jackson".to_string(),
            state_words,
            message_words: vec![WordSpec::private("discount", w, Interval::new(0, one))],
            sensitivity_model: SensitivityModel::ExternalLemma {
                lemma: format!(
                    "Hemenway–Khanna (§4.4): under the regulatory leverage bound \
                     r = {}, re-allocating T dollars moves the \
                     Elliott–Golub–Jackson total dollar shortfall by at most \
                     2T/r, provided every reported valuation discount stays in \
                     [0, 1]",
                    self.leverage_bound
                ),
                premises: vec![RangePremise::MessagesWithin {
                    range: Interval::new(0, one),
                }],
            },
            modular: false,
            dominance: Vec::new(),
            message_sum_cap: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{apply_shock, core_periphery, GeneratorConfig};
    use dstress_core::execute_plaintext;
    use dstress_graph::execute_reference;
    use dstress_math::rng::Xoshiro256;

    fn shocked_network(seed: u64, severity: f64) -> FinancialNetwork {
        let config = GeneratorConfig::small(12, 8);
        let mut rng = Xoshiro256::new(seed);
        let mut net = core_periphery(&config, &mut rng);
        apply_shock(&mut net, &[VertexId(0), VertexId(1)], severity);
        net
    }

    #[test]
    fn no_shock_means_no_distress() {
        let config = GeneratorConfig::small(10, 8);
        let mut rng = Xoshiro256::new(2);
        let net = core_periphery(&config, &mut rng);
        let report = egj_fixpoint(&net, 20);
        assert!(
            report.total_shortfall < 1e-6,
            "TDS = {}",
            report.total_shortfall
        );
    }

    #[test]
    fn severe_shock_causes_distress() {
        let net = shocked_network(5, 0.9);
        let report = egj_fixpoint(&net, 20);
        assert!(
            report.total_shortfall > 1.0,
            "TDS = {}",
            report.total_shortfall
        );
        assert!(report.failed_banks >= 1);
    }

    #[test]
    fn vertex_program_matches_fixpoint() {
        let net = shocked_network(9, 0.9);
        let iterations = 16;
        let reference = egj_fixpoint(&net, iterations);
        let program = ElliottGolubJacksonProgram {
            network: &net,
            iterations,
            leverage_bound: 0.1,
        };
        let trace = execute_reference(net.graph(), &program);
        assert!(
            (trace.aggregate - reference.total_shortfall).abs()
                < 0.05 * (1.0 + reference.total_shortfall),
            "vertex program {} vs fixpoint {}",
            trace.aggregate,
            reference.total_shortfall
        );
    }

    #[test]
    fn circuit_program_matches_vertex_program() {
        let net = shocked_network(15, 0.9);
        let iterations = 8;
        let plaintext = ElliottGolubJacksonProgram {
            network: &net,
            iterations,
            leverage_bound: 0.1,
        };
        let trace = execute_reference(net.graph(), &plaintext);
        let secure = ElliottGolubJacksonSecure {
            network: &net,
            params: CircuitParams::default_params(),
            iterations,
            leverage_bound: 0.1,
        };
        let circuit_result = execute_plaintext(net.graph(), &secure);
        let tolerance = 2.0 + 0.05 * trace.aggregate.abs();
        assert!(
            (circuit_result - trace.aggregate).abs() < tolerance,
            "circuit {} vs plaintext {}",
            circuit_result,
            trace.aggregate
        );
    }

    #[test]
    fn convergence_is_monotone() {
        // §4.3: the EGJ iteration converges monotonically (valuations only
        // fall), so the reported shortfall is non-decreasing in the number
        // of iterations.
        let net = shocked_network(23, 0.85);
        let mut last = -1.0;
        for iterations in [1u32, 2, 4, 8, 16] {
            let tds = egj_fixpoint(&net, iterations).total_shortfall;
            assert!(tds >= last - 1e-9, "TDS decreased: {last} -> {tds}");
            last = tds;
        }
    }

    #[test]
    fn sensitivity_and_widths() {
        let net = shocked_network(1, 0.5);
        let secure = ElliottGolubJacksonSecure {
            network: &net,
            params: CircuitParams::default_params(),
            iterations: 4,
            leverage_bound: 0.1,
        };
        assert_eq!(secure.sensitivity(), 20.0);
        assert_eq!(secure.state_bits(), (5 + 16) * 16);
        assert_eq!(secure.message_bits(), 16);
        let circuit = secure.update_circuit(8);
        assert_eq!(circuit.num_inputs() as u32, secure.state_bits() + 8 * 16);
        assert_eq!(circuit.outputs().len() as u32, secure.state_bits() + 8 * 16);
        // EGJ's update does two fixed-point multiplications per neighbour,
        // so it is costlier than Eisenberg–Noe's single one (visible in
        // Figure 3 of the paper).
        let en = crate::eisenberg_noe::EisenbergNoeSecure {
            network: &net,
            params: CircuitParams::default_params(),
            iterations: 4,
            leverage_bound: 0.1,
        };
        assert!(circuit.and_gates() > en.update_circuit(8).and_gates());
    }
}
