//! The Appendix C contagion experiments.
//!
//! The paper estimates how many iterations the vertex programs need by
//! simulating contagion on a stylised 50-bank two-tier network (10 densely
//! interconnected core banks, 40 peripheral banks linked to one or two
//! core banks).  Two scenarios are studied: a shock to a set of regional
//! banks that the core absorbs, and a shock severe enough to take down the
//! entire core.  The observation is that shocks either escalate rapidly or
//! not at all, and that `I = log₂ N` iterations are enough for the cascade
//! to reach its final extent.

use crate::eisenberg_noe::clearing_vector;
use crate::elliott_golub_jackson::egj_fixpoint;
use crate::generator::{apply_shock, core_periphery, GeneratorConfig};
use crate::metrics::ShortfallReport;
use crate::network::FinancialNetwork;
use dstress_graph::VertexId;
use dstress_math::rng::DetRng;

/// Which contagion model a scenario is evaluated under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContagionModel {
    /// Eisenberg–Noe debt clearing.
    EisenbergNoe,
    /// Elliott–Golub–Jackson cross-holdings.
    ElliottGolubJackson,
}

/// The outcome of one contagion scenario.
#[derive(Clone, Debug)]
pub struct ContagionOutcome {
    /// Shortfall report at convergence.
    pub report: ShortfallReport,
    /// Iterations until the cascade reached its final extent (the set of
    /// failed banks stopped growing and the shortfall was within 1% of its
    /// limiting value).
    pub iterations_to_converge: u32,
    /// Whether the shock spread beyond the directly shocked banks.
    pub cascaded: bool,
}

/// The set of banks with a positive shortfall in a report.
fn failed_set(report: &ShortfallReport) -> Vec<usize> {
    report
        .per_bank
        .iter()
        .enumerate()
        .filter(|(_, &s)| s > 1e-6)
        .map(|(i, _)| i)
        .collect()
}

/// Builds the Appendix C two-tier network.
pub fn appendix_c_network(rng: &mut dyn DetRng) -> FinancialNetwork {
    core_periphery(&GeneratorConfig::appendix_c(), rng)
}

/// Runs a model on a network at increasing iteration counts and reports
/// the converged outcome.
pub fn run_contagion(
    net: &FinancialNetwork,
    model: ContagionModel,
    shocked: &[VertexId],
    max_iterations: u32,
) -> ContagionOutcome {
    let evaluate = |iterations: u32| -> ShortfallReport {
        match model {
            ContagionModel::EisenbergNoe => clearing_vector(net, iterations),
            ContagionModel::ElliottGolubJackson => egj_fixpoint(net, iterations),
        }
    };
    let final_report = evaluate(max_iterations);
    let final_failed = failed_set(&final_report);
    let mut iterations_to_converge = max_iterations;
    for iterations in 1..=max_iterations {
        let report = evaluate(iterations);
        // "Converged" means the cascade has reached its final extent: the
        // same set of banks has failed as in the limit, and the total
        // shortfall is within a few percent of its limiting value (the
        // geometric tail after that does not change who failed).
        if failed_set(&report) == final_failed
            && (report.total_shortfall - final_report.total_shortfall).abs()
                < 5e-2 * (1.0 + final_report.total_shortfall)
        {
            iterations_to_converge = iterations;
            break;
        }
    }
    let shocked_set: Vec<usize> = shocked.iter().map(|v| v.0).collect();
    let cascaded = final_report
        .per_bank
        .iter()
        .enumerate()
        .any(|(i, &s)| s > 1e-6 && !shocked_set.contains(&i));
    ContagionOutcome {
        report: final_report,
        iterations_to_converge,
        cascaded,
    }
}

/// The "absorbed shock" scenario: a handful of peripheral banks lose most
/// of their assets; the core is large enough to absorb the losses.
pub fn absorbed_shock_scenario(
    rng: &mut dyn DetRng,
    model: ContagionModel,
) -> (FinancialNetwork, ContagionOutcome) {
    let mut net = appendix_c_network(rng);
    let shocked: Vec<VertexId> = (45..50).map(VertexId).collect();
    apply_shock(&mut net, &shocked, 0.9);
    let outcome = run_contagion(&net, model, &shocked, 50);
    (net, outcome)
}

/// The "cascade" scenario: most of the core loses almost all of its
/// assets, dragging the remaining core banks (and parts of the periphery)
/// below water.
pub fn cascade_scenario(
    rng: &mut dyn DetRng,
    model: ContagionModel,
) -> (FinancialNetwork, ContagionOutcome) {
    let mut net = appendix_c_network(rng);
    let shocked: Vec<VertexId> = (0..7).map(VertexId).collect();
    apply_shock(&mut net, &shocked, 0.99);
    let outcome = run_contagion(&net, model, &shocked, 50);
    (net, outcome)
}

/// The iteration-count rule the paper derives from these simulations:
/// `I = ceil(log₂ N)`.
pub fn recommended_iterations(banks: usize) -> u32 {
    (banks.max(2) as f64).log2().ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_math::rng::Xoshiro256;

    #[test]
    fn absorbed_shock_stays_contained() {
        let mut rng = Xoshiro256::new(0xA55);
        let (_, outcome) = absorbed_shock_scenario(&mut rng, ContagionModel::EisenbergNoe);
        // Peripheral shortfalls exist but the core does not fail: fewer
        // than a quarter of the banks are affected.
        assert!(
            outcome.report.failed_banks <= 12,
            "failed = {}",
            outcome.report.failed_banks
        );
        // Either way the damage is bounded: far less than a core collapse.
        let mut rng = Xoshiro256::new(0xA55);
        let (_, cascade) = cascade_scenario(&mut rng, ContagionModel::EisenbergNoe);
        assert!(cascade.report.total_shortfall > 2.0 * outcome.report.total_shortfall);
    }

    #[test]
    fn cascade_spreads_beyond_shocked_banks() {
        let mut rng = Xoshiro256::new(0xCA5);
        let (_, outcome) = cascade_scenario(&mut rng, ContagionModel::EisenbergNoe);
        assert!(outcome.cascaded, "core shock should propagate");
        assert!(
            outcome.report.failed_banks > 7,
            "failed = {}",
            outcome.report.failed_banks
        );
        assert!(outcome.report.total_shortfall > 100.0);
    }

    #[test]
    fn egj_scenarios_follow_same_pattern() {
        let mut rng = Xoshiro256::new(0xE6);
        let (_, absorbed) = absorbed_shock_scenario(&mut rng, ContagionModel::ElliottGolubJackson);
        let mut rng = Xoshiro256::new(0xE6);
        let (_, cascade) = cascade_scenario(&mut rng, ContagionModel::ElliottGolubJackson);
        assert!(cascade.report.total_shortfall > absorbed.report.total_shortfall);
        assert!(cascade.report.failed_banks >= absorbed.report.failed_banks);
    }

    #[test]
    fn convergence_within_log2_n_iterations() {
        // The Appendix C claim: log2(N) iterations suffice for the cascade
        // to reach its final extent on two-tier networks.
        for seed in [1u64, 2, 3] {
            let mut rng = Xoshiro256::new(seed);
            let (net, outcome) = cascade_scenario(&mut rng, ContagionModel::EisenbergNoe);
            let bound = recommended_iterations(net.bank_count());
            assert!(
                outcome.iterations_to_converge <= bound + 2,
                "seed {seed}: converged in {} iterations, bound {bound}",
                outcome.iterations_to_converge
            );
        }
    }

    #[test]
    fn recommended_iterations_matches_paper() {
        assert_eq!(recommended_iterations(50), 6);
        assert_eq!(recommended_iterations(100), 7);
        assert_eq!(recommended_iterations(1750), 11);
    }
}
