//! The recurring systemic-risk monitor.
//!
//! The paper frames the systemic-risk computation as a *periodic*
//! obligation: regulators want the stress picture refreshed continually,
//! while the banks' annual privacy budget (§4.5, ε_max = ln 2) caps how
//! much can be released per year.  [`SystemicRiskMonitor`] operationalises
//! that as a monthly publication schedule over one shared
//! [`ReleaseSchedule`]:
//!
//! * on **full months** (every `full_cadence`-th release) the monitor runs
//!   the complete MPC pipeline — the Eisenberg–Noe Total Dollar Shortfall
//!   under GMW, transfer protocol and Laplace release;
//! * on **interim months** it publishes a cheap PSA release instead: every
//!   bank reports a locally-computable distress flag (liquid assets below
//!   the failure threshold — the bank's own balance sheet only, no
//!   interbank data), and the aggregator decrypts the geometric-noised
//!   *count of locally stressed banks* without any MPC.
//!
//! Both paths charge the same accountant, so ε composes across the whole
//! year and the schedule refuses month K + 1 once the budget is spent —
//! until [`SystemicRiskMonitor::replenish_annual`] models the yearly
//! reset.  The two statistics differ (network-cleared shortfall vs local
//! distress count); the monitor's point is budget-aware cadence, with the
//! expensive faithful number published sparingly and a cheap leading
//! indicator in between.

use crate::eisenberg_noe::EisenbergNoeSecure;
use crate::metrics::CircuitParams;
use crate::network::FinancialNetwork;
use dstress_core::config::DStressConfig;
use dstress_core::schedule::{ReleaseMode, ReleaseSchedule, ScheduleError};
use dstress_crypto::group::Group;
use dstress_dp::psa::PsaSystem;
use dstress_dp::BudgetAccountant;
use dstress_math::rng::DetRng;

/// One published monitor value.
#[derive(Clone, Debug)]
pub struct MonitorRelease {
    /// The month index the release was published for.
    pub month: u32,
    /// The released (noisy) value: Total Dollar Shortfall on full months,
    /// locally-stressed bank count on interim months.
    pub value: f64,
    /// Which pipeline produced it.
    pub mode: ReleaseMode,
}

/// A monthly systemic-risk publication schedule over one privacy budget.
pub struct SystemicRiskMonitor<'a> {
    network: &'a FinancialNetwork,
    config: DStressConfig,
    schedule: ReleaseSchedule,
    psa: PsaSystem,
    params: CircuitParams,
    iterations: u32,
    leverage_bound: f64,
    full_cadence: u32,
}

impl<'a> SystemicRiskMonitor<'a> {
    /// Creates the monitor.
    ///
    /// `accountant` is the year's budget; `epsilon_per_release` is spent on
    /// every monthly release, full or interim; every `full_cadence`-th
    /// month (starting with month 0) runs the full MPC pipeline.
    pub fn new(
        network: &'a FinancialNetwork,
        config: DStressConfig,
        accountant: BudgetAccountant,
        epsilon_per_release: f64,
        full_cadence: u32,
        leverage_bound: f64,
        rng: &mut dyn DetRng,
    ) -> Self {
        let banks = network.bank_count();
        // Distress flags are 0/1 with sensitivity 1 (one bank's balance
        // sheet moves one flag).
        let psa = PsaSystem::setup(
            Group::new(config.group),
            banks,
            epsilon_per_release,
            1.0,
            1,
            rng,
        );
        let iterations = (banks as f64).log2().ceil().max(1.0) as u32;
        SystemicRiskMonitor {
            network,
            config,
            schedule: ReleaseSchedule::new(accountant, epsilon_per_release),
            psa,
            params: CircuitParams::default_params(),
            iterations,
            leverage_bound,
            full_cadence: full_cadence.max(1),
        }
    }

    /// The underlying schedule (budget state, audit trail).
    pub fn schedule(&self) -> &ReleaseSchedule {
        &self.schedule
    }

    /// Whether `month` is a full-MPC month under the cadence.
    pub fn is_full_month(&self, month: u32) -> bool {
        month % self.full_cadence == 0
    }

    /// Each bank's locally-computable distress flag: 1 when its liquid
    /// assets (cash + external) sit below the failure threshold.
    fn distress_flags(&self) -> Vec<u64> {
        self.network
            .graph()
            .vertices()
            .map(|v| {
                let bank = self.network.bank(v);
                let liquid = bank.cash.saturating_add(bank.external_assets);
                u64::from(liquid < bank.threshold)
            })
            .collect()
    }

    /// Publishes month `month`, charging the shared budget.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Budget`] once the year's budget is exhausted
    /// (nothing runs); pipeline failures propagate as the other variants.
    pub fn publish_month(
        &mut self,
        month: u32,
        rng: &mut dyn DetRng,
    ) -> Result<MonitorRelease, ScheduleError> {
        let label = format!("systemic-risk month {month}");
        let (value, mode) = if self.is_full_month(month) {
            let program = EisenbergNoeSecure {
                network: self.network,
                params: self.params,
                iterations: self.iterations,
                leverage_bound: self.leverage_bound,
            };
            let value =
                self.schedule
                    .release_full(&self.config, self.network.graph(), &program, &label)?;
            (value, ReleaseMode::FullMpc)
        } else {
            let flags = self.distress_flags();
            let value = self.schedule.release_psa(&self.psa, &flags, &label, rng)?;
            (value, ReleaseMode::Psa)
        };
        Ok(MonitorRelease { month, value, mode })
    }

    /// The §4.5 annual budget reset.
    pub fn replenish_annual(&mut self) {
        self.schedule.replenish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{core_periphery, GeneratorConfig};
    use dstress_core::TransferMode;
    use dstress_dp::BudgetError;
    use dstress_math::rng::Xoshiro256;

    fn monitor_fixture() -> (FinancialNetwork, DStressConfig) {
        let mut rng = Xoshiro256::new(17);
        let network = core_periphery(&GeneratorConfig::small(6, 2), &mut rng);
        let mut config = DStressConfig::benchmark(2);
        config.transfer_mode = TransferMode::Accounted;
        (network, config)
    }

    #[test]
    fn monitor_alternates_full_and_psa_months() {
        let (network, config) = monitor_fixture();
        let mut rng = Xoshiro256::new(23);
        let mut monitor = SystemicRiskMonitor::new(
            &network,
            config,
            BudgetAccountant::new(1.0),
            0.1,
            3,
            2.0,
            &mut rng,
        );
        let modes: Vec<ReleaseMode> = (0..6)
            .map(|m| monitor.publish_month(m, &mut rng).unwrap().mode)
            .collect();
        assert_eq!(
            modes,
            vec![
                ReleaseMode::FullMpc,
                ReleaseMode::Psa,
                ReleaseMode::Psa,
                ReleaseMode::FullMpc,
                ReleaseMode::Psa,
                ReleaseMode::Psa,
            ]
        );
        assert!((monitor.schedule().accountant().spent() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn monitor_exhausts_after_a_year_and_replenishes() {
        let (network, config) = monitor_fixture();
        let mut rng = Xoshiro256::new(29);
        let mut monitor = SystemicRiskMonitor::new(
            &network,
            config,
            BudgetAccountant::new(0.4),
            0.1,
            4,
            2.0,
            &mut rng,
        );
        for m in 0..4 {
            monitor.publish_month(m, &mut rng).unwrap();
        }
        let err = monitor.publish_month(4, &mut rng).unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::Budget(BudgetError::Exhausted { .. })
        ));
        monitor.replenish_annual();
        monitor.publish_month(4, &mut rng).unwrap();
        assert_eq!(monitor.schedule().releases().len(), 5);
    }

    #[test]
    fn distress_count_tracks_balance_sheets() {
        let (network, config) = monitor_fixture();
        let mut rng = Xoshiro256::new(31);
        let mut monitor = SystemicRiskMonitor::new(
            &network,
            config,
            BudgetAccountant::new(2.0),
            0.5,
            12,
            2.0,
            &mut rng,
        );
        let exact: u64 = monitor.distress_flags().iter().sum();
        // Month 1 is an interim PSA month; with few banks and moderate ε
        // the noisy count stays near the exact one (analytic tail bound:
        // n·Geo(e^{-0.5}) exceeds 40 with probability < 10⁻⁶).
        let release = monitor.publish_month(1, &mut rng).unwrap();
        assert_eq!(release.mode, ReleaseMode::Psa);
        assert!(
            (release.value - exact as f64).abs() <= 40.0,
            "noisy count {} vs exact {exact}",
            release.value
        );
    }
}
