//! Typed analysis findings and per-circuit reports.
//!
//! Every way an analysis can fail is a [`Finding`] variant carrying the
//! evidence (the offending gadget, the certified interval, the witness
//! wire path), so CI gates and tests can pin exact failures instead of
//! grepping log text.

use core::fmt;
use dstress_circuit::{CircuitError, Interval, WireId};

/// One defect or unprovable obligation discovered by the analyzer.
///
/// An empty finding list means the circuit (or program) is *certified*:
/// no gadget can overflow its width under the declared input ranges,
/// every released value fits its recovery window, the declared
/// sensitivity upper-bounds the certified bound, and private taint only
/// reaches released outputs through the noise path.
#[derive(Clone, Debug, PartialEq)]
pub enum Finding {
    /// The program has no analysis spec: its privacy math is unaudited.
    MissingSpec {
        /// The unannotated program or circuit.
        subject: String,
    },
    /// The spec's declared word layout does not match the circuit.
    LayoutMismatch {
        /// The circuit being analyzed.
        subject: String,
        /// What was inconsistent.
        detail: String,
    },
    /// The circuit failed IR validation.
    MalformedCircuit {
        /// The circuit being analyzed.
        subject: String,
        /// The underlying IR error.
        error: CircuitError,
    },
    /// A recorded gadget event is structurally inconsistent with the
    /// gate list (wrong arity, width mismatch, out-of-range wires).
    MalformedGadget {
        /// The circuit being analyzed.
        subject: String,
        /// Index of the event in the gadget trace.
        event: usize,
        /// What was inconsistent.
        detail: String,
    },
    /// A gadget's mathematical value range fits neither the unsigned nor
    /// the signed window of its word width: the wires wrap and downstream
    /// arithmetic is garbage.
    Overflow {
        /// The circuit being analyzed.
        subject: String,
        /// Index of the event in the gadget trace.
        event: usize,
        /// Human-readable gadget description.
        gadget: String,
        /// The certified mathematical interval.
        interval: Interval,
        /// The word width it must fit.
        width: u32,
    },
    /// An unsigned gadget (comparison, divider, shift, extension)
    /// consumes a word whose certified range admits negative values:
    /// the gadget would misread the two's-complement encoding.
    UnsignedMisuse {
        /// The circuit being analyzed.
        subject: String,
        /// Index of the event in the gadget trace.
        event: usize,
        /// Human-readable gadget description.
        gadget: String,
        /// The offending operand interval.
        interval: Interval,
    },
    /// A released output's certified interval escapes the declared
    /// recovery window (e.g. the dlog table's search range or the
    /// two's-complement decode window).
    ReleaseOutOfWindow {
        /// The circuit being analyzed.
        subject: String,
        /// The certified output interval.
        certified: Interval,
        /// The recovery window it must land in.
        window: Interval,
        /// Where the window comes from.
        window_source: String,
    },
    /// The program declares a sensitivity smaller than the bound the
    /// analyzer certified: its releases would be under-noised.
    UnderDeclaredSensitivity {
        /// The offending program.
        program: String,
        /// The declared `sensitivity()`.
        declared: f64,
        /// The certified lower bound on the true sensitivity bound.
        certified: f64,
        /// The model used for certification.
        model: String,
    },
    /// A range premise of the program's sensitivity lemma failed.
    PremiseViolated {
        /// The offending program.
        program: String,
        /// The premise that failed.
        premise: String,
        /// The certified interval that violates it.
        certified: Interval,
    },
    /// The aggregation circuit does not decompose into per-vertex terms
    /// as the sensitivity model requires.
    DecompositionFailed {
        /// The offending program.
        program: String,
        /// Why the decomposition failed.
        detail: String,
    },
    /// The update circuit is not the contraction its sensitivity model
    /// claims (the certified per-round delta exceeds the damped bound).
    ContractionViolated {
        /// The offending program.
        program: String,
        /// The certified vs required deltas.
        detail: String,
    },
    /// Private taint reaches an output wire without passing through the
    /// noise path: the release would leak unprotected private data.
    PrivateLeak {
        /// The circuit being analyzed.
        subject: String,
        /// Index of the leaking output in the output list.
        output: usize,
        /// The leaking output wire.
        output_wire: WireId,
        /// The private input wire the taint originates from.
        source_wire: WireId,
        /// Name of the input word the source wire belongs to.
        source_word: String,
        /// A private-tainted, noise-free wire path from output back to
        /// the source (truncated to its first hops when long).
        witness: Vec<WireId>,
    },
    /// The analyzer's independent AND-depth recomputation disagrees with
    /// `CircuitStats` or the layering pass.
    DepthMismatch {
        /// The circuit being analyzed.
        subject: String,
        /// The analyzer's recomputed output depth / all-gate depth.
        recomputed: (usize, usize),
        /// `CircuitStats::of(..).and_depth`.
        stats: usize,
        /// `CircuitLayers::of(..).rounds()`.
        layered: usize,
    },
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::MissingSpec { subject } => {
                write!(f, "{subject}: no analysis spec declared")
            }
            Finding::LayoutMismatch { subject, detail } => {
                write!(f, "{subject}: spec layout mismatch: {detail}")
            }
            Finding::MalformedCircuit { subject, error } => {
                write!(f, "{subject}: malformed circuit: {error}")
            }
            Finding::MalformedGadget {
                subject,
                event,
                detail,
            } => write!(f, "{subject}: malformed gadget event {event}: {detail}"),
            Finding::Overflow {
                subject,
                event,
                gadget,
                interval,
                width,
            } => write!(
                f,
                "{subject}: event {event} ({gadget}) range {interval} fits neither the \
                 unsigned nor the signed window of {width} bits"
            ),
            Finding::UnsignedMisuse {
                subject,
                event,
                gadget,
                interval,
            } => write!(
                f,
                "{subject}: event {event} ({gadget}) reads an operand with range {interval} \
                 as unsigned"
            ),
            Finding::ReleaseOutOfWindow {
                subject,
                certified,
                window,
                window_source,
            } => write!(
                f,
                "{subject}: released range {certified} escapes the recovery window {window} \
                 ({window_source})"
            ),
            Finding::UnderDeclaredSensitivity {
                program,
                declared,
                certified,
                model,
            } => write!(
                f,
                "{program}: declared sensitivity {declared} is below the certified bound \
                 {certified} (model: {model})"
            ),
            Finding::PremiseViolated {
                program,
                premise,
                certified,
            } => write!(
                f,
                "{program}: lemma premise failed: {premise} (certified {certified})"
            ),
            Finding::DecompositionFailed { program, detail } => {
                write!(f, "{program}: aggregation decomposition failed: {detail}")
            }
            Finding::ContractionViolated { program, detail } => {
                write!(f, "{program}: contraction check failed: {detail}")
            }
            Finding::PrivateLeak {
                subject,
                output,
                output_wire,
                source_wire,
                source_word,
                witness,
            } => write!(
                f,
                "{subject}: output {output} (wire {output_wire}) carries private taint from \
                 input '{source_word}' (wire {source_wire}) without noise; witness path \
                 {witness:?}"
            ),
            Finding::DepthMismatch {
                subject,
                recomputed,
                stats,
                layered,
            } => write!(
                f,
                "{subject}: AND-depth recomputation {recomputed:?} (outputs, all gates) \
                 disagrees with CircuitStats {stats} / layering rounds {layered}"
            ),
        }
    }
}

/// The certified result of analyzing one circuit.
#[derive(Clone, Debug)]
pub struct CircuitReport {
    /// The circuit's name (from the spec).
    pub subject: String,
    /// AND gates (the GMW cost driver).
    pub and_gates: usize,
    /// Total gates.
    pub total_gates: usize,
    /// Independently recomputed AND depth over the output cone.
    pub and_depth: usize,
    /// Independently recomputed AND depth over all gates (the layered
    /// execution's round count, which also schedules dead gates).
    pub and_depth_all: usize,
    /// Certified mathematical interval of each declared output word.
    pub output_intervals: Vec<Interval>,
    /// Findings for this circuit (empty = certified).
    pub findings: Vec<Finding>,
}

impl CircuitReport {
    /// True when the circuit certified with no findings.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}
