//! Interval range analysis: the abstract interpreter that certifies no
//! gadget overflows its word width.
//!
//! The engine runs two cooperating domains over one circuit:
//!
//! * a **bit domain** (`Bit3`: zero / one / unknown) over the raw
//!   XOR/AND/NOT gates, seeded from the declared input ranges; and
//! * a **word interval domain** over the builder's gadget trace, keyed by
//!   the exact output wire vector of each event, tracking *mathematical*
//!   values in `i128` before any wrapping.
//!
//! Every gadget's output interval is checked for representability: it
//! must fit either the unsigned window `[0, 2^w)` or the signed
//! two's-complement window of its width, otherwise the wires wrap and an
//! [`Finding::Overflow`] is reported.  Unsigned gadgets (comparators,
//! dividers, shifts, extensions) additionally require provably
//! non-negative operands ([`Finding::UnsignedMisuse`]).
//!
//! Three refinements make the domain tight enough to certify the shipped
//! finance circuits without false positives:
//!
//! * **mux guard refinement** — a `mux_word` branch guarded by a
//!   comparison is analyzed under that comparison: the else branch of
//!   `mux(lt(a, b), t, e)` knows `a >= b`, which bounds a guarded
//!   `sub(a, b)` below by zero and a guarded `div_fixed(a, b, f)` above
//!   by `2^f`;
//! * **guarded-consumer suppression** — a subtraction whose raw interval
//!   is unrepresentable is *not* an overflow if every consumer is a mux
//!   whose guard restores representability (the canonical clamp idiom
//!   `mux(a < b, 0, a - b)`: the wrapped value is computed but never
//!   selected);
//! * **declared preconditions** — pointwise dominance facts and the
//!   mass-conservation sum cap from the spec, each applied exactly where
//!   declared and surfaced as assumptions by the caller.

use std::collections::{BTreeMap, BTreeSet};

use dstress_circuit::{Circuit, GadgetEvent, GadgetKind, Gate, Interval, WireId};

use crate::report::Finding;

/// Three-valued abstraction of one wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bit3 {
    /// Provably false.
    Zero,
    /// Provably true.
    One,
    /// Unknown.
    Top,
}

impl Bit3 {
    fn from_bool(b: bool) -> Self {
        if b {
            Bit3::One
        } else {
            Bit3::Zero
        }
    }

    fn known(self) -> Option<bool> {
        match self {
            Bit3::Zero => Some(false),
            Bit3::One => Some(true),
            Bit3::Top => None,
        }
    }
}

/// Configuration for one range pass.
#[derive(Clone, Debug)]
pub struct RangeConfig {
    /// Name used in findings.
    pub subject: String,
    /// Input words (little-endian wire vectors) with declared intervals.
    pub inputs: Vec<(Vec<WireId>, Interval)>,
    /// Modular-arithmetic mode: overflow findings are suppressed and
    /// unrepresentable intervals are widened to the full unsigned range.
    pub modular: bool,
    /// Pairs of indices into `inputs`: `(a, b)` declares `a >= b`
    /// pointwise, bounding `sub(a, b)` below by zero.
    pub dominance: Vec<(usize, usize)>,
    /// Mass-conservation cap: a `sum` gadget whose inputs all belong to
    /// this set of words is intersected with `[0, cap]`.
    pub sum_cap: Option<(Vec<Vec<WireId>>, i128)>,
}

impl RangeConfig {
    /// A plain config: declared inputs, nothing else.
    pub fn new(subject: &str, inputs: Vec<(Vec<WireId>, Interval)>) -> Self {
        RangeConfig {
            subject: subject.to_string(),
            inputs,
            modular: false,
            dominance: Vec::new(),
            sum_cap: None,
        }
    }
}

/// The result of a range pass: certified bit values and word intervals.
pub struct RangeAnalysis {
    bits: Vec<Bit3>,
    intervals: BTreeMap<Vec<WireId>, Interval>,
    /// Findings discovered during the pass.
    pub findings: Vec<Finding>,
}

/// Comparison fact recovered from a mux selector wire.
#[derive(Clone, Debug)]
struct Guard {
    big: Vec<WireId>,
    small: Vec<WireId>,
    /// True for strict `big > small`, false for `big >= small`.
    strict: bool,
}

impl RangeAnalysis {
    /// Runs the range analysis over `circuit` under `cfg`.
    pub fn run(circuit: &Circuit, cfg: &RangeConfig) -> RangeAnalysis {
        let gates = circuit.gates();
        let mut findings = Vec::new();

        // Seed the bit domain from the declared input intervals: if the
        // interval proves a bit constant, record it; a possibly-negative
        // word pins nothing (two's complement sets high bits).
        let mut input_bits: BTreeMap<usize, Bit3> = BTreeMap::new();
        for (word, iv) in &cfg.inputs {
            for (j, &w) in word.iter().enumerate() {
                let b = if iv.lo < 0 {
                    Bit3::Top
                } else if iv.lo == iv.hi {
                    Bit3::from_bool((iv.lo >> j) & 1 == 1)
                } else if iv.hi < (1i128 << j) {
                    Bit3::Zero
                } else {
                    Bit3::Top
                };
                if let Gate::Input(n) = gates[w] {
                    input_bits.insert(n, b);
                }
            }
        }

        // Raw-gate pass.
        let mut bits = vec![Bit3::Top; gates.len()];
        for (i, gate) in gates.iter().enumerate() {
            bits[i] = match *gate {
                Gate::Input(n) => input_bits.get(&n).copied().unwrap_or(Bit3::Top),
                Gate::ConstFalse => Bit3::Zero,
                Gate::ConstTrue => Bit3::One,
                Gate::Xor(a, b) => match (bits[a].known(), bits[b].known()) {
                    (Some(x), Some(y)) => Bit3::from_bool(x ^ y),
                    _ => Bit3::Top,
                },
                Gate::And(a, b) => match (bits[a], bits[b]) {
                    (Bit3::Zero, _) | (_, Bit3::Zero) => Bit3::Zero,
                    (Bit3::One, Bit3::One) => Bit3::One,
                    _ => Bit3::Top,
                },
                Gate::Not(a) => match bits[a] {
                    Bit3::Zero => Bit3::One,
                    Bit3::One => Bit3::Zero,
                    Bit3::Top => Bit3::Top,
                },
            };
        }

        let mut this = RangeAnalysis {
            bits,
            intervals: BTreeMap::new(),
            findings: Vec::new(),
        };
        for (word, iv) in &cfg.inputs {
            this.intervals.insert(word.clone(), *iv);
        }

        // Validate every event structurally before trusting any of them.
        let events = circuit.gadgets();
        let mut valid = vec![true; events.len()];
        for (i, ev) in events.iter().enumerate() {
            if let Err(detail) = validate_event(ev, gates.len()) {
                findings.push(Finding::MalformedGadget {
                    subject: cfg.subject.clone(),
                    event: i,
                    detail,
                });
                valid[i] = false;
            }
        }

        // Indices: single-bit event outputs (guards resolve through
        // these), word-producing events, and word consumers.
        let mut event_of_bit: BTreeMap<WireId, usize> = BTreeMap::new();
        let mut event_of_word: BTreeMap<Vec<WireId>, usize> = BTreeMap::new();
        let mut consumers: BTreeMap<Vec<WireId>, Vec<usize>> = BTreeMap::new();
        for (i, ev) in events.iter().enumerate() {
            if !valid[i] {
                continue;
            }
            if ev.output.len() == 1 {
                event_of_bit.insert(ev.output[0], i);
            }
            event_of_word.insert(ev.output.clone(), i);
            for input in &ev.inputs {
                consumers.entry(input.clone()).or_default().push(i);
            }
        }
        let cap_words: Option<(BTreeSet<Vec<WireId>>, i128)> = cfg
            .sum_cap
            .as_ref()
            .map(|(words, cap)| (words.iter().cloned().collect(), *cap));

        // Event pass, in construction order.
        for (i, ev) in events.iter().enumerate() {
            if !valid[i] {
                continue;
            }
            this.transfer(
                i,
                ev,
                circuit,
                cfg,
                &cap_words,
                &event_of_bit,
                &event_of_word,
                &consumers,
                events,
                &mut findings,
            );
        }

        this.findings = findings;
        this
    }

    /// The certified interval of a word: the event map when the word was
    /// produced by a gadget or declared as an input, otherwise the
    /// unsigned reading of the bit domain.
    pub fn interval_of(&self, word: &[WireId]) -> Interval {
        if let Some(iv) = self.intervals.get(word) {
            return *iv;
        }
        self.bits_interval(word)
    }

    /// The unsigned interval the bit domain proves for a wire vector.
    fn bits_interval(&self, word: &[WireId]) -> Interval {
        let mut lo = 0i128;
        let mut hi = 0i128;
        for (j, &w) in word.iter().enumerate() {
            match self.bits[w] {
                Bit3::One => {
                    lo += 1i128 << j;
                    hi += 1i128 << j;
                }
                Bit3::Top => hi += 1i128 << j,
                Bit3::Zero => {}
            }
        }
        Interval::new(lo, hi)
    }

    /// Resolves a single wire to a known boolean, walking raw NOT gates
    /// so guards survive `CircuitBuilder::not`.
    fn resolve_bit(&self, circuit: &Circuit, w: WireId) -> Option<bool> {
        if let Some(b) = self.bits[w].known() {
            return Some(b);
        }
        match circuit.gates()[w] {
            Gate::Not(a) => self.resolve_bit(circuit, a).map(|b| !b),
            _ => None,
        }
    }

    /// Recovers the comparison fact a mux selector encodes when taken
    /// with truth value `on`, walking NOT gates and the or(lt, eq) idiom.
    fn guard_for(
        &self,
        circuit: &Circuit,
        sel: WireId,
        on: bool,
        event_of_bit: &BTreeMap<WireId, usize>,
        events: &[GadgetEvent],
    ) -> Option<Guard> {
        let Some(&ei) = event_of_bit.get(&sel) else {
            // Not an event output itself: walk raw NOT gates so guards
            // survive `CircuitBuilder::not`.
            if let Gate::Not(a) = circuit.gates()[sel] {
                return self.guard_for(circuit, a, !on, event_of_bit, events);
            }
            return None;
        };
        let ev = &events[ei];
        match ev.kind {
            GadgetKind::LtUnsigned => {
                let a = ev.inputs[0].clone();
                let b = ev.inputs[1].clone();
                if on {
                    // a < b.
                    Some(Guard {
                        big: b,
                        small: a,
                        strict: true,
                    })
                } else {
                    // a >= b.
                    Some(Guard {
                        big: a,
                        small: b,
                        strict: false,
                    })
                }
            }
            GadgetKind::Or if !on => {
                // not(x or y) = not(x) and not(y).  The builder idiom
                // or(lt(a, b), eq(a, b)) therefore yields strict a > b;
                // otherwise fall back to the negation of whichever
                // operand is a comparison.
                let x = self.guard_for(circuit, ev.inputs[0][0], false, event_of_bit, events);
                let y = self.guard_for(circuit, ev.inputs[1][0], false, event_of_bit, events);
                let eq_operand = |w: WireId| -> Option<(&[WireId], &[WireId])> {
                    let e = &events[*event_of_bit.get(&w)?];
                    if e.kind == GadgetKind::EqWord {
                        Some((&e.inputs[0], &e.inputs[1]))
                    } else {
                        None
                    }
                };
                for (cmp, other) in [(&x, ev.inputs[1][0]), (&y, ev.inputs[0][0])] {
                    if let (Some(g), Some((ea, eb))) = (cmp, eq_operand(other)) {
                        let matches =
                            (g.big == ea && g.small == eb) || (g.big == eb && g.small == ea);
                        if !g.strict && matches {
                            return Some(Guard {
                                big: g.big.clone(),
                                small: g.small.clone(),
                                strict: true,
                            });
                        }
                    }
                }
                x.or(y)
            }
            _ => None,
        }
    }

    /// The interval of a mux branch word, refined under the selector's
    /// guard when the branch was produced by a guarded sub or divider.
    #[allow(clippy::too_many_arguments)]
    fn refined_branch(
        &self,
        circuit: &Circuit,
        word: &[WireId],
        sel: WireId,
        on: bool,
        event_of_bit: &BTreeMap<WireId, usize>,
        event_of_word: &BTreeMap<Vec<WireId>, usize>,
        events: &[GadgetEvent],
    ) -> Interval {
        let base = self.interval_of(word);
        let Some(guard) = self.guard_for(circuit, sel, on, event_of_bit, events) else {
            return base;
        };
        let Some(&pi) = event_of_word.get(word) else {
            return base;
        };
        refine_under_guard(&events[pi], &guard, base).unwrap_or(base)
    }

    /// Processes one gadget event: computes the output interval, applies
    /// refinements and caps, records decided bits and reports findings.
    #[allow(clippy::too_many_arguments)]
    fn transfer(
        &mut self,
        idx: usize,
        ev: &GadgetEvent,
        circuit: &Circuit,
        cfg: &RangeConfig,
        cap_words: &Option<(BTreeSet<Vec<WireId>>, i128)>,
        event_of_bit: &BTreeMap<WireId, usize>,
        event_of_word: &BTreeMap<Vec<WireId>, usize>,
        consumers: &BTreeMap<Vec<WireId>, Vec<usize>>,
        events: &[GadgetEvent],
        findings: &mut Vec<Finding>,
    ) {
        let subject = &cfg.subject;
        let w_out = ev.output.len() as u32;
        let gadget = format!("{:?}", ev.kind);
        let check_unsigned_operand = |iv: Interval, findings: &mut Vec<Finding>| {
            if iv.lo < 0 && !cfg.modular {
                findings.push(Finding::UnsignedMisuse {
                    subject: subject.clone(),
                    event: idx,
                    gadget: gadget.clone(),
                    interval: iv,
                });
            }
        };

        match ev.kind {
            GadgetKind::InputWord => {
                // Declared inputs were seeded; undeclared ones read from
                // the bit domain on demand.
            }
            GadgetKind::ConstWord(v) => {
                self.intervals
                    .insert(ev.output.clone(), Interval::point(v as i128));
            }
            GadgetKind::Add => {
                let a = self.interval_of(&ev.inputs[0]);
                let b = self.interval_of(&ev.inputs[1]);
                let iv = Interval::new(a.lo + b.lo, a.hi + b.hi);
                self.store_checked(idx, ev, &gadget, iv, w_out, cfg, None, findings);
            }
            GadgetKind::Sub => {
                let a = self.interval_of(&ev.inputs[0]);
                let b = self.interval_of(&ev.inputs[1]);
                let dominated = cfg.dominance.iter().any(|&(ia, ib)| {
                    cfg.inputs.get(ia).map(|(w, _)| w.as_slice()) == Some(&ev.inputs[0][..])
                        && cfg.inputs.get(ib).map(|(w, _)| w.as_slice()) == Some(&ev.inputs[1][..])
                });
                let lo = if dominated {
                    (a.lo - b.hi).max(0)
                } else {
                    a.lo - b.hi
                };
                let iv = Interval::new(lo.min(a.hi - b.lo), a.hi - b.lo);
                let suppress = Some((circuit, event_of_bit, consumers, events));
                self.store_checked(idx, ev, &gadget, iv, w_out, cfg, suppress, findings);
            }
            GadgetKind::Neg => {
                let a = self.interval_of(&ev.inputs[0]);
                let iv = Interval::new(-a.hi, -a.lo);
                self.store_checked(idx, ev, &gadget, iv, w_out, cfg, None, findings);
            }
            GadgetKind::LtUnsigned => {
                let a = self.interval_of(&ev.inputs[0]);
                let b = self.interval_of(&ev.inputs[1]);
                check_unsigned_operand(a, findings);
                check_unsigned_operand(b, findings);
                if a.hi < b.lo {
                    self.bits[ev.output[0]] = Bit3::One;
                } else if a.lo >= b.hi {
                    self.bits[ev.output[0]] = Bit3::Zero;
                }
            }
            GadgetKind::LtSigned => {
                for operand in [&ev.inputs[0], &ev.inputs[1]] {
                    let iv = self.interval_of(operand);
                    if !iv.fits_signed(operand.len() as u32) && !cfg.modular {
                        findings.push(Finding::Overflow {
                            subject: subject.clone(),
                            event: idx,
                            gadget: gadget.clone(),
                            interval: iv,
                            width: operand.len() as u32,
                        });
                    }
                }
                let a = self.interval_of(&ev.inputs[0]);
                let b = self.interval_of(&ev.inputs[1]);
                if a.hi < b.lo {
                    self.bits[ev.output[0]] = Bit3::One;
                } else if a.lo >= b.hi {
                    self.bits[ev.output[0]] = Bit3::Zero;
                }
            }
            GadgetKind::EqWord => {
                let a = self.interval_of(&ev.inputs[0]);
                let b = self.interval_of(&ev.inputs[1]);
                if a.lo == a.hi && a == b {
                    self.bits[ev.output[0]] = Bit3::One;
                } else if a.intersect(b).is_none() {
                    self.bits[ev.output[0]] = Bit3::Zero;
                }
            }
            GadgetKind::Or => {
                let a = self.resolve_bit(circuit, ev.inputs[0][0]);
                let b = self.resolve_bit(circuit, ev.inputs[1][0]);
                if a == Some(true) || b == Some(true) {
                    self.bits[ev.output[0]] = Bit3::One;
                } else if a == Some(false) && b == Some(false) {
                    self.bits[ev.output[0]] = Bit3::Zero;
                }
            }
            GadgetKind::MuxBit => {
                let sel = self.resolve_bit(circuit, ev.inputs[0][0]);
                let chosen = match sel {
                    Some(true) => self.resolve_bit(circuit, ev.inputs[1][0]),
                    Some(false) => self.resolve_bit(circuit, ev.inputs[2][0]),
                    None => None,
                };
                if let Some(b) = chosen {
                    self.bits[ev.output[0]] = Bit3::from_bool(b);
                }
            }
            GadgetKind::MuxWord => {
                let sel = ev.inputs[0][0];
                let then_iv = self.refined_branch(
                    circuit,
                    &ev.inputs[1],
                    sel,
                    true,
                    event_of_bit,
                    event_of_word,
                    events,
                );
                let else_iv = self.refined_branch(
                    circuit,
                    &ev.inputs[2],
                    sel,
                    false,
                    event_of_bit,
                    event_of_word,
                    events,
                );
                let iv = match self.resolve_bit(circuit, sel) {
                    Some(true) => then_iv,
                    Some(false) => else_iv,
                    None => then_iv.hull(else_iv),
                };
                self.intervals.insert(ev.output.clone(), iv);
            }
            GadgetKind::Relu => {
                let a = self.interval_of(&ev.inputs[0]);
                if !a.fits_signed(w_out) && !cfg.modular {
                    findings.push(Finding::Overflow {
                        subject: subject.clone(),
                        event: idx,
                        gadget: gadget.clone(),
                        interval: a,
                        width: w_out,
                    });
                }
                let iv = Interval::new(a.lo.max(0), a.hi.max(0));
                self.intervals.insert(ev.output.clone(), iv);
            }
            GadgetKind::MinUnsigned | GadgetKind::MaxUnsigned => {
                let a = self.interval_of(&ev.inputs[0]);
                let b = self.interval_of(&ev.inputs[1]);
                check_unsigned_operand(a, findings);
                check_unsigned_operand(b, findings);
                let iv = if ev.kind == GadgetKind::MinUnsigned {
                    Interval::new(a.lo.min(b.lo), a.hi.min(b.hi))
                } else {
                    Interval::new(a.lo.max(b.lo), a.hi.max(b.hi))
                };
                self.intervals.insert(ev.output.clone(), iv);
            }
            GadgetKind::XorWord | GadgetKind::NotWord => {
                // Pure bit operations: the raw bit pass already covers
                // them at full precision for this domain.
            }
            GadgetKind::ZeroExtend => {
                let a = self.interval_of(&ev.inputs[0]);
                check_unsigned_operand(a, findings);
                self.intervals
                    .insert(ev.output.clone(), Interval::new(a.lo.max(0), a.hi.max(0)));
            }
            GadgetKind::Truncate => {
                let a = self.interval_of(&ev.inputs[0]);
                if a.fits_unsigned(w_out) {
                    self.intervals.insert(ev.output.clone(), a);
                } else {
                    if !cfg.modular {
                        findings.push(Finding::Overflow {
                            subject: subject.clone(),
                            event: idx,
                            gadget: gadget.clone(),
                            interval: a,
                            width: w_out,
                        });
                    }
                    self.intervals
                        .insert(ev.output.clone(), Interval::unsigned(w_out));
                }
            }
            GadgetKind::ShlConst(k) => {
                let a = self.interval_of(&ev.inputs[0]);
                let iv = Interval::new(a.lo << k, a.hi << k);
                self.store_checked(idx, ev, &gadget, iv, w_out, cfg, None, findings);
            }
            GadgetKind::ShrConst(k) => {
                let a = self.interval_of(&ev.inputs[0]);
                check_unsigned_operand(a, findings);
                let iv = Interval::new((a.lo.max(0)) >> k, (a.hi.max(0)) >> k);
                self.intervals.insert(ev.output.clone(), iv);
            }
            GadgetKind::MulFull | GadgetKind::Mul | GadgetKind::MulFixed(_) => {
                let a = self.interval_of(&ev.inputs[0]);
                let b = self.interval_of(&ev.inputs[1]);
                check_unsigned_operand(a, findings);
                check_unsigned_operand(b, findings);
                let (alo, ahi) = (a.lo.max(0), a.hi.max(0));
                let (blo, bhi) = (b.lo.max(0), b.hi.max(0));
                let iv = match ev.kind {
                    GadgetKind::MulFixed(f) => Interval::new((alo * blo) >> f, (ahi * bhi) >> f),
                    _ => Interval::new(alo * blo, ahi * bhi),
                };
                self.store_checked(idx, ev, &gadget, iv, w_out, cfg, None, findings);
            }
            GadgetKind::DivFixed(f) => {
                let a = self.interval_of(&ev.inputs[0]);
                let b = self.interval_of(&ev.inputs[1]);
                check_unsigned_operand(a, findings);
                check_unsigned_operand(b, findings);
                let (alo, ahi) = (a.lo.max(0), a.hi.max(0));
                let bhi = b.hi.max(1);
                let iv = if b.lo > 0 {
                    Interval::new((alo << f) / bhi, (ahi << f) / b.lo)
                } else {
                    // The divisor may be zero: the restoring divider
                    // saturates to all ones.
                    Interval::new((alo << f) / bhi, (1i128 << w_out) - 1)
                };
                self.intervals.insert(ev.output.clone(), iv);
            }
            GadgetKind::Sum => {
                let mut lo = 0i128;
                let mut hi = 0i128;
                for input in &ev.inputs {
                    let iv = self.interval_of(input);
                    lo += iv.lo;
                    hi += iv.hi;
                }
                let mut iv = Interval::new(lo, hi);
                if let Some((caps, cap)) = cap_words {
                    let all_capped =
                        !ev.inputs.is_empty() && ev.inputs.iter().all(|w| caps.contains(w));
                    if all_capped {
                        let capped = Interval::new(0, *cap);
                        iv = iv.intersect(capped).unwrap_or(capped);
                    }
                }
                self.store_checked(idx, ev, &gadget, iv, w_out, cfg, None, findings);
            }
        }
    }

    /// Stores an event's interval after the representability check,
    /// applying modular widening and (for subtractions) the
    /// guarded-consumer suppression.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn store_checked(
        &mut self,
        idx: usize,
        ev: &GadgetEvent,
        gadget: &str,
        iv: Interval,
        w_out: u32,
        cfg: &RangeConfig,
        suppress: Option<(
            &Circuit,
            &BTreeMap<WireId, usize>,
            &BTreeMap<Vec<WireId>, Vec<usize>>,
            &[GadgetEvent],
        )>,
        findings: &mut Vec<Finding>,
    ) {
        let representable = iv.fits_unsigned(w_out) || iv.fits_signed(w_out);
        if representable {
            self.intervals.insert(ev.output.clone(), iv);
            return;
        }
        if cfg.modular {
            // Wrapping is intended: the word holds *some* value of its
            // width; track the full unsigned range.
            self.intervals
                .insert(ev.output.clone(), Interval::unsigned(w_out));
            return;
        }
        if let Some((circuit, event_of_bit, consumers, events)) = suppress {
            if self.all_consumers_guard(ev, iv, w_out, circuit, event_of_bit, consumers, events) {
                // The raw value wraps but is never selected: keep the
                // mathematical interval so guard refinement at the
                // consuming mux stays exact.
                self.intervals.insert(ev.output.clone(), iv);
                return;
            }
        }
        findings.push(Finding::Overflow {
            subject: cfg.subject.clone(),
            event: idx,
            gadget: gadget.to_string(),
            interval: iv,
            width: w_out,
        });
        self.intervals.insert(ev.output.clone(), iv);
    }

    /// True when every gadget consuming `ev.output` is a mux whose guard
    /// refines this event's interval back into a representable window —
    /// the clamp idiom `mux(a < b, 0, a - b)`: the wrapped difference is
    /// computed but never selected.  Raw-gate reads of the word's wires
    /// are not tracked, but a raw read cannot re-enter the interval
    /// domain, and an output word escaping this way is still caught by
    /// the caller's declared-range checks on outputs.
    #[allow(clippy::too_many_arguments)]
    fn all_consumers_guard(
        &self,
        ev: &GadgetEvent,
        iv: Interval,
        w_out: u32,
        circuit: &Circuit,
        event_of_bit: &BTreeMap<WireId, usize>,
        consumers: &BTreeMap<Vec<WireId>, Vec<usize>>,
        events: &[GadgetEvent],
    ) -> bool {
        let Some(cs) = consumers.get(&ev.output) else {
            return false;
        };
        !cs.is_empty()
            && cs.iter().all(|&ci| {
                let c = &events[ci];
                if c.kind != GadgetKind::MuxWord {
                    return false;
                }
                let on = if c.inputs[1] == ev.output {
                    true
                } else if c.inputs[2] == ev.output {
                    false
                } else {
                    return false;
                };
                let sel = c.inputs[0][0];
                let Some(guard) = self.guard_for(circuit, sel, on, event_of_bit, events) else {
                    return false;
                };
                match refine_under_guard(ev, &guard, iv) {
                    Some(r) => r.fits_unsigned(w_out) || r.fits_signed(w_out),
                    None => false,
                }
            })
    }
}

/// Refines the interval of `producer`'s output under `guard`, when the
/// producer is a subtraction or divider the guard constrains.
fn refine_under_guard(producer: &GadgetEvent, guard: &Guard, base: Interval) -> Option<Interval> {
    match producer.kind {
        GadgetKind::Sub => {
            // sub(big, small) under big > small (or >=) is bounded below.
            if producer.inputs[0] == guard.big && producer.inputs[1] == guard.small {
                let floor = if guard.strict { 1 } else { 0 };
                let lo = base.lo.max(floor).min(base.hi);
                return Some(Interval::new(lo, base.hi));
            }
            None
        }
        GadgetKind::DivFixed(f) => {
            // div_fixed(small, big, f) under small < big stays below 2^f.
            if producer.inputs[0] == guard.small && producer.inputs[1] == guard.big {
                let cap = if guard.strict {
                    (1i128 << f) - 1
                } else {
                    1i128 << f
                };
                let capped = Interval::new(0, cap);
                return Some(base.intersect(capped).unwrap_or(capped));
            }
            None
        }
        _ => None,
    }
}

/// Structural validation of one gadget event against the gate list.
fn validate_event(ev: &GadgetEvent, num_wires: usize) -> Result<(), String> {
    if ev.output.is_empty() {
        return Err("empty output word".to_string());
    }
    for w in ev.output.iter().chain(ev.inputs.iter().flatten()) {
        if *w >= num_wires {
            return Err(format!("wire {w} out of range ({num_wires} wires)"));
        }
    }
    let arity = ev.inputs.len();
    let out = ev.output.len();
    let widths: Vec<usize> = ev.inputs.iter().map(|w| w.len()).collect();
    let ok = match ev.kind {
        GadgetKind::InputWord | GadgetKind::ConstWord(_) => arity == 0,
        GadgetKind::Add | GadgetKind::Sub | GadgetKind::XorWord => {
            arity == 2 && widths[0] == out && widths[1] == out
        }
        GadgetKind::Neg | GadgetKind::NotWord => arity == 1 && widths[0] == out,
        GadgetKind::LtUnsigned | GadgetKind::LtSigned | GadgetKind::EqWord => {
            arity == 2 && widths[0] == widths[1] && out == 1
        }
        GadgetKind::Or => arity == 2 && widths[0] == 1 && widths[1] == 1 && out == 1,
        GadgetKind::MuxBit => arity == 3 && widths == [1, 1, 1] && out == 1,
        GadgetKind::MuxWord => arity == 3 && widths[0] == 1 && widths[1] == out && widths[2] == out,
        GadgetKind::Relu => arity == 1 && widths[0] == out,
        GadgetKind::MinUnsigned | GadgetKind::MaxUnsigned => {
            arity == 2 && widths[0] == out && widths[1] == out
        }
        GadgetKind::ZeroExtend => arity == 1 && widths[0] <= out,
        GadgetKind::Truncate => arity == 1 && widths[0] >= out,
        GadgetKind::ShlConst(_) | GadgetKind::ShrConst(_) => arity == 1 && widths[0] == out,
        GadgetKind::MulFull => arity == 2 && widths[0] + widths[1] == out,
        GadgetKind::Mul => arity == 2 && widths[0] == out,
        GadgetKind::MulFixed(_) | GadgetKind::DivFixed(_) => {
            arity == 2 && widths[0] == out && widths[1] == out
        }
        GadgetKind::Sum => arity >= 1 && widths.iter().all(|&w| w == out),
    };
    if ok {
        Ok(())
    } else {
        Err(format!(
            "{:?} with input widths {widths:?} and output width {out}",
            ev.kind
        ))
    }
}
