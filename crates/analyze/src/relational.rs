//! Relational (pair-of-executions) delta analysis.
//!
//! Certifying a sensitivity bound is a statement about *two* runs of the
//! same circuit on neighbouring inputs.  This pass abstracts the pair by
//! the per-word difference `delta = value_run2 - value_run1`, seeds the
//! input deltas from the neighbouring-input model (one message slot
//! perturbed by at most `X`, everything else identical) and pushes delta
//! intervals through the gadget trace.  Linear gadgets (add, sub, sum)
//! transfer deltas exactly; truncating ones (shifts, fixed-point
//! multiplies by a delta-free factor) add a bounded rounding slack; for
//! anything else the pass falls back to the difference of the value
//! intervals, which is always sound.
//!
//! The PageRank certifier uses this to prove the update circuit is a
//! contraction: a message-side delta of `X` leaves the new rank within
//! `X/4 + slack` — the geometric-series premise behind the program's
//! declared `2d / (1 - d)` sensitivity.

use std::collections::BTreeMap;

use dstress_circuit::{GadgetEvent, GadgetKind, Interval, WireId};

use crate::range::RangeAnalysis;

/// Per-word delta intervals for a pair of neighbouring executions.
pub struct DeltaAnalysis<'a> {
    values: &'a RangeAnalysis,
    deltas: BTreeMap<Vec<WireId>, Interval>,
}

impl<'a> DeltaAnalysis<'a> {
    /// Runs the delta pass.  `values` must come from a range pass over
    /// the same circuit; `seeds` gives the delta interval of perturbed
    /// input words (unlisted inputs are identical across the pair).
    pub fn run(
        events: &[GadgetEvent],
        values: &'a RangeAnalysis,
        seeds: &[(Vec<WireId>, Interval)],
        input_words: &[Vec<WireId>],
    ) -> DeltaAnalysis<'a> {
        let mut this = DeltaAnalysis {
            values,
            deltas: BTreeMap::new(),
        };
        for word in input_words {
            this.deltas.insert(word.clone(), Interval::point(0));
        }
        for (word, d) in seeds {
            this.deltas.insert(word.clone(), *d);
        }
        for ev in events {
            this.transfer(ev);
        }
        this
    }

    /// The delta interval of a word: the tracked delta when known, else
    /// the sound fallback `[lo - hi, hi - lo]` of the value interval.
    pub fn delta_of(&self, word: &[WireId]) -> Interval {
        if let Some(d) = self.deltas.get(word) {
            return *d;
        }
        let v = self.values.interval_of(word);
        Interval::new(v.lo - v.hi, v.hi - v.lo)
    }

    fn transfer(&mut self, ev: &GadgetEvent) {
        let d = match ev.kind {
            GadgetKind::InputWord => return, // seeded
            GadgetKind::ConstWord(_) => Interval::point(0),
            GadgetKind::Add => {
                let a = self.delta_of(&ev.inputs[0]);
                let b = self.delta_of(&ev.inputs[1]);
                Interval::new(a.lo + b.lo, a.hi + b.hi)
            }
            GadgetKind::Sub => {
                let a = self.delta_of(&ev.inputs[0]);
                let b = self.delta_of(&ev.inputs[1]);
                Interval::new(a.lo - b.hi, a.hi - b.lo)
            }
            GadgetKind::Sum => {
                let mut lo = 0i128;
                let mut hi = 0i128;
                for input in &ev.inputs {
                    let d = self.delta_of(input);
                    lo += d.lo;
                    hi += d.hi;
                }
                Interval::new(lo, hi)
            }
            GadgetKind::ZeroExtend => self.delta_of(&ev.inputs[0]),
            GadgetKind::Truncate => {
                // Only delta-preserving when no bits are dropped in
                // either run; require the value range to fit.
                let v = self.values.interval_of(&ev.inputs[0]);
                if v.fits_unsigned(ev.output.len() as u32) {
                    self.delta_of(&ev.inputs[0])
                } else {
                    self.fallback(ev)
                }
            }
            GadgetKind::ShrConst(k) => {
                // floor(a/m) - floor(b/m) lies within (a-b)/m +- 1;
                // Euclidean division keeps the bound sound for negative
                // deltas.
                let d = self.delta_of(&ev.inputs[0]);
                let m = 1i128 << k;
                Interval::new(
                    (d.lo - (m - 1)).div_euclid(m),
                    (d.hi + (m - 1)).div_euclid(m),
                )
            }
            GadgetKind::MulFixed(f) => {
                // Exact only when one factor is identical across the
                // pair (delta zero): delta(a*b >> f) = delta(a)*b >> f,
                // +-1 for the two truncations.
                let da = self.delta_of(&ev.inputs[0]);
                let db = self.delta_of(&ev.inputs[1]);
                let (dv, fixed) = if db == Interval::point(0) {
                    (da, self.values.interval_of(&ev.inputs[1]))
                } else if da == Interval::point(0) {
                    (db, self.values.interval_of(&ev.inputs[0]))
                } else {
                    return self.store(ev, self.fallback(ev));
                };
                let (flo, fhi) = (fixed.lo.max(0), fixed.hi.max(0));
                let candidates = [dv.lo * flo, dv.lo * fhi, dv.hi * flo, dv.hi * fhi];
                let lo = candidates.iter().min().copied().unwrap_or(0);
                let hi = candidates.iter().max().copied().unwrap_or(0);
                Interval::new((lo >> f) - 1, (hi >> f) + 1)
            }
            _ => self.fallback(ev),
        };
        self.store(ev, d);
    }

    fn fallback(&self, ev: &GadgetEvent) -> Interval {
        let v = self.values.interval_of(&ev.output);
        Interval::new(v.lo - v.hi, v.hi - v.lo)
    }

    fn store(&mut self, ev: &GadgetEvent, d: Interval) {
        self.deltas.insert(ev.output.clone(), d);
    }
}
