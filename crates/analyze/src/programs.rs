//! Whole-program certification for `SecureVertexProgram`s.
//!
//! A program's privacy guarantee rests on a chain of facts: the update
//! circuit keeps every word inside its declared range round after round
//! (an inductive invariant — declared ranges cover the initial encoding
//! and the analyzer proves one update step preserves them), the
//! aggregation stays in range on those states, the declared sensitivity
//! upper-bounds what one changed edge can do to the aggregate, and the
//! noising circuit is the only road from private data to the released
//! output.  [`analyze_program`] certifies each link and composes them:
//!
//! * update circuit: range + overflow + flow pass with the declared
//!   state/message ranges; state and message outputs are checked back
//!   against those ranges (the invariant step);
//! * aggregation circuit: same pass over `N` copies of the state layout,
//!   producing the certified aggregate interval;
//! * noising circuit: the aggregate interval is fed into
//!   `dstress_core::noise_circuit::noising_circuit`, outputs are checked
//!   against the release window and the noised-release flow policy;
//! * sensitivity: recomputed under the program's declared
//!   [`SensitivityModel`] and compared against `sensitivity()` —
//!   declaring less than the certified bound is a hard error.

use std::collections::BTreeMap;

use dstress_circuit::{
    Circuit, CircuitSpec, FlowPolicy, GadgetKind, Interval, ProgramInputRef, ProgramSpec,
    RangePremise, ReleaseSpec, SensitivityModel, Taint, WireId, WordSpec,
};
use dstress_core::noise_circuit::noising_circuit;
use dstress_core::SecureVertexProgram;

use crate::deps::GroupDeps;
use crate::range::RangeAnalysis;
use crate::relational::DeltaAnalysis;
use crate::report::{CircuitReport, Finding};
use crate::{analyze_with, dedup_findings, input_words};

/// Width of each of the two geometric-noise randomness words, matching
/// the engine's `noising_circuit(aggregate_bits, 64, 0)` call.
pub const NOISE_RANDOM_BITS: u32 = 64;

/// The certified result of analyzing one program end to end.
#[derive(Clone, Debug)]
pub struct ProgramReport {
    /// Program name from its spec.
    pub program: String,
    /// The sensitivity the program declares.
    pub declared_sensitivity: f64,
    /// The bound the analyzer certified, when the model yields a number
    /// (external-lemma and modular programs certify premises instead).
    pub certified_sensitivity: Option<f64>,
    /// Human-readable name of the sensitivity model used.
    pub model: String,
    /// Named semantic lemmas the certification rests on, verbatim.
    pub assumptions: Vec<String>,
    /// Report for the update circuit.
    pub update: CircuitReport,
    /// Report for the aggregation circuit.
    pub aggregation: CircuitReport,
    /// Report for the noising circuit fed with the certified aggregate.
    pub noising: CircuitReport,
    /// Certified interval of the pre-noise aggregate.
    pub aggregate_interval: Interval,
    /// Program-level findings (sensitivity, decomposition, invariants).
    pub findings: Vec<Finding>,
}

impl ProgramReport {
    /// All findings across the program and its three circuits.
    pub fn all_findings(&self) -> Vec<&Finding> {
        self.findings
            .iter()
            .chain(&self.update.findings)
            .chain(&self.aggregation.findings)
            .chain(&self.noising.findings)
            .collect()
    }

    /// True when the program certified with no findings anywhere.
    pub fn is_clean(&self) -> bool {
        self.all_findings().is_empty()
    }
}

/// Analyzes a program's update, aggregation and noising circuits under
/// its declared [`ProgramSpec`] and certifies its sensitivity.
///
/// `release` overrides the recovery window for the noised output; the
/// default is the two's-complement decode window at `aggregate_bits`.
pub fn analyze_program(
    program: &dyn SecureVertexProgram,
    degree_bound: usize,
    vertices: usize,
    release: Option<ReleaseSpec>,
) -> ProgramReport {
    let spec = program.analysis_spec(degree_bound);
    let name = spec.name.clone();
    let mut findings = Vec::new();

    // Fall back to opaque full-range single words when the program is
    // unannotated, so the structural passes still run.
    let mut state_words = spec.state_words.clone();
    let mut message_words = spec.message_words.clone();
    if matches!(spec.sensitivity_model, SensitivityModel::Unspecified) {
        findings.push(Finding::MissingSpec {
            subject: name.clone(),
        });
        if state_words.is_empty() && program.state_bits() > 0 {
            state_words = vec![WordSpec {
                name: "state".to_string(),
                width: program.state_bits(),
                range: None,
                taint: Taint::Private,
            }];
        }
        if message_words.is_empty() && program.message_bits() > 0 {
            message_words = vec![WordSpec {
                name: "message".to_string(),
                width: program.message_bits(),
                range: None,
                taint: Taint::Private,
            }];
        }
    }
    let state_total: u32 = state_words.iter().map(|w| w.width).sum();
    let message_total: u32 = message_words.iter().map(|w| w.width).sum();
    if state_total != program.state_bits() || message_total != program.message_bits() {
        findings.push(Finding::LayoutMismatch {
            subject: name.clone(),
            detail: format!(
                "spec declares {state_total}-bit state and {message_total}-bit messages; the \
                 program has state_bits={} message_bits={}",
                program.state_bits(),
                program.message_bits()
            ),
        });
    }

    // --- Update circuit -------------------------------------------------
    let update = program.update_circuit(degree_bound);
    let mut update_inputs: Vec<WordSpec> = state_words.clone();
    for d in 0..degree_bound {
        for w in &message_words {
            let mut slot = w.clone();
            slot.name = format!("msg[{d}].{}", w.name);
            update_inputs.push(slot);
        }
    }
    let flat_index = |r: ProgramInputRef| -> usize {
        match r {
            ProgramInputRef::State(i) => i,
            ProgramInputRef::Message(d, w) => state_words.len() + d * message_words.len() + w,
        }
    };
    let update_outputs: Vec<u32> = update_inputs.iter().map(|w| w.width).collect();
    let update_spec = CircuitSpec {
        name: format!("{name}/update"),
        inputs: update_inputs.clone(),
        output_words: update_outputs,
        policy: FlowPolicy::Internal,
        release: None,
        modular: spec.modular,
        dominance: spec
            .dominance
            .iter()
            .map(|&(a, b)| (flat_index(a), flat_index(b)))
            .collect(),
    };
    let sum_cap = update_sum_cap(&update, &spec, &state_words, &message_words, degree_bound);
    let (update_report, update_ranges) = analyze_with(&update, &update_spec, sum_cap);

    // Inductive invariant: one step keeps every declared range.
    let words_per_slot = message_words.len();
    let state_out = &update_report.output_intervals
        [..state_words.len().min(update_report.output_intervals.len())];
    for (i, iv) in state_out.iter().enumerate() {
        let declared = state_words[i].effective_range();
        if !declared.contains_interval(*iv) {
            findings.push(Finding::PremiseViolated {
                program: name.clone(),
                premise: format!(
                    "update keeps state word '{}' within {declared}",
                    state_words[i].name
                ),
                certified: *iv,
            });
        }
    }
    let msg_out = update_report
        .output_intervals
        .get(state_words.len()..)
        .unwrap_or(&[]);
    for (k, iv) in msg_out.iter().enumerate() {
        let w = &message_words[k % words_per_slot.max(1)];
        let declared = w.effective_range();
        if !declared.contains_interval(*iv) {
            findings.push(Finding::PremiseViolated {
                program: name.clone(),
                premise: format!("update keeps message word '{}' within {declared}", w.name),
                certified: *iv,
            });
        }
    }

    // --- Aggregation circuit --------------------------------------------
    let aggregation = program.aggregation_circuit(vertices);
    let mut agg_inputs = Vec::with_capacity(vertices * state_words.len());
    for v in 0..vertices {
        for w in &state_words {
            let mut per_vertex = w.clone();
            per_vertex.name = format!("v{v}.{}", w.name);
            agg_inputs.push(per_vertex);
        }
    }
    let agg_spec = CircuitSpec {
        name: format!("{name}/aggregation"),
        inputs: agg_inputs,
        output_words: vec![program.aggregate_bits()],
        policy: FlowPolicy::Internal,
        release: None,
        modular: spec.modular,
        dominance: Vec::new(),
    };
    let (agg_report, agg_ranges) = analyze_with(&aggregation, &agg_spec, None);
    let aggregate_interval = agg_report
        .output_intervals
        .first()
        .copied()
        .unwrap_or_else(|| Interval::unsigned(program.aggregate_bits()));

    // --- Noising circuit -------------------------------------------------
    let noising = noising_circuit(program.aggregate_bits(), NOISE_RANDOM_BITS, 0);
    let noising_spec = CircuitSpec {
        name: format!("{name}/noising"),
        inputs: vec![
            WordSpec {
                name: "aggregate".to_string(),
                width: program.aggregate_bits(),
                range: Some(aggregate_interval),
                taint: Taint::Private,
            },
            WordSpec::noise("geom_r1", NOISE_RANDOM_BITS),
            WordSpec::noise("geom_r2", NOISE_RANDOM_BITS),
        ],
        output_words: vec![program.aggregate_bits()],
        policy: FlowPolicy::NoisedRelease,
        release: Some(release.unwrap_or_else(|| ReleaseSpec {
            window: Interval::signed(program.aggregate_bits()),
            description: format!(
                "two's-complement decode at {} bits",
                program.aggregate_bits()
            ),
        })),
        modular: false,
        dominance: Vec::new(),
    };
    let (noising_report, _) = analyze_with(&noising, &noising_spec, None);

    // --- Sensitivity ------------------------------------------------------
    let declared = program.sensitivity();
    let mut assumptions = Vec::new();
    let (model, certified) = certify_sensitivity(
        &spec,
        &name,
        program,
        degree_bound,
        vertices,
        &update,
        &update_ranges,
        &update_report,
        &aggregation,
        &agg_ranges,
        &state_words,
        &message_words,
        aggregate_interval,
        &mut assumptions,
        &mut findings,
    );
    if let Some(c) = certified {
        if declared + 1e-9 < c {
            findings.push(Finding::UnderDeclaredSensitivity {
                program: name.clone(),
                declared,
                certified: c,
                model: model.clone(),
            });
        }
    }

    ProgramReport {
        program: name,
        declared_sensitivity: declared,
        certified_sensitivity: certified,
        model,
        assumptions,
        update: update_report,
        aggregation: agg_report,
        noising: noising_report,
        aggregate_interval,
        findings: dedup_findings(findings),
    }
}

/// Builds the sum-cap configuration for the update circuit: the message
/// input words, capped by the spec's mass-conservation bound.  Applied
/// only when every message range is provably non-negative (subset sums
/// of non-negative terms stay under the cap).
fn update_sum_cap(
    update: &Circuit,
    spec: &ProgramSpec,
    state_words: &[WordSpec],
    message_words: &[WordSpec],
    degree_bound: usize,
) -> Option<(Vec<Vec<WireId>>, i128)> {
    let cap = spec.message_sum_cap?;
    if message_words.iter().any(|w| w.effective_range().lo < 0) {
        return None;
    }
    let mut widths: Vec<u32> = state_words.iter().map(|w| w.width).collect();
    for _ in 0..degree_bound {
        widths.extend(message_words.iter().map(|w| w.width));
    }
    let words = input_words(update, &widths).ok()?;
    Some((words[state_words.len()..].to_vec(), cap))
}

/// Certifies the declared sensitivity under the program's model.
/// Returns the model name and the certified bound (when numeric).
#[allow(clippy::too_many_arguments)]
fn certify_sensitivity(
    spec: &ProgramSpec,
    name: &str,
    program: &dyn SecureVertexProgram,
    degree_bound: usize,
    vertices: usize,
    update: &Circuit,
    update_ranges: &RangeAnalysis,
    update_report: &CircuitReport,
    aggregation: &Circuit,
    agg_ranges: &RangeAnalysis,
    state_words: &[WordSpec],
    message_words: &[WordSpec],
    aggregate_interval: Interval,
    assumptions: &mut Vec<String>,
    findings: &mut Vec<Finding>,
) -> (String, Option<f64>) {
    match &spec.sensitivity_model {
        SensitivityModel::Unspecified => ("unspecified".to_string(), None),
        SensitivityModel::Modular { reason } => {
            assumptions.push(format!(
                "modular program, sensitivity not certified: {reason}"
            ));
            ("modular".to_string(), None)
        }
        SensitivityModel::OutputRange => {
            // Any two neighbouring runs land in the certified aggregate
            // interval, so its diameter bounds the sensitivity.
            (
                "output-range".to_string(),
                Some(aggregate_interval.width() as f64),
            )
        }
        SensitivityModel::LocalizedDelta {
            changed_state_words,
        } => {
            // The update must be state-local: state outputs never read
            // messages, message outputs are constant.
            check_update_locality(
                name,
                update,
                state_words,
                message_words,
                degree_bound,
                findings,
            );
            let certified = decompose_aggregation(
                name,
                program,
                aggregation,
                agg_ranges,
                state_words,
                vertices,
                findings,
            );
            assumptions.push(format!(
                "a neighbouring edge changes at most {changed_state_words} state word(s), all at \
                 one vertex (out-degree encoding)"
            ));
            ("localized-delta".to_string(), certified)
        }
        SensitivityModel::DecomposedCounting {
            max_changed_terms,
            lemma,
        } => {
            let per_term = decompose_aggregation(
                name,
                program,
                aggregation,
                agg_ranges,
                state_words,
                vertices,
                findings,
            );
            assumptions.push(lemma.clone());
            (
                "decomposed-counting".to_string(),
                per_term.map(|w| w * *max_changed_terms as f64),
            )
        }
        SensitivityModel::GeometricContraction {
            damping_shift,
            lemma,
        } => {
            assumptions.push(lemma.clone());
            check_contraction(
                name,
                update,
                update_ranges,
                state_words,
                message_words,
                degree_bound,
                *damping_shift,
                findings,
            );
            let d = 1.0 / f64::from(1u32 << *damping_shift);
            (
                "geometric-contraction".to_string(),
                Some(2.0 * d / (1.0 - d)),
            )
        }
        SensitivityModel::ExternalLemma { lemma, premises } => {
            assumptions.push(lemma.clone());
            for premise in premises {
                check_premise(
                    name,
                    premise,
                    update_report,
                    state_words,
                    message_words,
                    findings,
                );
            }
            ("external-lemma".to_string(), None)
        }
    }
}

/// Verifies a state-local update: state outputs depend only on state
/// inputs, message outputs on nothing at all.
fn check_update_locality(
    name: &str,
    update: &Circuit,
    state_words: &[WordSpec],
    message_words: &[WordSpec],
    degree_bound: usize,
    findings: &mut Vec<Finding>,
) {
    let mut widths: Vec<u32> = state_words.iter().map(|w| w.width).collect();
    for _ in 0..degree_bound {
        widths.extend(message_words.iter().map(|w| w.width));
    }
    let Ok(words) = input_words(update, &widths) else {
        return; // Already reported as a layout mismatch.
    };
    // Group 0 = state wires, group 1 = message wires.
    let mut wire_group: BTreeMap<WireId, usize> = BTreeMap::new();
    for (i, word) in words.iter().enumerate() {
        let group = usize::from(i >= state_words.len());
        for &w in word {
            wire_group.insert(w, group);
        }
    }
    let deps = GroupDeps::of(update, &wire_group, 2);
    let outputs = update.outputs();
    let state_bits: usize = state_words.iter().map(|w| w.width as usize).sum();
    if outputs.len() < state_bits {
        return;
    }
    let state_deps = deps.groups_of(&outputs[..state_bits]);
    if state_deps.contains(&1) {
        findings.push(Finding::DecompositionFailed {
            program: name.to_string(),
            detail: "state outputs read message inputs; the update is not state-local".to_string(),
        });
    }
    let message_deps = deps.groups_of(&outputs[state_bits..]);
    if !message_deps.is_empty() {
        findings.push(Finding::DecompositionFailed {
            program: name.to_string(),
            detail: "message outputs are not constant; a changed vertex could propagate"
                .to_string(),
        });
    }
}

/// Verifies the aggregation is a sum of per-vertex terms and returns the
/// worst-case contribution of one changed vertex: (terms touching that
/// vertex) x (widest term interval).
fn decompose_aggregation(
    name: &str,
    program: &dyn SecureVertexProgram,
    aggregation: &Circuit,
    agg_ranges: &RangeAnalysis,
    state_words: &[WordSpec],
    vertices: usize,
    findings: &mut Vec<Finding>,
) -> Option<f64> {
    let fail = |findings: &mut Vec<Finding>, detail: String| {
        findings.push(Finding::DecompositionFailed {
            program: name.to_string(),
            detail,
        });
        None
    };
    let Some(sum) = aggregation
        .gadgets()
        .iter()
        .rev()
        .find(|e| e.kind == GadgetKind::Sum && e.output == aggregation.outputs())
    else {
        return fail(
            findings,
            "no sum gadget produces the aggregation output".to_string(),
        );
    };

    // Per-vertex input groups.
    let state_bits = program.state_bits() as usize;
    let mut widths = Vec::with_capacity(vertices * state_words.len());
    for _ in 0..vertices {
        widths.extend(state_words.iter().map(|w| w.width));
    }
    let words = input_words(aggregation, &widths).ok()?;
    let mut wire_group: BTreeMap<WireId, usize> = BTreeMap::new();
    for (i, word) in words.iter().enumerate() {
        let vertex = i / state_words.len().max(1);
        for &w in word {
            wire_group.insert(w, vertex);
        }
    }
    let _ = state_bits;
    let deps = GroupDeps::of(aggregation, &wire_group, vertices.max(1));

    let mut per_vertex_terms = vec![0u64; vertices];
    let mut max_width = 0i128;
    for term in &sum.inputs {
        let groups = deps.groups_of(term);
        if groups.len() > 1 {
            return fail(
                findings,
                format!("a sum term depends on {} vertices", groups.len()),
            );
        }
        if let Some(&v) = groups.first() {
            per_vertex_terms[v] += 1;
            max_width = max_width.max(agg_ranges.interval_of(term).width());
        }
    }
    let worst_terms = per_vertex_terms.iter().copied().max().unwrap_or(0);
    Some(worst_terms as f64 * max_width as f64)
}

/// Verifies the geometric-contraction premise on the update circuit: a
/// single-slot message delta of X leaves the first state word (the rank)
/// within X >> damping_shift plus rounding slack, and each outgoing
/// message within the rank delta plus slack.
#[allow(clippy::too_many_arguments)]
fn check_contraction(
    name: &str,
    update: &Circuit,
    update_ranges: &RangeAnalysis,
    state_words: &[WordSpec],
    message_words: &[WordSpec],
    degree_bound: usize,
    damping_shift: u32,
    findings: &mut Vec<Finding>,
) {
    let mut widths: Vec<u32> = state_words.iter().map(|w| w.width).collect();
    for _ in 0..degree_bound {
        widths.extend(message_words.iter().map(|w| w.width));
    }
    let Ok(words) = input_words(update, &widths) else {
        return;
    };
    let x = message_words
        .first()
        .map(|w| w.effective_range().hi)
        .unwrap_or(0);
    // Perturb one incoming slot by up to X; everything else identical.
    let seeds = vec![(words[state_words.len()].clone(), Interval::new(-x, x))];
    let deltas = DeltaAnalysis::run(update.gadgets(), update_ranges, &seeds, &words);

    let state_bits: usize = state_words.iter().map(|w| w.width as usize).sum();
    let rank_width = state_words.first().map(|w| w.width as usize).unwrap_or(0);
    let outputs = update.outputs();
    if outputs.len() < state_bits || rank_width == 0 {
        return;
    }
    let rank_out = &outputs[..rank_width];
    let rank_delta = deltas.delta_of(rank_out);
    let bound = (x >> damping_shift) + 2;
    if rank_delta.lo < -bound || rank_delta.hi > bound {
        findings.push(Finding::ContractionViolated {
            program: name.to_string(),
            detail: format!(
                "a message delta of {x} yields a rank delta of {rank_delta}, exceeding the damped \
                 bound [{}, {}] for shift {damping_shift}",
                -bound, bound
            ),
        });
    }
    // Outgoing messages must not amplify the rank delta.
    let msg_bits: usize = message_words.iter().map(|w| w.width as usize).sum();
    let msg_bound = bound + 2;
    for d in 0..degree_bound {
        let start = state_bits + d * msg_bits;
        if outputs.len() < start + msg_bits || msg_bits == 0 {
            break;
        }
        let out_word = &outputs[start..start + msg_bits];
        let md = deltas.delta_of(out_word);
        if md.lo < -msg_bound || md.hi > msg_bound {
            findings.push(Finding::ContractionViolated {
                program: name.to_string(),
                detail: format!(
                    "outgoing message {d} delta {md} exceeds the rank delta bound [{}, {}]",
                    -msg_bound, msg_bound
                ),
            });
        }
    }
}

/// Checks one external-lemma range premise against the certified update
/// output intervals.
fn check_premise(
    name: &str,
    premise: &RangePremise,
    update_report: &CircuitReport,
    state_words: &[WordSpec],
    message_words: &[WordSpec],
    findings: &mut Vec<Finding>,
) {
    match premise {
        RangePremise::StateWordWithin { index, range } => {
            let Some(iv) = update_report.output_intervals.get(*index) else {
                return;
            };
            if !range.contains_interval(*iv) {
                findings.push(Finding::PremiseViolated {
                    program: name.to_string(),
                    premise: format!(
                        "state word '{}' stays within {range}",
                        state_words
                            .get(*index)
                            .map(|w| w.name.as_str())
                            .unwrap_or("?")
                    ),
                    certified: *iv,
                });
            }
        }
        RangePremise::MessagesWithin { range } => {
            let words_per_slot = message_words.len().max(1);
            for (k, iv) in update_report
                .output_intervals
                .iter()
                .skip(state_words.len())
                .enumerate()
            {
                if !range.contains_interval(*iv) {
                    let w = &message_words[k % words_per_slot];
                    findings.push(Finding::PremiseViolated {
                        program: name.to_string(),
                        premise: format!("message word '{}' stays within {range}", w.name),
                        certified: *iv,
                    });
                }
            }
        }
    }
}
