//! Input-group dependency analysis.
//!
//! Tracks, per wire, which *groups* of input wires the wire can depend
//! on, as a small bitset propagated through the gate list.  The
//! sensitivity certifier uses this twice: to prove an aggregation
//! decomposes into per-vertex terms (each term depends on at most one
//! vertex's state) and to prove an update circuit is state-local (its
//! state outputs never read the message inputs).

use std::collections::BTreeMap;

use dstress_circuit::{Circuit, Gate, WireId};

/// Per-wire group-dependency bitsets.
pub struct GroupDeps {
    blocks: usize,
    bits: Vec<u64>,
}

impl GroupDeps {
    /// Propagates group membership through `circuit`.  `wire_group` maps
    /// input *wires* to their group id in `0..num_groups`; input wires
    /// missing from the map (and constants) depend on nothing.
    pub fn of(circuit: &Circuit, wire_group: &BTreeMap<WireId, usize>, num_groups: usize) -> Self {
        let gates = circuit.gates();
        let blocks = num_groups.div_ceil(64).max(1);
        let mut bits = vec![0u64; gates.len() * blocks];
        for (i, gate) in gates.iter().enumerate() {
            match *gate {
                Gate::Input(_) => {
                    if let Some(&g) = wire_group.get(&i) {
                        bits[i * blocks + g / 64] |= 1u64 << (g % 64);
                    }
                }
                Gate::ConstFalse | Gate::ConstTrue => {}
                Gate::Not(a) => {
                    for k in 0..blocks {
                        bits[i * blocks + k] = bits[a * blocks + k];
                    }
                }
                Gate::Xor(a, b) | Gate::And(a, b) => {
                    for k in 0..blocks {
                        bits[i * blocks + k] = bits[a * blocks + k] | bits[b * blocks + k];
                    }
                }
            }
        }
        GroupDeps { blocks, bits }
    }

    /// The sorted set of groups a word of wires depends on.
    pub fn groups_of(&self, word: &[WireId]) -> Vec<usize> {
        let mut acc = vec![0u64; self.blocks];
        for &w in word {
            for (k, slot) in acc.iter_mut().enumerate() {
                *slot |= self.bits[w * self.blocks + k];
            }
        }
        let mut out = Vec::new();
        for (k, &block) in acc.iter().enumerate() {
            let mut b = block;
            while b != 0 {
                let j = b.trailing_zeros() as usize;
                out.push(k * 64 + j);
                b &= b - 1;
            }
        }
        out
    }
}
