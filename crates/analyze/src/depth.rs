//! Independent AND-depth recomputation.
//!
//! `CircuitStats` and `CircuitLayers` both compute AND depth with a
//! forward dynamic program over the gate list.  The cost model and the
//! round scheduler trust those numbers, so the analyzer recomputes depth
//! with a *different* algorithm — an iterative memoized depth-first
//! search from the output wires — and the caller asserts agreement,
//! turning any future divergence between the two implementations into a
//! typed [`crate::report::Finding::DepthMismatch`].

use dstress_circuit::{Circuit, Gate, WireId};

/// AND depth of the cone feeding the circuit's outputs, computed by DFS.
pub fn output_and_depth(circuit: &Circuit) -> usize {
    let gates = circuit.gates();
    let mut memo: Vec<Option<usize>> = vec![None; gates.len()];
    let mut best = 0;
    for &out in circuit.outputs() {
        best = best.max(depth_of(gates, &mut memo, out));
    }
    best
}

/// AND depth over every wire in the circuit (dead gates included): the
/// number of AND rounds a layered execution schedules.
pub fn all_wires_and_depth(circuit: &Circuit) -> usize {
    let gates = circuit.gates();
    let mut memo: Vec<Option<usize>> = vec![None; gates.len()];
    let mut best = 0;
    for w in 0..gates.len() {
        best = best.max(depth_of(gates, &mut memo, w));
    }
    best
}

/// Iterative post-order DFS (an explicit stack: update circuits reach
/// tens of thousands of gates, too deep for recursion).
fn depth_of(gates: &[Gate], memo: &mut [Option<usize>], root: WireId) -> usize {
    if let Some(d) = memo[root] {
        return d;
    }
    let mut stack = vec![root];
    while let Some(&w) = stack.last() {
        if memo[w].is_some() {
            stack.pop();
            continue;
        }
        let (ops, and_here): (Vec<WireId>, bool) = match gates[w] {
            Gate::Input(_) | Gate::ConstFalse | Gate::ConstTrue => (Vec::new(), false),
            Gate::Not(a) => (vec![a], false),
            Gate::Xor(a, b) => (vec![a, b], false),
            Gate::And(a, b) => (vec![a, b], true),
        };
        let pending: Vec<WireId> = ops.iter().copied().filter(|&o| memo[o].is_none()).collect();
        if pending.is_empty() {
            let base = ops.iter().map(|&o| memo[o].unwrap()).max().unwrap_or(0);
            memo[w] = Some(base + usize::from(and_here));
            stack.pop();
        } else {
            stack.extend(pending);
        }
    }
    memo[root].unwrap()
}
