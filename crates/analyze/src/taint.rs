//! Information-flow (taint) analysis over the raw gate list.
//!
//! Input wires are labelled from the spec — `Private` for participant
//! data, `Noise` for the distributed noise-generation randomness — and
//! labels propagate forward as a union through every gate.  Under the
//! [`FlowPolicy::NoisedRelease`] policy, every output wire that carries
//! private taint must *also* carry noise taint: private data may only be
//! released through the sanctioned noise path of
//! `dstress_core::noise_circuit`.  A violation produces a
//! [`Finding::PrivateLeak`] with a witness: a concrete wire path from the
//! leaking output back to a private input, along which no noise ever
//! mixes in.

use std::collections::BTreeMap;

use dstress_circuit::{Circuit, FlowPolicy, Gate, Taint, WireId};

use crate::report::Finding;

/// Bit flag: the wire may depend on private input data.
pub const PRIVATE: u8 = 1;
/// Bit flag: the wire may depend on noise randomness.
pub const NOISE: u8 = 2;

/// Result of the taint pass: one label per wire.
pub struct TaintAnalysis {
    /// `PRIVATE` / `NOISE` flag union per wire.
    pub labels: Vec<u8>,
    /// Leak findings (empty unless the policy is `NoisedRelease` and an
    /// output violates it).
    pub findings: Vec<Finding>,
}

/// Runs the taint pass.  `inputs` lists each input word's wires, its
/// name (for findings) and its declared taint.
pub fn analyze_taint(
    circuit: &Circuit,
    subject: &str,
    inputs: &[(Vec<WireId>, String, Taint)],
    policy: FlowPolicy,
) -> TaintAnalysis {
    let gates = circuit.gates();

    // Label per input *index* (input wires are `Gate::Input(n)` gates).
    let mut input_labels: BTreeMap<usize, u8> = BTreeMap::new();
    let mut input_words: BTreeMap<usize, String> = BTreeMap::new();
    for (word, name, taint) in inputs {
        let label = match taint {
            Taint::Public => 0,
            Taint::Private => PRIVATE,
            Taint::Noise => NOISE,
        };
        for &w in word {
            if let Gate::Input(n) = gates[w] {
                input_labels.insert(n, label);
                input_words.insert(n, name.clone());
            }
        }
    }

    let mut labels = vec![0u8; gates.len()];
    for (i, gate) in gates.iter().enumerate() {
        labels[i] = match *gate {
            // Unlabelled inputs are conservatively private: an input the
            // spec forgot to mention must not silently launder data.
            Gate::Input(n) => input_labels.get(&n).copied().unwrap_or(PRIVATE),
            Gate::ConstFalse | Gate::ConstTrue => 0,
            Gate::Xor(a, b) | Gate::And(a, b) => labels[a] | labels[b],
            Gate::Not(a) => labels[a],
        };
    }

    let mut findings = Vec::new();
    if policy == FlowPolicy::NoisedRelease {
        for (oi, &out) in circuit.outputs().iter().enumerate() {
            let l = labels[out];
            if l & PRIVATE != 0 && l & NOISE == 0 {
                let witness = witness_path(circuit, &labels, out);
                let source_wire = *witness.last().unwrap_or(&out);
                let source_word = match gates[source_wire] {
                    Gate::Input(n) => input_words
                        .get(&n)
                        .cloned()
                        .unwrap_or_else(|| format!("input {n}")),
                    _ => "unknown".to_string(),
                };
                findings.push(Finding::PrivateLeak {
                    subject: subject.to_string(),
                    output: oi,
                    output_wire: out,
                    source_wire,
                    source_word,
                    witness,
                });
            }
        }
    }

    TaintAnalysis { labels, findings }
}

/// Walks backwards from a leaking output along private-tainted,
/// noise-free operands until a private input wire is reached.  Every hop
/// on the returned path carries private taint and no noise, so the path
/// itself is the proof that the leak bypasses the noise gadget.  Long
/// paths are truncated in the middle; the source end is always kept.
fn witness_path(circuit: &Circuit, labels: &[u8], from: WireId) -> Vec<WireId> {
    let gates = circuit.gates();
    let tainted = |w: WireId| labels[w] & PRIVATE != 0 && labels[w] & NOISE == 0;
    let mut path = vec![from];
    let mut w = from;
    loop {
        let next = match gates[w] {
            Gate::Input(_) | Gate::ConstFalse | Gate::ConstTrue => None,
            Gate::Not(a) => Some(a).filter(|&a| tainted(a)),
            Gate::Xor(a, b) | Gate::And(a, b) => {
                // At least one operand must itself be private-and-unnoised
                // (noise flags only ever union in, so a noise-free result
                // has a noise-free private operand).
                [a, b].into_iter().find(|&x| tainted(x))
            }
        };
        match next {
            Some(n) => {
                path.push(n);
                w = n;
            }
            None => break,
        }
    }
    if path.len() > 24 {
        // Keep both ends: the output neighbourhood and the source.
        let tail: Vec<WireId> = path[path.len() - 8..].to_vec();
        path.truncate(16);
        path.extend(tail);
    }
    path
}
