//! Static analysis for DStress circuits: certify before anything runs.
//!
//! DStress (EuroSys 2017) computes differentially private graph and
//! finance analytics by running Boolean circuits under MPC and releasing
//! only noised aggregates.  Three properties of those circuits are
//! load-bearing for both correctness and privacy, and all three are
//! checkable *statically*, before a single OT is performed:
//!
//! 1. **Ranges** ([`range`]) — no adder, multiplier or divider ever
//!    wraps its word width under the declared input ranges, and every
//!    released value lands inside its recovery window (the dlog table's
//!    search range, the two's-complement decode window).  Wrapping would
//!    silently corrupt results *and* break the sensitivity argument that
//!    calibrates the noise.
//! 2. **Sensitivity** ([`programs`]) — each `SecureVertexProgram`
//!    declares a sensitivity that calibrates its release noise; the
//!    analyzer recomputes a bound under the program's declared model
//!    (output range, per-vertex decomposition, geometric contraction, or
//!    an external lemma with checkable premises) and fails hard when the
//!    declaration is smaller than the certified bound.
//! 3. **Information flow** ([`taint`]) — private inputs may reach a
//!    released output only through the distributed-noise path; any other
//!    route is reported with a concrete witness wire path.
//!
//! The entry points are [`analyze`] for one circuit with a
//! [`CircuitSpec`], and [`analyze_program`] for a whole
//! `SecureVertexProgram` (update + aggregation + noising, composed).
//! Results come back as a [`CircuitReport`] / [`ProgramReport`] whose
//! [`Finding`] list is empty exactly when the artifact is certified;
//! `ci.sh` gates on that and `repro -- analyze` records the certified
//! bounds next to the benchmark numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deps;
pub mod depth;
pub mod programs;
pub mod range;
pub mod relational;
pub mod report;
pub mod taint;

use std::collections::BTreeSet;

use dstress_circuit::{Circuit, CircuitSpec, Gate, Interval, Taint, WireId};
use dstress_circuit::{CircuitLayers, CircuitStats};

pub use programs::{analyze_program, ProgramReport};
pub use range::{RangeAnalysis, RangeConfig};
pub use report::{CircuitReport, Finding};

/// Analyzes one circuit against its spec: depth cross-check, range
/// certification, release-window check and information-flow check.
pub fn analyze(circuit: &Circuit, spec: &CircuitSpec) -> CircuitReport {
    analyze_with(circuit, spec, None).0
}

/// [`analyze`], additionally taking the mass-conservation sum cap and
/// returning the raw range analysis for callers (the program certifier)
/// that need per-word intervals beyond the outputs.
pub(crate) fn analyze_with(
    circuit: &Circuit,
    spec: &CircuitSpec,
    sum_cap: Option<(Vec<Vec<WireId>>, i128)>,
) -> (CircuitReport, RangeAnalysis) {
    let mut findings = Vec::new();

    // Depth: recompute with a DFS and compare against the forward DPs
    // the cost model and round scheduler rely on.
    let stats = CircuitStats::of(circuit);
    let layers = CircuitLayers::of(circuit);
    let out_depth = depth::output_and_depth(circuit);
    let all_depth = depth::all_wires_and_depth(circuit);
    if out_depth != stats.and_depth || all_depth != layers.rounds() {
        findings.push(Finding::DepthMismatch {
            subject: spec.name.clone(),
            recomputed: (out_depth, all_depth),
            stats: stats.and_depth,
            layered: layers.rounds(),
        });
    }

    // Resolve the declared input words to wire vectors.
    let widths: Vec<u32> = spec.inputs.iter().map(|s| s.width).collect();
    let words = match input_words(circuit, &widths) {
        Ok(words) => words,
        Err(detail) => {
            findings.push(Finding::LayoutMismatch {
                subject: spec.name.clone(),
                detail,
            });
            Vec::new()
        }
    };

    // Range pass.
    let cfg = RangeConfig {
        subject: spec.name.clone(),
        inputs: words
            .iter()
            .zip(&spec.inputs)
            .map(|(w, s)| (w.clone(), s.effective_range()))
            .collect(),
        modular: spec.modular,
        dominance: spec.dominance.clone(),
        sum_cap,
    };
    let mut ranges = RangeAnalysis::run(circuit, &cfg);
    findings.append(&mut ranges.findings);

    // Output words and their certified intervals.
    let out_words = split_outputs(circuit, spec, &mut findings);
    let output_intervals: Vec<Interval> = out_words.iter().map(|w| ranges.interval_of(w)).collect();

    // Release window.
    if let Some(rel) = &spec.release {
        for iv in &output_intervals {
            if !rel.window.contains_interval(*iv) {
                findings.push(Finding::ReleaseOutOfWindow {
                    subject: spec.name.clone(),
                    certified: *iv,
                    window: rel.window,
                    window_source: rel.description.clone(),
                });
            }
        }
    }

    // Information flow.
    let taint_inputs: Vec<(Vec<WireId>, String, Taint)> = words
        .iter()
        .zip(&spec.inputs)
        .map(|(w, s)| (w.clone(), s.name.clone(), s.taint))
        .collect();
    let mut taints = taint::analyze_taint(circuit, &spec.name, &taint_inputs, spec.policy);
    findings.append(&mut taints.findings);

    let report = CircuitReport {
        subject: spec.name.clone(),
        and_gates: stats.and_gates,
        total_gates: circuit.gates().len(),
        and_depth: out_depth,
        and_depth_all: all_depth,
        output_intervals,
        findings: dedup_findings(findings),
    };
    (report, ranges)
}

/// Resolves declared input word widths to the circuit's input wires, in
/// input-index order.
pub(crate) fn input_words(circuit: &Circuit, widths: &[u32]) -> Result<Vec<Vec<WireId>>, String> {
    let mut wire_of: Vec<Option<WireId>> = vec![None; circuit.num_inputs()];
    for (i, gate) in circuit.gates().iter().enumerate() {
        if let Gate::Input(n) = *gate {
            if wire_of[n].is_none() {
                wire_of[n] = Some(i);
            }
        }
    }
    let total: u64 = widths.iter().map(|&w| w as u64).sum();
    if total != circuit.num_inputs() as u64 {
        return Err(format!(
            "declared input words cover {total} bits but the circuit has {} inputs",
            circuit.num_inputs()
        ));
    }
    let mut words = Vec::with_capacity(widths.len());
    let mut idx = 0usize;
    for &w in widths {
        let mut word = Vec::with_capacity(w as usize);
        for _ in 0..w {
            match wire_of[idx] {
                Some(x) => word.push(x),
                None => return Err(format!("input {idx} never materializes as a wire")),
            }
            idx += 1;
        }
        words.push(word);
    }
    Ok(words)
}

/// Splits the flat output list into the declared output words.
fn split_outputs(
    circuit: &Circuit,
    spec: &CircuitSpec,
    findings: &mut Vec<Finding>,
) -> Vec<Vec<WireId>> {
    let outputs = circuit.outputs();
    if spec.output_words.is_empty() {
        return vec![outputs.to_vec()];
    }
    let total: u64 = spec.output_words.iter().map(|&w| w as u64).sum();
    if total != outputs.len() as u64 {
        findings.push(Finding::LayoutMismatch {
            subject: spec.name.clone(),
            detail: format!(
                "declared output words cover {total} bits but the circuit has {} outputs",
                outputs.len()
            ),
        });
        return vec![outputs.to_vec()];
    }
    let mut words = Vec::with_capacity(spec.output_words.len());
    let mut idx = 0usize;
    for &w in &spec.output_words {
        words.push(outputs[idx..idx + w as usize].to_vec());
        idx += w as usize;
    }
    words
}

/// Order-preserving dedup keyed by the rendered finding text (the same
/// defect can surface from several passes).
pub(crate) fn dedup_findings(findings: Vec<Finding>) -> Vec<Finding> {
    let mut seen = BTreeSet::new();
    findings
        .into_iter()
        .filter(|f| seen.insert(f.to_string()))
        .collect()
}
