//! Soundness proptests for the interval domain: on randomly generated
//! gadget circuits, any concrete evaluation on inputs drawn from the
//! declared ranges must land inside every certified interval.

use dstress_analyze::{RangeAnalysis, RangeConfig};
use dstress_circuit::builder::{decode_word, decode_word_signed, encode_word, CircuitBuilder};
use dstress_circuit::{evaluate, Interval};
use proptest::prelude::*;

const WIDTH: u32 = 16;

/// Builds a random gadget DAG from an op stream.  Every op result is
/// exported as an output word so the proptest can observe it concretely.
/// Ops are drawn from the non-wrapping repertoire the shipped circuits
/// use (including the clamp idiom, whose inner subtraction *does* wrap
/// on the unselected branch).
fn build(ops: &[u64], input_his: &[u64]) -> (dstress_circuit::Circuit, Vec<Vec<usize>>) {
    let mut b = CircuitBuilder::new();
    let mut words: Vec<Vec<usize>> = input_his.iter().map(|_| b.input_word(WIDTH)).collect();
    let mut exported: Vec<Vec<usize>> = Vec::new();
    for &op in ops {
        let i = (op >> 8) as usize % words.len();
        let j = (op >> 24) as usize % words.len();
        let (x, y) = (words[i].clone(), words[j].clone());
        let out = match op % 7 {
            0 => b.add(&x, &y),
            1 => {
                // clamp: max(x - y, 0) via the guarded mux idiom.
                let lt = b.lt_unsigned(&x, &y);
                let diff = b.sub(&x, &y);
                let zero = b.const_word(0, WIDTH);
                b.mux_word(lt, &zero, &diff)
            }
            2 => b.min_unsigned(&x, &y),
            3 => b.max_unsigned(&x, &y),
            4 => b.shr_const(&x, 1 + (op >> 40) as u32 % 3),
            5 => b.mul_fixed(&x, &y, 8),
            _ => {
                let lt = b.lt_unsigned(&x, &y);
                b.mux_word(lt, &x, &y)
            }
        };
        b.output_word(&out);
        exported.push(out.clone());
        words.push(out);
    }
    (b.build().unwrap(), exported)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn certified_intervals_contain_concrete_runs(
        ops in proptest::collection::vec(any::<u64>(), 1..24),
        his in proptest::collection::vec(1u64..4000, 2..4),
        vals in proptest::collection::vec(any::<u64>(), 2..4),
        ) {
        let (circuit, exported) = build(&ops, &his);
        let input_words: Vec<Vec<usize>> = {
            // Recover the input words from the builder layout: inputs are
            // the first `his.len() * WIDTH` wires in order.
            (0..his.len())
                .map(|k| ((k * WIDTH as usize)..((k + 1) * WIDTH as usize)).collect())
                .collect()
        };
        let cfg = RangeConfig::new(
            "soundness",
            input_words
                .iter()
                .zip(&his)
                .map(|(w, &hi)| (w.clone(), Interval::new(0, hi as i128)))
                .collect(),
        );
        let ra = RangeAnalysis::run(&circuit, &cfg);
        // Random compositions can genuinely overflow (chained adds and
        // fixed-point products); soundness of the certified intervals is
        // only claimed for certified circuits.
        prop_assume!(ra.findings.is_empty());

        let mut bits = Vec::new();
        for (k, &hi) in his.iter().enumerate() {
            let v = vals.get(k).copied().unwrap_or(0) % (hi + 1);
            bits.extend(encode_word(v, WIDTH));
        }
        let out = evaluate(&circuit, &bits).unwrap();
        let mut offset = 0usize;
        for word in &exported {
            let w = word.len();
            let slice = &out[offset..offset + w];
            offset += w;
            let iv = ra.interval_of(word);
            let concrete = if iv.lo < 0 {
                decode_word_signed(slice)
            } else {
                decode_word(slice) as i64
            };
            prop_assert!(
                iv.contains(concrete as i128),
                "concrete {} outside certified {} for word {:?}",
                concrete,
                iv,
                word
            );
        }
    }
}
