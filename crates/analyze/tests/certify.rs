//! Positive certification: every shipped program must come back with a
//! clean report — declared sensitivities certified, no overflow, no leak.

use dstress_analyze::analyze_program;
use dstress_core::analytics::{DegreeHistogramProgram, PageRankProgram, SsspProgram, WccProgram};
use dstress_core::program::{CounterProgram, SecureVertexProgram};
use dstress_graph::VertexId;

fn assert_clean(report: &dstress_analyze::ProgramReport) {
    assert!(
        report.is_clean(),
        "{} not certified:\n{}",
        report.program,
        report
            .all_findings()
            .iter()
            .map(|f| format!("  - {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn degree_histogram_certifies() {
    let p = DegreeHistogramProgram {
        width: 16,
        lo: 2,
        hi: 5,
    };
    let report = analyze_program(&p, 4, 8, None);
    assert_clean(&report);
    assert_eq!(report.certified_sensitivity, Some(1.0));
    assert!(report.declared_sensitivity >= 1.0);
}

#[test]
fn wcc_certifies() {
    let p = WccProgram {
        width: 16,
        rounds: 4,
    };
    let report = analyze_program(&p, 4, 8, None);
    assert_clean(&report);
    assert_eq!(report.certified_sensitivity, Some(1.0));
}

#[test]
fn sssp_certifies() {
    let p = SsspProgram {
        width: 16,
        source: VertexId(0),
        target: VertexId(5),
        rounds: 6,
    };
    let report = analyze_program(&p, 4, 8, None);
    assert_clean(&report);
    assert_eq!(report.certified_sensitivity, Some(p.cap() as f64));
}

#[test]
fn pagerank_certifies() {
    let p = PageRankProgram {
        frac_bits: 10,
        target: VertexId(3),
        rounds: 5,
        vertices: 8,
    };
    let report = analyze_program(&p, 4, 8, None);
    assert_clean(&report);
    // 2d/(1-d) with d = 1/4 is exactly 2/3 of a rank unit.
    let c = report.certified_sensitivity.expect("contraction certifies");
    assert!((c - 2.0 / 3.0).abs() < 1e-9);
    assert!(p.sensitivity() >= c);
}

#[test]
fn counter_is_modular_and_clean() {
    let p = CounterProgram {
        width: 16,
        rounds: 3,
    };
    let report = analyze_program(&p, 4, 8, None);
    assert_clean(&report);
    // Modular programs are certified only under the wrap-around caveat.
    assert_eq!(report.certified_sensitivity, None);
    assert!(!report.assumptions.is_empty());
}

#[test]
fn unannotated_program_is_flagged() {
    struct Bare;
    impl SecureVertexProgram for Bare {
        fn state_bits(&self) -> u32 {
            4
        }
        fn message_bits(&self) -> u32 {
            4
        }
        fn aggregate_bits(&self) -> u32 {
            8
        }
        fn iterations(&self) -> u32 {
            1
        }
        fn sensitivity(&self) -> f64 {
            1.0
        }
        fn encode_initial_state(&self, _graph: &dstress_graph::Graph, _v: VertexId) -> Vec<bool> {
            vec![false; 4]
        }
        fn update_circuit(&self, degree_bound: usize) -> dstress_circuit::Circuit {
            let mut b = dstress_circuit::builder::CircuitBuilder::new();
            let s = b.input_word(4);
            let msgs: Vec<_> = (0..degree_bound).map(|_| b.input_word(4)).collect();
            b.output_word(&s);
            for m in &msgs {
                b.output_word(m);
            }
            b.build().unwrap()
        }
        fn aggregation_circuit(&self, vertices: usize) -> dstress_circuit::Circuit {
            let mut b = dstress_circuit::builder::CircuitBuilder::new();
            let states: Vec<_> = (0..vertices).map(|_| b.input_word(4)).collect();
            let wide: Vec<_> = states.iter().map(|s| b.zero_extend(s, 8)).collect();
            let total = b.sum(&wide);
            b.output_word(&total);
            b.build().unwrap()
        }
        fn decode_aggregate(&self, bits: &[bool]) -> f64 {
            dstress_circuit::builder::decode_word(bits) as f64
        }
    }
    let report = analyze_program(&Bare, 2, 4, None);
    assert!(!report.is_clean());
    assert!(report
        .all_findings()
        .iter()
        .any(|f| matches!(f, dstress_analyze::Finding::MissingSpec { .. })));
}
