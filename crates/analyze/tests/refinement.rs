//! Unit tests for the range domain's refinements: mux guard refinement,
//! guarded-consumer suppression, declared dominance and the sum cap.

use dstress_analyze::{RangeAnalysis, RangeConfig};
use dstress_circuit::builder::CircuitBuilder;
use dstress_circuit::Interval;

#[test]
fn mux_guard_refines_divider_branch() {
    // prorate = liquid < total ? liquid/total : 1 — the clamp idiom of
    // the Eisenberg–Noe update.  Unrefined, the divider saturates to
    // 2^w - 1 because the divisor may be zero; the guard proves the
    // selected branch stays below one.
    let (w, f) = (16, 5);
    let mut b = CircuitBuilder::new();
    let liquid = b.input_word(w);
    let total = b.input_word(w);
    let short = b.lt_unsigned(&liquid, &total);
    let ratio = b.div_fixed(&liquid, &total, f);
    let one = b.const_word(1 << f, w);
    let prorate = b.mux_word(short, &ratio, &one);
    b.output_word(&prorate);
    let c = b.build().unwrap();

    let cfg = RangeConfig::new(
        "refine-div",
        vec![
            (liquid.clone(), Interval::new(0, 4000)),
            (total.clone(), Interval::new(0, 3000)),
        ],
    );
    let ra = RangeAnalysis::run(&c, &cfg);
    assert!(ra.findings.is_empty(), "{:?}", ra.findings);
    assert_eq!(ra.interval_of(&prorate), Interval::new(0, 32));
}

#[test]
fn guarded_consumer_suppresses_clamped_sub() {
    // mux(a < b, 0, a - b): the subtraction wraps when a < b, but that
    // branch is never selected, so there is no overflow to report and
    // the mux output is non-negative.
    let w = 8;
    let mut b = CircuitBuilder::new();
    let a = b.input_word(w);
    let bb = b.input_word(w);
    let lt = b.lt_unsigned(&a, &bb);
    let diff = b.sub(&a, &bb);
    let zero = b.const_word(0, w);
    let clamped = b.mux_word(lt, &zero, &diff);
    b.output_word(&clamped);
    let c = b.build().unwrap();

    let cfg = RangeConfig::new(
        "clamp",
        vec![
            (a.clone(), Interval::new(0, 200)),
            (bb.clone(), Interval::new(0, 200)),
        ],
    );
    let ra = RangeAnalysis::run(&c, &cfg);
    assert!(ra.findings.is_empty(), "{:?}", ra.findings);
    assert_eq!(ra.interval_of(&clamped), Interval::new(0, 200));
}

#[test]
fn unguarded_wrapping_sub_is_flagged() {
    // The same subtraction without the protecting mux is a genuine
    // overflow at width 8: [-200, 200] fits neither window.
    let w = 8;
    let mut b = CircuitBuilder::new();
    let a = b.input_word(w);
    let bb = b.input_word(w);
    let diff = b.sub(&a, &bb);
    b.output_word(&diff);
    let c = b.build().unwrap();

    let cfg = RangeConfig::new(
        "wrap",
        vec![
            (a.clone(), Interval::new(0, 200)),
            (bb.clone(), Interval::new(0, 200)),
        ],
    );
    let ra = RangeAnalysis::run(&c, &cfg);
    assert!(
        ra.findings
            .iter()
            .any(|f| matches!(f, dstress_analyze::Finding::Overflow { .. })),
        "{:?}",
        ra.findings
    );
}

#[test]
fn dominance_bounds_sub_below() {
    // credit - shortfall with the declared fact credit >= shortfall:
    // non-negative without any guard in the circuit.
    let w = 8;
    let mut b = CircuitBuilder::new();
    let credit = b.input_word(w);
    let shortfall = b.input_word(w);
    let received = b.sub(&credit, &shortfall);
    b.output_word(&received);
    let c = b.build().unwrap();

    let mut cfg = RangeConfig::new(
        "dominance",
        vec![
            (credit.clone(), Interval::new(0, 100)),
            (shortfall.clone(), Interval::new(0, 100)),
        ],
    );
    cfg.dominance.push((0, 1));
    let ra = RangeAnalysis::run(&c, &cfg);
    assert!(ra.findings.is_empty(), "{:?}", ra.findings);
    assert_eq!(ra.interval_of(&received), Interval::new(0, 100));
}

#[test]
fn sum_cap_tightens_message_sums() {
    // Four slots of [0, 100] would naively sum to 400; the declared
    // mass-conservation cap proves 150.
    let w = 16;
    let mut b = CircuitBuilder::new();
    let slots: Vec<_> = (0..4).map(|_| b.input_word(w)).collect();
    let total = b.sum(&slots);
    b.output_word(&total);
    let c = b.build().unwrap();

    let mut cfg = RangeConfig::new(
        "sumcap",
        slots
            .iter()
            .map(|s| (s.clone(), Interval::new(0, 100)))
            .collect(),
    );
    cfg.sum_cap = Some((slots.clone(), 150));
    let ra = RangeAnalysis::run(&c, &cfg);
    assert!(ra.findings.is_empty(), "{:?}", ra.findings);
    assert_eq!(ra.interval_of(&total), Interval::new(0, 150));

    // Without the cap the naive sum is certified instead.
    let cfg2 = RangeConfig::new(
        "nocap",
        slots
            .iter()
            .map(|s| (s.clone(), Interval::new(0, 100)))
            .collect(),
    );
    let ra2 = RangeAnalysis::run(&c, &cfg2);
    assert_eq!(ra2.interval_of(&total), Interval::new(0, 400));
}

#[test]
fn or_of_lt_and_eq_yields_strict_guard() {
    // discount = no_discount ? 0 : one - ratio, where no_discount =
    // or(one < ratio, one == ratio): the EGJ idiom.  On the taken
    // branch ratio < one strictly, so the subtraction stays in [1, one].
    let (w, f) = (16, 5);
    let mut b = CircuitBuilder::new();
    let value = b.input_word(w);
    let orig = b.input_word(w);
    let one = b.const_word(1 << f, w);
    let ratio = b.div_fixed(&value, &orig, f);
    let healthy = b.lt_unsigned(&one, &ratio);
    let at_par = b.eq_word(&one, &ratio);
    let no_discount = b.or(healthy, at_par);
    let discount_raw = b.sub(&one, &ratio);
    let zero = b.const_word(0, w);
    let discount = b.mux_word(no_discount, &zero, &discount_raw);
    b.output_word(&discount);
    let c = b.build().unwrap();

    let cfg = RangeConfig::new(
        "egj-discount",
        vec![
            (value.clone(), Interval::new(0, 5000)),
            (orig.clone(), Interval::new(0, 5000)),
        ],
    );
    let ra = RangeAnalysis::run(&c, &cfg);
    assert!(ra.findings.is_empty(), "{:?}", ra.findings);
    assert_eq!(ra.interval_of(&discount), Interval::new(0, 32));
}
