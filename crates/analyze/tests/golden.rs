//! Golden rejection fixtures: each deliberately broken artifact must be
//! rejected with the exact typed finding, not a generic failure.

use dstress_analyze::{analyze, analyze_program, Finding};
use dstress_circuit::builder::CircuitBuilder;
use dstress_circuit::spec::{CircuitSpec, FlowPolicy, Interval, ReleaseSpec, WordSpec};
use dstress_core::analytics::SsspProgram;
use dstress_core::noise_circuit::noising_circuit;
use dstress_core::program::SecureVertexProgram;
use dstress_graph::{Graph, VertexId};

/// Fixture 1: a width-overflowing gadget.  Two 8-bit inputs up to 200
/// feed an 8-bit adder; the sum reaches 400, which wraps.
#[test]
fn overflowing_adder_is_rejected_with_overflow() {
    let mut b = CircuitBuilder::new();
    let x = b.input_word(8);
    let y = b.input_word(8);
    let s = b.add(&x, &y);
    b.output_word(&s);
    let c = b.build().unwrap();

    let spec = CircuitSpec::internal(
        "golden-overflow",
        vec![
            WordSpec::private("x", 8, Interval::new(0, 200)),
            WordSpec::private("y", 8, Interval::new(0, 200)),
        ],
    );
    let report = analyze(&c, &spec);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    match &report.findings[0] {
        Finding::Overflow {
            subject,
            gadget,
            interval,
            width,
            ..
        } => {
            assert_eq!(subject, "golden-overflow");
            assert_eq!(gadget, "Add");
            assert_eq!(*interval, Interval::new(0, 400));
            assert_eq!(*width, 8);
        }
        other => panic!("expected Overflow, got {other}"),
    }
}

/// Fixture 2: a program whose declared sensitivity undercuts the
/// certified bound.  SSSP certifies `cap = rounds + 1`; declaring 1.0
/// must be a hard error naming both numbers.
struct UnderdeclaredSssp(SsspProgram);

impl SecureVertexProgram for UnderdeclaredSssp {
    fn state_bits(&self) -> u32 {
        self.0.state_bits()
    }
    fn message_bits(&self) -> u32 {
        self.0.message_bits()
    }
    fn aggregate_bits(&self) -> u32 {
        self.0.aggregate_bits()
    }
    fn iterations(&self) -> u32 {
        self.0.iterations()
    }
    fn sensitivity(&self) -> f64 {
        1.0 // deliberately below the certified cap
    }
    fn encode_initial_state(&self, graph: &Graph, v: VertexId) -> Vec<bool> {
        self.0.encode_initial_state(graph, v)
    }
    fn update_circuit(&self, degree_bound: usize) -> dstress_circuit::Circuit {
        self.0.update_circuit(degree_bound)
    }
    fn aggregation_circuit(&self, vertices: usize) -> dstress_circuit::Circuit {
        self.0.aggregation_circuit(vertices)
    }
    fn decode_aggregate(&self, bits: &[bool]) -> f64 {
        self.0.decode_aggregate(bits)
    }
    fn analysis_spec(&self, degree_bound: usize) -> dstress_circuit::spec::ProgramSpec {
        self.0.analysis_spec(degree_bound)
    }
}

#[test]
fn under_declared_sensitivity_is_rejected() {
    let p = UnderdeclaredSssp(SsspProgram {
        width: 16,
        source: VertexId(0),
        target: VertexId(3),
        rounds: 6,
    });
    let report = analyze_program(&p, 4, 8, None);
    let findings = report.all_findings();
    let found = findings.iter().find_map(|f| match f {
        Finding::UnderDeclaredSensitivity {
            program,
            declared,
            certified,
            ..
        } => Some((program.clone(), *declared, *certified)),
        _ => None,
    });
    let (program, declared, certified) =
        found.unwrap_or_else(|| panic!("expected UnderDeclaredSensitivity in {findings:?}"));
    assert_eq!(program, "sssp");
    assert_eq!(declared, 1.0);
    assert_eq!(certified, 7.0); // cap = rounds + 1
}

/// Fixture 3: private data escaping around the noise path.  With
/// `scale_shift > 0` the shifted noise has constant-zero low bits, so
/// the low bits of the released sum are the aggregate's own bits,
/// noise-free — a leak with a concrete witness path.
#[test]
fn leak_around_noise_path_is_rejected() {
    let c = noising_circuit(16, 8, 3);
    let spec = CircuitSpec {
        name: "golden-leak".to_string(),
        inputs: vec![
            WordSpec::private("aggregate", 16, Interval::new(0, 1000)),
            WordSpec::noise("geom_r1", 8),
            WordSpec::noise("geom_r2", 8),
        ],
        output_words: vec![16],
        policy: FlowPolicy::NoisedRelease,
        release: None,
        modular: true, // wrapping noise addition is intended
        dominance: Vec::new(),
    };
    let report = analyze(&c, &spec);
    let leaks: Vec<_> = report
        .findings
        .iter()
        .filter_map(|f| match f {
            Finding::PrivateLeak {
                subject,
                source_word,
                witness,
                ..
            } => Some((subject.clone(), source_word.clone(), witness.clone())),
            _ => None,
        })
        .collect();
    // Exactly the 3 shifted-out low bits leak, each with a witness path
    // starting at the private aggregate word.
    assert_eq!(leaks.len(), 3, "{:?}", report.findings);
    for (subject, source_word, witness) in leaks {
        assert_eq!(subject, "golden-leak");
        assert_eq!(source_word, "aggregate");
        assert!(!witness.is_empty());
    }

    // The engine's actual configuration (shift 0) mixes noise into every
    // output bit and is certified clean.
    let clean = noising_circuit(16, 8, 0);
    let mut spec0 = spec.clone();
    spec0.name = "noising-shift0".to_string();
    let report0 = analyze(&clean, &spec0);
    assert!(report0.is_clean(), "{:?}", report0.findings);
}

/// Fixture 4: a released value that can land outside the recovery
/// window wired into the release spec.
#[test]
fn release_outside_recovery_window_is_rejected() {
    let mut b = CircuitBuilder::new();
    let x = b.input_word(16);
    b.output_word(&x);
    let c = b.build().unwrap();

    let spec = CircuitSpec {
        name: "golden-window".to_string(),
        inputs: vec![WordSpec::private("x", 16, Interval::new(0, 5000))],
        output_words: vec![16],
        policy: FlowPolicy::Internal,
        release: Some(ReleaseSpec {
            window: Interval::new(0, 1024),
            description: "dlog recovery table of 1024 entries".to_string(),
        }),
        modular: false,
        dominance: Vec::new(),
    };
    let report = analyze(&c, &spec);
    assert!(
        report.findings.iter().any(|f| matches!(
            f,
            Finding::ReleaseOutOfWindow { certified, window, .. }
                if *certified == Interval::new(0, 5000) && *window == Interval::new(0, 1024)
        )),
        "{:?}",
        report.findings
    );
}
