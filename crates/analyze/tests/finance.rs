//! Certification of the two finance case studies on live networks: the
//! specs are derived from the network instance, so this is exactly the
//! pre-deployment check a regulator's coordinator would run.

use dstress_analyze::analyze_program;
use dstress_finance::generator::apply_shock;
use dstress_finance::{
    core_periphery, CircuitParams, EisenbergNoeSecure, ElliottGolubJacksonSecure, FinancialNetwork,
    GeneratorConfig,
};
use dstress_graph::VertexId;
use dstress_math::rng::Xoshiro256;

fn shocked_network(seed: u64) -> FinancialNetwork {
    let config = GeneratorConfig::small(12, 8);
    let mut rng = Xoshiro256::new(seed);
    let mut net = core_periphery(&config, &mut rng);
    apply_shock(&mut net, &[VertexId(0), VertexId(1)], 0.9);
    net
}

fn assert_clean(report: &dstress_analyze::ProgramReport) {
    assert!(
        report.is_clean(),
        "{} not certified:\n{}",
        report.program,
        report
            .all_findings()
            .iter()
            .map(|f| format!("  - {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn eisenberg_noe_certifies_on_live_network() {
    let net = shocked_network(13);
    let program = EisenbergNoeSecure {
        network: &net,
        params: CircuitParams::default_params(),
        iterations: 8,
        leverage_bound: 0.1,
    };
    let d = net.graph().degree_bound();
    let report = analyze_program(&program, d, net.bank_count(), None);
    assert_clean(&report);
    // External-lemma models certify the premises, not a number.
    assert_eq!(report.certified_sensitivity, None);
    assert!(!report.assumptions.is_empty());
}

#[test]
fn elliott_golub_jackson_certifies_on_live_network() {
    let net = shocked_network(15);
    let program = ElliottGolubJacksonSecure {
        network: &net,
        params: CircuitParams::default_params(),
        iterations: 8,
        leverage_bound: 0.1,
    };
    let d = net.graph().degree_bound();
    let report = analyze_program(&program, d, net.bank_count(), None);
    assert_clean(&report);
    assert_eq!(report.certified_sensitivity, None);
}
