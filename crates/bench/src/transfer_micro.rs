//! §5.2–5.3: message-transfer micro-benchmarks.
//!
//! The paper measures the time to transfer a single 12-bit message between
//! two blocks (285 ms with 8-node blocks, 610 ms with 20-node blocks —
//! roughly linear in `k` with a quadratic aggregation component) and the
//! traffic per role: vertex `i` receives `(k+1)²` encrypted sub-shares
//! (97–595 kB), each member of `B_i` sends `k+1` sub-shares (≤ 29 kB), and
//! each member of `B_j` receives a constant amount (~1.4 kB).
//!
//! This module runs the real protocol (ElGamal and all) and reports both
//! measured wall-clock time and the projected prototype-scale time, plus
//! the per-role traffic; it also supports the protocol-ablation comparison
//! across the strawman variants.

use dstress_crypto::dlog::DlogTable;
use dstress_crypto::group::Group;
use dstress_crypto::kernels::TransferKernels;
use dstress_crypto::sharing::{split_xor, BitMessage};
use dstress_math::rng::Xoshiro256;
use dstress_net::cost::{CostModel, OperationCounts};
use dstress_net::traffic::{NodeId, TrafficAccountant};
use dstress_transfer::protocol::{
    transfer_message, transfer_message_with_kernels, KernelMode, ProtocolVariant, TransferConfig,
};
use dstress_transfer::setup::generate_system;
use std::time::Instant;

/// Window width for the per-certificate key tables in the kernels A/B:
/// wide enough to cut the per-bit key exponentiation to ~11 multiplies,
/// narrow enough that the one-off build amortises within a few dozen
/// transfers.
const CERTIFICATE_WINDOW_BITS: u32 = 6;

/// One measured transfer row.
#[derive(Clone, Debug)]
pub struct TransferRow {
    /// Protocol variant.
    pub variant: ProtocolVariant,
    /// Block size `k + 1`.
    pub block_size: usize,
    /// Message width in bits.
    pub message_bits: u32,
    /// Measured wall-clock seconds of one transfer (in-process, 64-bit
    /// simulation group).
    pub measured_seconds: f64,
    /// Projected seconds with the paper's cost model (secp384r1-class
    /// exponentiations).
    pub projected_seconds: f64,
    /// Bytes received by the sending vertex `i` (the `(k+1)²` sub-shares).
    pub vertex_i_received_bytes: u64,
    /// Bytes sent by one member of the sending block.
    pub sender_member_sent_bytes: u64,
    /// Bytes received by one member of the receiving block (excluding the
    /// receiving vertex itself).
    pub receiver_member_received_bytes: u64,
    /// Operation counts of the transfer.
    pub counts: OperationCounts,
}

/// Runs one transfer with the given block size and variant and returns the
/// measured row.
pub fn run_transfer_micro(
    variant: ProtocolVariant,
    block_size: usize,
    message_bits: u32,
    seed: u64,
) -> TransferRow {
    let group = Group::sim64();
    let mut rng = Xoshiro256::new(seed);
    let collusion_bound = block_size - 1;
    // A minimal system with enough nodes for distinct blocks.
    let nodes = (3 * block_size).max(8);
    let (secrets, setup) =
        generate_system(&group, nodes, collusion_bound, 2, message_bits, &mut rng)
            .expect("setup succeeds for benchmark parameters");
    let dlog = DlogTable::new_signed(&group, 4 * (1 << message_bits.min(14)) as u64 + 200);

    let config = TransferConfig {
        variant,
        message_bits,
    };
    let message = BitMessage::new(0xABC & ((1 << message_bits) - 1), message_bits)
        .expect("value fits the width");
    let sender_shares = split_xor(message, block_size, &mut rng);
    let mut traffic = TrafficAccountant::new();

    let start = Instant::now();
    let outcome = transfer_message(
        &group,
        &config,
        NodeId(0),
        NodeId(1),
        &setup.blocks[0],
        &setup.blocks[1],
        &sender_shares,
        &secrets,
        &setup.certificates[1][0],
        &secrets[1].neighbor_keys[0],
        &dlog,
        &mut traffic,
        &mut rng,
    )
    .expect("benchmark transfer succeeds");
    let measured_seconds = start.elapsed().as_secs_f64();

    // Project the *completion time* of the transfer on the prototype's
    // hardware: the sub-share encryptions and decryptions run in parallel
    // across the block members (so their cost divides by the block size),
    // while the homomorphic aggregation is serialised at vertex `i` — this
    // is exactly why the paper reports a roughly-linear-in-`k` latency with
    // a small quadratic component (§5.2).  Traffic is scaled to the
    // prototype's 48-byte secp384r1 elements.
    let cost = CostModel::paper_reference();
    let projected_bytes = outcome.counts.bytes_sent as f64 * 48.0 / group.element_bytes() as f64;
    let projected_seconds = outcome.counts.exponentiations as f64 / block_size as f64
        * cost.seconds_per_exponentiation
        + outcome.counts.fixed_base_exponentiations as f64 / block_size as f64
            * cost.seconds_per_fixed_base_exponentiation
        + outcome.counts.group_multiplications as f64 * cost.seconds_per_group_multiplication
        + projected_bytes / cost.bandwidth_bytes_per_second
        + outcome.counts.rounds as f64 * cost.latency_per_round;

    let sender_member = setup.blocks[0]
        .members
        .iter()
        .copied()
        .find(|&m| m != NodeId(0) && !setup.blocks[1].members.contains(&m))
        .unwrap_or(setup.blocks[0].members[1]);
    let receiver_member = setup.blocks[1]
        .members
        .iter()
        .copied()
        .find(|&m| m != NodeId(1) && !setup.blocks[0].members.contains(&m))
        .unwrap_or(setup.blocks[1].members[1]);

    TransferRow {
        variant,
        block_size,
        message_bits,
        measured_seconds,
        projected_seconds,
        vertex_i_received_bytes: traffic.node(NodeId(0)).bytes_received,
        sender_member_sent_bytes: traffic.node(sender_member).bytes_sent,
        receiver_member_received_bytes: traffic.node(receiver_member).bytes_received,
        counts: outcome.counts,
    }
}

/// The §5.2 sweep: the final protocol across block sizes.
pub fn block_size_sweep(block_sizes: &[usize], message_bits: u32) -> Vec<TransferRow> {
    block_size_sweep_with_threads(block_sizes, message_bits, 1)
}

/// [`block_size_sweep`] with the points fanned out over a worker pool.
pub fn block_size_sweep_with_threads(
    block_sizes: &[usize],
    message_bits: u32,
    threads: usize,
) -> Vec<TransferRow> {
    dstress_net::pool::parallel_map(block_sizes.to_vec(), threads, |_idx, b| {
        run_transfer_micro(ProtocolVariant::Final { alpha: 0.9 }, b, message_bits, 0x7B)
    })
}

/// Result of the crypto-kernels A/B: the same transfers run once on the
/// pre-kernel square-and-multiply path and once with every kernel enabled.
#[derive(Clone, Debug)]
pub struct KernelsAbResult {
    /// Block size `k + 1`.
    pub block_size: usize,
    /// Message width in bits.
    pub message_bits: u32,
    /// Number of transfers timed per arm.
    pub transfers: usize,
    /// Wall-clock seconds of the naive arm.
    pub naive_seconds: f64,
    /// Wall-clock seconds of the kernel arm, *including* the one-off
    /// certificate table build (amortised over the transfers).
    pub kernel_seconds: f64,
    /// `naive_seconds / kernel_seconds`.
    pub speedup: f64,
    /// Memory held by the per-certificate fixed-base tables.
    pub table_memory_bytes: usize,
    /// Operation counts of one naive-arm transfer.
    pub naive_counts: OperationCounts,
    /// Operation counts of one kernel-arm transfer.
    pub kernel_counts: OperationCounts,
}

/// The crypto-kernels A/B (ISSUE 7 tentpole measurement): runs `transfers`
/// final-protocol transfers twice from identical per-transfer seeds — once
/// with [`KernelMode::Naive`], once with [`KernelMode::Precomputed`] tables
/// built inside the timed region — asserts the two arms produce
/// bit-identical receiver shares, and reports the wall-clock speedup.
///
/// Unlike the latency sweeps (which use the fast simulation group to reach
/// large scales), the A/B runs on the 256-bit production group: that is the
/// secp384r1-class regime the paper measures, where exponentiations
/// dominate and the kernels matter.
pub fn run_transfer_kernels_ab(
    block_size: usize,
    message_bits: u32,
    transfers: usize,
    seed: u64,
) -> KernelsAbResult {
    let group = Group::prod256();
    let mut rng = Xoshiro256::new(seed);
    let collusion_bound = block_size - 1;
    let nodes = (3 * block_size).max(8);
    let (secrets, setup) =
        generate_system(&group, nodes, collusion_bound, 2, message_bits, &mut rng)
            .expect("setup succeeds for benchmark parameters");
    let dlog = DlogTable::new_signed(&group, 4 * (1 << message_bits.min(14)) as u64 + 200);
    let config = TransferConfig::final_protocol(message_bits, 0.9);
    let certificate = &setup.certificates[1][0];
    let neighbor_key = &secrets[1].neighbor_keys[0];

    let run_arm = |mode: KernelMode<'_>| {
        let mut outcomes = Vec::with_capacity(transfers);
        let mut counts = OperationCounts::default();
        for r in 0..transfers {
            let mut rng = Xoshiro256::new(seed ^ (r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let message = BitMessage::new(r as u64 & ((1 << message_bits) - 1), message_bits)
                .expect("value fits the width");
            let sender_shares = split_xor(message, block_size, &mut rng);
            let mut traffic = TrafficAccountant::new();
            let outcome = transfer_message_with_kernels(
                &group,
                &config,
                mode,
                NodeId(0),
                NodeId(1),
                &setup.blocks[0],
                &setup.blocks[1],
                &sender_shares,
                &secrets,
                certificate,
                neighbor_key,
                &dlog,
                &mut traffic,
                &mut rng,
            )
            .expect("benchmark transfer succeeds");
            counts = outcome.counts;
            outcomes.push(outcome.receiver_shares);
        }
        (outcomes, counts)
    };

    let start = Instant::now();
    let (naive_shares, naive_counts) = run_arm(KernelMode::Naive);
    let naive_seconds = start.elapsed().as_secs_f64();

    // The kernel arm pays for its certificate tables inside the timed
    // region, so the reported speedup includes the amortised build cost.
    let start = Instant::now();
    let kernels =
        TransferKernels::for_certificate(&group, &certificate.keys, CERTIFICATE_WINDOW_BITS);
    let (kernel_shares, kernel_counts) = run_arm(KernelMode::Precomputed(&kernels));
    let kernel_seconds = start.elapsed().as_secs_f64();

    assert_eq!(
        naive_shares, kernel_shares,
        "kernel and naive arms must produce bit-identical shares"
    );

    KernelsAbResult {
        block_size,
        message_bits,
        transfers,
        naive_seconds,
        kernel_seconds,
        speedup: naive_seconds / kernel_seconds.max(f64::MIN_POSITIVE),
        table_memory_bytes: kernels.memory_bytes(),
        naive_counts,
        kernel_counts,
    }
}

/// The protocol ablation: all four variants at a fixed block size.
pub fn variant_sweep(block_size: usize, message_bits: u32) -> Vec<TransferRow> {
    [
        ProtocolVariant::Strawman1,
        ProtocolVariant::Strawman2,
        ProtocolVariant::Strawman3,
        ProtocolVariant::Final { alpha: 0.9 },
    ]
    .into_iter()
    .map(|v| run_transfer_micro(v, block_size, message_bits, 0x7C))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_grows_with_block_size() {
        // §5.2: completion time roughly proportional to k (285 ms at block
        // size 8 vs 610 ms at block size 20 in the paper — about 2.1×).
        let rows = block_size_sweep(&[8, 20], 12);
        let ratio = rows[1].projected_seconds / rows[0].projected_seconds;
        assert!((1.5..4.0).contains(&ratio), "projected ratio was {ratio}");
        // The projected absolute numbers land in the right regime
        // (hundreds of milliseconds, not microseconds or minutes).
        assert!(rows[0].projected_seconds > 0.02 && rows[0].projected_seconds < 2.0);
        assert!(rows[1].projected_seconds > rows[0].projected_seconds);
    }

    #[test]
    fn traffic_matches_paper_roles() {
        // §5.3: i's received volume is quadratic in the block size, the
        // sender members' volume linear, and the receiver members' volume
        // constant.
        let rows = block_size_sweep(&[8, 16], 12);
        let quad_ratio =
            rows[1].vertex_i_received_bytes as f64 / rows[0].vertex_i_received_bytes as f64;
        assert!(
            (3.0..5.0).contains(&quad_ratio),
            "vertex-i ratio {quad_ratio}"
        );
        let lin_ratio =
            rows[1].sender_member_sent_bytes as f64 / rows[0].sender_member_sent_bytes as f64;
        assert!(
            (1.5..3.0).contains(&lin_ratio),
            "sender-member ratio {lin_ratio}"
        );
        let const_ratio = rows[1].receiver_member_received_bytes as f64
            / rows[0].receiver_member_received_bytes as f64;
        assert!(const_ratio < 1.6, "receiver-member ratio {const_ratio}");
    }

    #[test]
    fn kernel_and_naive_arms_agree() {
        // The A/B asserts bit-identical shares internally; here we pin the
        // count split: the naive arm does no fixed-base work, the kernel
        // arm shifts almost everything onto the tables.
        let result = run_transfer_kernels_ab(4, 8, 2, 0xAB);
        assert_eq!(result.naive_counts.fixed_base_exponentiations, 0);
        assert!(result.kernel_counts.fixed_base_exponentiations > 0);
        assert!(result.kernel_counts.exponentiations < result.naive_counts.exponentiations);
        assert!(result.table_memory_bytes > 0);
        assert!(result.speedup > 0.0);
    }

    #[test]
    #[ignore = "timing-sensitive: run in release via ci.sh"]
    fn kernel_speedup_exceeds_5x() {
        // The ISSUE 7 acceptance gate: ≥ 5× wall-clock on the paper's
        // 12-bit messages with 8-node blocks, kernels on vs off.
        let result = run_transfer_kernels_ab(8, 12, 32, 0x5D);
        assert!(
            result.speedup >= 5.0,
            "kernel speedup was only {:.2}× (naive {:.1} ms, kernels {:.1} ms)",
            result.speedup,
            result.naive_seconds * 1e3,
            result.kernel_seconds * 1e3,
        );
    }

    #[test]
    fn strawmen_are_cheaper_than_final() {
        let rows = variant_sweep(6, 8);
        assert_eq!(rows.len(), 4);
        let exps: Vec<u64> = rows.iter().map(|r| r.counts.exponentiations).collect();
        assert!(exps[0] < exps[2], "strawman1 vs strawman3: {exps:?}");
        assert!(exps[2] <= exps[3], "strawman3 vs final: {exps:?}");
    }
}
