//! Machine-readable benchmark results.
//!
//! The `repro` binary records one [`BenchPoint`] per sweep point — wall
//! seconds, measured operation counts and any experiment-specific extras
//! — and writes them as `BENCH_results.json` so future changes can track
//! the performance trajectory without parsing the printed tables.  The
//! JSON is hand-rolled: the workspace's `serde` is an offline no-op shim,
//! and the schema is flat enough that a tiny escaping writer is all
//! that's needed.
//!
//! ## Example
//!
//! ```
//! use dstress_bench::results::BenchResults;
//!
//! let mut results = BenchResults::new(4, false);
//! results
//!     .point("fig5", "EN block=8")
//!     .wall_seconds(1.25)
//!     .extra("traffic_per_node_bytes", 1024.0);
//! let json = results.to_json();
//! assert!(json.contains("\"experiment\": \"fig5\""));
//! assert!(json.contains("\"wall_seconds\": 1.25"));
//! ```

use dstress_net::cost::OperationCounts;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One recorded sweep point.
#[derive(Clone, Debug)]
pub struct BenchPoint {
    /// Experiment name (e.g. `fig5`, `concurrency`).
    pub experiment: String,
    /// Point label (e.g. `EN block=8`).
    pub label: String,
    /// Wall-clock seconds of the in-process run, if measured.
    pub wall_seconds: Option<f64>,
    /// Operation counts of the run, if measured.
    pub counts: Option<OperationCounts>,
    /// Experiment-specific numeric extras (projected seconds, traffic…).
    pub extras: Vec<(String, f64)>,
}

impl BenchPoint {
    /// Sets the measured wall-clock seconds.
    pub fn wall_seconds(&mut self, seconds: f64) -> &mut Self {
        self.wall_seconds = Some(seconds);
        self
    }

    /// Attaches the measured operation counts.
    pub fn counts(&mut self, counts: OperationCounts) -> &mut Self {
        self.counts = Some(counts);
        self
    }

    /// Adds a named numeric extra.
    pub fn extra(&mut self, key: &str, value: f64) -> &mut Self {
        self.extras.push((key.to_string(), value));
        self
    }
}

/// The collected results of one `repro` invocation.
#[derive(Clone, Debug)]
pub struct BenchResults {
    /// Worker threads the sweeps ran with.
    pub threads: usize,
    /// Whether the paper-scale (`--full`) parameters were used.
    pub full: bool,
    /// All recorded points, in execution order.
    pub points: Vec<BenchPoint>,
}

impl BenchResults {
    /// Creates an empty result set.
    pub fn new(threads: usize, full: bool) -> Self {
        BenchResults {
            threads,
            full,
            points: Vec::new(),
        }
    }

    /// Records a new point and returns it for chained field setting.
    pub fn point(&mut self, experiment: &str, label: &str) -> &mut BenchPoint {
        self.points.push(BenchPoint {
            experiment: experiment.to_string(),
            label: label.to_string(),
            wall_seconds: None,
            counts: None,
            extras: Vec::new(),
        });
        self.points.last_mut().expect("just pushed")
    }

    /// Serialises the results as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": 1,");
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"full\": {},", self.full);
        out.push_str("  \"points\": [\n");
        for (i, point) in self.points.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(
                out,
                "      \"experiment\": {},",
                json_string(&point.experiment)
            );
            let _ = writeln!(out, "      \"label\": {},", json_string(&point.label));
            if let Some(seconds) = point.wall_seconds {
                let _ = writeln!(out, "      \"wall_seconds\": {},", json_number(seconds));
            }
            if let Some(counts) = &point.counts {
                out.push_str("      \"counts\": {\n");
                let fields = [
                    ("exponentiations", counts.exponentiations),
                    (
                        "fixed_base_exponentiations",
                        counts.fixed_base_exponentiations,
                    ),
                    ("group_multiplications", counts.group_multiplications),
                    ("base_ots", counts.base_ots),
                    ("extended_ots", counts.extended_ots),
                    ("and_gates", counts.and_gates),
                    ("free_gates", counts.free_gates),
                    ("bytes_sent", counts.bytes_sent),
                    ("wire_bytes", counts.wire_bytes),
                    ("rounds", counts.rounds),
                ];
                for (j, (name, value)) in fields.iter().enumerate() {
                    let comma = if j + 1 < fields.len() { "," } else { "" };
                    let _ = writeln!(out, "        \"{name}\": {value}{comma}");
                }
                out.push_str("      },\n");
            }
            out.push_str("      \"extras\": {");
            for (j, (key, value)) in point.extras.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {}", json_string(key), json_number(*value));
            }
            out.push_str("}\n");
            let comma = if i + 1 < self.points.len() { "," } else { "" };
            let _ = writeln!(out, "    }}{comma}");
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Escapes a string as a JSON string literal (the labels are ASCII table
/// headers, so only quotes/backslashes/control characters matter).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number.  JSON has no NaN/Infinity, and a
/// fabricated `0` would be indistinguishable from a real measurement, so
/// non-finite values become `null`.
fn json_number(value: f64) -> String {
    if value.is_finite() {
        // `{}` on a whole f64 prints without a decimal point, which is
        // still a valid JSON number.
        format!("{value}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_expected_shape() {
        let mut results = BenchResults::new(2, true);
        results
            .point("fig3", "EN step block=8")
            .wall_seconds(0.5)
            .counts(OperationCounts {
                and_gates: 12,
                bytes_sent: 99,
                wire_bytes: 101,
                ..OperationCounts::default()
            })
            .extra("projected_seconds", 1.5);
        results
            .point("fig6", "N=1750 D=100")
            .extra("projected_seconds", 17000.0);
        let json = results.to_json();
        assert!(json.contains("\"schema\": 1"));
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("\"full\": true"));
        assert!(json.contains("\"and_gates\": 12"));
        assert!(json.contains("\"bytes_sent\": 99"));
        assert!(json.contains("\"wire_bytes\": 101"));
        assert!(json.contains("\"projected_seconds\": 1.5"));
        assert!(json.contains("\"label\": \"N=1750 D=100\""));
        // Two points, one comma between them.
        assert_eq!(json.matches("\"experiment\"").count(), 2);
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_stay_valid_json() {
        assert_eq!(json_number(1.5), "1.5");
        assert_eq!(json_number(3.0), "3");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
    }

    #[test]
    fn write_to_creates_the_file() {
        let mut results = BenchResults::new(1, false);
        results.point("smoke", "p0").wall_seconds(0.1);
        let path = std::env::temp_dir().join("dstress_bench_results_test.json");
        results.write_to(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"experiment\": \"smoke\""));
        let _ = std::fs::remove_file(&path);
    }
}
