//! The `repro` binary: regenerates every table and figure of the paper's
//! evaluation from the reproduction.
//!
//! Usage (release builds strongly recommended):
//!
//! ```text
//! cargo run -p dstress-bench --release --bin repro -- all
//! cargo run -p dstress-bench --release --bin repro -- fig5-time --full
//! ```
//!
//! Experiments: `fig3-left`, `fig3-right`, `fig4`, `transfer-time`,
//! `transfer-traffic`, `transfer-ablation`, `fig5-time`, `fig5-traffic`,
//! `fig6`, `naive-baseline`, `utility`, `edge-privacy`, `contagion`, `all`.
//! The `--full` flag switches the measured experiments from the quick
//! parameters to the paper's parameters (much slower).

use dstress_bench::end_to_end::{fig5_sweep, EndToEndParams};
use dstress_bench::mpc_micro::{block_size_sweep, parameter_sweep};
use dstress_bench::naive_baseline::{baseline_comparison, paper_comparison};
use dstress_bench::policy::{edge_privacy_summary, utility_table};
use dstress_bench::scalability::{fig6_sweep, headline_projection, validation_point};
use dstress_bench::transfer_micro::{
    block_size_sweep as transfer_sweep, variant_sweep as transfer_variants,
};
use dstress_bench::{contagion_study, format_bytes, format_seconds};

fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}

fn fig3_left(full: bool) {
    header("Figure 3 (left): MPC computation time vs block size");
    let (blocks, d, n): (&[usize], usize, usize) = if full {
        (&[8, 12, 16, 20], 100, 100)
    } else {
        (&[4, 8, 12], 20, 100)
    };
    println!("(degree bound D = {d}, aggregation over N = {n} states)");
    println!("{:<16} {:>6} {:>10} {:>14} {:>14}", "circuit", "block", "AND gates", "measured", "projected");
    for row in block_size_sweep(blocks, d, n) {
        println!(
            "{:<16} {:>6} {:>10} {:>14} {:>14}",
            row.kind.label(),
            row.block_size,
            row.and_gates,
            format_seconds(row.measured_seconds),
            format_seconds(row.projected_seconds),
        );
    }
}

fn fig3_right(full: bool) {
    header("Figure 3 (right): MPC computation time vs degree bound / node count");
    let (block, degrees, nodes): (usize, &[usize], &[usize]) = if full {
        (20, &[10, 40, 70, 100], &[50, 100, 150, 200])
    } else {
        (8, &[10, 40], &[50, 100])
    };
    println!("(block size {block})");
    println!("{:<16} {:>6} {:>6} {:>10} {:>14} {:>14}", "circuit", "D", "N", "AND gates", "measured", "projected");
    for row in parameter_sweep(block, degrees, nodes) {
        println!(
            "{:<16} {:>6} {:>6} {:>10} {:>14} {:>14}",
            row.kind.label(),
            row.degree_bound,
            row.vertices,
            row.and_gates,
            format_seconds(row.measured_seconds),
            format_seconds(row.projected_seconds),
        );
    }
}

fn fig4(full: bool) {
    header("Figure 4: per-node traffic of the MPC circuits vs block size");
    let (blocks, d, n): (&[usize], usize, usize) = if full {
        (&[8, 12, 16, 20], 100, 100)
    } else {
        (&[4, 8, 12], 20, 100)
    };
    println!("{:<16} {:>6} {:>16}", "circuit", "block", "traffic/node");
    for row in block_size_sweep(blocks, d, n) {
        println!(
            "{:<16} {:>6} {:>16}",
            row.kind.label(),
            row.block_size,
            format_bytes(row.traffic_per_node_bytes),
        );
    }
}

fn transfer_time(full: bool) {
    header("§5.2: message-transfer completion time vs block size (12-bit message)");
    let blocks: &[usize] = if full { &[8, 12, 16, 20] } else { &[4, 8, 12] };
    println!("{:<8} {:>14} {:>14}", "block", "measured", "projected");
    for row in transfer_sweep(blocks, 12) {
        println!(
            "{:<8} {:>14} {:>14}",
            row.block_size,
            format_seconds(row.measured_seconds),
            format_seconds(row.projected_seconds),
        );
    }
    println!("(paper: 285 ms at block size 8, 610 ms at block size 20)");
}

fn transfer_traffic(full: bool) {
    header("§5.3: message-transfer traffic per role");
    let blocks: &[usize] = if full { &[8, 12, 16, 20] } else { &[4, 8, 12] };
    println!(
        "{:<8} {:>18} {:>18} {:>18}",
        "block", "vertex i recv", "B_i member sent", "B_j member recv"
    );
    for row in transfer_sweep(blocks, 12) {
        println!(
            "{:<8} {:>18} {:>18} {:>18}",
            row.block_size,
            format_bytes(row.vertex_i_received_bytes as f64),
            format_bytes(row.sender_member_sent_bytes as f64),
            format_bytes(row.receiver_member_received_bytes as f64),
        );
    }
    println!("(paper, 48-byte group elements: 97-595 kB, <=29 kB, ~1.4 kB)");
}

fn transfer_ablation() {
    header("Protocol ablation: strawman #1-#3 vs the final protocol (block size 8)");
    println!(
        "{:<14} {:>16} {:>14} {:>12}",
        "variant", "exponentiations", "projected", "bytes"
    );
    for row in transfer_variants(8, 12) {
        println!(
            "{:<14} {:>16} {:>14} {:>12}",
            format!("{:?}", row.variant),
            row.counts.exponentiations,
            format_seconds(row.projected_seconds),
            format_bytes(row.counts.bytes_sent as f64),
        );
    }
}

fn fig5(full: bool) {
    let params = if full {
        EndToEndParams::paper()
    } else {
        EndToEndParams::quick()
    };
    header("Figure 5: end-to-end runs (time breakdown and per-node traffic)");
    println!(
        "(N = {}, D = {}, I = {})",
        params.banks, params.degree_bound, params.iterations
    );
    println!(
        "{:<5} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "alg", "block", "init", "compute", "transfer", "agg+noise", "total", "traffic/node", "sim wall"
    );
    for row in fig5_sweep(&params) {
        let p = row.projected_phase_seconds;
        println!(
            "{:<5} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>14} {:>14}",
            row.algorithm.label(),
            row.block_size,
            format_seconds(p[0]),
            format_seconds(p[1]),
            format_seconds(p[2]),
            format_seconds(p[3]),
            format_seconds(row.projected_total_seconds()),
            format_bytes(row.traffic_per_node_bytes),
            format_seconds(row.measured_seconds),
        );
    }
}

fn fig6(full: bool) {
    header("Figure 6: projected cost at scale (Eisenberg-Noe, block size 20)");
    let (nodes, degrees): (&[usize], &[usize]) = if full {
        (&[100, 250, 500, 1000, 1500, 1750, 2000], &[10, 40, 70, 100])
    } else {
        (&[100, 500, 1000, 1750], &[10, 100])
    };
    println!("{:<6} {:>6} {:>5} {:>14} {:>16}", "N", "D", "iter", "time", "traffic/node");
    for row in fig6_sweep(nodes, degrees) {
        println!(
            "{:<6} {:>6} {:>5} {:>14} {:>16}",
            row.nodes,
            row.degree_bound,
            row.iterations,
            format_seconds(row.result.total_seconds),
            format_bytes(row.result.bytes_per_node),
        );
    }
    let headline = headline_projection();
    println!(
        "Headline (N=1750, D=100): {} and {} per node (paper: ~4.8 h, ~750 MB)",
        format_seconds(headline.result.total_seconds),
        format_bytes(headline.result.bytes_per_node),
    );
    let (n, d, block) = if full { (100, 10, 20) } else { (20, 5, 8) };
    let point = validation_point(n, d, block);
    println!(
        "Validation run (N={}, D={}, block {}): measured-counts {} / projected {}, traffic {} / {}",
        point.nodes,
        point.degree_bound,
        point.block_size,
        format_seconds(point.measured_projected_seconds),
        format_seconds(point.projected_seconds),
        format_bytes(point.measured_bytes_per_node),
        format_bytes(point.projected_bytes_per_node),
    );
}

fn naive(full: bool) {
    header("§5.5: naive monolithic-MPC baseline vs DStress");
    let comparison = if full {
        baseline_comparison(&[4, 6, 8], &[10, 25], 11)
    } else {
        paper_comparison()
    };
    println!("{:<6} {:>10} {:>12} {:>14} {:>14}", "N", "executed", "AND gates", "measured", "projected");
    for row in &comparison.rows {
        println!(
            "{:<6} {:>10} {:>12} {:>14} {:>14}",
            row.n,
            row.executed,
            row.and_gates,
            format_seconds(row.measured_seconds),
            format_seconds(row.projected_seconds),
        );
    }
    println!(
        "Full scale (N=1750, 11 multiplications): {} ({:.0} years; paper: ~287 years)",
        format_seconds(comparison.full_scale_seconds),
        comparison.full_scale_years,
    );
    println!(
        "DStress projected: {}  =>  speedup ~{:.0}x",
        format_seconds(comparison.dstress_seconds),
        comparison.speedup,
    );
}

fn utility() {
    header("§4.5: dollar-differential-privacy utility analysis");
    println!(
        "{:<24} {:>12} {:>12} {:>16} {:>10} {:>10}",
        "model", "sensitivity", "eps/query", "noise scale", "runs/yr", "P(|err|<200B)"
    );
    for row in utility_table() {
        println!(
            "{:<24} {:>12.1} {:>12.3} {:>14.1}B$ {:>10} {:>10.3}",
            row.model,
            row.sensitivity,
            row.epsilon_query,
            row.noise_scale_dollars / 1e9,
            row.runs_per_year,
            row.accuracy_probability,
        );
    }
    println!("(paper: EGJ sensitivity 20, eps >= 0.23, ~3 runs per year)");
}

fn edge_privacy() {
    header("Appendix B: edge-privacy accounting for the transfer protocol");
    let s = edge_privacy_summary();
    println!("sensitivity (k+1):            {}", s.sensitivity);
    println!("total transfers N_q:          {:.3e}", s.total_transfers);
    println!("paper epsilon per transfer:   {:.3e}", s.paper_epsilon);
    println!("minimum feasible epsilon:     {:.3e}", s.minimum_epsilon);
    println!("failure probability P_fail:   {:.3e}", s.failure_probability);
    println!("budget per iteration:         {:.4}   (paper: 0.0014)", s.budget_per_iteration);
    println!("budget per year:              {:.4}   (paper: 0.0469)", s.budget_per_year);
    println!("fraction of ln 2 budget:      {:.2}%", s.fraction_of_annual_budget * 100.0);
}

fn contagion() {
    header("Appendix C: contagion scenarios on the 50-bank two-tier network");
    println!(
        "{:<16} {:<6} {:>12} {:>8} {:>10} {:>10}",
        "scenario", "model", "TDS", "failed", "converged", "log2(N)"
    );
    for row in contagion_study::scenario_table(0xC0C0) {
        println!(
            "{:<16} {:<6} {:>12.1} {:>8} {:>10} {:>10}",
            row.scenario,
            match row.model {
                dstress_finance::contagion::ContagionModel::EisenbergNoe => "EN",
                dstress_finance::contagion::ContagionModel::ElliottGolubJackson => "EGJ",
            },
            row.outcome.report.total_shortfall,
            row.outcome.report.failed_banks,
            row.outcome.iterations_to_converge,
            row.iteration_bound,
        );
    }
    let noised = contagion_study::noised_cascade_run(0xBEEF);
    println!(
        "DStress release on the cascade: ideal TDS {:.1}, released {:.1} (Laplace scale {:.1}, relative error {:.1}%)",
        noised.ideal_output,
        noised.noised_output,
        noised.noise_scale,
        noised.relative_error * 100.0,
    );
}

fn run(experiment: &str, full: bool) -> bool {
    match experiment {
        "fig3-left" => fig3_left(full),
        "fig3-right" => fig3_right(full),
        "fig4" => fig4(full),
        "transfer-time" => transfer_time(full),
        "transfer-traffic" => transfer_traffic(full),
        "transfer-ablation" => transfer_ablation(),
        "fig5-time" | "fig5-traffic" | "fig5" => fig5(full),
        "fig6" => fig6(full),
        "naive-baseline" => naive(full),
        "utility" => utility(),
        "edge-privacy" => edge_privacy(),
        "contagion" => contagion(),
        "all" => {
            for exp in [
                "fig3-left",
                "fig3-right",
                "fig4",
                "transfer-time",
                "transfer-traffic",
                "transfer-ablation",
                "fig5",
                "fig6",
                "naive-baseline",
                "utility",
                "edge-privacy",
                "contagion",
            ] {
                run(exp, full);
            }
        }
        _ => return false,
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let experiment = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    if !run(&experiment, full) {
        eprintln!("unknown experiment '{experiment}'");
        eprintln!(
            "available: fig3-left fig3-right fig4 transfer-time transfer-traffic \
             transfer-ablation fig5 fig6 naive-baseline utility edge-privacy contagion all"
        );
        std::process::exit(1);
    }
}
