//! The `repro` binary: regenerates every table and figure of the paper's
//! evaluation from the reproduction.
//!
//! Usage (release builds strongly recommended):
//!
//! ```text
//! cargo run -p dstress-bench --release --bin repro -- all
//! cargo run -p dstress-bench --release --bin repro -- fig5-time --full
//! cargo run -p dstress-bench --release --bin repro -- all --full --threads 8
//! ```
//!
//! Experiments: `fig3-left`, `fig3-right`, `fig4`, `transfer-time`,
//! `transfer-traffic`, `transfer-ablation`, `transfer-kernels`,
//! `transfer` (the four transfer experiments), `fig5-time`,
//! `fig5-traffic`, `fig6`, `scale`, `naive-baseline`, `utility`,
//! `edge-privacy`, `contagion`, `concurrency`, `sockets`, `rounds`,
//! `bytes`, `persist`, `scenarios`, `analyze`, `all`.  The `analyze`
//! experiment runs the static analyzer (`dstress-analyze`) over every
//! shipped program and circuit — certified ranges, sensitivity bounds,
//! release windows and private-data flow — and exits non-zero on any
//! finding; `ci.sh` uses it as the pre-deployment certification gate.
//! The `scenarios` experiment
//! runs the DP graph-analytics suite (degree histogram, WCC, SSSP,
//! PageRank) through the full engine, asserts every release lands inside
//! its analytic error bound, and A/Bs K recurring full-MPC releases
//! against K PSA releases on one shared privacy budget.  The `transfer-kernels` experiment is the crypto-kernel
//! A/B: the same transfers on the 256-bit production group with the
//! exponentiation kernels off (square-and-multiply everywhere) and on
//! (windowed fixed-base tables, shared-ephemeral aggregation, fused table
//! decryption), asserting bit-identical shares and reporting the
//! wall-clock speedup.
//! The `sockets` experiment runs the same end-to-end deployment on the
//! in-process and the real-TCP transport backends, asserts they are
//! bit-identical, and records measured wall time against the cost
//! model's network projection.  The `bytes`
//! experiment prints the measured-vs-modeled byte reconciliation (encoded
//! wire messages against the analytical cost model) per benchmark
//! circuit, plus the batched-vs-per-gate framing saving.  The `scale`
//! experiment runs the *measured* streaming sweep past the old
//! 2,000-vertex materialisation wall (streaming generators, CSR graphs,
//! block-streaming execution) with per-point peak-memory figures, and
//! labels its model-only continuation points explicitly.  The `persist`
//! experiment is the budgeted continuation of `scale`: the same measured
//! sweep with the state-store byte budget set to a quarter of what the
//! run would keep resident, so every point really pages share state to
//! its spill log — it reports store-resident peak (which must honour the
//! budget), spill-file bytes and peak heap, and ends with an in-process
//! kill-and-resume bit-identity check.  The `--full`
//! flag switches the measured
//! experiments from the quick parameters to the paper's parameters (much
//! slower).  The measured sweeps fan their points out over a worker pool;
//! `--threads N` sets the pool size (default: one worker per core).
//! Concurrent points contend for cores, so per-point `measured` columns
//! are noisier than a `--threads 1` run; the `projected` columns come
//! from operation counts and are unaffected by contention.
//!
//! Every run also writes `BENCH_results.json` — per-sweep-point wall
//! seconds and operation counts — so the performance trajectory is
//! machine-readable across commits.

use dstress_bench::analyze_suite::analyze_suite_rows;
use dstress_bench::end_to_end::{fig5_sweep_with_threads, EndToEndParams};
use dstress_bench::mpc_micro::{
    block_size_sweep_with_threads, parameter_sweep_with_threads, run_mpc_micro_with,
    MpcCircuitKind, MpcMicroRow,
};
use dstress_bench::naive_baseline::{baseline_comparison, paper_comparison};
use dstress_bench::persist::{kill_resume_check, persist_sweep};
use dstress_bench::policy::{edge_privacy_summary, utility_table};
use dstress_bench::results::BenchResults;
use dstress_bench::scalability::{
    concurrency_comparison, fig6_node_counts, fig6_sweep, headline_projection, validation_point,
};
use dstress_bench::scenarios::{recurring_comparison, scenario_rows};
use dstress_bench::streaming_scale::{scale_sweep, streaming_determinism_check, ScaleTopology};
use dstress_bench::transfer_micro::{
    block_size_sweep_with_threads as transfer_sweep, run_transfer_kernels_ab,
    variant_sweep as transfer_variants,
};
use dstress_bench::{contagion_study, format_bytes, format_seconds};
use dstress_mpc::GmwBatching;
use dstress_net::pool::default_threads;

fn header(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// The block-size sweep parameters shared by Figure 3 (left) and
/// Figure 4, and the sweep itself — run once, rendered as both tables.
fn fig3_fig4_params(full: bool) -> (&'static [usize], usize, usize) {
    if full {
        (&[8, 12, 16, 20], 100, 100)
    } else {
        (&[4, 8, 12], 20, 100)
    }
}

fn fig3_fig4_rows(full: bool, threads: usize) -> Vec<MpcMicroRow> {
    let (blocks, d, n) = fig3_fig4_params(full);
    block_size_sweep_with_threads(blocks, d, n, threads)
}

fn fig3_left(rows: &[MpcMicroRow], full: bool, results: &mut BenchResults) {
    header("Figure 3 (left): MPC computation time vs block size");
    let (_, d, n) = fig3_fig4_params(full);
    println!("(degree bound D = {d}, aggregation over N = {n} states)");
    println!(
        "{:<16} {:>6} {:>10} {:>14} {:>14}",
        "circuit", "block", "AND gates", "measured", "projected"
    );
    for row in rows {
        println!(
            "{:<16} {:>6} {:>10} {:>14} {:>14}",
            row.kind.label(),
            row.block_size,
            row.and_gates,
            format_seconds(row.measured_seconds),
            format_seconds(row.projected_seconds),
        );
        results
            .point(
                "fig3-left",
                &format!("{} block={}", row.kind.label(), row.block_size),
            )
            .wall_seconds(row.measured_seconds)
            .counts(row.counts)
            .extra("rounds_per_pair", row.rounds as f64)
            .extra("projected_seconds", row.projected_seconds);
    }
}

fn fig3_right(full: bool, threads: usize, results: &mut BenchResults) {
    header("Figure 3 (right): MPC computation time vs degree bound / node count");
    let (block, degrees, nodes): (usize, &[usize], &[usize]) = if full {
        (20, &[10, 40, 70, 100], &[50, 100, 150, 200])
    } else {
        (8, &[10, 40], &[50, 100])
    };
    println!("(block size {block})");
    println!(
        "{:<16} {:>6} {:>6} {:>10} {:>14} {:>14}",
        "circuit", "D", "N", "AND gates", "measured", "projected"
    );
    for row in parameter_sweep_with_threads(block, degrees, nodes, threads) {
        println!(
            "{:<16} {:>6} {:>6} {:>10} {:>14} {:>14}",
            row.kind.label(),
            row.degree_bound,
            row.vertices,
            row.and_gates,
            format_seconds(row.measured_seconds),
            format_seconds(row.projected_seconds),
        );
        results
            .point(
                "fig3-right",
                &format!(
                    "{} D={} N={}",
                    row.kind.label(),
                    row.degree_bound,
                    row.vertices
                ),
            )
            .wall_seconds(row.measured_seconds)
            .counts(row.counts)
            .extra("rounds_per_pair", row.rounds as f64)
            .extra("projected_seconds", row.projected_seconds);
    }
}

fn fig4(rows: &[MpcMicroRow], results: &mut BenchResults) {
    header("Figure 4: per-node traffic of the MPC circuits vs block size");
    println!("{:<16} {:>6} {:>16}", "circuit", "block", "traffic/node");
    for row in rows {
        println!(
            "{:<16} {:>6} {:>16}",
            row.kind.label(),
            row.block_size,
            format_bytes(row.traffic_per_node_bytes),
        );
        // Wall seconds and counts for these points are recorded under
        // `fig3-left` (same sweep); only the traffic series is new here.
        results
            .point(
                "fig4",
                &format!("{} block={}", row.kind.label(), row.block_size),
            )
            .extra("traffic_per_node_bytes", row.traffic_per_node_bytes);
    }
}

fn transfer_time(full: bool, threads: usize, results: &mut BenchResults) {
    header("§5.2: message-transfer completion time vs block size (12-bit message)");
    let blocks: &[usize] = if full { &[8, 12, 16, 20] } else { &[4, 8, 12] };
    println!("{:<8} {:>14} {:>14}", "block", "measured", "projected");
    for row in transfer_sweep(blocks, 12, threads) {
        println!(
            "{:<8} {:>14} {:>14}",
            row.block_size,
            format_seconds(row.measured_seconds),
            format_seconds(row.projected_seconds),
        );
        results
            .point("transfer-time", &format!("block={}", row.block_size))
            .wall_seconds(row.measured_seconds)
            .counts(row.counts)
            .extra("projected_seconds", row.projected_seconds);
    }
    println!("(paper: 285 ms at block size 8, 610 ms at block size 20)");
}

fn transfer_traffic(full: bool, threads: usize, results: &mut BenchResults) {
    header("§5.3: message-transfer traffic per role");
    let blocks: &[usize] = if full { &[8, 12, 16, 20] } else { &[4, 8, 12] };
    println!(
        "{:<8} {:>18} {:>18} {:>18}",
        "block", "vertex i recv", "B_i member sent", "B_j member recv"
    );
    for row in transfer_sweep(blocks, 12, threads) {
        println!(
            "{:<8} {:>18} {:>18} {:>18}",
            row.block_size,
            format_bytes(row.vertex_i_received_bytes as f64),
            format_bytes(row.sender_member_sent_bytes as f64),
            format_bytes(row.receiver_member_received_bytes as f64),
        );
        results
            .point("transfer-traffic", &format!("block={}", row.block_size))
            .wall_seconds(row.measured_seconds)
            .counts(row.counts)
            .extra(
                "vertex_i_received_bytes",
                row.vertex_i_received_bytes as f64,
            );
    }
    println!("(paper, 48-byte group elements: 97-595 kB, <=29 kB, ~1.4 kB)");
}

fn transfer_ablation(results: &mut BenchResults) {
    header("Protocol ablation: strawman #1-#3 vs the final protocol (block size 8)");
    println!(
        "{:<14} {:>16} {:>14} {:>12}",
        "variant", "exponentiations", "projected", "bytes"
    );
    for row in transfer_variants(8, 12) {
        println!(
            "{:<14} {:>16} {:>14} {:>12}",
            format!("{:?}", row.variant),
            row.counts.exponentiations,
            format_seconds(row.projected_seconds),
            format_bytes(row.counts.bytes_sent as f64),
        );
        results
            .point("transfer-ablation", &format!("{:?}", row.variant))
            .wall_seconds(row.measured_seconds)
            .counts(row.counts)
            .extra("projected_seconds", row.projected_seconds);
    }
}

fn transfer_kernels(full: bool, results: &mut BenchResults) {
    header("Crypto kernels A/B: transfer wall-clock, kernels off vs on (256-bit group)");
    let transfers = if full { 64 } else { 32 };
    let blocks: &[usize] = if full { &[8, 12] } else { &[8] };
    println!(
        "(final protocol, 12-bit messages, {transfers} transfers per arm; the kernel arm \
         pays its certificate-table build inside the timed region)"
    );
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>9} {:>12}",
        "block", "transfers", "naive", "kernels", "speedup", "table mem"
    );
    for &block in blocks {
        let r = run_transfer_kernels_ab(block, 12, transfers, 0x5D);
        println!(
            "{:<8} {:>10} {:>12} {:>12} {:>8.2}x {:>12}",
            r.block_size,
            r.transfers,
            format_seconds(r.naive_seconds),
            format_seconds(r.kernel_seconds),
            r.speedup,
            format_bytes(r.table_memory_bytes as f64),
        );
        results
            .point("transfer-kernels", &format!("block={block}"))
            .wall_seconds(r.kernel_seconds)
            .counts(r.kernel_counts)
            .extra("naive_seconds", r.naive_seconds)
            .extra("kernel_seconds", r.kernel_seconds)
            .extra("speedup", r.speedup)
            .extra("table_memory_bytes", r.table_memory_bytes as f64)
            .extra(
                "naive_exponentiations",
                r.naive_counts.exponentiations as f64,
            );
    }
    println!("(both arms produce bit-identical receiver shares; asserted per run)");
}

fn fig5(full: bool, threads: usize, results: &mut BenchResults) {
    let params = if full {
        EndToEndParams::paper()
    } else {
        EndToEndParams::quick()
    };
    header("Figure 5: end-to-end runs (time breakdown and per-node traffic)");
    println!(
        "(N = {}, D = {}, I = {})",
        params.banks, params.degree_bound, params.iterations
    );
    println!(
        "{:<5} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>14} {:>14}",
        "alg",
        "block",
        "init",
        "compute",
        "transfer",
        "agg+noise",
        "total",
        "traffic/node",
        "sim wall"
    );
    for row in fig5_sweep_with_threads(&params, threads) {
        let p = row.projected_phase_seconds;
        println!(
            "{:<5} {:>6} {:>12} {:>12} {:>12} {:>12} {:>12} {:>14} {:>14}",
            row.algorithm.label(),
            row.block_size,
            format_seconds(p[0]),
            format_seconds(p[1]),
            format_seconds(p[2]),
            format_seconds(p[3]),
            format_seconds(row.projected_total_seconds()),
            format_bytes(row.traffic_per_node_bytes),
            format_seconds(row.measured_seconds),
        );
        results
            .point(
                "fig5",
                &format!("{} block={}", row.algorithm.label(), row.block_size),
            )
            .wall_seconds(row.measured_seconds)
            .counts(row.total_counts)
            .extra("projected_total_seconds", row.projected_total_seconds())
            .extra("traffic_per_node_bytes", row.traffic_per_node_bytes);
    }
}

fn fig6(full: bool, results: &mut BenchResults) {
    header("Figure 6: projected cost at scale (Eisenberg-Noe, block size 20)");
    let nodes = fig6_node_counts(full);
    let degrees: &[usize] = if full { &[10, 40, 70, 100] } else { &[10, 100] };
    println!("(all rows are model-only projections; `repro -- scale` has the measured sweep)");
    println!(
        "{:<6} {:>6} {:>5} {:>14} {:>16}",
        "N", "D", "iter", "time", "traffic/node"
    );
    for row in fig6_sweep(nodes, degrees) {
        println!(
            "{:<6} {:>6} {:>5} {:>14} {:>16}",
            row.nodes,
            row.degree_bound,
            row.iterations,
            format_seconds(row.result.total_seconds),
            format_bytes(row.result.bytes_per_node),
        );
        results
            .point("fig6", &format!("N={} D={}", row.nodes, row.degree_bound))
            .extra("projected_seconds", row.result.total_seconds)
            .extra("projected_bytes_per_node", row.result.bytes_per_node)
            .extra("model_only", 1.0);
    }
    let headline = headline_projection();
    println!(
        "Headline (N=1750, D=100): {} and {} per node (paper: ~4.8 h, ~750 MB)",
        format_seconds(headline.result.total_seconds),
        format_bytes(headline.result.bytes_per_node),
    );
    let (n, d, block) = if full { (100, 10, 20) } else { (20, 5, 8) };
    let point = validation_point(n, d, block);
    println!(
        "Validation run (N={}, D={}, block {}): measured-counts {} / projected {}, traffic {} / {}",
        point.nodes,
        point.degree_bound,
        point.block_size,
        format_seconds(point.measured_projected_seconds),
        format_seconds(point.projected_seconds),
        format_bytes(point.measured_bytes_per_node),
        format_bytes(point.projected_bytes_per_node),
    );
}

fn concurrency(full: bool, threads: usize, results: &mut BenchResults) {
    header("Concurrency: sequential vs threaded node runtime (ConcurrencyMode)");
    let node_counts: &[usize] = if full { &[16, 32, 64, 128] } else { &[16, 64] };
    println!(
        "(worker pool: {threads} threads, {} hardware threads available)",
        default_threads()
    );
    println!(
        "{:<8} {:>8} {:>14} {:>14} {:>9} {:>11}",
        "nodes", "block", "sequential", "threaded", "speedup", "identical"
    );
    for &nodes in node_counts {
        let cmp = concurrency_comparison(nodes, threads);
        println!(
            "{:<8} {:>8} {:>14} {:>14} {:>8.2}x {:>11}",
            cmp.nodes,
            cmp.block_size,
            format_seconds(cmp.sequential_seconds),
            format_seconds(cmp.threaded_seconds),
            cmp.speedup(),
            cmp.outputs_identical && cmp.accounting_identical,
        );
        results
            .point("concurrency", &format!("N={nodes} threads={threads}"))
            .wall_seconds(cmp.threaded_seconds)
            .extra("sequential_seconds", cmp.sequential_seconds)
            .extra("speedup", cmp.speedup())
            .extra(
                "identical",
                if cmp.outputs_identical && cmp.accounting_identical {
                    1.0
                } else {
                    0.0
                },
            );
    }
    println!("(threaded runs are bit-identical to sequential; only wall-clock changes)");
}

fn sockets(full: bool, threads: usize, results: &mut BenchResults) {
    use dstress_core::{CounterProgram, DStressConfig, DStressRuntime, TransportKind};
    use dstress_finance::generator::{core_periphery, GeneratorConfig};
    use dstress_net::cost::CostModel;

    header("Sockets: end-to-end run, Sim vs Socket transport (measured vs modeled)");
    let (banks, degree, rounds) = if full { (24, 4, 2) } else { (10, 3, 1) };
    let mut rng = dstress_math::rng::Xoshiro256::new(5);
    let network = core_periphery(&GeneratorConfig::small(banks, degree), &mut rng);
    let graph = network.graph();
    let program = CounterProgram { width: 8, rounds };
    let mut config = DStressConfig::benchmark(2)
        .with_concurrency(dstress_core::ConcurrencyMode::Threaded { threads });
    config.message_bits = 8;
    println!("(N = {banks}, D = {degree}, k = 2, {rounds} iterations, {threads} worker threads)");
    println!(
        "{:<10} {:>12} {:>14} {:>16} {:>14}",
        "transport", "measured", "modeled net", "wire bytes", "identical"
    );

    let mut baseline: Option<(u64, u64)> = None;
    let model = CostModel::paper_reference();
    for (label, transport) in [
        ("sim", TransportKind::Sim),
        ("socket", TransportKind::Socket),
    ] {
        let runtime = DStressRuntime::new(config.clone().with_transport(transport));
        let start = std::time::Instant::now();
        let run = runtime
            .execute(graph, &program)
            .expect("socket smoke run succeeds");
        let wall = start.elapsed().as_secs_f64();
        let counts = run.phases.total_counts();
        let modeled_net = model.estimate_network_seconds(&counts);
        // The transport must be bit-invisible: identical released value
        // and identical measured wire bytes across backends.
        let identical = match baseline {
            None => {
                baseline = Some((run.noised_output.to_bits(), counts.wire_bytes));
                true
            }
            Some((bits, wire)) => bits == run.noised_output.to_bits() && wire == counts.wire_bytes,
        };
        assert!(identical, "socket backend diverged from sim");
        println!(
            "{:<10} {:>12} {:>14} {:>16} {:>14}",
            label,
            format_seconds(wall),
            format_seconds(modeled_net),
            format_bytes(counts.wire_bytes as f64),
            identical,
        );
        results
            .point("sockets", &format!("N={banks} transport={label}"))
            .wall_seconds(wall)
            .counts(counts)
            .extra("modeled_network_seconds", modeled_net)
            .extra("identical", if identical { 1.0 } else { 0.0 });
    }
    println!("(socket runs move every GMW message over real loopback TCP frames)");
}

fn rounds(full: bool, results: &mut BenchResults) {
    header("GMW round batching: rounds per pair, layer-batched vs per-gate");
    let (block, d, n) = if full { (8, 20, 100) } else { (4, 10, 50) };
    println!("(block size {block}, D = {d}, N = {n}; rounds are one-way message hops per pair)");
    println!(
        "{:<16} {:>10} {:>8} {:>14} {:>14} {:>10}",
        "circuit", "AND gates", "depth", "rounds/pair", "per-gate", "reduction"
    );
    for kind in MpcCircuitKind::all() {
        let batched = run_mpc_micro_with(kind, block, d, n, 0xF16, GmwBatching::Layered);
        let per_gate = run_mpc_micro_with(kind, block, d, n, 0xF16, GmwBatching::PerGate);
        let reduction = per_gate.rounds as f64 / batched.rounds as f64;
        println!(
            "{:<16} {:>10} {:>8} {:>14} {:>14} {:>9.1}x",
            kind.label(),
            batched.and_gates,
            batched.and_layers,
            batched.rounds,
            per_gate.rounds,
            reduction,
        );
        results
            .point("rounds", kind.label())
            .counts(batched.counts)
            .extra("rounds_batched", batched.rounds as f64)
            .extra("rounds_per_gate", per_gate.rounds as f64)
            .extra("and_gates", batched.and_gates as f64)
            .extra("and_depth", batched.and_layers as f64)
            .extra("round_reduction", reduction);
    }
    println!("(batched rounds scale with circuit depth; per-gate rounds with AND-gate count)");
}

fn bytes(full: bool, threads: usize, results: &mut BenchResults) {
    header("Wire bytes: measured (encoded messages) vs modeled (cost model) reconciliation");
    let (block, d, n) = if full { (8, 20, 100) } else { (4, 10, 50) };
    println!(
        "(block size {block}, D = {d}, N = {n}; ratio = measured / modeled, \
         saving = per-gate measured / batched measured)"
    );
    println!(
        "{:<16} {:>14} {:>14} {:>7} {:>14} {:>8}",
        "circuit", "modeled", "measured", "ratio", "per-gate meas.", "saving"
    );
    for kind in MpcCircuitKind::all() {
        let batched = run_mpc_micro_with(kind, block, d, n, 0xF17, GmwBatching::Layered);
        let per_gate = run_mpc_micro_with(kind, block, d, n, 0xF17, GmwBatching::PerGate);
        let modeled = batched.counts.bytes_sent;
        let measured = batched.counts.wire_bytes;
        let ratio = measured as f64 / modeled as f64;
        let saving = per_gate.counts.wire_bytes as f64 / measured as f64;
        println!(
            "{:<16} {:>14} {:>14} {:>7.3} {:>14} {:>7.2}x",
            kind.label(),
            format_bytes(modeled as f64),
            format_bytes(measured as f64),
            ratio,
            format_bytes(per_gate.counts.wire_bytes as f64),
            saving,
        );
        results
            .point("bytes", kind.label())
            .counts(batched.counts)
            .extra("measured_bytes", measured as f64)
            .extra("modeled_bytes", modeled as f64)
            .extra("measured_over_modeled", ratio)
            .extra("per_gate_measured_bytes", per_gate.counts.wire_bytes as f64)
            .extra("framing_saving", saving);
    }
    // The transfer protocol's ElGamal hops cross the same wire layer.
    for row in transfer_sweep(&[block], 12, threads) {
        let modeled = row.counts.bytes_sent;
        let measured = row.counts.wire_bytes;
        let ratio = measured as f64 / modeled as f64;
        println!(
            "{:<16} {:>14} {:>14} {:>7.3} {:>14} {:>8}",
            format!("transfer k+1={}", row.block_size),
            format_bytes(modeled as f64),
            format_bytes(measured as f64),
            ratio,
            "-",
            "-",
        );
        results
            .point("bytes", &format!("transfer block={}", row.block_size))
            .counts(row.counts)
            .extra("measured_bytes", measured as f64)
            .extra("modeled_bytes", modeled as f64)
            .extra("measured_over_modeled", ratio);
    }
    println!(
        "(measured > modeled comes from per-message framing; batched measured < per-gate \
         measured because a layer pays one header where the per-gate path pays one per gate)"
    );
}

fn scale(full: bool, threads: usize, results: &mut BenchResults) {
    header("Scale: measured streaming sweep past the 2,000-vertex materialisation wall");
    let measured_nodes: &[usize] = if full {
        &[500, 1000, 2500, 5000, 10_000]
    } else {
        &[500, 2500]
    };
    let model_nodes: &[usize] = if full { &[25_000, 100_000] } else { &[10_000] };
    println!(
        "(streaming generators -> CSR graphs -> block-streaming engine; counter program, \
         block size 3, I = 2, accounted transfers, {threads} worker threads)"
    );
    println!(
        "{:<16} {:>8} {:>9} {:>4} {:>12} {:>10} {:>12} {:>14} {:>9}",
        "topology", "N", "edges", "D", "wall", "gen", "peak mem", "traffic/node", "measured"
    );
    // The sweep runs its points sequentially so each one's peak-memory
    // figure is clean.
    for point in scale_sweep(measured_nodes, model_nodes, threads) {
        if point.measured {
            println!(
                "{:<16} {:>8} {:>9} {:>4} {:>12} {:>10} {:>12} {:>14} {:>9}",
                point.topology,
                point.nodes,
                point.edges,
                point.degree_bound,
                format_seconds(point.wall_seconds),
                format_seconds(point.generation_seconds),
                format_bytes(point.peak_alloc_bytes as f64),
                format_bytes(point.bytes_per_node),
                "yes",
            );
            results
                .point("scale", &format!("{} N={}", point.topology, point.nodes))
                .wall_seconds(point.wall_seconds)
                .counts(point.counts)
                .extra("measured", 1.0)
                .extra("model_only", 0.0)
                .extra("edges", point.edges as f64)
                .extra("degree_bound", point.degree_bound as f64)
                .extra("generation_seconds", point.generation_seconds)
                .extra("peak_alloc_bytes", point.peak_alloc_bytes as f64)
                .extra("spill_file_bytes", point.spill_file_bytes as f64)
                .extra("traffic_per_node_bytes", point.bytes_per_node);
        } else {
            println!(
                "{:<16} {:>8} {:>9} {:>4} {:>12} {:>10} {:>12} {:>14} {:>9}",
                point.topology,
                point.nodes,
                "-",
                point.degree_bound,
                format_seconds(point.wall_seconds),
                "-",
                "-",
                format_bytes(point.bytes_per_node),
                "no (model)",
            );
            results
                .point("scale", &format!("model N={}", point.nodes))
                .extra("measured", 0.0)
                .extra("model_only", 1.0)
                .extra("projected_seconds", point.wall_seconds)
                .extra("projected_bytes_per_node", point.bytes_per_node);
        }
    }
    // The streaming determinism pin, at a point past the old wall.
    let check_n = if full { 2500 } else { 2200 };
    let identical =
        streaming_determinism_check(ScaleTopology::ScaleFree { m: 2 }, check_n, threads);
    println!("Sequential vs threaded streaming at N = {check_n}: bit-identical = {identical}");
    results
        .point("scale", &format!("determinism N={check_n}"))
        .extra("identical", if identical { 1.0 } else { 0.0 });
    assert!(identical, "streaming execution must be schedule-invariant");
}

fn persist(full: bool, threads: usize, results: &mut BenchResults) {
    header("Persist: budgeted (disk-spilling) runs past the RAM wall");
    let nodes: &[usize] = if full {
        &[2_500, 12_000, 25_000]
    } else {
        &[1_200, 12_000]
    };
    println!(
        "(scale workload with the state budget set to 1/4 of the unbudgeted store bytes, \
         so every point pages share state to its run-scoped spill log; {threads} worker threads)"
    );
    println!(
        "{:<8} {:>9} {:>12} {:>12} {:>14} {:>12} {:>12} {:>12} {:>7}",
        "N",
        "edges",
        "unbudgeted",
        "budget",
        "resident peak",
        "spill file",
        "peak heap",
        "wall",
        "ok"
    );
    for point in persist_sweep(nodes, threads) {
        assert!(
            point.spill_file_bytes > 0,
            "a quarter budget must spill at N = {}",
            point.nodes
        );
        assert!(
            point.within_budget(),
            "resident peak {} exceeds budget {} + slack {} at N = {}",
            point.store_resident_peak_bytes,
            point.budget_bytes,
            point.slack_bytes,
            point.nodes
        );
        println!(
            "{:<8} {:>9} {:>12} {:>12} {:>14} {:>12} {:>12} {:>12} {:>7}",
            point.nodes,
            point.edges,
            format_bytes(point.unbudgeted_bytes as f64),
            format_bytes(point.budget_bytes as f64),
            format_bytes(point.store_resident_peak_bytes as f64),
            format_bytes(point.spill_file_bytes as f64),
            format_bytes(point.peak_alloc_bytes as f64),
            format_seconds(point.wall_seconds),
            point.within_budget(),
        );
        results
            .point("persist", &format!("N={}", point.nodes))
            .wall_seconds(point.wall_seconds)
            .counts(point.counts)
            .extra("measured", 1.0)
            .extra("edges", point.edges as f64)
            .extra("unbudgeted_bytes", point.unbudgeted_bytes as f64)
            .extra("budget_bytes", point.budget_bytes as f64)
            .extra(
                "store_resident_peak_bytes",
                point.store_resident_peak_bytes as f64,
            )
            .extra("spill_file_bytes", point.spill_file_bytes as f64)
            .extra("peak_alloc_bytes", point.peak_alloc_bytes as f64)
            .extra(
                "within_budget",
                if point.within_budget() { 1.0 } else { 0.0 },
            );
    }
    // The recovery pin: crash after round 0, resume, same bits.
    let check_n = if full { 500 } else { 200 };
    let identical = kill_resume_check(check_n);
    println!("Kill-and-resume at N = {check_n}: bit-identical = {identical}");
    results
        .point("persist", &format!("kill-resume N={check_n}"))
        .extra("identical", if identical { 1.0 } else { 0.0 });
    assert!(identical, "resume must reproduce the uninterrupted run");
}

fn scenarios(full: bool, results: &mut BenchResults) {
    header("Scenarios: DP graph-analytics suite (engine releases vs plaintext references)");
    println!(
        "{:<18} {:>4} {:>5} {:>12} {:>12} {:>10} {:>10} {:>6} {:>10} {:>12}",
        "program",
        "N",
        "iter",
        "released",
        "reference",
        "|err|",
        "bound",
        "sens",
        "wall",
        "traffic/node"
    );
    for row in scenario_rows(full) {
        assert!(
            row.within_bound(),
            "{} release outside its analytic bound",
            row.program
        );
        println!(
            "{:<18} {:>4} {:>5} {:>12.4} {:>12.4} {:>10.4} {:>10.1} {:>6.2} {:>10} {:>12}",
            row.program,
            row.vertices,
            row.iterations,
            row.released,
            row.reference,
            row.error(),
            row.error_bound,
            row.sensitivity,
            format_seconds(row.measured_seconds),
            format_bytes(row.traffic_per_node_bytes),
        );
        results
            .point("scenarios", row.program)
            .wall_seconds(row.measured_seconds)
            .counts(row.counts)
            .extra("released", row.released)
            .extra("reference", row.reference)
            .extra("released_error", row.error())
            .extra("error_bound", row.error_bound)
            .extra("sensitivity", row.sensitivity)
            .extra("epsilon", row.epsilon)
            .extra("iterations", row.iterations as f64)
            .extra("traffic_per_node_bytes", row.traffic_per_node_bytes);
    }
    println!(
        "(every release must land inside quantisation + Laplace tail at delta = 1e-9; asserted)"
    );

    let cmp = recurring_comparison(full);
    println!(
        "Recurring releases ({} per arm, eps {} each, one shared budget):",
        cmp.releases_per_arm, cmp.epsilon_per_release
    );
    println!(
        "  full MPC {} per release, PSA {} per release  =>  PSA {:.0}x cheaper; eps spent {:.2}",
        format_seconds(cmp.full_seconds_per_release),
        format_seconds(cmp.psa_seconds_per_release),
        cmp.speedup(),
        cmp.epsilon_spent,
    );
    assert!(
        cmp.speedup() > 1.0,
        "PSA releases must be cheaper per release than full MPC"
    );
    results
        .point("scenarios", "recurring full-mpc")
        .wall_seconds(cmp.full_seconds_per_release)
        .extra("releases", cmp.releases_per_arm as f64)
        .extra("mean_value", cmp.full_mean_value)
        .extra("reference", cmp.reference);
    results
        .point("scenarios", "recurring psa")
        .wall_seconds(cmp.psa_seconds_per_release)
        .extra("releases", cmp.releases_per_arm as f64)
        .extra("mean_value", cmp.psa_mean_value)
        .extra("reference", cmp.reference)
        .extra("speedup_vs_full", cmp.speedup())
        .extra("epsilon_spent", cmp.epsilon_spent);
}

fn naive(full: bool, results: &mut BenchResults) {
    header("§5.5: naive monolithic-MPC baseline vs DStress");
    let comparison = if full {
        baseline_comparison(&[4, 6, 8], &[10, 25], 11)
    } else {
        paper_comparison()
    };
    println!(
        "{:<6} {:>10} {:>12} {:>14} {:>14}",
        "N", "executed", "AND gates", "measured", "projected"
    );
    for row in &comparison.rows {
        println!(
            "{:<6} {:>10} {:>12} {:>14} {:>14}",
            row.n,
            row.executed,
            row.and_gates,
            format_seconds(row.measured_seconds),
            format_seconds(row.projected_seconds),
        );
        results
            .point("naive-baseline", &format!("N={}", row.n))
            .wall_seconds(row.measured_seconds)
            .extra("and_gates", row.and_gates as f64)
            .extra("projected_seconds", row.projected_seconds);
    }
    println!(
        "Full scale (N=1750, 11 multiplications): {} ({:.0} years; paper: ~287 years)",
        format_seconds(comparison.full_scale_seconds),
        comparison.full_scale_years,
    );
    println!(
        "DStress projected: {}  =>  speedup ~{:.0}x",
        format_seconds(comparison.dstress_seconds),
        comparison.speedup,
    );
}

fn utility() {
    header("§4.5: dollar-differential-privacy utility analysis");
    println!(
        "{:<24} {:>12} {:>12} {:>16} {:>10} {:>10}",
        "model", "sensitivity", "eps/query", "noise scale", "runs/yr", "P(|err|<200B)"
    );
    for row in utility_table() {
        println!(
            "{:<24} {:>12.1} {:>12.3} {:>14.1}B$ {:>10} {:>10.3}",
            row.model,
            row.sensitivity,
            row.epsilon_query,
            row.noise_scale_dollars / 1e9,
            row.runs_per_year,
            row.accuracy_probability,
        );
    }
    println!("(paper: EGJ sensitivity 20, eps >= 0.23, ~3 runs per year)");
}

fn edge_privacy() {
    header("Appendix B: edge-privacy accounting for the transfer protocol");
    let s = edge_privacy_summary();
    println!("sensitivity (k+1):            {}", s.sensitivity);
    println!("total transfers N_q:          {:.3e}", s.total_transfers);
    println!("paper epsilon per transfer:   {:.3e}", s.paper_epsilon);
    println!("minimum feasible epsilon:     {:.3e}", s.minimum_epsilon);
    println!(
        "failure probability P_fail:   {:.3e}",
        s.failure_probability
    );
    println!(
        "budget per iteration:         {:.4}   (paper: 0.0014)",
        s.budget_per_iteration
    );
    println!(
        "budget per year:              {:.4}   (paper: 0.0469)",
        s.budget_per_year
    );
    println!(
        "fraction of ln 2 budget:      {:.2}%",
        s.fraction_of_annual_budget * 100.0
    );
}

fn contagion() {
    header("Appendix C: contagion scenarios on the 50-bank two-tier network");
    println!(
        "{:<16} {:<6} {:>12} {:>8} {:>10} {:>10}",
        "scenario", "model", "TDS", "failed", "converged", "log2(N)"
    );
    for row in contagion_study::scenario_table(0xC0C0) {
        println!(
            "{:<16} {:<6} {:>12.1} {:>8} {:>10} {:>10}",
            row.scenario,
            match row.model {
                dstress_finance::contagion::ContagionModel::EisenbergNoe => "EN",
                dstress_finance::contagion::ContagionModel::ElliottGolubJackson => "EGJ",
            },
            row.outcome.report.total_shortfall,
            row.outcome.report.failed_banks,
            row.outcome.iterations_to_converge,
            row.iteration_bound,
        );
    }
    let noised = contagion_study::noised_cascade_run(0xBEEF);
    println!(
        "DStress release on the cascade: ideal TDS {:.1}, released {:.1} (Laplace scale {:.1}, relative error {:.1}%)",
        noised.ideal_output,
        noised.noised_output,
        noised.noise_scale,
        noised.relative_error * 100.0,
    );
}

fn analyze_experiment(results: &mut BenchResults) {
    header("Static analysis: certified ranges, sensitivity bounds and private-data flow");
    println!(
        "{:<18} {:<22} {:>8} {:>6} {:>8} {:>8} {:>9} {:>10} {:>22} {:>8}",
        "program",
        "model",
        "upd AND",
        "depth",
        "agg AND",
        "nse AND",
        "declared",
        "certified",
        "aggregate range",
        "findings"
    );
    let rows = analyze_suite_rows();
    let mut total_findings = 0usize;
    for row in &rows {
        println!(
            "{:<18} {:<22} {:>8} {:>6} {:>8} {:>8} {:>9} {:>10} {:>22} {:>8}",
            row.name,
            row.model,
            row.update_and_gates,
            row.update_and_depth,
            row.aggregation_and_gates,
            row.noising_and_gates,
            if row.declared_sensitivity.is_nan() {
                "-".to_string()
            } else {
                format!("{:.4}", row.declared_sensitivity)
            },
            match row.certified_sensitivity {
                Some(c) => format!("{c:.4}"),
                None if row.assumptions > 0 => "lemma".to_string(),
                None => "-".to_string(),
            },
            row.aggregate_interval.to_string(),
            row.findings.len(),
        );
        total_findings += row.findings.len();
        results
            .point("analyze", &row.name)
            .wall_seconds(row.wall_seconds)
            .extra("update_and_gates", row.update_and_gates as f64)
            .extra("update_and_depth", row.update_and_depth as f64)
            .extra("aggregation_and_gates", row.aggregation_and_gates as f64)
            .extra("noising_and_gates", row.noising_and_gates as f64)
            .extra("declared_sensitivity", row.declared_sensitivity)
            .extra(
                "certified_sensitivity",
                row.certified_sensitivity.unwrap_or(-1.0),
            )
            .extra("assumptions", row.assumptions as f64)
            .extra("findings", row.findings.len() as f64);
    }
    if total_findings > 0 {
        eprintln!("\nanalysis findings:");
        for row in &rows {
            for f in &row.findings {
                eprintln!("  [{}] {f}", row.name);
            }
        }
        eprintln!("analyze: {total_findings} findings — certification FAILED");
        std::process::exit(1);
    }
    println!("\nanalyze: {} artifacts certified, 0 findings", rows.len());
}

fn run(experiment: &str, full: bool, threads: usize, results: &mut BenchResults) -> bool {
    match experiment {
        "fig3-left" => fig3_left(&fig3_fig4_rows(full, threads), full, results),
        "fig3-right" => fig3_right(full, threads, results),
        "fig4" => fig4(&fig3_fig4_rows(full, threads), results),
        "transfer-time" => transfer_time(full, threads, results),
        "transfer-traffic" => transfer_traffic(full, threads, results),
        "transfer-ablation" => transfer_ablation(results),
        "transfer-kernels" => transfer_kernels(full, results),
        "transfer" => {
            transfer_time(full, threads, results);
            transfer_traffic(full, threads, results);
            transfer_ablation(results);
            transfer_kernels(full, results);
        }
        "fig5-time" | "fig5-traffic" | "fig5" => fig5(full, threads, results),
        "fig6" => fig6(full, results),
        "scale" => scale(full, threads, results),
        "persist" => persist(full, threads, results),
        "concurrency" => concurrency(full, threads, results),
        "sockets" => sockets(full, threads, results),
        "rounds" => rounds(full, results),
        "bytes" => bytes(full, threads, results),
        "scenarios" => scenarios(full, results),
        "analyze" => analyze_experiment(results),
        "naive-baseline" => naive(full, results),
        "utility" => utility(),
        "edge-privacy" => edge_privacy(),
        "contagion" => contagion(),
        "all" => {
            // Figures 3 (left) and 4 share one sweep; run it once.
            let rows = fig3_fig4_rows(full, threads);
            fig3_left(&rows, full, results);
            fig3_right(full, threads, results);
            fig4(&rows, results);
            for exp in [
                "transfer-time",
                "transfer-traffic",
                "transfer-ablation",
                "transfer-kernels",
                "fig5",
                "fig6",
                "scale",
                "persist",
                "concurrency",
                "sockets",
                "rounds",
                "bytes",
                "scenarios",
                "analyze",
                "naive-baseline",
                "utility",
                "edge-privacy",
                "contagion",
            ] {
                run(exp, full, threads, results);
            }
        }
        _ => return false,
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let threads = match args.iter().position(|a| a == "--threads") {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) => n.max(1),
            None => {
                eprintln!("--threads expects a positive integer");
                std::process::exit(1);
            }
        },
        None => default_threads(),
    };
    let experiment = args
        .iter()
        .enumerate()
        .filter(|(i, _)| *i == 0 || args[i - 1] != "--threads")
        .find(|(_, a)| !a.starts_with("--"))
        .map(|(_, a)| a.clone())
        .unwrap_or_else(|| "all".to_string());
    let mut results = BenchResults::new(threads, full);
    if !run(&experiment, full, threads, &mut results) {
        eprintln!("unknown experiment '{experiment}'");
        eprintln!(
            "available: fig3-left fig3-right fig4 transfer-time transfer-traffic \
             transfer-ablation transfer-kernels transfer fig5 fig6 scale persist concurrency \
             sockets rounds bytes scenarios analyze naive-baseline utility edge-privacy \
             contagion all"
        );
        std::process::exit(1);
    }
    let path = std::path::Path::new("BENCH_results.json");
    match results.write_to(path) {
        Ok(()) => println!(
            "\nwrote {} points to {}",
            results.points.len(),
            path.display()
        ),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
