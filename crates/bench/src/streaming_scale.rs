//! The `scale` experiment: *measured* runs past the materialisation wall.
//!
//! The seed reproduction stopped measuring at ~2,000 vertices — beyond
//! that, Figure 6 was projection-only.  With streaming generators
//! ([`dstress_graph::stream`]), compact CSR topologies and the engine's
//! block-streaming schedule
//! ([`DStressRuntime::execute_streaming`]), sweeps keep *measuring*
//! where the old path had to switch to the model.  Every point reports
//! wall seconds **and peak heap bytes** (via [`crate::alloc`]), so the
//! bounded-memory claim is a number in `BENCH_results.json`, not prose;
//! points continue to arbitrary `N` as explicitly labelled model-only
//! projections.
//!
//! Two topology scenarios are swept:
//!
//! * **scale-free** — Barabási–Albert preferential attachment with
//!   degree clamping (hub-bounded interbank webs);
//! * **core–periphery** — the streaming two-tier generator from
//!   `dstress-finance` at sizes its materialised sibling never reached.
//!
//! The workload is the counter program (the smallest circuit that
//! exercises every phase), cost-accounted transfers, block size `k + 1 =
//! 3`, two iterations — chosen so a 10,000-vertex run stays in seconds
//! while every phase (init, per-block MPC, per-edge transfer,
//! aggregation) is really executed and measured.

use crate::alloc;
use dstress_core::{ConcurrencyMode, CounterProgram, DStressConfig, DStressRun, DStressRuntime};
use dstress_finance::{CorePeripheryStream, CorePeripheryStreamConfig};
use dstress_graph::stream::{BarabasiAlbertStream, EdgeStream};
use dstress_graph::Graph;
use dstress_net::cost::OperationCounts;
use std::time::Instant;

/// Seed of every scale run (graph generation and execution).
const SCALE_SEED: u64 = 0x5CA1_E5EE;

/// Which streaming topology a scale point runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleTopology {
    /// Barabási–Albert scale-free attachment, `m` edges per vertex.
    ScaleFree {
        /// Out-edges attached per new vertex.
        m: usize,
    },
    /// The streaming two-tier core–periphery generator.
    CorePeriphery,
}

impl ScaleTopology {
    /// The two scenarios of the sweep.
    pub fn all() -> [ScaleTopology; 2] {
        [
            ScaleTopology::ScaleFree { m: 2 },
            ScaleTopology::CorePeriphery,
        ]
    }

    /// Short label used in tables and result files.
    pub fn label(&self) -> &'static str {
        match self {
            ScaleTopology::ScaleFree { .. } => "scale-free",
            ScaleTopology::CorePeriphery => "core-periphery",
        }
    }

    /// The public degree bound the scenario declares.
    pub fn degree_bound(&self, n: usize) -> usize {
        match self {
            ScaleTopology::ScaleFree { m } => (4 * m).max(8),
            // The two-tier generator needs head-room for the core hubs.
            ScaleTopology::CorePeriphery => {
                if n >= 2_000 {
                    48
                } else {
                    32
                }
            }
        }
    }

    /// Builds the scenario's graph in compact CSR form from its stream.
    pub fn build_graph(&self, n: usize, seed: u64) -> Graph {
        let d = self.degree_bound(n);
        let mut stream: Box<dyn EdgeStream> = match *self {
            ScaleTopology::ScaleFree { m } => Box::new(BarabasiAlbertStream::new(n, m, d, seed)),
            ScaleTopology::CorePeriphery => Box::new(CorePeripheryStream::new(
                CorePeripheryStreamConfig::scaled(n, d, seed),
            )),
        };
        Graph::from_edge_stream(stream.as_mut()).expect("streaming generators emit valid edges")
    }
}

/// One measured (or model-only) point of the scale sweep.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Scenario label.
    pub topology: &'static str,
    /// Number of vertices.
    pub nodes: usize,
    /// Directed edges of the generated graph (0 for model-only points).
    pub edges: usize,
    /// Degree bound `D` of the scenario at this size.
    pub degree_bound: usize,
    /// Whether the point was *measured* (a real engine run) or projected
    /// from the cost model.
    pub measured: bool,
    /// Wall-clock seconds of the engine run alone (model-only points:
    /// the projected per-node seconds), comparable with the other
    /// measured experiments.
    pub wall_seconds: f64,
    /// Wall-clock seconds of streaming generation + CSR construction
    /// (measured points only), reported separately so graph build time
    /// never pollutes the execution number.
    pub generation_seconds: f64,
    /// Peak heap bytes across graph build + run (measured points only —
    /// the bounded-memory claim covers the whole streaming path).
    pub peak_alloc_bytes: usize,
    /// High-water mark of the run's spill logs on disk (0 unless a
    /// state budget forces the stores to page; `repro -- persist` is
    /// the budgeted sweep).
    pub spill_file_bytes: u64,
    /// Operation counts of the run (measured points only).
    pub counts: OperationCounts,
    /// Mean bytes sent per node.
    pub bytes_per_node: f64,
    /// The pre-noise aggregate (evaluation handle for determinism checks).
    pub ideal_output: f64,
}

/// The workload configuration of every measured scale point.
fn scale_config(threads: usize) -> DStressConfig {
    let mut config = DStressConfig::benchmark(2);
    config.message_bits = 8;
    config.seed = SCALE_SEED;
    if threads > 1 {
        config = config.with_concurrency(ConcurrencyMode::Threaded { threads });
    }
    config
}

/// The counter workload: 2 iterations, 8-bit words.
fn scale_program() -> CounterProgram {
    CounterProgram {
        width: 8,
        rounds: 2,
    }
}

/// Runs one *measured* scale point: stream → CSR graph → block-streaming
/// execution, with peak heap bytes captured around the whole build + run.
pub fn run_scale_point(topology: ScaleTopology, n: usize, threads: usize) -> ScalePoint {
    let program = scale_program();
    let runtime = DStressRuntime::new(scale_config(threads));
    let baseline = alloc::reset_peak();
    let gen_start = Instant::now();
    let graph = topology.build_graph(n, SCALE_SEED);
    let generation_seconds = gen_start.elapsed().as_secs_f64();
    let run_start = Instant::now();
    let run = runtime
        .execute_streaming(&graph, &program)
        .expect("scale run succeeds");
    let wall_seconds = run_start.elapsed().as_secs_f64();
    let peak = alloc::peak_bytes_since_reset().saturating_sub(baseline);
    ScalePoint {
        topology: topology.label(),
        nodes: n,
        edges: graph.edge_count(),
        degree_bound: graph.degree_bound(),
        measured: true,
        wall_seconds,
        generation_seconds,
        peak_alloc_bytes: peak,
        spill_file_bytes: run.spill_file_bytes,
        counts: run.phases.total_counts(),
        bytes_per_node: run.mean_bytes_per_node(),
        ideal_output: run.ideal_output,
    }
}

/// The degree bound of the model-only continuation points.
pub const MODEL_DEGREE_BOUND: usize = 8;

/// A model-only continuation point: the Figure 6 projection machinery at
/// an `N` beyond the measured sweep, explicitly labelled as such.
pub fn model_only_point(n: usize, degree_bound: usize) -> ScalePoint {
    let rows = crate::scalability::fig6_sweep(&[n], &[degree_bound]);
    let row = &rows[0];
    ScalePoint {
        topology: "model",
        nodes: n,
        edges: 0,
        degree_bound,
        measured: false,
        wall_seconds: row.result.total_seconds,
        generation_seconds: 0.0,
        peak_alloc_bytes: 0,
        spill_file_bytes: 0,
        counts: OperationCounts::default(),
        bytes_per_node: row.result.bytes_per_node,
        ideal_output: f64::NAN,
    }
}

/// The full sweep: measured points for every scenario at every `n`
/// (sequentially, so the per-point peak-memory figures do not bleed into
/// each other), then the model-only continuation at
/// [`MODEL_DEGREE_BOUND`].  This is exactly what `repro -- scale`
/// prints and records.
pub fn scale_sweep(
    measured_nodes: &[usize],
    model_nodes: &[usize],
    threads: usize,
) -> Vec<ScalePoint> {
    let mut points = Vec::new();
    for topology in ScaleTopology::all() {
        for &n in measured_nodes {
            points.push(run_scale_point(topology, n, threads));
        }
    }
    for &n in model_nodes {
        points.push(model_only_point(n, MODEL_DEGREE_BOUND));
    }
    points
}

/// Runs the same scale point under `Sequential` and `Threaded` streaming
/// execution and reports whether they were bit-identical (they must be).
pub fn streaming_determinism_check(topology: ScaleTopology, n: usize, threads: usize) -> bool {
    let program = scale_program();
    let graph = topology.build_graph(n, SCALE_SEED);
    let sequential = DStressRuntime::new(scale_config(1))
        .execute_streaming(&graph, &program)
        .expect("sequential scale run succeeds");
    let threaded = DStressRuntime::new(scale_config(threads.max(2)))
        .execute_streaming(&graph, &program)
        .expect("threaded scale run succeeds");
    runs_identical(&sequential, &threaded)
}

/// Bit-identity of two runs: outputs, counts and traffic.
pub fn runs_identical(a: &DStressRun, b: &DStressRun) -> bool {
    a.noised_output == b.noised_output
        && a.ideal_output == b.ideal_output
        && a.phases.total_counts() == b.phases.total_counts()
        && a.traffic.report() == b.traffic.report()
}

/// Measures peak heap bytes of the materialised (`execute`) vs streaming
/// (`execute_streaming`) schedule on the same graph; returns
/// `(materialised_peak, streaming_peak)`.  Runs sequentially for a clean
/// measurement.
pub fn peak_memory_comparison(topology: ScaleTopology, n: usize) -> (usize, usize) {
    let program = scale_program();
    let runtime = DStressRuntime::new(scale_config(1));
    let graph = topology.build_graph(n, SCALE_SEED);

    let baseline = alloc::reset_peak();
    let materialised = runtime
        .execute(&graph, &program)
        .expect("materialised run succeeds");
    let materialised_peak = alloc::peak_bytes_since_reset().saturating_sub(baseline);
    drop(materialised);

    let baseline = alloc::reset_peak();
    let streaming = runtime
        .execute_streaming(&graph, &program)
        .expect("streaming run succeeds");
    let streaming_peak = alloc::peak_bytes_since_reset().saturating_sub(baseline);
    drop(streaming);

    (materialised_peak, streaming_peak)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_points_measure_real_runs_at_small_n() {
        for topology in ScaleTopology::all() {
            let point = run_scale_point(topology, 150, 2);
            assert!(point.measured);
            assert_eq!(point.nodes, 150);
            assert!(point.edges > 0);
            assert!(point.counts.and_gates > 0, "{}", point.topology);
            assert!(point.bytes_per_node > 0.0);
            assert!(point.peak_alloc_bytes > 0);
            assert!(point.wall_seconds > 0.0);
            assert!(point.ideal_output.is_finite());
        }
    }

    #[test]
    fn scale_points_are_reproducible() {
        let topology = ScaleTopology::ScaleFree { m: 2 };
        let a = run_scale_point(topology, 120, 1);
        let b = run_scale_point(topology, 120, 2);
        // Concurrency changes wall-clock and peak memory, never results.
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.ideal_output, b.ideal_output);
        assert_eq!(a.bytes_per_node, b.bytes_per_node);
    }

    #[test]
    fn model_points_are_labelled() {
        let point = model_only_point(10_000, 8);
        assert!(!point.measured);
        assert_eq!(point.topology, "model");
        assert!(point.wall_seconds > 0.0);
        assert!(point.bytes_per_node > 0.0);
        assert_eq!(point.edges, 0);
    }

    #[test]
    fn small_determinism_check_passes() {
        assert!(streaming_determinism_check(
            ScaleTopology::CorePeriphery,
            90,
            3
        ));
    }
}
