//! Appendix C: contagion scenarios and end-to-end utility.
//!
//! The paper uses a stylised 50-bank core–periphery network to (a) justify
//! the `I = log₂ N` iteration rule and (b) argue (together with the OFR
//! working paper) that the Laplace noise added for output privacy does not
//! blunt the systemic-risk signal: a genuine cascade dwarfs the noise.
//!
//! This module runs the two Appendix C scenarios under both contagion
//! models and, in addition, pushes the cascade scenario through the full
//! DStress runtime to compare the noised release against the ideal value.

use dstress_core::{DStressConfig, DStressRuntime, SecureVertexProgram};
use dstress_finance::contagion::{
    absorbed_shock_scenario, cascade_scenario, recommended_iterations, ContagionModel,
    ContagionOutcome,
};
use dstress_finance::{CircuitParams, EisenbergNoeSecure, FinancialNetwork};
use dstress_math::rng::Xoshiro256;

/// One Appendix C scenario result.
#[derive(Clone, Debug)]
pub struct ScenarioRow {
    /// Scenario name.
    pub scenario: &'static str,
    /// Contagion model.
    pub model: ContagionModel,
    /// The outcome (shortfall, failures, convergence).
    pub outcome: ContagionOutcome,
    /// The `log₂ N` iteration bound for the network size.
    pub iteration_bound: u32,
}

/// Runs the two scenarios under both models.
pub fn scenario_table(seed: u64) -> Vec<ScenarioRow> {
    let mut rows = Vec::new();
    for model in [
        ContagionModel::EisenbergNoe,
        ContagionModel::ElliottGolubJackson,
    ] {
        let mut rng = Xoshiro256::new(seed);
        let (net, outcome) = absorbed_shock_scenario(&mut rng, model);
        rows.push(ScenarioRow {
            scenario: "absorbed shock",
            model,
            iteration_bound: recommended_iterations(net.bank_count()),
            outcome,
        });
        let mut rng = Xoshiro256::new(seed);
        let (net, outcome) = cascade_scenario(&mut rng, model);
        rows.push(ScenarioRow {
            scenario: "core cascade",
            model,
            iteration_bound: recommended_iterations(net.bank_count()),
            outcome,
        });
    }
    rows
}

/// The noised-output utility check: run the cascade scenario through the
/// full DStress runtime and report ideal vs released values.
#[derive(Clone, Debug)]
pub struct NoisedRunRow {
    /// The ideal (pre-noise) total dollar shortfall.
    pub ideal_output: f64,
    /// The differentially-private released value.
    pub noised_output: f64,
    /// The Laplace scale used (sensitivity / ε).
    pub noise_scale: f64,
    /// Relative error introduced by the noise.
    pub relative_error: f64,
}

/// Runs the cascade network through the DStress runtime (cost-accounted
/// transfers, small blocks) and reports the noised release.
pub fn noised_cascade_run(seed: u64) -> NoisedRunRow {
    let mut rng = Xoshiro256::new(seed);
    let (network, _) = cascade_scenario(&mut rng, ContagionModel::EisenbergNoe);
    noised_run(&network, seed)
}

/// Runs Eisenberg–Noe over `network` through the DStress runtime.
pub fn noised_run(network: &FinancialNetwork, seed: u64) -> NoisedRunRow {
    let epsilon = 0.23;
    let leverage_bound = 0.1;
    let mut config = DStressConfig::benchmark(2);
    config.epsilon = epsilon;
    config.seed = seed;
    let runtime = DStressRuntime::new(config);
    let program = EisenbergNoeSecure {
        network,
        params: CircuitParams::default_params(),
        iterations: recommended_iterations(network.bank_count()),
        leverage_bound,
    };
    let run = runtime
        .execute(network.graph(), &program)
        .expect("contagion run succeeds");
    let noise_scale = program.sensitivity() / epsilon;
    let relative_error = if run.ideal_output.abs() > 1e-9 {
        (run.noised_output - run.ideal_output).abs() / run.ideal_output.abs()
    } else {
        (run.noised_output - run.ideal_output).abs()
    };
    NoisedRunRow {
        ideal_output: run.ideal_output,
        noised_output: run.noised_output,
        noise_scale,
        relative_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_table_shows_cascade_vs_absorption() {
        let rows = scenario_table(0xC0C0);
        assert_eq!(rows.len(), 4);
        for pair in rows.chunks(2) {
            let absorbed = &pair[0];
            let cascade = &pair[1];
            assert_eq!(absorbed.scenario, "absorbed shock");
            assert_eq!(cascade.scenario, "core cascade");
            assert!(
                cascade.outcome.report.total_shortfall
                    > 2.0 * absorbed.outcome.report.total_shortfall
            );
            assert!(cascade.outcome.cascaded);
            // Convergence within (roughly) the log2 N bound.
            assert!(cascade.outcome.iterations_to_converge <= cascade.iteration_bound + 2);
            assert_eq!(cascade.iteration_bound, 6);
        }
    }

    #[test]
    fn noise_does_not_drown_the_cascade_signal() {
        // The OFR-style utility argument: the cascade TDS is hundreds of
        // units while the Laplace scale at ε = 0.23, sensitivity 10 is ~43
        // units, so the released value still unambiguously signals trouble.
        let row = noised_cascade_run(0xBEEF);
        assert!(row.ideal_output > 100.0, "ideal = {}", row.ideal_output);
        assert!(row.noised_output > 50.0, "noised = {}", row.noised_output);
        assert!(
            row.relative_error < 1.0,
            "relative error = {}",
            row.relative_error
        );
        assert!((row.noise_scale - 10.0 / 0.23).abs() < 1e-9);
    }
}
