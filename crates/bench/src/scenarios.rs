//! The DP graph-analytics scenario suite (`repro -- scenarios`).
//!
//! The paper's evaluation runs one workload (systemic risk); this module
//! exercises the runtime across the four scenario programs added with the
//! analytics suite — degree histogram, WCC component count, SSSP hop
//! distance and fixed-point PageRank — releasing each through the full
//! engine (GMW blocks, transfer accounting, Laplace noising) and checking
//! the released value against its plaintext reference within the analytic
//! error bound (fixed-point quantisation plus the Laplace tail at
//! δ = 10⁻⁹).
//!
//! It also measures the recurring-release cadence: the same statistic
//! published K times through the full MPC pipeline versus K times through
//! the PSA path (geometric-noised encrypted aggregation, no MPC), both
//! charging one shared [`BudgetAccountant`] — the A/B behind the claim
//! that interim PSA releases are measurably cheaper per release.

use std::time::Instant;

use dstress_core::{
    DStressConfig, DStressRuntime, DegreeHistogramProgram, PageRankProgram, ReleaseSchedule,
    SecureVertexProgram, SsspProgram, WccProgram,
};
use dstress_crypto::group::Group;
use dstress_dp::{BudgetAccountant, PsaSystem};
use dstress_graph::{execute_reference, Graph, PageRankRef, SsspHops, VertexId, WccLabels};
use dstress_math::rng::Xoshiro256;
use dstress_net::cost::OperationCounts;

/// The Laplace tail bound used for the per-row error budget:
/// `P(|Lap(b)| > b·ln(1/δ)) = δ` at δ = 10⁻⁹.
const LAPLACE_TAIL_LOG: f64 = 20.723_265_836_946_41; // ln(1e9)

/// One engine release of the scenario suite.
pub struct ScenarioRow {
    /// Program label.
    pub program: &'static str,
    /// Vertex count of the scenario graph.
    pub vertices: usize,
    /// Communication rounds the program ran.
    pub iterations: u32,
    /// The noised released value.
    pub released: f64,
    /// The plaintext reference value (real-valued for PageRank).
    pub reference: f64,
    /// Analytic bound on `|released − reference|`: quantisation plus the
    /// Laplace tail at δ = 10⁻⁹.
    pub error_bound: f64,
    /// The program's global sensitivity (edge-DP).
    pub sensitivity: f64,
    /// ε spent on the release.
    pub epsilon: f64,
    /// Wall-clock seconds of the engine run.
    pub measured_seconds: f64,
    /// Operation counts across all four engine phases.
    pub counts: OperationCounts,
    /// Mean measured traffic per node.
    pub traffic_per_node_bytes: f64,
}

impl ScenarioRow {
    /// Absolute released-vs-reference error.
    pub fn error(&self) -> f64 {
        (self.released - self.reference).abs()
    }

    /// Whether the release landed inside the analytic bound.
    pub fn within_bound(&self) -> bool {
        self.error() <= self.error_bound
    }
}

/// The symmetric two-component scenario graph: a path (diameter = its
/// length) plus a disjoint cycle, every edge paired with its reverse so
/// the WCC root count is exact.  Returns the graph and the propagation
/// round count that covers its diameter.
pub fn scenario_graph(full: bool) -> (Graph, u32) {
    let (path_len, cycle_len) = if full { (10, 6) } else { (4, 3) };
    let mut g = Graph::new(path_len + cycle_len, 4);
    for i in 0..path_len - 1 {
        g.add_bidirectional(VertexId(i), VertexId(i + 1))
            .expect("path edges fit the degree bound");
    }
    for i in 0..cycle_len {
        g.add_bidirectional(
            VertexId(path_len + i),
            VertexId(path_len + (i + 1) % cycle_len),
        )
        .expect("cycle edges fit the degree bound");
    }
    (g, path_len as u32)
}

/// The suite's engine configuration: accounted transfers (k = 2) with a
/// moderate per-release ε.
pub fn scenario_config() -> DStressConfig {
    let mut config = DStressConfig::benchmark(2);
    config.epsilon = 1.0;
    config
}

fn run_release<P: SecureVertexProgram>(
    name: &'static str,
    config: &DStressConfig,
    graph: &Graph,
    program: &P,
    reference: f64,
    quantisation: f64,
) -> ScenarioRow {
    let start = Instant::now();
    let run = DStressRuntime::new(config.clone())
        .execute(graph, program)
        .expect("scenario release succeeds");
    let measured_seconds = start.elapsed().as_secs_f64();
    let sensitivity = program.sensitivity();
    ScenarioRow {
        program: name,
        vertices: graph.vertex_count(),
        iterations: run.iterations,
        released: run.noised_output,
        reference,
        error_bound: quantisation + sensitivity / config.epsilon * LAPLACE_TAIL_LOG,
        sensitivity,
        epsilon: config.epsilon,
        measured_seconds,
        counts: run.phases.total_counts(),
        traffic_per_node_bytes: run.mean_bytes_per_node(),
    }
}

/// Runs all four scenario programs through the engine and returns one row
/// per release, each checked against its plaintext reference.
pub fn scenario_rows(full: bool) -> Vec<ScenarioRow> {
    let (g, rounds) = scenario_graph(full);
    let config = scenario_config();
    let target = VertexId(1);
    let far_end = VertexId(rounds as usize - 1); // Last path vertex.

    let histogram = DegreeHistogramProgram {
        width: 8,
        lo: 2,
        hi: 2,
    };
    let hist_ref = execute_reference(&g, &dstress_graph::DegreeBin::new(&g, 2, 2)).aggregate;

    let wcc = WccProgram { width: 8, rounds };
    let wcc_ref = execute_reference(&g, &WccLabels { rounds }).aggregate;

    let sssp = SsspProgram {
        width: 8,
        source: VertexId(0),
        target: far_end,
        rounds,
    };
    let sssp_ref = execute_reference(
        &g,
        &SsspHops {
            source: VertexId(0),
            target: far_end,
            rounds,
        },
    )
    .aggregate;

    let pagerank = PageRankProgram {
        frac_bits: 12,
        target,
        rounds: 4,
        vertices: g.vertex_count(),
    };
    let pagerank_ref = execute_reference(&g, &PageRankRef::new(&g, target, 4)).aggregate;
    let pagerank_quant = pagerank.quantisation_bound(g.degree_bound());

    vec![
        run_release("degree-histogram", &config, &g, &histogram, hist_ref, 0.0),
        run_release("wcc-components", &config, &g, &wcc, wcc_ref, 0.0),
        run_release("sssp-hops", &config, &g, &sssp, sssp_ref, 0.0),
        run_release(
            "pagerank",
            &config,
            &g,
            &pagerank,
            pagerank_ref,
            pagerank_quant,
        ),
    ]
}

/// The recurring-release A/B: K full-MPC releases vs K PSA releases of
/// the same statistic on one shared budget.
pub struct RecurringComparison {
    /// Releases per arm (K).
    pub releases_per_arm: usize,
    /// ε charged per release, both arms.
    pub epsilon_per_release: f64,
    /// Mean wall seconds per full-MPC release.
    pub full_seconds_per_release: f64,
    /// Mean wall seconds per PSA release (encrypt all participants,
    /// aggregate, decrypt).
    pub psa_seconds_per_release: f64,
    /// Exact (noise-free) value of the released statistic.
    pub reference: f64,
    /// Mean of the K full-MPC released values.
    pub full_mean_value: f64,
    /// Mean of the K PSA released values.
    pub psa_mean_value: f64,
    /// Total ε the shared accountant charged across both arms.
    pub epsilon_spent: f64,
}

impl RecurringComparison {
    /// Full-MPC seconds per release over PSA seconds per release.
    pub fn speedup(&self) -> f64 {
        self.full_seconds_per_release / self.psa_seconds_per_release
    }
}

/// Publishes the in-bin degree count `K` times through the full MPC
/// pipeline and `K` times through the PSA path, charging one shared
/// accountant sized for exactly `2K` releases.
pub fn recurring_comparison(full: bool) -> RecurringComparison {
    let (g, _) = scenario_graph(full);
    let config = scenario_config();
    let releases = if full { 6 } else { 3 };
    let epsilon_per_release = 0.1;
    let budget = 2.0 * releases as f64 * epsilon_per_release;
    let mut schedule = ReleaseSchedule::new(BudgetAccountant::new(budget), epsilon_per_release);

    let program = DegreeHistogramProgram {
        width: 8,
        lo: 2,
        hi: 2,
    };
    let flags: Vec<u64> = g
        .vertices()
        .map(|v| {
            let d = g.out_degree(v) as u64;
            u64::from((2..=2).contains(&d))
        })
        .collect();
    let reference = flags.iter().sum::<u64>() as f64;

    let mut rng = Xoshiro256::new(0x5CE7A210);
    let psa = PsaSystem::setup(
        Group::new(config.group),
        g.vertex_count(),
        epsilon_per_release,
        1.0,
        1,
        &mut rng,
    );

    let mut full_seconds = 0.0;
    let mut full_sum = 0.0;
    for k in 0..releases {
        let start = Instant::now();
        let value = schedule
            .release_full(&config, &g, &program, &format!("degree bin full #{k}"))
            .expect("the budget covers all full releases");
        full_seconds += start.elapsed().as_secs_f64();
        full_sum += value;
    }

    let mut psa_seconds = 0.0;
    let mut psa_sum = 0.0;
    for k in 0..releases {
        let start = Instant::now();
        let value = schedule
            .release_psa(&psa, &flags, &format!("degree bin psa #{k}"), &mut rng)
            .expect("the budget covers all PSA releases");
        psa_seconds += start.elapsed().as_secs_f64();
        psa_sum += value;
    }

    RecurringComparison {
        releases_per_arm: releases,
        epsilon_per_release,
        full_seconds_per_release: full_seconds / releases as f64,
        psa_seconds_per_release: psa_seconds / releases as f64,
        reference,
        full_mean_value: full_sum / releases as f64,
        psa_mean_value: psa_sum / releases as f64,
        epsilon_spent: schedule.accountant().spent(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_programs_release_within_their_bounds() {
        let rows = scenario_rows(false);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(
                row.within_bound(),
                "{}: released {} vs reference {} exceeds bound {}",
                row.program,
                row.released,
                row.reference,
                row.error_bound
            );
        }
        // The integer references on the quick graph are known exactly:
        // path interior (2) + the whole 3-cycle in the [2, 2] degree bin,
        // two components, and the path end sits 3 hops from the source.
        assert_eq!(rows[0].reference, 5.0);
        assert_eq!(rows[1].reference, 2.0);
        assert_eq!(rows[2].reference, 3.0);
    }

    #[test]
    fn psa_releases_are_cheaper_and_compose_on_one_budget() {
        let cmp = recurring_comparison(false);
        assert!(
            cmp.speedup() > 1.0,
            "PSA must be cheaper per release: full {}s vs psa {}s",
            cmp.full_seconds_per_release,
            cmp.psa_seconds_per_release
        );
        let expected = 2.0 * cmp.releases_per_arm as f64 * cmp.epsilon_per_release;
        assert!((cmp.epsilon_spent - expected).abs() < 1e-9);
        // Both arms release the same statistic; at ε = 0.1 per release the
        // per-arm means stay within the (loose) Laplace/geometric spread.
        assert!((cmp.full_mean_value - cmp.reference).abs() < 80.0);
        assert!((cmp.psa_mean_value - cmp.reference).abs() < 80.0);
    }
}
