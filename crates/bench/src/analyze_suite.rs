//! The `analyze` experiment: runs the static analyzer over every shipped
//! program and circuit and tabulates the certified bounds next to the
//! gate counts the cost model charges for.
//!
//! This is the pre-deployment check of the reproduction: before any GMW
//! round runs, every update/aggregation/noising circuit must certify
//! that no gadget wraps its word width, that the declared sensitivity
//! upper-bounds the certified bound (so the Laplace noise is calibrated
//! correctly), that releases land inside the dlog recovery window the
//! transfer protocol actually decodes with, and that private inputs only
//! reach released outputs through the distributed-noise path.  `ci.sh`
//! runs `repro -- analyze` in release mode and the process exits
//! non-zero on any finding.

use std::time::Instant;

use dstress_analyze::{analyze, analyze_program, ProgramReport};
use dstress_circuit::spec::{CircuitSpec, FlowPolicy, Interval, ReleaseSpec, WordSpec};
use dstress_core::analytics::{DegreeHistogramProgram, PageRankProgram, SsspProgram, WccProgram};
use dstress_core::noise_circuit::noising_circuit;
use dstress_core::program::CounterProgram;
use dstress_crypto::{DlogTable, Group};
use dstress_finance::generator::apply_shock;
use dstress_finance::{
    core_periphery, CircuitParams, EisenbergNoeSecure, ElliottGolubJacksonSecure, FinancialNetwork,
    GeneratorConfig,
};
use dstress_graph::VertexId;
use dstress_math::rng::Xoshiro256;

/// One analyzed artifact, flattened for tabulation and recording.
pub struct AnalyzeRow {
    /// Artifact name (program name or circuit name).
    pub name: String,
    /// Sensitivity model used for certification.
    pub model: String,
    /// AND gates of the update circuit (0 for bare circuits).
    pub update_and_gates: usize,
    /// Recomputed AND depth of the update circuit's output cone.
    pub update_and_depth: usize,
    /// AND gates of the aggregation circuit.
    pub aggregation_and_gates: usize,
    /// AND gates of the noising circuit.
    pub noising_and_gates: usize,
    /// The program's declared `sensitivity()` (NaN for bare circuits).
    pub declared_sensitivity: f64,
    /// The certified numeric bound, when the model yields one.
    pub certified_sensitivity: Option<f64>,
    /// Certified interval of the released aggregate.
    pub aggregate_interval: Interval,
    /// Side conditions the certificate rests on (external lemmas etc.).
    pub assumptions: usize,
    /// Rendered findings (empty = certified).
    pub findings: Vec<String>,
    /// Wall-clock seconds the analysis took.
    pub wall_seconds: f64,
}

impl AnalyzeRow {
    fn of_program(report: &ProgramReport, wall_seconds: f64) -> Self {
        AnalyzeRow {
            name: report.program.clone(),
            model: report.model.clone(),
            update_and_gates: report.update.and_gates,
            update_and_depth: report.update.and_depth,
            aggregation_and_gates: report.aggregation.and_gates,
            noising_and_gates: report.noising.and_gates,
            declared_sensitivity: report.declared_sensitivity,
            certified_sensitivity: report.certified_sensitivity,
            aggregate_interval: report.aggregate_interval,
            assumptions: report.assumptions.len(),
            findings: report
                .all_findings()
                .iter()
                .map(|f| f.to_string())
                .collect(),
            wall_seconds,
        }
    }
}

/// The release window every calibrated program is checked against: a
/// signed dlog table of 1024 precomputed entries whose baby-step/giant-step
/// search widens recovery to ±2²¹ — the window the transfer protocol's
/// decoder actually searches.
pub fn dlog_release() -> ReleaseSpec {
    let table = DlogTable::new_signed(&Group::sim64(), 1024).with_search_range(1 << 21);
    let (lo, hi) = table.recovery_window();
    ReleaseSpec {
        window: Interval::new(lo as i128, hi as i128),
        description: "signed dlog table (1024 entries) with BSGS search to 2^21".to_string(),
    }
}

fn shocked_network(seed: u64) -> FinancialNetwork {
    let config = GeneratorConfig::small(12, 8);
    let mut rng = Xoshiro256::new(seed);
    let mut net = core_periphery(&config, &mut rng);
    apply_shock(&mut net, &[VertexId(0), VertexId(1)], 0.9);
    net
}

/// Analyzes every shipped artifact: the modular counter, the four DP
/// graph analytics, both finance case studies on a live shocked
/// network, and the standalone 32-bit noising circuit the
/// microbenchmarks cost.
pub fn analyze_suite_rows() -> Vec<AnalyzeRow> {
    let mut rows = Vec::new();
    let release = dlog_release();

    let mut program_row = |report: ProgramReport, start: Instant| {
        rows.push(AnalyzeRow::of_program(
            &report,
            start.elapsed().as_secs_f64(),
        ));
    };

    // The counter aggregates modulo 2^width by design: its releases are
    // decoded modularly, never through the dlog window.
    let t = Instant::now();
    program_row(
        analyze_program(
            &CounterProgram {
                width: 16,
                rounds: 3,
            },
            4,
            8,
            None,
        ),
        t,
    );

    let t = Instant::now();
    program_row(
        analyze_program(
            &DegreeHistogramProgram {
                width: 16,
                lo: 2,
                hi: 5,
            },
            4,
            8,
            Some(release.clone()),
        ),
        t,
    );

    let t = Instant::now();
    program_row(
        analyze_program(
            &WccProgram {
                width: 16,
                rounds: 4,
            },
            4,
            8,
            Some(release.clone()),
        ),
        t,
    );

    let t = Instant::now();
    program_row(
        analyze_program(
            &SsspProgram {
                width: 16,
                source: VertexId(0),
                target: VertexId(5),
                rounds: 6,
            },
            4,
            8,
            Some(release.clone()),
        ),
        t,
    );

    let t = Instant::now();
    program_row(
        analyze_program(
            &PageRankProgram {
                frac_bits: 10,
                target: VertexId(3),
                rounds: 5,
                vertices: 8,
            },
            4,
            8,
            Some(release.clone()),
        ),
        t,
    );

    // Finance case studies: the specs are derived from the live network
    // instance, so this is the coordinator's pre-deployment check.
    let net = shocked_network(13);
    let d = net.graph().degree_bound();
    let t = Instant::now();
    program_row(
        analyze_program(
            &EisenbergNoeSecure {
                network: &net,
                params: CircuitParams::default_params(),
                iterations: 8,
                leverage_bound: 0.1,
            },
            d,
            net.bank_count(),
            Some(release.clone()),
        ),
        t,
    );
    let t = Instant::now();
    program_row(
        analyze_program(
            &ElliottGolubJacksonSecure {
                network: &net,
                params: CircuitParams::default_params(),
                iterations: 8,
                leverage_bound: 0.1,
            },
            d,
            net.bank_count(),
            Some(release.clone()),
        ),
        t,
    );

    // The standalone noising circuit the microbenchmarks cost
    // (`MpcCircuitKind::Noising` builds the same shape).
    let t = Instant::now();
    let noising = noising_circuit(32, 64, 0);
    let spec = CircuitSpec {
        name: "noising[32]".to_string(),
        inputs: vec![
            WordSpec::private("aggregate", 32, Interval::new(0, 1 << 20)),
            WordSpec::noise("geom_r1", 64),
            WordSpec::noise("geom_r2", 64),
        ],
        output_words: vec![32],
        policy: FlowPolicy::NoisedRelease,
        release: Some(release),
        modular: false,
        dominance: Vec::new(),
    };
    let report = analyze(&noising, &spec);
    rows.push(AnalyzeRow {
        name: report.subject.clone(),
        model: "circuit".to_string(),
        update_and_gates: 0,
        update_and_depth: report.and_depth,
        aggregation_and_gates: 0,
        noising_and_gates: report.and_gates,
        declared_sensitivity: f64::NAN,
        certified_sensitivity: None,
        aggregate_interval: report
            .output_intervals
            .first()
            .copied()
            .unwrap_or(Interval::new(0, 0)),
        assumptions: 0,
        findings: report.findings.iter().map(|f| f.to_string()).collect(),
        wall_seconds: t.elapsed().as_secs_f64(),
    });

    rows
}
