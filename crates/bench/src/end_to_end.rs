//! Figure 5: end-to-end runs of Eisenberg–Noe and Elliott–Golub–Jackson.
//!
//! The paper runs both systemic-risk algorithms end to end on a synthetic
//! graph with `N = 100` banks, degree limit `D = 10` and `I = 7`
//! iterations, varying the block size from 8 to 20, and reports the
//! completion-time breakdown (initialization / computation steps / message
//! transfers / aggregation + noising) and the total per-node traffic.
//!
//! This module performs the same runs with the DStress runtime (in
//! cost-accounted transfer mode so the crypto constants of the simulation
//! group do not distort the picture) and reports measured wall-clock time,
//! the projected prototype-scale per-node time per phase, and the measured
//! per-node traffic.

use dstress_core::{DStressConfig, DStressRun, DStressRuntime};
use dstress_finance::generator::{apply_shock, core_periphery};
use dstress_finance::{
    CircuitParams, EisenbergNoeSecure, ElliottGolubJacksonSecure, FinancialNetwork, GeneratorConfig,
};
use dstress_graph::VertexId;
use dstress_math::rng::Xoshiro256;
use dstress_net::cost::{CostModel, OperationCounts};
use dstress_net::pool::parallel_map;
use std::time::Instant;

/// Which systemic-risk algorithm an end-to-end run executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Eisenberg–Noe.
    EisenbergNoe,
    /// Elliott–Golub–Jackson.
    ElliottGolubJackson,
}

impl Algorithm {
    /// Short label used in printed tables.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::EisenbergNoe => "EN",
            Algorithm::ElliottGolubJackson => "EGJ",
        }
    }
}

/// Parameters of an end-to-end experiment.
#[derive(Clone, Copy, Debug)]
pub struct EndToEndParams {
    /// Number of banks `N`.
    pub banks: usize,
    /// Degree bound `D`.
    pub degree_bound: usize,
    /// Iterations `I`.
    pub iterations: u32,
    /// Block sizes to sweep.
    pub block_sizes: [usize; 4],
    /// How many of `block_sizes` to actually run.
    pub block_size_count: usize,
}

impl EndToEndParams {
    /// The paper's Figure 5 parameters (N = 100, D = 10, I = 7, block sizes
    /// 8–20).  Expect several minutes of wall-clock per algorithm.
    pub fn paper() -> Self {
        EndToEndParams {
            banks: 100,
            degree_bound: 10,
            iterations: 7,
            block_sizes: [8, 12, 16, 20],
            block_size_count: 4,
        }
    }

    /// A reduced configuration used by the Criterion bench and the smoke
    /// tests: same shape, smaller constants.
    pub fn quick() -> Self {
        EndToEndParams {
            banks: 20,
            degree_bound: 5,
            iterations: 3,
            block_sizes: [4, 8, 0, 0],
            block_size_count: 2,
        }
    }

    /// The block sizes to run.
    pub fn blocks(&self) -> &[usize] {
        &self.block_sizes[..self.block_size_count]
    }
}

/// One end-to-end measurement row (one bar of Figure 5).
#[derive(Clone, Debug)]
pub struct EndToEndRow {
    /// Which algorithm was run.
    pub algorithm: Algorithm,
    /// Block size `k + 1`.
    pub block_size: usize,
    /// Measured wall-clock seconds of the in-process simulation.
    pub measured_seconds: f64,
    /// Projected prototype-scale per-node seconds per phase
    /// `[initialization, computation, communication, aggregation]`.
    pub projected_phase_seconds: [f64; 4],
    /// Measured mean bytes sent per node.
    pub traffic_per_node_bytes: f64,
    /// The noised output the run released.
    pub noised_output: f64,
    /// The pre-noise aggregate (evaluation only).
    pub ideal_output: f64,
    /// Total operation counts measured across all phases.
    pub total_counts: OperationCounts,
}

impl EndToEndRow {
    /// Total projected per-node seconds.
    pub fn projected_total_seconds(&self) -> f64 {
        self.projected_phase_seconds.iter().sum()
    }
}

/// Builds the Figure 5 workload: a core–periphery network of `banks` banks
/// with a shock applied to part of the core so the algorithms have a real
/// cascade to measure.
pub fn fig5_network(banks: usize, degree_bound: usize, seed: u64) -> FinancialNetwork {
    let mut config = GeneratorConfig::small(banks, degree_bound);
    config.degree_bound = degree_bound;
    let mut rng = Xoshiro256::new(seed);
    let mut net = core_periphery(&config, &mut rng);
    let shocked: Vec<VertexId> = (0..(config.core_banks / 2).max(1)).map(VertexId).collect();
    apply_shock(&mut net, &shocked, 0.95);
    net
}

fn project_phases(run: &DStressRun, banks: usize) -> [f64; 4] {
    let cost = CostModel::paper_reference();
    let per_node = |counts| cost.estimate_seconds(&counts) / banks as f64;
    [
        per_node(run.phases.initialization.counts),
        per_node(run.phases.computation.counts),
        per_node(run.phases.communication.counts),
        per_node(run.phases.aggregation.counts),
    ]
}

/// Runs one end-to-end configuration.
pub fn run_end_to_end(
    algorithm: Algorithm,
    network: &FinancialNetwork,
    iterations: u32,
    block_size: usize,
    seed: u64,
) -> EndToEndRow {
    let params = CircuitParams::default_params();
    let mut config = DStressConfig::benchmark(block_size - 1);
    config.seed = seed;
    let runtime = DStressRuntime::new(config);
    let banks = network.bank_count();

    let start = Instant::now();
    let run = match algorithm {
        Algorithm::EisenbergNoe => {
            let program = EisenbergNoeSecure {
                network,
                params,
                iterations,
                leverage_bound: 0.1,
            };
            runtime
                .execute(network.graph(), &program)
                .expect("end-to-end run succeeds")
        }
        Algorithm::ElliottGolubJackson => {
            let program = ElliottGolubJacksonSecure {
                network,
                params,
                iterations,
                leverage_bound: 0.1,
            };
            runtime
                .execute(network.graph(), &program)
                .expect("end-to-end run succeeds")
        }
    };
    let measured_seconds = start.elapsed().as_secs_f64();

    EndToEndRow {
        algorithm,
        block_size,
        measured_seconds,
        projected_phase_seconds: project_phases(&run, banks),
        traffic_per_node_bytes: run.mean_bytes_per_node(),
        noised_output: run.noised_output,
        ideal_output: run.ideal_output,
        total_counts: run.phases.total_counts(),
    }
}

/// The full Figure 5 sweep for both algorithms.
pub fn fig5_sweep(params: &EndToEndParams) -> Vec<EndToEndRow> {
    fig5_sweep_with_threads(params, 1)
}

/// [`fig5_sweep`] with the (algorithm, block size) points fanned out over
/// a worker pool.  Every point is an independent seeded run, so the rows
/// are identical to the sequential sweep.
pub fn fig5_sweep_with_threads(params: &EndToEndParams, threads: usize) -> Vec<EndToEndRow> {
    let network = fig5_network(params.banks, params.degree_bound, 0xF15);
    let mut points = Vec::new();
    for &algorithm in &[Algorithm::EisenbergNoe, Algorithm::ElliottGolubJackson] {
        for &block_size in params.blocks() {
            points.push((algorithm, block_size));
        }
    }
    parallel_map(points, threads, |_idx, (algorithm, block_size)| {
        run_end_to_end(algorithm, &network, params.iterations, block_size, 0xF15)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_has_expected_shapes() {
        // Smaller than `EndToEndParams::quick()` so the test stays fast in
        // debug builds; the shape assertions are identical.
        let params = EndToEndParams {
            banks: 10,
            degree_bound: 3,
            iterations: 2,
            block_sizes: [3, 6, 0, 0],
            block_size_count: 2,
        };
        let rows = fig5_sweep(&params);
        assert_eq!(rows.len(), 4); // 2 algorithms × 2 block sizes

        // Per-node traffic and projected time grow with the block size
        // (Figure 5's main observation).
        let en_small = &rows[0];
        let en_large = &rows[1];
        assert_eq!(en_small.algorithm, Algorithm::EisenbergNoe);
        assert!(en_large.traffic_per_node_bytes > en_small.traffic_per_node_bytes);
        assert!(en_large.projected_total_seconds() > en_small.projected_total_seconds());

        // EGJ is more expensive than EN at the same block size (bigger
        // update circuit), as in the paper.
        let egj_small = &rows[2];
        assert_eq!(egj_small.algorithm, Algorithm::ElliottGolubJackson);
        assert!(egj_small.projected_total_seconds() > en_small.projected_total_seconds());

        // The computation and communication phases dominate.
        let phases = en_large.projected_phase_seconds;
        assert!(phases[1] + phases[2] > phases[0] + phases[3]);

        // The released outputs are noised but in the vicinity of the ideal
        // aggregate, and both algorithms report the same ideal value across
        // block sizes.
        assert_eq!(rows[0].ideal_output, rows[1].ideal_output);
        for row in &rows {
            assert!((row.noised_output - row.ideal_output).abs() < 500.0);
        }
    }
}
