//! A peak-tracking global allocator for the scale experiments.
//!
//! `repro -- scale` reports *peak memory* next to wall seconds, so the
//! bounded-memory claim of the streaming execution path is a measured
//! number, not an assertion.  RSS high-water marks from the OS are
//! process-lifetime-monotone and therefore useless for per-sweep-point
//! measurement; instead this module wraps the system allocator with two
//! atomic counters (live bytes, peak live bytes since the last reset)
//! and the bench crate installs it as the `#[global_allocator]` for
//! every binary it builds (the `repro` binary, its tests and benches).
//!
//! The measurement counts every allocation on every thread — including
//! the engine's worker pool.  The hot path is one relaxed RMW plus one
//! relaxed load per allocation (the peak CAS only fires while a new
//! high-water mark is being set), which an A/B against the plain system
//! allocator measured as *no observable wall-clock difference* on the
//! MPC micro rows — so the other timing experiments are not perturbed
//! by the instrumentation.  Concurrent measurements interleave, so
//! callers that compare points (the acceptance test, the `scale` sweep)
//! run their points sequentially.
//!
//! ## Example
//!
//! ```
//! use dstress_bench::alloc::{peak_bytes_since_reset, reset_peak};
//!
//! reset_peak();
//! let block = vec![0u8; 1 << 20];
//! assert!(peak_bytes_since_reset() >= 1 << 20);
//! drop(block);
//! // The peak persists after the memory is freed.
//! assert!(peak_bytes_since_reset() >= 1 << 20);
//! ```

// The one place in the workspace that needs `unsafe`: implementing
// `GlobalAlloc` (the trait itself is unsafe).  Everything here delegates
// straight to `std::alloc::System` and only adds counter updates.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Live heap bytes (allocated minus deallocated).
static LIVE: AtomicUsize = AtomicUsize::new(0);
/// Maximum of [`LIVE`] since the last [`reset_peak`].
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// The counting wrapper around [`System`].
pub struct TrackingAllocator;

impl TrackingAllocator {
    fn on_alloc(size: usize) {
        let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
        // In the steady state live sits below the high-water mark, so a
        // plain load short-circuits the (much costlier) CAS of
        // `fetch_max`; slightly stale reads only cause a redundant
        // `fetch_max`, never a missed peak.
        if live > PEAK.load(Ordering::Relaxed) {
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
    }

    fn on_dealloc(size: usize) {
        LIVE.fetch_sub(size, Ordering::Relaxed);
    }
}

// SAFETY: every method delegates to `System`, which upholds the
// `GlobalAlloc` contract; the counter updates have no effect on the
// returned pointers or layouts.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarded verbatim to the system allocator.
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            Self::on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwarded verbatim to the system allocator.
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            Self::on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller guarantees `ptr` came from this allocator with
        // this layout; forwarded verbatim.
        unsafe { System.dealloc(ptr, layout) };
        Self::on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: caller guarantees the (ptr, layout) pair; forwarded
        // verbatim.
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            Self::on_dealloc(layout.size());
            Self::on_alloc(new_size);
        }
        new_ptr
    }
}

/// Resets the peak to the current live byte count and returns that count.
pub fn reset_peak() -> usize {
    let live = LIVE.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
    live
}

/// Peak live heap bytes observed since the last [`reset_peak`].
pub fn peak_bytes_since_reset() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Current live heap bytes.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_transient_allocations() {
        let before = reset_peak();
        {
            let big = vec![7u8; 4 << 20];
            assert!(live_bytes() >= before + (4 << 20));
            drop(big);
        }
        // Freed, but the high-water mark remembers.
        assert!(peak_bytes_since_reset() >= before + (4 << 20));
        let after_reset = reset_peak();
        assert!(peak_bytes_since_reset() <= after_reset + (1 << 20));
    }
}
