//! Figure 6: projected cost at the scale of the U.S. banking system.
//!
//! The paper projects end-to-end computation time and per-node traffic for
//! networks of up to 2,000 banks and degree bounds 10–100 from its
//! microbenchmarks (with validation points from real runs at N = 20 and
//! N = 100), concluding that the full U.S. banking system (N = 1,750,
//! D = 100) would take about 4.8 hours and ~750 MB of traffic per node.
//!
//! This module produces the same two series with the calibrated
//! [`ScalabilityModel`] fed by the *actual* Eisenberg–Noe circuits, plus
//! validation points measured with the runtime.

use crate::end_to_end::{fig5_network, run_end_to_end, Algorithm};
use dstress_core::noise_circuit::noising_circuit;
use dstress_core::{ProjectionInputs, ProjectionResult, ScalabilityModel, SecureVertexProgram};
use dstress_finance::{CircuitParams, EisenbergNoeSecure, FinancialNetwork};

/// One projected point of Figure 6.
#[derive(Clone, Debug)]
pub struct ProjectionRow {
    /// Number of nodes `N`.
    pub nodes: usize,
    /// Degree bound `D`.
    pub degree_bound: usize,
    /// Collusion bound `k`.
    pub collusion_bound: usize,
    /// Iterations assumed (`⌈log₂ N⌉`).
    pub iterations: u32,
    /// The projection.
    pub result: ProjectionResult,
}

/// A validation point: a real run compared against its projection.
#[derive(Clone, Debug)]
pub struct ValidationPoint {
    /// Number of nodes of the real run.
    pub nodes: usize,
    /// Degree bound of the real run.
    pub degree_bound: usize,
    /// Block size of the real run.
    pub block_size: usize,
    /// Projected per-node seconds for the same parameters.
    pub projected_seconds: f64,
    /// Per-node seconds derived from the measured operation counts of the
    /// real run (same cost model, measured counts).
    pub measured_projected_seconds: f64,
    /// Measured per-node traffic of the real run, in bytes.
    pub measured_bytes_per_node: f64,
    /// Projected per-node traffic, in bytes.
    pub projected_bytes_per_node: f64,
}

/// Builds the projection inputs from the real Eisenberg–Noe circuits at a
/// given degree bound.
pub fn en_projection_inputs(degree_bound: usize) -> ProjectionInputs {
    let params = CircuitParams::default_params();
    let network = FinancialNetwork::new(2, degree_bound);
    let program = EisenbergNoeSecure {
        network: &network,
        params,
        iterations: 1,
        leverage_bound: 0.1,
    };
    let update = program.update_circuit(degree_bound);
    let aggregation = program.aggregation_circuit(100);
    let noising = noising_circuit(program.aggregate_bits(), 64, 0);
    ProjectionInputs::from_circuits(
        &update,
        &aggregation,
        100,
        &noising,
        program.state_bits() as u64,
        program.message_bits() as u64,
    )
}

/// The Figure 6 sweep: projected time and traffic across `N` and `D` at
/// the paper's block size (k + 1 = 20).
pub fn fig6_sweep(node_counts: &[usize], degree_bounds: &[usize]) -> Vec<ProjectionRow> {
    let model = ScalabilityModel::paper_reference();
    let mut rows = Vec::new();
    for &d in degree_bounds {
        let inputs = en_projection_inputs(d);
        for &n in node_counts {
            let iterations = ScalabilityModel::default_iterations(n);
            let result = model.project(&inputs, n, d, 19, iterations);
            rows.push(ProjectionRow {
                nodes: n,
                degree_bound: d,
                collusion_bound: 19,
                iterations,
                result,
            });
        }
    }
    rows
}

/// The headline number: the full U.S. banking system.
pub fn headline_projection() -> ProjectionRow {
    let model = ScalabilityModel::paper_reference();
    let inputs = en_projection_inputs(100);
    let result = model.project(&inputs, 1750, 100, 19, 11);
    ProjectionRow {
        nodes: 1750,
        degree_bound: 100,
        collusion_bound: 19,
        iterations: 11,
        result,
    }
}

/// Runs a real end-to-end execution and compares it against the projection
/// at the same parameters (the paper's red validation circles).
pub fn validation_point(nodes: usize, degree_bound: usize, block_size: usize) -> ValidationPoint {
    let network = fig5_network(nodes, degree_bound, 0xF16);
    let iterations = ScalabilityModel::default_iterations(nodes);
    let row = run_end_to_end(Algorithm::EisenbergNoe, &network, iterations, block_size, 0xF16);

    let model = ScalabilityModel::paper_reference();
    let inputs = en_projection_inputs(degree_bound);
    let projection = model.project(&inputs, nodes, degree_bound, block_size - 1, iterations);

    ValidationPoint {
        nodes,
        degree_bound,
        block_size,
        projected_seconds: projection.total_seconds,
        measured_projected_seconds: row.projected_total_seconds(),
        measured_bytes_per_node: row.traffic_per_node_bytes,
        projected_bytes_per_node: projection.bytes_per_node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_matches_paper_regime() {
        // N = 1750, D = 100 should land in the "few hours, hundreds of MB"
        // regime the paper reports (4.8 h, ~750 MB per node) — and nowhere
        // near the centuries of the naïve baseline.
        let headline = headline_projection();
        let hours = headline.result.hours();
        let mb = headline.result.megabytes_per_node();
        assert!((1.0..24.0).contains(&hours), "projected {hours} hours");
        assert!((50.0..5000.0).contains(&mb), "projected {mb} MB per node");
        assert_eq!(headline.iterations, 11);
    }

    #[test]
    fn projections_grow_with_n_and_d() {
        let rows = fig6_sweep(&[250, 1000, 2000], &[10, 100]);
        assert_eq!(rows.len(), 6);
        // Within one D series, time grows with N.
        assert!(rows[2].result.total_seconds > rows[0].result.total_seconds);
        // Across D at the same N, D = 100 dominates D = 10 (Figure 6's
        // ordering of the curves).
        let d10_at_1000 = &rows[1];
        let d100_at_1000 = &rows[4];
        assert_eq!(d10_at_1000.nodes, d100_at_1000.nodes);
        assert!(d100_at_1000.result.total_seconds > 3.0 * d10_at_1000.result.total_seconds);
        assert!(d100_at_1000.result.bytes_per_node > d10_at_1000.result.bytes_per_node);
    }

    #[test]
    fn validation_point_is_same_order_of_magnitude() {
        // The projection and a real (small) run should agree within an
        // order of magnitude — the paper's validation circles sit slightly
        // below the curves because real runs overlap block computations.
        let point = validation_point(12, 4, 4);
        let ratio = point.projected_seconds / point.measured_projected_seconds.max(1e-9);
        assert!((0.1..30.0).contains(&ratio), "time ratio {ratio}");
        let traffic_ratio = point.projected_bytes_per_node / point.measured_bytes_per_node.max(1.0);
        assert!((0.05..50.0).contains(&traffic_ratio), "traffic ratio {traffic_ratio}");
    }
}
