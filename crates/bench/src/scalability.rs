//! Figure 6: projected cost at the scale of the U.S. banking system.
//!
//! The paper projects end-to-end computation time and per-node traffic for
//! networks of up to 2,000 banks and degree bounds 10–100 from its
//! microbenchmarks (with validation points from real runs at N = 20 and
//! N = 100), concluding that the full U.S. banking system (N = 1,750,
//! D = 100) would take about 4.8 hours and ~750 MB of traffic per node.
//!
//! This module produces the same two series with the calibrated
//! [`ScalabilityModel`] fed by the *actual* Eisenberg–Noe circuits, plus
//! validation points measured with the runtime.

use crate::end_to_end::{fig5_network, run_end_to_end, Algorithm};
use dstress_core::noise_circuit::noising_circuit;
use dstress_core::{
    ConcurrencyMode, CounterProgram, DStressConfig, DStressRuntime, ProjectionInputs,
    ProjectionResult, ScalabilityModel, SecureVertexProgram,
};
use dstress_finance::{CircuitParams, EisenbergNoeSecure, FinancialNetwork};
use dstress_graph::generate::ring_with_chords;
use dstress_math::rng::Xoshiro256;
use std::time::Instant;

/// One projected point of Figure 6.
#[derive(Clone, Debug)]
pub struct ProjectionRow {
    /// Number of nodes `N`.
    pub nodes: usize,
    /// Degree bound `D`.
    pub degree_bound: usize,
    /// Collusion bound `k`.
    pub collusion_bound: usize,
    /// Iterations assumed (`⌈log₂ N⌉`).
    pub iterations: u32,
    /// The projection.
    pub result: ProjectionResult,
}

/// A validation point: a real run compared against its projection.
#[derive(Clone, Debug)]
pub struct ValidationPoint {
    /// Number of nodes of the real run.
    pub nodes: usize,
    /// Degree bound of the real run.
    pub degree_bound: usize,
    /// Block size of the real run.
    pub block_size: usize,
    /// Projected per-node seconds for the same parameters.
    pub projected_seconds: f64,
    /// Per-node seconds derived from the measured operation counts of the
    /// real run (same cost model, measured counts).
    pub measured_projected_seconds: f64,
    /// Measured per-node traffic of the real run, in bytes.
    pub measured_bytes_per_node: f64,
    /// Projected per-node traffic, in bytes.
    pub projected_bytes_per_node: f64,
}

/// Builds the projection inputs from the real Eisenberg–Noe circuits at a
/// given degree bound.
pub fn en_projection_inputs(degree_bound: usize) -> ProjectionInputs {
    let params = CircuitParams::default_params();
    let network = FinancialNetwork::new(2, degree_bound);
    let program = EisenbergNoeSecure {
        network: &network,
        params,
        iterations: 1,
        leverage_bound: 0.1,
    };
    let update = program.update_circuit(degree_bound);
    let aggregation = program.aggregation_circuit(100);
    let noising = noising_circuit(program.aggregate_bits(), 64, 0);
    ProjectionInputs::from_circuits(
        &update,
        &aggregation,
        100,
        &noising,
        program.state_bits() as u64,
        program.message_bits() as u64,
    )
}

/// The Figure 6 node-count sweep.
///
/// The seed reproduction hardcoded `n ≤ 2000` here — the
/// dense-materialisation wall.  The cap is lifted: the projection
/// continues past it (those points are still model-only and are labelled
/// `model_only` in `BENCH_results.json`), while the *measured*
/// continuation past the wall comes from the streaming path in
/// `repro -- scale` ([`crate::streaming_scale`]).
pub fn fig6_node_counts(full: bool) -> &'static [usize] {
    if full {
        &[100, 250, 500, 1000, 1500, 1750, 2000, 3000, 5000, 10_000]
    } else {
        &[100, 500, 1000, 1750, 3000]
    }
}

/// The Figure 6 sweep: projected time and traffic across `N` and `D` at
/// the paper's block size (k + 1 = 20).
pub fn fig6_sweep(node_counts: &[usize], degree_bounds: &[usize]) -> Vec<ProjectionRow> {
    let model = ScalabilityModel::paper_reference();
    let mut rows = Vec::new();
    for &d in degree_bounds {
        let inputs = en_projection_inputs(d);
        for &n in node_counts {
            let iterations = ScalabilityModel::default_iterations(n);
            let result = model.project(&inputs, n, d, 19, iterations);
            rows.push(ProjectionRow {
                nodes: n,
                degree_bound: d,
                collusion_bound: 19,
                iterations,
                result,
            });
        }
    }
    rows
}

/// The headline number: the full U.S. banking system.
pub fn headline_projection() -> ProjectionRow {
    let model = ScalabilityModel::paper_reference();
    let inputs = en_projection_inputs(100);
    let result = model.project(&inputs, 1750, 100, 19, 11);
    ProjectionRow {
        nodes: 1750,
        degree_bound: 100,
        collusion_bound: 19,
        iterations: 11,
        result,
    }
}

/// A sequential-vs-threaded wall-clock comparison at one scalability
/// point.
#[derive(Clone, Copy, Debug)]
pub struct ConcurrencyComparison {
    /// Number of graph nodes (= independent block MPCs per round).
    pub nodes: usize,
    /// Block size `k + 1` of each MPC.
    pub block_size: usize,
    /// Worker threads used by the threaded run.
    pub threads: usize,
    /// Wall-clock seconds of the run under [`ConcurrencyMode::Sequential`].
    pub sequential_seconds: f64,
    /// Wall-clock seconds of the same run under
    /// [`ConcurrencyMode::Threaded`].
    pub threaded_seconds: f64,
    /// Whether the two runs released identical outputs (they must).
    pub outputs_identical: bool,
    /// Whether the two runs measured identical operation counts and
    /// traffic (they must).
    pub accounting_identical: bool,
}

impl ConcurrencyComparison {
    /// Sequential wall-clock divided by threaded wall-clock.
    pub fn speedup(&self) -> f64 {
        self.sequential_seconds / self.threaded_seconds.max(1e-12)
    }
}

/// Runs the same DStress execution under both concurrency modes and
/// compares wall-clock and results.
///
/// The workload is a ring-with-chords counter run: `nodes` independent
/// block MPCs per round, which is exactly the concurrency a real
/// deployment exploits.  Outputs and accounting must be bit-identical
/// between the modes; only the wall-clock may differ.
pub fn concurrency_comparison(nodes: usize, threads: usize) -> ConcurrencyComparison {
    let mut rng = Xoshiro256::new(0xC0DE);
    let graph = ring_with_chords(nodes, 1, 3, &mut rng);
    let program = CounterProgram {
        width: 8,
        rounds: 2,
    };
    let mut config = DStressConfig::benchmark(3);
    config.message_bits = 8;
    let block_size = config.block_size();
    let threaded_config = config
        .clone()
        .with_concurrency(ConcurrencyMode::Threaded { threads });

    let start = Instant::now();
    let sequential = DStressRuntime::new(config)
        .execute(&graph, &program)
        .expect("sequential run succeeds");
    let sequential_seconds = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let threaded = DStressRuntime::new(threaded_config)
        .execute(&graph, &program)
        .expect("threaded run succeeds");
    let threaded_seconds = start.elapsed().as_secs_f64();

    ConcurrencyComparison {
        nodes,
        block_size,
        threads,
        sequential_seconds,
        threaded_seconds,
        outputs_identical: sequential.noised_output == threaded.noised_output
            && sequential.ideal_output == threaded.ideal_output,
        accounting_identical: sequential.phases.total_counts() == threaded.phases.total_counts()
            && sequential.traffic.report() == threaded.traffic.report(),
    }
}

/// Runs a real end-to-end execution and compares it against the projection
/// at the same parameters (the paper's red validation circles).
pub fn validation_point(nodes: usize, degree_bound: usize, block_size: usize) -> ValidationPoint {
    let network = fig5_network(nodes, degree_bound, 0xF16);
    let iterations = ScalabilityModel::default_iterations(nodes);
    let row = run_end_to_end(
        Algorithm::EisenbergNoe,
        &network,
        iterations,
        block_size,
        0xF16,
    );

    let model = ScalabilityModel::paper_reference();
    let inputs = en_projection_inputs(degree_bound);
    let projection = model.project(&inputs, nodes, degree_bound, block_size - 1, iterations);

    ValidationPoint {
        nodes,
        degree_bound,
        block_size,
        projected_seconds: projection.total_seconds,
        measured_projected_seconds: row.projected_total_seconds(),
        measured_bytes_per_node: row.traffic_per_node_bytes,
        projected_bytes_per_node: projection.bytes_per_node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_matches_paper_regime() {
        // N = 1750, D = 100 should land in the "few hours, hundreds of MB"
        // regime the paper reports (4.8 h, ~750 MB per node) — and nowhere
        // near the centuries of the naïve baseline.
        let headline = headline_projection();
        let hours = headline.result.hours();
        let mb = headline.result.megabytes_per_node();
        assert!((1.0..24.0).contains(&hours), "projected {hours} hours");
        assert!((50.0..5000.0).contains(&mb), "projected {mb} MB per node");
        assert_eq!(headline.iterations, 11);
    }

    #[test]
    fn fig6_node_counts_continue_past_the_old_wall() {
        // The seed repo capped the sweep at n = 2000; both parameter sets
        // now continue beyond it.
        assert!(fig6_node_counts(false).iter().any(|&n| n > 2000));
        assert!(fig6_node_counts(true).iter().any(|&n| n > 2000));
        assert!(fig6_node_counts(true).len() > fig6_node_counts(false).len());
    }

    #[test]
    fn projections_grow_with_n_and_d() {
        let rows = fig6_sweep(&[250, 1000, 2000], &[10, 100]);
        assert_eq!(rows.len(), 6);
        // Within one D series, time grows with N.
        assert!(rows[2].result.total_seconds > rows[0].result.total_seconds);
        // Across D at the same N, D = 100 dominates D = 10 (Figure 6's
        // ordering of the curves).
        let d10_at_1000 = &rows[1];
        let d100_at_1000 = &rows[4];
        assert_eq!(d10_at_1000.nodes, d100_at_1000.nodes);
        assert!(d100_at_1000.result.total_seconds > 3.0 * d10_at_1000.result.total_seconds);
        assert!(d100_at_1000.result.bytes_per_node > d10_at_1000.result.bytes_per_node);
    }

    #[test]
    fn concurrency_modes_agree_on_small_point() {
        let cmp = concurrency_comparison(8, 2);
        assert!(cmp.outputs_identical);
        assert!(cmp.accounting_identical);
        assert!(cmp.sequential_seconds > 0.0 && cmp.threaded_seconds > 0.0);
        assert_eq!(cmp.nodes, 8);
        assert_eq!(cmp.block_size, 4);
        assert!(cmp.speedup() > 0.0);
    }

    /// The acceptance check for `ConcurrencyMode::Threaded`, run
    /// explicitly (`cargo test --release -- --ignored`): on a machine
    /// with at least 4 cores, the 64-node scalability point must be at
    /// least 2× faster threaded than sequential, while staying
    /// bit-identical.
    #[test]
    #[ignore = "wall-clock assertion; run under --release on a multi-core machine"]
    fn threaded_is_at_least_twice_as_fast_at_64_nodes() {
        let threads = dstress_net::pool::default_threads();
        if threads < 4 {
            // The identical-results invariant is covered at a small point
            // by `concurrency_modes_agree_on_small_point`; skip the
            // expensive 64-node runs where the assertion cannot fire.
            eprintln!("only {threads} hardware threads: skipping the speedup assertion");
            return;
        }
        let cmp = concurrency_comparison(64, threads);
        assert!(cmp.outputs_identical);
        assert!(cmp.accounting_identical);
        assert!(
            cmp.speedup() >= 2.0,
            "expected >= 2x speedup on {threads} threads, got {:.2}x ({:.3}s sequential, {:.3}s threaded)",
            cmp.speedup(),
            cmp.sequential_seconds,
            cmp.threaded_seconds,
        );
    }

    #[test]
    fn validation_point_is_same_order_of_magnitude() {
        // The projection and a real (small) run should agree within an
        // order of magnitude — the paper's validation circles sit slightly
        // below the curves because real runs overlap block computations.
        let point = validation_point(12, 4, 4);
        let ratio = point.projected_seconds / point.measured_projected_seconds.max(1e-9);
        assert!((0.1..30.0).contains(&ratio), "time ratio {ratio}");
        let traffic_ratio = point.projected_bytes_per_node / point.measured_bytes_per_node.max(1.0);
        assert!(
            (0.05..50.0).contains(&traffic_ratio),
            "traffic ratio {traffic_ratio}"
        );
    }
}
