//! §5.5: the naïve monolithic-MPC baseline.
//!
//! The closed form of Eisenberg–Noe essentially raises an `N×N` matrix to
//! the `I`-th power; the paper evaluates a single matrix multiplication in
//! Wysteria (1.8 minutes at N = 10, 40 minutes at N = 25), extrapolates the
//! `O(N³)` cost to the full banking system, and arrives at ≈287 years —
//! versus DStress's ≈4.8 hours.
//!
//! This module executes the same matrix-multiplication circuit under our
//! GMW engine for small `N`, projects the prototype-scale time with the
//! calibrated cost model, performs the same cubic extrapolation, and
//! reports the DStress-vs-baseline speedup.

use crate::scalability::headline_projection;
use dstress_math::rng::Xoshiro256;
use dstress_mpc::baseline::{
    extrapolate_full_scale, measure_matrix_multiply_counts, run_matrix_multiply,
};
use dstress_net::cost::CostModel;
use std::time::Instant;

/// One baseline measurement.
#[derive(Clone, Debug)]
pub struct BaselineRow {
    /// Matrix dimension `N`.
    pub n: usize,
    /// Whether the circuit was actually executed under GMW (small `N`) or
    /// only counted (large `N`).
    pub executed: bool,
    /// AND gates of one multiplication.
    pub and_gates: u64,
    /// Wall-clock seconds of the in-process execution (zero when counted
    /// only).
    pub measured_seconds: f64,
    /// Projected prototype-scale seconds of one multiplication.
    pub projected_seconds: f64,
}

/// The §5.5 comparison summary.
#[derive(Clone, Debug)]
pub struct BaselineComparison {
    /// Per-`N` measurements.
    pub rows: Vec<BaselineRow>,
    /// Extrapolated seconds for the full-scale monolithic computation
    /// (N = 1750, 11 chained multiplications).
    pub full_scale_seconds: f64,
    /// Extrapolated years (the paper's "287 years").
    pub full_scale_years: f64,
    /// DStress's projected seconds for the same system (Figure 6 headline).
    pub dstress_seconds: f64,
    /// Speedup of DStress over the monolithic baseline.
    pub speedup: f64,
}

/// The fixed-point precision used by the baseline circuit.
const WIDTH: u32 = 16;
const FRAC: u32 = 5;
/// Number of MPC parties used for the executed baseline points.
const PARTIES: usize = 3;

/// Runs the baseline at one dimension, executing under GMW when
/// `execute` is true (recommended only for `N ≲ 12` in debug builds).
pub fn run_baseline_point(n: usize, execute: bool, seed: u64) -> BaselineRow {
    let cost = CostModel::paper_reference();
    if execute {
        let mut rng = Xoshiro256::new(seed);
        // Multiply two random-ish small matrices (identity-scaled values);
        // only the cost matters, but the product is checked in unit tests
        // of `dstress-mpc`.
        let a: Vec<u64> = (0..n * n).map(|i| ((i % 7) as u64 + 1) << FRAC).collect();
        let b: Vec<u64> = (0..n * n).map(|i| ((i % 5) as u64 + 1) << FRAC).collect();
        let start = Instant::now();
        let m = run_matrix_multiply(n, WIDTH, FRAC, PARTIES, &a, &b, &cost, &mut rng)
            .expect("baseline execution succeeds");
        BaselineRow {
            n,
            executed: true,
            and_gates: m.and_gates,
            measured_seconds: start.elapsed().as_secs_f64(),
            projected_seconds: m.projected_seconds,
        }
    } else {
        let m = measure_matrix_multiply_counts(n, WIDTH, FRAC, PARTIES, &cost);
        BaselineRow {
            n,
            executed: false,
            and_gates: m.and_gates,
            measured_seconds: 0.0,
            projected_seconds: m.projected_seconds,
        }
    }
}

/// Produces the §5.5 comparison: measured/counted baseline points, the
/// cubic extrapolation to N = 1750 with `iterations` chained
/// multiplications, and the speedup over DStress's projected cost.
pub fn baseline_comparison(
    executed_ns: &[usize],
    counted_ns: &[usize],
    iterations: u32,
) -> BaselineComparison {
    let mut rows = Vec::new();
    for &n in executed_ns {
        rows.push(run_baseline_point(n, true, 0xBA5E));
    }
    for &n in counted_ns {
        rows.push(run_baseline_point(n, false, 0xBA5E));
    }
    // Extrapolate from the largest available point (the paper uses N = 25).
    let reference = rows
        .iter()
        .max_by_key(|r| r.n)
        .expect("at least one baseline point");
    let full_scale_seconds =
        extrapolate_full_scale(reference.projected_seconds, reference.n, 1750, iterations);
    let dstress_seconds = headline_projection().result.total_seconds;
    BaselineComparison {
        full_scale_years: full_scale_seconds / (365.25 * 24.0 * 3600.0),
        speedup: full_scale_seconds / dstress_seconds,
        full_scale_seconds,
        dstress_seconds,
        rows,
    }
}

/// The paper's own configuration: execute nothing (the counted points at
/// N = 10 and N = 25 reproduce the published 1.8- and 40-minute figures via
/// the cost model), extrapolate with I − 1 = 11 multiplications.
pub fn paper_comparison() -> BaselineComparison {
    baseline_comparison(&[], &[10, 25], 11)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counted_points_match_paper_minutes() {
        // The paper reports 1.8 minutes for N = 10 and 40 minutes for
        // N = 25 on its prototype; the calibrated cost model should land in
        // the same regime (within a factor of ~3).
        let comparison = paper_comparison();
        let n10 = comparison.rows.iter().find(|r| r.n == 10).unwrap();
        let n25 = comparison.rows.iter().find(|r| r.n == 25).unwrap();
        let n10_minutes = n10.projected_seconds / 60.0;
        let n25_minutes = n25.projected_seconds / 60.0;
        assert!(
            (0.6..6.0).contains(&n10_minutes),
            "N=10 projected {n10_minutes} min"
        );
        assert!(
            (13.0..120.0).contains(&n25_minutes),
            "N=25 projected {n25_minutes} min"
        );
        // Cubic growth between the two points.
        let ratio = n25.projected_seconds / n10.projected_seconds;
        assert!((8.0..25.0).contains(&ratio), "N=10→25 ratio {ratio}");
    }

    #[test]
    fn full_scale_is_centuries_and_dstress_wins() {
        let comparison = paper_comparison();
        assert!(
            (50.0..2000.0).contains(&comparison.full_scale_years),
            "extrapolated {} years",
            comparison.full_scale_years
        );
        // DStress is faster by many orders of magnitude.
        assert!(
            comparison.speedup > 10_000.0,
            "speedup {}",
            comparison.speedup
        );
        assert!(comparison.dstress_seconds < 24.0 * 3600.0);
    }

    #[test]
    fn executed_point_agrees_with_counted_point() {
        let executed = run_baseline_point(3, true, 1);
        let counted = run_baseline_point(3, false, 1);
        assert_eq!(executed.and_gates, counted.and_gates);
        assert!(
            (executed.projected_seconds - counted.projected_seconds).abs()
                < 0.05 * counted.projected_seconds
        );
        assert!(executed.measured_seconds > 0.0);
        assert!(!counted.executed);
    }
}
