//! Figures 3 and 4: MPC micro-benchmarks.
//!
//! The paper isolates the five MPC circuits DStress executes —
//! initialization, the Eisenberg–Noe computation step, the
//! Elliott–Golub–Jackson computation step, aggregation and noising — and
//! measures, for each, the end-to-end completion time (Figure 3) and the
//! per-node traffic (Figure 4), varying the block size (left of Fig. 3 /
//! Fig. 4) and the degree bound `D` or node count `N` (right of Fig. 3).
//!
//! This module runs exactly those MPCs with our GMW engine and reports
//! wall-clock time, projected prototype-scale time (via the calibrated
//! cost model), and the measured per-node traffic.

use dstress_circuit::{Circuit, CircuitBuilder, CircuitLayers, CircuitStats};
use dstress_core::noise_circuit::noising_circuit;
use dstress_core::SecureVertexProgram;
use dstress_finance::{
    CircuitParams, EisenbergNoeSecure, ElliottGolubJacksonSecure, FinancialNetwork,
};
use dstress_math::rng::Xoshiro256;
use dstress_mpc::gmw::{share_inputs, GmwConfig, GmwProtocol};
use dstress_mpc::party::{GmwBatching, OtConfig};
use dstress_net::cost::{CostModel, OperationCounts};
use dstress_net::pool::parallel_map;
use dstress_net::traffic::{NodeId, TrafficAccountant};
use std::time::Instant;

/// The five MPC circuits the paper benchmarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MpcCircuitKind {
    /// Share generation / session setup for a vertex's initial state.
    Initialization,
    /// One Eisenberg–Noe computation step.
    EisenbergNoeStep,
    /// One Elliott–Golub–Jackson computation step.
    ElliottGolubJacksonStep,
    /// The aggregation circuit over `N` vertex states.
    Aggregation,
    /// The distributed noise-generation circuit.
    Noising,
}

impl MpcCircuitKind {
    /// All five kinds in the paper's order.
    pub fn all() -> [MpcCircuitKind; 5] {
        [
            MpcCircuitKind::Initialization,
            MpcCircuitKind::EisenbergNoeStep,
            MpcCircuitKind::ElliottGolubJacksonStep,
            MpcCircuitKind::Aggregation,
            MpcCircuitKind::Noising,
        ]
    }

    /// Short label used in the printed tables.
    pub fn label(&self) -> &'static str {
        match self {
            MpcCircuitKind::Initialization => "Initialization",
            MpcCircuitKind::EisenbergNoeStep => "EN step",
            MpcCircuitKind::ElliottGolubJacksonStep => "EGJ step",
            MpcCircuitKind::Aggregation => "Aggregation",
            MpcCircuitKind::Noising => "Noising",
        }
    }
}

/// One measured row of Figure 3 / Figure 4.
#[derive(Clone, Debug)]
pub struct MpcMicroRow {
    /// Which circuit was measured.
    pub kind: MpcCircuitKind,
    /// Block size `k + 1`.
    pub block_size: usize,
    /// Degree bound used when building the step circuits.
    pub degree_bound: usize,
    /// Number of vertices used when building the aggregation circuit.
    pub vertices: usize,
    /// AND gates of the circuit.
    pub and_gates: usize,
    /// AND depth of the circuit (layers over all gates).
    pub and_layers: usize,
    /// Measured communication rounds per party pair of the execution.
    pub rounds: u64,
    /// Wall-clock seconds of the in-process GMW execution.
    pub measured_seconds: f64,
    /// Projected seconds on the paper's prototype hardware (cost model).
    pub projected_seconds: f64,
    /// Mean bytes sent per block member (Figure 4's quantity).
    pub traffic_per_node_bytes: f64,
    /// Operation counts measured during the execution.
    pub counts: OperationCounts,
}

/// A dummy network whose only purpose is to carry a degree bound for
/// building the finance circuits (their gate structure depends only on
/// `D` and the word width).
fn carrier_network(degree_bound: usize) -> FinancialNetwork {
    FinancialNetwork::new(2, degree_bound)
}

/// Builds the circuit for one benchmark kind.
pub fn build_circuit(
    kind: MpcCircuitKind,
    degree_bound: usize,
    vertices: usize,
    params: CircuitParams,
) -> Circuit {
    let network = carrier_network(degree_bound);
    match kind {
        MpcCircuitKind::Initialization => {
            // Share (re-)distribution of the initial state and the D no-op
            // messages: an identity circuit over those inputs; its GMW cost
            // is the per-pair session setup plus input handling, which is
            // exactly what the prototype's initialization step pays.
            let mut b = CircuitBuilder::new();
            let state = b.input_word((3 + 2 * degree_bound as u32) * params.word_bits);
            let messages = b.input_word(degree_bound as u32 * params.word_bits);
            b.output_word(&state);
            b.output_word(&messages);
            b.build().expect("builder circuits are well formed")
        }
        MpcCircuitKind::EisenbergNoeStep => EisenbergNoeSecure {
            network: &network,
            params,
            iterations: 1,
            leverage_bound: 0.1,
        }
        .update_circuit(degree_bound),
        MpcCircuitKind::ElliottGolubJacksonStep => ElliottGolubJacksonSecure {
            network: &network,
            params,
            iterations: 1,
            leverage_bound: 0.1,
        }
        .update_circuit(degree_bound),
        MpcCircuitKind::Aggregation => EisenbergNoeSecure {
            network: &network,
            params,
            iterations: 1,
            leverage_bound: 0.1,
        }
        .aggregation_circuit(vertices),
        MpcCircuitKind::Noising => noising_circuit(32, 64, 0),
    }
}

/// Runs one circuit under GMW with the given block size and returns the
/// measured row (layer-batched rounds, the default).
pub fn run_mpc_micro(
    kind: MpcCircuitKind,
    block_size: usize,
    degree_bound: usize,
    vertices: usize,
    seed: u64,
) -> MpcMicroRow {
    run_mpc_micro_with(
        kind,
        block_size,
        degree_bound,
        vertices,
        seed,
        GmwBatching::Layered,
    )
}

/// [`run_mpc_micro`] with an explicit [`GmwBatching`] mode, used by the
/// round-reduction A/B experiment.
pub fn run_mpc_micro_with(
    kind: MpcCircuitKind,
    block_size: usize,
    degree_bound: usize,
    vertices: usize,
    seed: u64,
    batching: GmwBatching,
) -> MpcMicroRow {
    let params = CircuitParams::default_params();
    let circuit = build_circuit(kind, degree_bound, vertices, params);
    let stats = CircuitStats::of(&circuit);
    let layers = CircuitLayers::of(&circuit);
    let mut rng = Xoshiro256::new(seed);
    let inputs = vec![false; circuit.num_inputs()];
    let shares = share_inputs(&inputs, block_size, &mut rng);
    let protocol =
        GmwProtocol::new(GmwConfig::with_default_ids(block_size).with_batching(batching))
            .expect("block size is at least 2");
    let mut traffic = TrafficAccountant::new();

    let start = Instant::now();
    let exec = protocol
        .execute(
            &circuit,
            &shares,
            &OtConfig::extension(),
            &mut traffic,
            &mut rng,
        )
        .expect("microbenchmark circuits execute");
    let measured_seconds = start.elapsed().as_secs_f64();

    let cost = CostModel::paper_reference();
    let projected_seconds = cost.estimate_seconds(&exec.counts) / block_size as f64;
    let traffic_per_node_bytes = (0..block_size)
        .map(|p| traffic.node(NodeId(p)).bytes_sent as f64)
        .sum::<f64>()
        / block_size as f64;

    MpcMicroRow {
        kind,
        block_size,
        degree_bound,
        vertices,
        and_gates: stats.and_gates,
        and_layers: layers.rounds(),
        rounds: exec.rounds,
        measured_seconds,
        projected_seconds,
        traffic_per_node_bytes,
        counts: exec.counts,
    }
}

/// Figure 3 (left) / Figure 4: all five circuits across block sizes.
pub fn block_size_sweep(
    block_sizes: &[usize],
    degree_bound: usize,
    vertices: usize,
) -> Vec<MpcMicroRow> {
    block_size_sweep_with_threads(block_sizes, degree_bound, vertices, 1)
}

/// [`block_size_sweep`] with the points fanned out over a worker pool.
/// Every point is an independent seeded run, so the rows are identical to
/// the sequential sweep — only the wall-clock changes.
pub fn block_size_sweep_with_threads(
    block_sizes: &[usize],
    degree_bound: usize,
    vertices: usize,
    threads: usize,
) -> Vec<MpcMicroRow> {
    let mut points = Vec::new();
    for &kind in &MpcCircuitKind::all() {
        for &block_size in block_sizes {
            points.push((kind, block_size));
        }
    }
    parallel_map(points, threads, |_idx, (kind, block_size)| {
        run_mpc_micro(kind, block_size, degree_bound, vertices, 0xF13)
    })
}

/// Figure 3 (right): the step circuits across degree bounds and the
/// aggregation circuit across node counts, at a fixed block size.
pub fn parameter_sweep(
    block_size: usize,
    degree_bounds: &[usize],
    node_counts: &[usize],
) -> Vec<MpcMicroRow> {
    parameter_sweep_with_threads(block_size, degree_bounds, node_counts, 1)
}

/// [`parameter_sweep`] with the points fanned out over a worker pool.
pub fn parameter_sweep_with_threads(
    block_size: usize,
    degree_bounds: &[usize],
    node_counts: &[usize],
    threads: usize,
) -> Vec<MpcMicroRow> {
    let mut points = Vec::new();
    for &d in degree_bounds {
        for kind in [
            MpcCircuitKind::Initialization,
            MpcCircuitKind::EisenbergNoeStep,
            MpcCircuitKind::ElliottGolubJacksonStep,
        ] {
            points.push((kind, d, 100, 0xF14));
        }
    }
    for &n in node_counts {
        points.push((MpcCircuitKind::Aggregation, 10, n, 0xF15));
    }
    parallel_map(points, threads, |_idx, (kind, d, n, seed)| {
        run_mpc_micro(kind, block_size, d, n, seed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circuits_build_for_all_kinds() {
        let params = CircuitParams::default_params();
        for kind in MpcCircuitKind::all() {
            let c = build_circuit(kind, 10, 20, params);
            assert!(c.num_inputs() > 0, "{kind:?}");
            assert!(!kind.label().is_empty());
        }
        // The EGJ step is costlier than the EN step, which is costlier than
        // initialization (Figure 3's ordering).
        let init = build_circuit(MpcCircuitKind::Initialization, 10, 20, params);
        let en = build_circuit(MpcCircuitKind::EisenbergNoeStep, 10, 20, params);
        let egj = build_circuit(MpcCircuitKind::ElliottGolubJacksonStep, 10, 20, params);
        assert!(en.and_gates() > init.and_gates());
        assert!(egj.and_gates() > en.and_gates());
    }

    #[test]
    fn traffic_scales_roughly_linearly_with_block_size() {
        // Figure 4: per-node traffic is roughly proportional to the block
        // size (total traffic is quadratic but shared across k+1 nodes).
        let small = run_mpc_micro(MpcCircuitKind::EisenbergNoeStep, 4, 10, 100, 1);
        let large = run_mpc_micro(MpcCircuitKind::EisenbergNoeStep, 8, 10, 100, 1);
        let ratio = large.traffic_per_node_bytes / small.traffic_per_node_bytes;
        assert!(
            (1.5..3.5).contains(&ratio),
            "traffic ratio for doubled block size was {ratio}"
        );
        assert_eq!(small.and_gates, large.and_gates);
    }

    #[test]
    fn batching_cuts_rounds_from_gates_to_depth() {
        let batched = run_mpc_micro_with(
            MpcCircuitKind::EisenbergNoeStep,
            4,
            10,
            100,
            4,
            GmwBatching::Layered,
        );
        let per_gate = run_mpc_micro_with(
            MpcCircuitKind::EisenbergNoeStep,
            4,
            10,
            100,
            4,
            GmwBatching::PerGate,
        );
        // Measured rounds reconcile with the analytical model in each
        // mode: setup (2) + 2 per layer/gate + output (1).
        assert_eq!(batched.rounds, 2 * batched.and_layers as u64 + 3);
        assert_eq!(per_gate.rounds, 2 * per_gate.and_gates as u64 + 3);
        assert!(batched.rounds < per_gate.rounds);
        // Same work and traffic; only the round structure differs.
        assert_eq!(batched.counts.bytes_sent, per_gate.counts.bytes_sent);
        assert_eq!(batched.counts.extended_ots, per_gate.counts.extended_ots);
    }

    #[test]
    fn step_cost_scales_with_degree_bound() {
        // Figure 3 (right): the computation-step time grows roughly
        // linearly with the degree bound.
        let d10 = run_mpc_micro(MpcCircuitKind::EisenbergNoeStep, 4, 10, 100, 2);
        let d40 = run_mpc_micro(MpcCircuitKind::EisenbergNoeStep, 4, 40, 100, 2);
        let ratio = d40.and_gates as f64 / d10.and_gates as f64;
        assert!((2.5..5.5).contains(&ratio), "gate ratio was {ratio}");
        assert!(d40.projected_seconds > d10.projected_seconds);
    }

    #[test]
    fn aggregation_scales_with_vertices() {
        let n50 = run_mpc_micro(MpcCircuitKind::Aggregation, 4, 10, 50, 3);
        let n200 = run_mpc_micro(MpcCircuitKind::Aggregation, 4, 10, 200, 3);
        let ratio = n200.and_gates as f64 / n50.and_gates as f64;
        assert!((3.0..5.0).contains(&ratio), "gate ratio was {ratio}");
    }
}
