//! The `persist` experiment: *measured* runs past the RAM wall.
//!
//! The scale sweep kept the whole share state resident; this experiment
//! turns on the engine's byte budget ([`DStressConfig::with_state_budget`])
//! so the state-store layer pages fixed-size row segments out to a
//! run-scoped spill log, and *measures* the result: store-resident peak
//! bytes (which must stay under the budget, up to one segment of slack
//! per store), spill-file bytes, peak heap bytes, and wall seconds — all
//! recorded in `BENCH_results.json` next to the in-memory scale points.
//!
//! The experiment also pins the recovery path in-process:
//! [`kill_resume_check`] runs the same configuration uninterrupted and
//! crashed-after-round-0-then-resumed (spilling in both arms) and
//! reports whether the two releases are bit-identical with identical
//! operation counts and wire-byte totals.

use crate::alloc;
use crate::streaming_scale::{runs_identical, ScaleTopology};
use dstress_core::engine::RuntimeError;
use dstress_core::store::packed_bytes;
use dstress_core::{
    CheckpointConfig, ConcurrencyMode, CounterProgram, DStressConfig, DStressRuntime,
    SecureVertexProgram, SEGMENT_ROWS,
};
use dstress_graph::Graph;
use dstress_net::cost::OperationCounts;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Seed of every persist run (graph generation and execution).
const PERSIST_SEED: u64 = 0x9E25_1577;

/// The workload: the scale sweep's counter program (8-bit words, two
/// iterations) on a Barabási–Albert `m = 2` graph.
fn persist_program() -> CounterProgram {
    CounterProgram {
        width: 8,
        rounds: 2,
    }
}

fn persist_topology() -> ScaleTopology {
    ScaleTopology::ScaleFree { m: 2 }
}

fn persist_config(threads: usize) -> DStressConfig {
    let mut config = DStressConfig::benchmark(2);
    config.message_bits = 8;
    config.seed = PERSIST_SEED;
    if threads > 1 {
        config = config.with_concurrency(ConcurrencyMode::Threaded { threads });
    }
    config
}

/// The bytes the engine's three stores (state + double-buffered inbox)
/// would keep resident without a budget — the number the budget is set
/// against.
pub fn store_total_bytes(graph: &Graph, state_bits: usize, message_bits: usize) -> usize {
    let block_size = 3; // k + 1 with the benchmark collusion bound k = 2
    let state_rows = graph.vertex_count() * block_size;
    let inbox_rows = graph.edge_count() * block_size;
    packed_bytes(state_rows, state_bits) + 2 * packed_bytes(inbox_rows, message_bits)
}

/// The resident-peak slack the segment granularity permits: each of the
/// three stores may round its share of the budget up to one whole
/// segment.
pub fn budget_slack_bytes(state_bits: usize, message_bits: usize) -> usize {
    let segment = |width: usize| SEGMENT_ROWS * width.div_ceil(64) * 8;
    segment(state_bits) + 2 * segment(message_bits)
}

/// One measured point of the persist sweep.
#[derive(Clone, Debug)]
pub struct PersistPoint {
    /// Number of vertices.
    pub nodes: usize,
    /// Directed edges of the generated graph.
    pub edges: usize,
    /// What the stores would keep resident without a budget.
    pub unbudgeted_bytes: usize,
    /// The configured state budget (a quarter of the unbudgeted total,
    /// so every point really pages).
    pub budget_bytes: usize,
    /// Segment-granularity slack on top of the budget.
    pub slack_bytes: usize,
    /// Peak store-resident bytes the engine observed.
    pub store_resident_peak_bytes: usize,
    /// High-water mark of the spill logs on disk.
    pub spill_file_bytes: u64,
    /// Peak heap bytes across graph build + run.
    pub peak_alloc_bytes: usize,
    /// Wall-clock seconds of the engine run alone.
    pub wall_seconds: f64,
    /// Operation counts of the run.
    pub counts: OperationCounts,
    /// The pre-noise aggregate (determinism handle).
    pub ideal_output: f64,
}

impl PersistPoint {
    /// Whether the measured resident peak honours the budget (up to the
    /// segment-granularity slack).
    pub fn within_budget(&self) -> bool {
        self.store_resident_peak_bytes <= self.budget_bytes + self.slack_bytes
    }
}

/// Runs one measured persist point: graph → budgeted (spilling) run,
/// with peak heap captured around the whole build + run.
pub fn run_persist_point(n: usize, threads: usize) -> PersistPoint {
    let program = persist_program();
    let config = persist_config(threads);
    let state_bits = program.state_bits() as usize;
    let message_bits = config.message_bits as usize;

    let baseline = alloc::reset_peak();
    let graph = persist_topology().build_graph(n, PERSIST_SEED);
    let unbudgeted = store_total_bytes(&graph, state_bits, message_bits);
    let budget = (unbudgeted / 4).max(1);
    let runtime = DStressRuntime::new(config.with_state_budget(budget));
    let run_start = Instant::now();
    let run = runtime
        .execute_streaming(&graph, &program)
        .expect("persist run succeeds");
    let wall_seconds = run_start.elapsed().as_secs_f64();
    let peak = alloc::peak_bytes_since_reset().saturating_sub(baseline);
    PersistPoint {
        nodes: n,
        edges: graph.edge_count(),
        unbudgeted_bytes: unbudgeted,
        budget_bytes: budget,
        slack_bytes: budget_slack_bytes(state_bits, message_bits),
        store_resident_peak_bytes: run.store_resident_peak_bytes,
        spill_file_bytes: run.spill_file_bytes,
        peak_alloc_bytes: peak,
        wall_seconds,
        counts: run.phases.total_counts(),
        ideal_output: run.ideal_output,
    }
}

/// The full persist sweep (sequentially, so per-point peak figures stay
/// clean).  This is exactly what `repro -- persist` prints and records;
/// the sweep always includes an `N` past the 10,000-vertex acceptance
/// line.
pub fn persist_sweep(nodes: &[usize], threads: usize) -> Vec<PersistPoint> {
    nodes
        .iter()
        .map(|&n| run_persist_point(n, threads))
        .collect()
}

/// Distinguishes concurrent checkpoint directories within one process.
static CHECKPOINT_TAG: AtomicU64 = AtomicU64::new(0);

/// Runs the persist workload at `n` three ways — uninterrupted, crashed
/// right after round 0's checkpoint, and resumed from that checkpoint —
/// and reports whether the resumed run equals the uninterrupted one bit
/// for bit (released values, operation counts including wire bytes, and
/// per-node traffic).  Both arms spill, so recovery is exercised on the
/// budgeted path.
pub fn kill_resume_check(n: usize) -> bool {
    let program = persist_program();
    let graph = persist_topology().build_graph(n, PERSIST_SEED);
    let state_bits = program.state_bits() as usize;
    let budget = (store_total_bytes(&graph, state_bits, 8) / 4).max(1);
    let checkpoint_dir = std::env::temp_dir().join(format!(
        "dstress-persist-ckpt-{}-{}",
        std::process::id(),
        CHECKPOINT_TAG.fetch_add(1, Ordering::Relaxed)
    ));

    let baseline = DStressRuntime::new(persist_config(1).with_state_budget(budget))
        .execute_streaming(&graph, &program)
        .expect("uninterrupted persist run succeeds");

    let crash_config = persist_config(1)
        .with_state_budget(budget)
        .with_checkpoint(CheckpointConfig::every_round(checkpoint_dir.clone()))
        .with_halt_after_round(0);
    match DStressRuntime::new(crash_config).execute_streaming(&graph, &program) {
        Err(RuntimeError::Halted { round: 0 }) => {}
        other => panic!("expected the injected crash after round 0, got {other:?}"),
    }

    let resume_config = persist_config(1)
        .with_state_budget(budget)
        .with_checkpoint(CheckpointConfig::every_round(checkpoint_dir.clone()));
    let resumed = DStressRuntime::new(resume_config)
        .resume(&graph, &program)
        .expect("resumed persist run succeeds");
    let _ = std::fs::remove_dir_all(&checkpoint_dir);

    runs_identical(&baseline, &resumed)
        && baseline.phases.total_counts().wire_bytes == resumed.phases.total_counts().wire_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persist_points_really_spill_and_stay_under_budget() {
        let point = run_persist_point(220, 2);
        assert_eq!(point.nodes, 220);
        assert!(point.edges > 0);
        assert!(point.budget_bytes < point.unbudgeted_bytes);
        assert!(point.spill_file_bytes > 0, "a quarter budget must spill");
        assert!(
            point.within_budget(),
            "resident peak {} exceeds budget {} + slack {}",
            point.store_resident_peak_bytes,
            point.budget_bytes,
            point.slack_bytes
        );
        assert!(point.counts.and_gates > 0);
        assert!(point.wall_seconds > 0.0);
        assert!(point.ideal_output.is_finite());
    }

    #[test]
    fn budgeted_runs_match_unbudgeted_runs() {
        let program = persist_program();
        let graph = persist_topology().build_graph(180, PERSIST_SEED);
        let unbudgeted = DStressRuntime::new(persist_config(1))
            .execute_streaming(&graph, &program)
            .expect("unbudgeted run succeeds");
        let point = run_persist_point(180, 1);
        assert_eq!(point.ideal_output, unbudgeted.ideal_output);
        assert_eq!(point.counts, unbudgeted.phases.total_counts());
    }

    #[test]
    fn small_kill_resume_check_passes() {
        assert!(kill_resume_check(120));
    }
}
