//! §4.5 and Appendix B: the privacy-policy arithmetic.
//!
//! Two pieces of the paper are pure policy analysis rather than systems
//! measurement: the utility analysis of §4.5 (how much noise dollar-DP
//! adds and how often the stress test can run) and the edge-privacy
//! accounting of Appendix B (how much ε the transfer protocol's noised
//! bit-sums consume).  This module packages both so the harness can print
//! them next to the measured results.

use dstress_dp::edge_privacy::EdgePrivacyAccounting;
use dstress_dp::utility::UtilityAnalysis;

/// The §4.5 utility table, one row per model.
#[derive(Clone, Debug)]
pub struct UtilityRow {
    /// Model name.
    pub model: &'static str,
    /// Sensitivity in multiples of the granularity `T`.
    pub sensitivity: f64,
    /// Required per-query ε.
    pub epsilon_query: f64,
    /// Laplace scale of the released TDS, in dollars.
    pub noise_scale_dollars: f64,
    /// Stress tests allowed per year within ε_max = ln 2.
    pub runs_per_year: u32,
    /// Probability that the released TDS is within ±$200 B of the truth.
    pub accuracy_probability: f64,
}

/// Produces the §4.5 utility table for both models.
pub fn utility_table() -> Vec<UtilityRow> {
    let build = |model: &'static str, analysis: UtilityAnalysis| {
        let eps = analysis.required_epsilon_query();
        UtilityRow {
            model,
            sensitivity: analysis.sensitivity,
            epsilon_query: eps,
            noise_scale_dollars: analysis.noise_scale_dollars(eps),
            runs_per_year: analysis.runs_per_year(),
            accuracy_probability: analysis.accuracy_probability(eps),
        }
    };
    vec![
        build("Eisenberg-Noe", UtilityAnalysis::paper_en()),
        build("Elliott-Golub-Jackson", UtilityAnalysis::paper_egj()),
    ]
}

/// The Appendix B edge-privacy summary.
#[derive(Clone, Debug)]
pub struct EdgePrivacySummary {
    /// Sensitivity Δ = k + 1 of one bit-sum query.
    pub sensitivity: u64,
    /// Total transfers the failure budget covers (N_q).
    pub total_transfers: f64,
    /// The ε the paper instantiates (2.34·10⁻⁷).
    pub paper_epsilon: f64,
    /// The smallest ε permitted by the failure-probability bound.
    pub minimum_epsilon: f64,
    /// The per-transfer failure probability at the paper's ε.
    pub failure_probability: f64,
    /// Edge-privacy ε spent per iteration.
    pub budget_per_iteration: f64,
    /// Edge-privacy ε spent per year.
    pub budget_per_year: f64,
    /// The fraction of the annual ln 2 output budget this represents.
    pub fraction_of_annual_budget: f64,
}

/// Produces the Appendix B summary with the paper's concrete parameters.
pub fn edge_privacy_summary() -> EdgePrivacySummary {
    let accounting = EdgePrivacyAccounting::paper_example();
    let paper_epsilon = 2.34e-7_f64;
    let alpha = (-paper_epsilon).exp();
    let per_year = accounting.budget_per_year(paper_epsilon);
    EdgePrivacySummary {
        sensitivity: accounting.sensitivity(),
        total_transfers: accounting.total_transfers(),
        paper_epsilon,
        minimum_epsilon: accounting.min_epsilon(),
        failure_probability: accounting.failure_probability(alpha),
        budget_per_iteration: accounting.budget_per_iteration(paper_epsilon),
        budget_per_year: per_year,
        fraction_of_annual_budget: per_year / 2f64.ln(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utility_table_matches_paper() {
        let table = utility_table();
        assert_eq!(table.len(), 2);
        let egj = &table[1];
        assert_eq!(egj.sensitivity, 20.0);
        assert!((egj.epsilon_query - 0.23).abs() < 0.01);
        assert_eq!(egj.runs_per_year, 3);
        assert!(egj.accuracy_probability > 0.89);
        let en = &table[0];
        assert!(en.runs_per_year >= egj.runs_per_year);
        // Eisenberg–Noe's lower sensitivity buys a smaller per-query ε for
        // the same precision target (the noise scale at the required ε is
        // the same by construction: it is pinned by the precision target).
        assert!(en.epsilon_query < egj.epsilon_query);
        assert!(
            (en.noise_scale_dollars - egj.noise_scale_dollars).abs()
                < 1e-3 * egj.noise_scale_dollars
        );
    }

    #[test]
    fn edge_privacy_matches_appendix_b() {
        let s = edge_privacy_summary();
        assert_eq!(s.sensitivity, 20);
        assert!((3.5e11..3.9e11).contains(&s.total_transfers));
        assert!((s.budget_per_iteration - 0.0014).abs() < 1e-4);
        assert!((s.budget_per_year - 0.0469).abs() < 1e-3);
        assert!(s.minimum_epsilon <= s.paper_epsilon);
        assert!(s.failure_probability <= 1.0 / s.total_transfers);
        assert!(s.fraction_of_annual_budget < 0.1);
    }
}
