//! Criterion bench for the §5.2 message-transfer microbenchmark: one
//! 12-bit transfer through the full (real-crypto) protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dstress_bench::transfer_micro::run_transfer_micro;
use dstress_transfer::ProtocolVariant;

fn bench_transfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("transfer_micro");
    group.sample_size(10);
    for block_size in [4usize, 8, 12] {
        group.bench_with_input(
            BenchmarkId::new("final", block_size),
            &block_size,
            |b, &bs| {
                b.iter(|| run_transfer_micro(ProtocolVariant::Final { alpha: 0.9 }, bs, 12, 0x7B))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transfer);
criterion_main!(benches);
