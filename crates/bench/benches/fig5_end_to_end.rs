//! Criterion bench for Figure 5: an end-to-end DStress run of both
//! systemic-risk algorithms at reduced scale (the paper-scale sweep is
//! `repro fig5 --full`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dstress_bench::end_to_end::{fig5_network, run_end_to_end, Algorithm};

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_end_to_end");
    group.sample_size(10);
    let network = fig5_network(16, 4, 0xF15);
    for (name, alg) in [
        ("EN", Algorithm::EisenbergNoe),
        ("EGJ", Algorithm::ElliottGolubJackson),
    ] {
        for block_size in [4usize, 6] {
            group.bench_with_input(BenchmarkId::new(name, block_size), &block_size, |b, &bs| {
                b.iter(|| run_end_to_end(alg, &network, 3, bs, 0xF15))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
