//! Criterion bench for Figure 4: per-node traffic of the DStress MPC
//! circuits (the measured quantity is bytes; the bench times the
//! measurement pipeline and prints the traffic through the row).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dstress_bench::mpc_micro::{run_mpc_micro, MpcCircuitKind};

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_mpc_traffic");
    group.sample_size(10);
    for block_size in [4usize, 8, 12] {
        group.bench_with_input(
            BenchmarkId::new("en_step_traffic", block_size),
            &block_size,
            |b, &bs| {
                b.iter(|| {
                    let row = run_mpc_micro(MpcCircuitKind::EisenbergNoeStep, bs, 20, 50, 0xF14);
                    row.traffic_per_node_bytes
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
