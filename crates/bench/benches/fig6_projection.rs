//! Criterion bench for Figure 6: the paper-scale projection sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use dstress_bench::scalability::{fig6_sweep, headline_projection};

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_projection");
    group.sample_size(10);
    group.bench_function("sweep", |b| {
        b.iter(|| fig6_sweep(&[100, 500, 1000, 1750, 2000], &[10, 40, 70, 100]))
    });
    group.bench_function("headline", |b| b.iter(headline_projection));
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
