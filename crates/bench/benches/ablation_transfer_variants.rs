//! Criterion bench for the protocol ablation: strawman #1-#3 vs the final
//! noised protocol, at a fixed block size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dstress_bench::transfer_micro::run_transfer_micro;
use dstress_transfer::ProtocolVariant;

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("transfer_variants");
    group.sample_size(10);
    let variants = [
        ("strawman1", ProtocolVariant::Strawman1),
        ("strawman2", ProtocolVariant::Strawman2),
        ("strawman3", ProtocolVariant::Strawman3),
        ("final", ProtocolVariant::Final { alpha: 0.9 }),
    ];
    for (name, variant) in variants {
        group.bench_with_input(BenchmarkId::new("variant", name), &variant, |b, &v| {
            b.iter(|| run_transfer_micro(v, 6, 12, 0x7C))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
