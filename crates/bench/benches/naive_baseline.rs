//! Criterion bench for the §5.5 naive monolithic-MPC baseline: one small
//! matrix multiplication executed under GMW plus the paper-scale
//! extrapolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dstress_bench::naive_baseline::{paper_comparison, run_baseline_point};

fn bench_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("naive_baseline");
    group.sample_size(10);
    for n in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("matrix_multiply_gmw", n), &n, |b, &n| {
            b.iter(|| run_baseline_point(n, true, 0xBA5E))
        });
    }
    group.bench_function("paper_extrapolation", |b| b.iter(paper_comparison));
    group.finish();
}

criterion_group!(benches, bench_naive);
criterion_main!(benches);
