//! Criterion bench for Figure 3: GMW execution time of the five DStress
//! MPC circuits at small block sizes (the full sweep lives in `repro`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dstress_bench::mpc_micro::{run_mpc_micro, MpcCircuitKind};

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_mpc_time");
    group.sample_size(10);
    for kind in MpcCircuitKind::all() {
        for block_size in [4usize, 8] {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), block_size),
                &block_size,
                |b, &bs| b.iter(|| run_mpc_micro(kind, bs, 20, 50, 0xF13)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
