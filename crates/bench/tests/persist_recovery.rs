//! Release-mode acceptance gate for the state-store spill + recovery
//! path.
//!
//! This is the PR's acceptance criterion as a test: with a state budget
//! a quarter of the unbudgeted store bytes, a run at `N` past the
//! 10,000-vertex line must really page share state to disk
//! (spill-file bytes > 0) while its store-resident peak honours the
//! budget up to the segment-granularity slack, the budgeted run must be
//! bit-identical to the unbudgeted one, and a run crashed at a round
//! boundary must resume to the exact same release.
//!
//! One `#[ignore]`d test: it takes tens of seconds in release mode
//! (ci.sh runs it explicitly with `--release -- --ignored`) and its
//! peak-memory comparison needs the allocator counters to itself.

use dstress_bench::persist::{kill_resume_check, run_persist_point};
use dstress_bench::streaming_scale::run_scale_point;
use dstress_bench::streaming_scale::ScaleTopology;

#[test]
#[ignore = "release-mode persist acceptance; ci.sh runs it with --release -- --ignored"]
fn budgeted_run_past_the_ram_wall_spills_and_recovers() {
    // (1) A measured point past the acceptance line: N > 10,000 with
    // the budget a quarter of what the stores would keep resident.
    let point = run_persist_point(12_000, 2);
    assert!(point.nodes > 10_000 && point.edges > 10_000);
    assert!(point.counts.and_gates > 0, "the MPCs really ran");
    assert!(point.spill_file_bytes > 0, "a quarter budget must spill");
    assert!(
        point.within_budget(),
        "resident peak {} exceeds budget {} + slack {}",
        point.store_resident_peak_bytes,
        point.budget_bytes,
        point.slack_bytes
    );

    // (2) The budget is a real constraint: the unbudgeted run of the
    // same workload keeps strictly more store bytes resident.
    let unbudgeted = run_scale_point(ScaleTopology::ScaleFree { m: 2 }, 12_000, 2);
    assert_eq!(unbudgeted.spill_file_bytes, 0, "scale points stay in RAM");
    assert!(
        point.store_resident_peak_bytes < point.unbudgeted_bytes,
        "budgeted resident peak {} should undercut the unbudgeted store total {}",
        point.store_resident_peak_bytes,
        point.unbudgeted_bytes
    );

    // (3) Kill-and-resume on the budgeted path: crash after round 0's
    // checkpoint, resume, and release the exact same bits with the same
    // operation counts and wire-byte totals.
    assert!(
        kill_resume_check(600),
        "resume must reproduce the uninterrupted run bit for bit"
    );
}
