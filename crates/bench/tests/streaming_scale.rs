//! Release-mode acceptance gate for the streaming scale path.
//!
//! This is the PR's acceptance criterion as a test: `repro -- scale`
//! must record *measured* (non-model) sweep points past the old
//! 2,000-vertex materialisation wall, with Sequential/Threaded streaming
//! execution bit-identical and peak memory bounded — sub-linear in the
//! total edge count, and strictly below the fully-materialised schedule
//! once per-block state dominates.
//!
//! The whole gate is one `#[ignore]`d test: it takes tens of seconds in
//! release mode (ci.sh runs it explicitly with `--release -- --ignored`)
//! and its peak-memory measurements need the process's allocator
//! counters to themselves, which running alone guarantees.

use dstress_bench::streaming_scale::{
    peak_memory_comparison, run_scale_point, streaming_determinism_check, ScaleTopology,
};

#[test]
#[ignore = "release-mode scale acceptance; ci.sh runs it with --release -- --ignored"]
fn measured_streaming_sweep_passes_the_materialisation_wall() {
    // (1) A *measured* sweep point with n > 2000: real engine run, real
    // counts, on a streamed CSR topology.
    let point = run_scale_point(ScaleTopology::ScaleFree { m: 2 }, 2500, 2);
    assert!(point.measured);
    assert!(point.nodes > 2000 && point.edges > 2000);
    assert!(point.counts.and_gates > 0, "the MPCs really ran");
    assert!(point.counts.wire_bytes > 0, "real encoded bytes moved");
    assert!(point.bytes_per_node > 0.0);
    assert!(point.peak_alloc_bytes > 0);
    // The core-periphery scenario crosses the wall too.
    let cp = run_scale_point(ScaleTopology::CorePeriphery, 2500, 2);
    assert!(cp.measured && cp.nodes > 2000 && cp.counts.and_gates > 0);

    // (2) Sequential and Threaded block-streaming runs are bit-identical
    // above the wall.
    assert!(
        streaming_determinism_check(ScaleTopology::ScaleFree { m: 2 }, 2100, 4),
        "streaming execution must be schedule-invariant"
    );

    // (3) Peak memory is sub-linear in the total edge count: quadrupling
    // the edges at fixed n must cost far less than double the peak
    // (the persistent state is bit-packed and the in-flight window is
    // bounded by the worker count, so per-edge cost is a few bytes).
    let sparse = run_scale_point(ScaleTopology::ScaleFree { m: 1 }, 2000, 1);
    let dense = run_scale_point(ScaleTopology::ScaleFree { m: 4 }, 2000, 1);
    assert!(
        dense.edges >= 3 * sparse.edges,
        "edges {} vs {}",
        dense.edges,
        sparse.edges
    );
    assert!(
        (dense.peak_alloc_bytes as f64) < 1.6 * sparse.peak_alloc_bytes as f64,
        "peak grew {} -> {} over a ~4x edge increase",
        sparse.peak_alloc_bytes,
        dense.peak_alloc_bytes
    );

    // (4) Once per-block state dominates (high degree bound), the
    // bounded-window schedule beats the fully materialised one outright.
    let (materialised, streaming) =
        peak_memory_comparison(ScaleTopology::ScaleFree { m: 12 }, 2500);
    assert!(
        (streaming as f64) * 1.5 < materialised as f64,
        "streaming peak {streaming} vs materialised peak {materialised}"
    );
}
