//! Measured-vs-modeled byte reconciliation on the quick benchmark
//! circuits (the `repro -- bytes` experiment, as a regression gate).
//!
//! *Measured* bytes are the summed lengths of the actual wire encodings
//! every message passes through; *modeled* bytes are the analytical cost
//! model's per-primitive totals (`OperationCounts::bytes_sent`), which
//! the paper-scale projections use.  The two must stay close — that is
//! what makes the modeled traffic figures trustworthy.

use dstress_bench::mpc_micro::{run_mpc_micro_with, MpcCircuitKind};
use dstress_mpc::GmwBatching;

/// Tolerance of the reconciliation, as bounds on measured / modeled.
///
/// Why these bounds: the wire payloads are sized by the same analytic
/// per-OT and per-setup figures the model charges, so the lower bound is
/// 1.0 minus nothing (measured can never undershoot: every modeled byte
/// rides in some message).  The upper bound covers what the model does
/// *not* charge — the bit-packed choice/share planes (2 bits per AND
/// gate per pair) and per-message framing (tags, varints, length
/// prefixes), which together stay under 10% on every quick benchmark
/// circuit in layered mode.
const MEASURED_OVER_MODELED: (f64, f64) = (1.0, 1.10);

#[test]
fn measured_bytes_reconcile_with_the_cost_model_on_quick_circuits() {
    for kind in MpcCircuitKind::all() {
        let row = run_mpc_micro_with(kind, 4, 10, 50, 0xBEC0, GmwBatching::Layered);
        let measured = row.counts.wire_bytes as f64;
        let modeled = row.counts.bytes_sent as f64;
        if row.and_gates == 0 {
            // OT-extension setup is charged lazily at the first AND
            // layer, so a circuit that never reaches one (the identity
            // Initialization circuit) moves no bytes at all — measured
            // and modeled agree on exactly zero.
            assert_eq!(measured, 0.0, "{kind:?}");
            assert_eq!(modeled, 0.0, "{kind:?}");
            continue;
        }
        assert!(measured > 0.0 && modeled > 0.0, "{kind:?}");
        let ratio = measured / modeled;
        assert!(
            (MEASURED_OVER_MODELED.0..MEASURED_OVER_MODELED.1).contains(&ratio),
            "{kind:?}: measured/modeled = {ratio:.4} outside {MEASURED_OVER_MODELED:?}"
        );
    }
}

#[test]
fn batched_framing_is_measurably_smaller_than_per_gate() {
    // The acceptance criterion: bit-packed, layer-batched
    // Choices/Responses payloads beat the per-gate path in *measured*
    // bytes (the modeled totals are identical by construction).  On the
    // EN step circuit the saving is well over 1.5x.
    let batched = run_mpc_micro_with(
        MpcCircuitKind::EisenbergNoeStep,
        4,
        10,
        50,
        0xBEC1,
        GmwBatching::Layered,
    );
    let per_gate = run_mpc_micro_with(
        MpcCircuitKind::EisenbergNoeStep,
        4,
        10,
        50,
        0xBEC1,
        GmwBatching::PerGate,
    );
    assert_eq!(batched.counts.bytes_sent, per_gate.counts.bytes_sent);
    assert!(
        (batched.counts.wire_bytes as f64) * 1.5 < per_gate.counts.wire_bytes as f64,
        "batched {} vs per-gate {}",
        batched.counts.wire_bytes,
        per_gate.counts.wire_bytes
    );
}
