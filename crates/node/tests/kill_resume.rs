//! Kill-and-resume recovery, end to end over loopback TCP.
//!
//! Phase one runs a master with `--checkpoint-dir` and
//! `--halt-after-round 0`: the master computes round 0 on three
//! workers, writes the round-boundary checkpoint, prints `HALTED 0`
//! and exits 0 — an injected crash with the checkpoint already on
//! disk.  The phase-one workers lose their master mid-run and are
//! simply killed; no state of theirs is needed.
//!
//! Phase two starts a fresh master on the same checkpoint directory
//! with a fresh fleet.  It finds the checkpoint, resumes from the
//! recorded round and RNG position, and must release the exact value
//! an uninterrupted in-process run produces — bit for bit, with the
//! same ideal output.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use dstress_core::{CounterProgram, DStressRuntime};
use dstress_deploy::master::MasterConfig;

/// Kills the child on drop so a failing assertion never leaks
/// processes.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn read_line(reader: &mut impl BufRead) -> String {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("master stdout stays open");
    line.trim_end().to_string()
}

fn spawn_master(extra: &[&str]) -> (ChildGuard, BufReader<std::process::ChildStdout>, String) {
    let mut master = ChildGuard(
        Command::new(env!("CARGO_BIN_EXE_dstress-master"))
            .args(["--workers", "3", "--rounds", "2"])
            .args(extra)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn dstress-master"),
    );
    let mut master_out = BufReader::new(master.0.stdout.take().expect("piped stdout"));
    let listen = read_line(&mut master_out);
    let addr = listen
        .strip_prefix("LISTEN ")
        .unwrap_or_else(|| panic!("expected LISTEN line, got {listen:?}"))
        .to_string();
    (master, master_out, addr)
}

fn spawn_workers(addr: &str) -> Vec<ChildGuard> {
    (0..3)
        .map(|_| {
            ChildGuard(
                Command::new(env!("CARGO_BIN_EXE_dstress-node"))
                    .args(["--master", addr])
                    .spawn()
                    .expect("spawn dstress-node"),
            )
        })
        .collect()
}

#[test]
fn master_killed_between_rounds_resumes_to_the_same_bits() {
    let checkpoint_dir =
        std::env::temp_dir().join(format!("dstress-kill-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&checkpoint_dir);
    let dir_arg = checkpoint_dir.to_str().expect("utf-8 temp path");

    // Phase one: crash right after round 0's checkpoint.
    let (mut master, mut master_out, addr) =
        spawn_master(&["--checkpoint-dir", dir_arg, "--halt-after-round", "0"]);
    let workers = spawn_workers(&addr);
    let halted = read_line(&mut master_out);
    assert_eq!(halted, "HALTED 0", "expected the injected crash");
    let status = master.0.wait().expect("master exit status");
    assert!(status.success(), "a halt is not a failure, got {status}");
    std::mem::forget(master);
    // The phase-one workers lost their master mid-run; kill them
    // without asserting on their exit status.
    drop(workers);

    assert!(
        checkpoint_dir.join("checkpoint-00000001.ckpt").is_file(),
        "round 0's checkpoint survives the crash"
    );

    // Phase two: a fresh master and fresh fleet resume from disk.
    let (mut master, mut master_out, addr) = spawn_master(&["--checkpoint-dir", dir_arg]);
    let workers = spawn_workers(&addr);

    let result = read_line(&mut master_out);
    let payload = result
        .strip_prefix("RESULT ")
        .unwrap_or_else(|| panic!("expected RESULT line, got {result:?}"));
    let mut parts = payload.split_whitespace();
    let noised = u64::from_str_radix(parts.next().expect("noised bits"), 16).unwrap();
    let ideal = u64::from_str_radix(parts.next().expect("ideal bits"), 16).unwrap();
    let wire = read_line(&mut master_out);
    assert!(wire.starts_with("WORKER_WIRE_BYTES "), "{wire}");
    assert_eq!(read_line(&mut master_out), "DONE");

    for mut worker in workers {
        let status = worker.0.wait().expect("worker exit status");
        assert!(status.success(), "worker exited with {status}");
        std::mem::forget(worker);
    }
    let status = master.0.wait().expect("master exit status");
    assert!(status.success(), "master exited with {status}");
    std::mem::forget(master);

    // The pin: the crashed-and-resumed deployment equals an
    // uninterrupted in-process run bit for bit.
    let mut config = MasterConfig::loopback(3);
    config.rounds = 2;
    let graph = config.build_graph();
    let program = CounterProgram {
        width: config.width,
        rounds: config.rounds,
    };
    let run = DStressRuntime::new(config.engine_config())
        .execute(&graph, &program)
        .expect("in-process run");
    assert_eq!(
        noised,
        run.noised_output.to_bits(),
        "resumed noised output diverged from the uninterrupted run"
    );
    assert_eq!(
        ideal,
        run.ideal_output.to_bits(),
        "resumed ideal output diverged from the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&checkpoint_dir);
}
