//! End-to-end loopback deployment: one `dstress-master` process and
//! three `dstress-node` worker processes on 127.0.0.1, running the
//! counter program over a small core–periphery network with every
//! remote block MPC exchanging its GMW messages over real TCP.
//!
//! The released value printed by the master is pinned bit-for-bit
//! against an in-process [`DStressRuntime::execute`] run of the same
//! configuration — placement across processes must not change a single
//! bit.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use dstress_core::{CounterProgram, DStressRuntime};
use dstress_deploy::master::MasterConfig;

/// Kills the child on drop so a failing assertion never leaks
/// processes.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn read_line(reader: &mut impl BufRead) -> String {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("master stdout stays open");
    line.trim_end().to_string()
}

#[test]
fn master_and_three_workers_match_the_in_process_run() {
    let config = MasterConfig::loopback(3);

    let mut master = ChildGuard(
        Command::new(env!("CARGO_BIN_EXE_dstress-master"))
            .args(["--workers", "3"])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn dstress-master"),
    );
    let mut master_out = BufReader::new(master.0.stdout.take().expect("piped stdout"));

    let listen = read_line(&mut master_out);
    let addr = listen
        .strip_prefix("LISTEN ")
        .unwrap_or_else(|| panic!("expected LISTEN line, got {listen:?}"))
        .to_string();

    // The same listener answers HTTP probes while waiting for workers.
    let mut probe = TcpStream::connect(&addr).expect("healthz connect");
    probe
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    probe.write_all(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
    let mut health = String::new();
    probe.read_to_string(&mut health).expect("healthz response");
    assert!(health.starts_with("HTTP/1.0 200 OK"), "{health}");
    assert!(
        health.contains("\"status\":\"waiting_for_workers\""),
        "{health}"
    );
    assert!(health.contains("\"fleet\":3"), "{health}");

    let workers: Vec<ChildGuard> = (0..3)
        .map(|_| {
            ChildGuard(
                Command::new(env!("CARGO_BIN_EXE_dstress-node"))
                    .args(["--master", &addr])
                    .spawn()
                    .expect("spawn dstress-node"),
            )
        })
        .collect();

    let result = read_line(&mut master_out);
    let payload = result
        .strip_prefix("RESULT ")
        .unwrap_or_else(|| panic!("expected RESULT line, got {result:?}"));
    let mut parts = payload.split_whitespace();
    let noised = u64::from_str_radix(parts.next().expect("noised bits"), 16).unwrap();
    let ideal = u64::from_str_radix(parts.next().expect("ideal bits"), 16).unwrap();

    let wire = read_line(&mut master_out);
    let fleet_wire: u64 = wire
        .strip_prefix("WORKER_WIRE_BYTES ")
        .unwrap_or_else(|| panic!("expected WORKER_WIRE_BYTES line, got {wire:?}"))
        .parse()
        .unwrap();
    assert!(fleet_wire > 0, "workers measured no wire bytes");
    assert_eq!(read_line(&mut master_out), "DONE");

    for mut worker in workers {
        let status = worker.0.wait().expect("worker exit status");
        assert!(status.success(), "worker exited with {status}");
        std::mem::forget(worker);
    }
    let status = master.0.wait().expect("master exit status");
    assert!(status.success(), "master exited with {status}");
    std::mem::forget(master);

    // The pin: the deployed run equals the in-process run bit for bit.
    let graph = config.build_graph();
    let program = CounterProgram {
        width: config.width,
        rounds: config.rounds,
    };
    let run = DStressRuntime::new(config.engine_config())
        .execute(&graph, &program)
        .expect("in-process run");
    assert_eq!(
        noised,
        run.noised_output.to_bits(),
        "deployed noised output diverged from the in-process run"
    );
    assert_eq!(
        ideal,
        run.ideal_output.to_bits(),
        "deployed ideal output diverged from the in-process run"
    );
}
