//! Master/worker deployment layer for the DStress reproduction.
//!
//! Everything before this crate runs a whole deployment inside one
//! process.  This crate splits it across real processes connected by
//! real sockets, without changing a single output bit:
//!
//! * [`proto`] — the framed master↔worker protocol: registration, job
//!   description, task batches, outcome batches, traffic reports.  The
//!   payloads are the engine's own serializable executor types.
//! * [`master`] — the `dstress-master` side: accepts worker and HTTP
//!   status connections on one listener, registers the fleet,
//!   replicates the engine's block assignment into per-worker
//!   [`proto::JobSpec`]s, and drives
//!   [`dstress_core::engine::DStressRuntime::execute_with`] through a
//!   [`master::RemoteExecutor`] that ships every window's tasks to the
//!   fleet.
//! * [`worker`] — the `dstress-node` side: register, receive the job,
//!   execute batches with the engine's task-level entry points (block
//!   MPCs over [`dstress_net::SocketTransport`] when the job says so),
//!   report per-node traffic.
//!
//! Determinism is the load-bearing property: tasks carry their own
//! derived seeds and outcomes are stitched back in task order, so the
//! loopback integration test can pin a master + 3 worker run's released
//! value bit-for-bit against [`dstress_core::engine::DStressRuntime::execute`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod master;
pub mod proto;
pub mod worker;

pub use master::{build_jobs, run_master, MasterConfig, MasterReport, RemoteExecutor};
pub use proto::{DeployMsg, JobSpec, PROTOCOL_VERSION};
pub use worker::run_worker;
