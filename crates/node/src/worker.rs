//! The deployment worker: `dstress-node`'s task-execution loop.
//!
//! A worker is a deterministic function of its [`JobSpec`] and the task
//! stream: it connects to the master, registers, rebuilds the program
//! circuit from the job parameters, and then executes every batch with
//! the engine's own task-level entry points
//! ([`dstress_core::exec::execute_block_step_task`],
//! [`dstress_core::exec::execute_accounted_transfer_task`]) — so the
//! outcomes it returns are bit-for-bit what the master's in-process
//! pool would have computed.  With `TransportKind::Socket` in the job,
//! every block MPC the worker runs exchanges its GMW messages between
//! the block's node actors over real loopback TCP connections.
//!
//! Per-node traffic is accounted locally as batches execute and
//! reported back as totals when the master sends `Finish`.

use std::collections::HashMap;
use std::net::TcpStream;
use std::time::Duration;

use dstress_core::exec::{execute_accounted_transfer_task, execute_block_step_task};
use dstress_core::{CounterProgram, SecureVertexProgram};
use dstress_crypto::group::Group;
use dstress_net::pool::{default_threads, parallel_map};
use dstress_net::socket::FramedConn;
use dstress_net::traffic::{NodeId, TrafficAccountant};

use crate::proto::{DeployMsg, JobSpec, PROTOCOL_VERSION};

/// How long the worker waits for the next batch.  The master can spend
/// a long stretch on phases it runs locally (init, aggregation), so the
/// idle window is generous; a vanished master still ends the worker
/// with a typed error rather than a hang.
const BATCH_TIMEOUT: Duration = Duration::from_secs(600);
/// Send-side drain deadline per frame.
const SEND_TIMEOUT: Duration = Duration::from_secs(30);

/// One worker session: connect, register, execute batches until
/// `Finish`, report traffic, close.
///
/// # Errors
///
/// Returns a description of the first connection, protocol, or
/// execution failure; the binary surfaces it on stderr with a non-zero
/// exit.
pub fn run_worker(master: &str) -> Result<(), String> {
    let stream =
        TcpStream::connect(master).map_err(|e| format!("connect to master {master}: {e}"))?;
    let mut conn = FramedConn::new(stream).map_err(|e| format!("frame setup: {e}"))?;
    conn.send_msg(&DeployMsg::Register {
        version: PROTOCOL_VERSION,
    })
    .and_then(|_| conn.flush_blocking(SEND_TIMEOUT))
    .map_err(|e| format!("register: {e}"))?;

    let job = match conn
        .recv_msg::<DeployMsg>(SEND_TIMEOUT)
        .map_err(|e| format!("receive job: {e}"))?
    {
        DeployMsg::Job(spec) => spec,
        other => return Err(format!("expected Job after Register, got {other:?}")),
    };
    serve_job(&mut conn, &job)
}

/// The batch loop for one received job.
fn serve_job(conn: &mut FramedConn, job: &JobSpec) -> Result<(), String> {
    let program = CounterProgram {
        width: job.width,
        rounds: job.rounds,
    };
    let update_circuit = program.update_circuit(job.degree_bound as usize);
    let state_bits = program.state_bits() as usize;
    let message_bits = program.message_bits() as usize;
    let group = Group::new(job.group);
    let hosted: HashMap<u64, &[NodeId]> = job
        .blocks
        .iter()
        .map(|(vertex, members)| (*vertex, members.as_slice()))
        .collect();
    let threads = default_threads();
    let mut report = TrafficAccountant::new();

    loop {
        let batch = conn
            .recv_msg::<DeployMsg>(BATCH_TIMEOUT)
            .map_err(|e| format!("receive batch: {e}"))?;
        let reply = match batch {
            DeployMsg::BlockSteps(tasks) => {
                for task in &tasks {
                    let members = hosted.get(&task.vertex).copied().ok_or_else(|| {
                        format!(
                            "vertex {} is not hosted by worker {}",
                            task.vertex, job.worker
                        )
                    })?;
                    if task.members != members {
                        return Err(format!(
                            "vertex {} block members disagree with the assignment",
                            task.vertex
                        ));
                    }
                }
                let (batching, transport) = (job.batching, job.transport);
                let circuit = &update_circuit;
                let outcomes: Result<Vec<_>, _> =
                    parallel_map(tasks, threads, move |_off, task| {
                        execute_block_step_task(
                            circuit,
                            batching,
                            transport,
                            state_bits,
                            message_bits,
                            task,
                        )
                    })
                    .into_iter()
                    .collect();
                let outcomes = outcomes.map_err(|e| format!("block step failed: {e}"))?;
                for outcome in &outcomes {
                    for (id, totals) in &outcome.traffic {
                        report.add_node_traffic(*id, totals);
                    }
                }
                DeployMsg::BlockStepResults(outcomes)
            }
            DeployMsg::Transfers(tasks) => {
                for task in &tasks {
                    if !hosted.contains_key(&task.to) {
                        return Err(format!(
                            "transfer receiver {} is not hosted by worker {}",
                            task.to, job.worker
                        ));
                    }
                }
                let (group, width) = (&group, job.width);
                let outcomes: Vec<_> = parallel_map(tasks, threads, move |_off, task| {
                    execute_accounted_transfer_task(group, width, &task)
                });
                for outcome in &outcomes {
                    for (id, totals) in &outcome.traffic {
                        report.add_node_traffic(*id, totals);
                    }
                }
                DeployMsg::TransferResults(outcomes)
            }
            DeployMsg::Finish => {
                conn.send_msg(&DeployMsg::Report {
                    traffic: report.sorted_node_entries(),
                })
                .and_then(|_| conn.flush_blocking(SEND_TIMEOUT))
                .map_err(|e| format!("send report: {e}"))?;
                return Ok(());
            }
            other => return Err(format!("unexpected batch frame: {other:?}")),
        };
        conn.send_msg(&reply)
            .and_then(|_| conn.flush_blocking(SEND_TIMEOUT))
            .map_err(|e| format!("send results: {e}"))?;
    }
}
