//! The deployment master: drives the engine, places windows on workers.
//!
//! The master owns the run end to end.  It binds one TCP listener and
//! dispatches every accepted connection by its first byte: a
//! [`FRAME_MAGIC`] byte means a worker speaking the framed
//! [`DeployMsg`] protocol; anything else is
//! served as a hand-rolled HTTP/1.0 status endpoint (`GET /healthz`),
//! so the same port answers both workers and probes.
//!
//! Once the configured fleet has registered, the master replicates the
//! engine's block assignment (`generate_block_assignment` under the
//! run seed — the engine's first use of its RNG, so the replica is
//! exact), sends each worker its [`JobSpec`],
//! and runs [`DStressRuntime::execute_with`] over a [`RemoteExecutor`]
//! that routes each window's tasks to workers by `vertex % fleet`
//! (transfers by receiver) and stitches outcomes back in task order.
//! Placement cannot change results: the loopback integration test pins
//! the deployed run's released value bit-for-bit against the
//! in-process one.

use std::io::{Read as IoRead, Write as IoWrite};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dstress_core::engine::RuntimeError;
use dstress_core::store::latest_checkpoint_round;
use dstress_core::{
    BlockStepOutcome, BlockStepTask, CheckpointConfig, CounterProgram, DStressConfig, DStressRun,
    DStressRuntime, StepContext, StepExecutor, TransferMode, TransferOutcome, TransferTask,
    TransportKind,
};
use dstress_finance::generator::{core_periphery, GeneratorConfig};
use dstress_graph::Graph;
use dstress_math::rng::Xoshiro256;
use dstress_net::frame::FRAME_MAGIC;
use dstress_net::socket::FramedConn;
use dstress_net::traffic::{NodeId, TrafficAccountant};
use dstress_net::wire::Wire;
use dstress_transfer::setup::generate_block_assignment;

use crate::proto::{DeployMsg, JobSpec, PROTOCOL_VERSION};

/// How long the master waits for the fleet to register.
const REGISTRATION_TIMEOUT: Duration = Duration::from_secs(60);
/// How long the master waits for a worker's batch results (a batch can
/// hold a whole window of block MPCs, so this is generous).
const RESULT_TIMEOUT: Duration = Duration::from_secs(600);
/// How long a single frame send may take to drain.
const SEND_TIMEOUT: Duration = Duration::from_secs(30);

/// Configuration of one master-driven deployment run.
#[derive(Clone, Debug)]
pub struct MasterConfig {
    /// Number of workers that must register before the run starts.
    pub fleet: usize,
    /// Banks (vertices) in the generated core–periphery network.
    pub banks: usize,
    /// Public degree bound of the generated network.
    pub degree_bound: usize,
    /// Counter program word width.
    pub width: u32,
    /// Counter program iteration count.
    pub rounds: u32,
    /// Collusion bound `k`.
    pub collusion_bound: usize,
    /// Engine seed (setup, sharing, noise).
    pub seed: u64,
    /// Seed of the graph generator.
    pub graph_seed: u64,
    /// Transport backend the *workers'* block MPCs run on.  `Socket`
    /// makes every remote block MPC exchange its GMW messages over real
    /// loopback TCP; results are bit-identical either way.
    pub worker_transport: TransportKind,
    /// Directory for round-boundary checkpoints.  When set, the master
    /// checkpoints after every round, and — if the directory already
    /// holds a checkpoint for this run — resumes from it instead of
    /// starting over.
    pub checkpoint_dir: Option<PathBuf>,
    /// Crash injection: stop right after this round's checkpoint is on
    /// disk.  The engine surfaces this as [`RuntimeError::Halted`].
    pub halt_after_round: Option<u64>,
}

impl MasterConfig {
    /// A small deployment sized for the loopback integration test.
    pub fn loopback(fleet: usize) -> Self {
        MasterConfig {
            fleet,
            banks: 10,
            degree_bound: 3,
            width: 8,
            rounds: 1,
            collusion_bound: 2,
            seed: 0xD57E55,
            graph_seed: 5,
            worker_transport: TransportKind::Socket,
            checkpoint_dir: None,
            halt_after_round: None,
        }
    }

    /// The engine configuration this deployment runs (and that an
    /// in-process verification run must use to reproduce it).
    pub fn engine_config(&self) -> DStressConfig {
        let mut config = DStressConfig::benchmark(self.collusion_bound);
        config.message_bits = self.width;
        config.seed = self.seed;
        if let Some(dir) = &self.checkpoint_dir {
            config = config.with_checkpoint(CheckpointConfig::every_round(dir.clone()));
        }
        config.halt_after_round = self.halt_after_round;
        config
    }

    /// Generates the run's graph (deterministic in `graph_seed`).
    pub fn build_graph(&self) -> Graph {
        let mut rng = Xoshiro256::new(self.graph_seed);
        let network = core_periphery(
            &GeneratorConfig::small(self.banks, self.degree_bound),
            &mut rng,
        );
        network.graph().clone()
    }
}

/// What the status endpoint reports.
#[derive(Clone, Debug)]
struct MasterStatus {
    phase: &'static str,
    registered: usize,
    fleet: usize,
}

/// Shared handle the accept thread and the run driver both update.
#[derive(Clone)]
pub struct StatusHandle {
    inner: Arc<Mutex<MasterStatus>>,
}

impl StatusHandle {
    fn new(fleet: usize) -> Self {
        StatusHandle {
            inner: Arc::new(Mutex::new(MasterStatus {
                phase: "waiting_for_workers",
                registered: 0,
                fleet,
            })),
        }
    }

    fn set_phase(&self, phase: &'static str) {
        self.inner.lock().unwrap().phase = phase;
    }

    fn set_registered(&self, registered: usize) {
        self.inner.lock().unwrap().registered = registered;
    }

    fn body(&self) -> String {
        let status = self.inner.lock().unwrap();
        format!(
            "{{\"status\":\"{}\",\"workers_registered\":{},\"fleet\":{}}}\n",
            status.phase, status.registered, status.fleet
        )
    }
}

/// Serves one non-worker connection as HTTP/1.0: `GET /healthz` returns
/// the JSON status, anything else 404.  Exposed for unit tests.
pub(crate) fn serve_http(stream: &mut TcpStream, status: &StatusHandle) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut request = [0u8; 512];
    let n = stream.read(&mut request).unwrap_or(0);
    let line = String::from_utf8_lossy(&request[..n]);
    let first = line.lines().next().unwrap_or("");
    let response = if first.starts_with("GET /healthz") {
        let body = status.body();
        format!(
            "HTTP/1.0 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
    } else {
        "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n".to_string()
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// The accept loop: peeks one byte per connection and routes framed
/// worker connections to the registration channel, everything else to
/// the HTTP handler.  Runs until `running` clears.
fn accept_loop(
    listener: TcpListener,
    workers: std::sync::mpsc::Sender<TcpStream>,
    status: StatusHandle,
    running: Arc<AtomicBool>,
) {
    listener
        .set_nonblocking(true)
        .expect("listener supports nonblocking accept");
    while running.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                let mut first = [0u8; 1];
                match stream.peek(&mut first) {
                    Ok(1) if first[0] == FRAME_MAGIC => {
                        // A worker; the receiver side may be gone after
                        // registration closed, in which case the
                        // connection is simply dropped.
                        let _ = workers.send(stream);
                    }
                    Ok(_) => serve_http(&mut stream, &status),
                    Err(_) => drop(stream),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn deploy_err(context: impl std::fmt::Display) -> RuntimeError {
    RuntimeError::Deploy(context.to_string())
}

/// The registered fleet: framed connections in worker-index order.
pub struct Fleet {
    conns: Mutex<Vec<FramedConn>>,
}

impl Fleet {
    /// Fleet size.
    pub fn len(&self) -> usize {
        self.conns.lock().unwrap().len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Waits for `fleet` workers to register on `incoming`.
    fn register(incoming: &Receiver<TcpStream>, fleet: usize) -> Result<Fleet, RuntimeError> {
        let mut conns = Vec::with_capacity(fleet);
        while conns.len() < fleet {
            let stream = match incoming.recv_timeout(REGISTRATION_TIMEOUT) {
                Ok(stream) => stream,
                Err(RecvTimeoutError::Timeout) => {
                    return Err(deploy_err(format!(
                        "registration timed out with {}/{fleet} workers",
                        conns.len()
                    )))
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(deploy_err("accept loop terminated during registration"))
                }
            };
            let mut conn = FramedConn::with_peer(stream, conns.len()).map_err(deploy_err)?;
            match conn.recv_msg::<DeployMsg>(SEND_TIMEOUT) {
                Ok(DeployMsg::Register { version }) if version == PROTOCOL_VERSION => {
                    conns.push(conn);
                }
                Ok(DeployMsg::Register { version }) => {
                    return Err(deploy_err(format!(
                        "worker speaks protocol version {version}, master speaks {PROTOCOL_VERSION}"
                    )));
                }
                Ok(other) => {
                    return Err(deploy_err(format!(
                        "expected Register as the first frame, got {other:?}"
                    )));
                }
                // A connection that never completes registration is
                // dropped without poisoning the fleet; the next accepted
                // worker takes its slot.
                Err(_) => drop(conn),
            }
        }
        Ok(Fleet {
            conns: Mutex::new(conns),
        })
    }

    /// Sends `message` to worker `w` and drains the frame.
    fn send(conns: &mut [FramedConn], w: usize, message: &DeployMsg) -> Result<(), RuntimeError> {
        conns[w]
            .send_msg(message)
            .and_then(|_| conns[w].flush_blocking(SEND_TIMEOUT))
            .map_err(|e| deploy_err(format!("send to worker {w}: {e}")))
    }

    /// Receives one frame from worker `w`.
    fn recv(
        conns: &mut [FramedConn],
        w: usize,
        timeout: Duration,
    ) -> Result<DeployMsg, RuntimeError> {
        conns[w]
            .recv_msg::<DeployMsg>(timeout)
            .map_err(|e| deploy_err(format!("receive from worker {w}: {e}")))
    }

    /// Sends each worker its job description.
    fn send_jobs(&self, jobs: &[JobSpec]) -> Result<(), RuntimeError> {
        let mut conns = self.conns.lock().unwrap();
        for (w, job) in jobs.iter().enumerate() {
            Fleet::send(&mut conns, w, &DeployMsg::Job(job.clone()))?;
        }
        Ok(())
    }

    /// Ships one window's tasks to the fleet and stitches the outcomes
    /// back in task order.  `route` picks the hosting worker; every
    /// worker with a non-empty batch is sent its tasks first, then
    /// results are collected — so the fleet computes concurrently.
    fn round_trip<T: Wire + Clone, O>(
        &self,
        tasks: Vec<T>,
        route: impl Fn(&T) -> usize,
        wrap: impl Fn(Vec<T>) -> DeployMsg,
        unwrap: impl Fn(DeployMsg) -> Result<Vec<O>, RuntimeError>,
    ) -> Result<Vec<O>, RuntimeError> {
        let mut conns = self.conns.lock().unwrap();
        let fleet = conns.len();
        let mut batches: Vec<Vec<T>> = vec![Vec::new(); fleet];
        let mut order = Vec::with_capacity(tasks.len());
        for task in tasks {
            let w = route(&task) % fleet.max(1);
            order.push(w);
            batches[w].push(task);
        }
        let sizes: Vec<usize> = batches.iter().map(Vec::len).collect();
        for (w, batch) in batches.into_iter().enumerate() {
            if !batch.is_empty() {
                Fleet::send(&mut conns, w, &wrap(batch))?;
            }
        }
        let mut results: Vec<std::vec::IntoIter<O>> = Vec::with_capacity(fleet);
        for (w, &size) in sizes.iter().enumerate() {
            if size == 0 {
                results.push(Vec::new().into_iter());
                continue;
            }
            let outcomes = unwrap(Fleet::recv(&mut conns, w, RESULT_TIMEOUT)?)?;
            if outcomes.len() != size {
                return Err(deploy_err(format!(
                    "worker {w} returned {} outcomes for {size} tasks",
                    outcomes.len()
                )));
            }
            results.push(outcomes.into_iter());
        }
        order
            .into_iter()
            .map(|w| {
                results[w]
                    .next()
                    .ok_or_else(|| deploy_err(format!("worker {w} batch underflow")))
            })
            .collect()
    }

    /// Tells every worker the run is over and collects their traffic
    /// reports, merged into one accountant.
    fn finish(&self) -> Result<TrafficAccountant, RuntimeError> {
        let mut conns = self.conns.lock().unwrap();
        let fleet = conns.len();
        let mut merged = TrafficAccountant::new();
        for w in 0..fleet {
            Fleet::send(&mut conns, w, &DeployMsg::Finish)?;
        }
        for w in 0..fleet {
            match Fleet::recv(&mut conns, w, SEND_TIMEOUT)? {
                DeployMsg::Report { traffic } => {
                    for (id, totals) in &traffic {
                        merged.add_node_traffic(*id, totals);
                    }
                }
                other => {
                    return Err(deploy_err(format!(
                        "expected Report from worker {w}, got {other:?}"
                    )))
                }
            }
        }
        Ok(merged)
    }
}

/// A [`StepExecutor`] that places every window on the registered fleet.
pub struct RemoteExecutor<'f> {
    fleet: &'f Fleet,
}

impl StepExecutor for RemoteExecutor<'_> {
    fn run_block_steps(
        &self,
        _ctx: &StepContext<'_>,
        tasks: Vec<BlockStepTask>,
    ) -> Result<Vec<BlockStepOutcome>, RuntimeError> {
        self.fleet.round_trip(
            tasks,
            |task| task.vertex as usize,
            DeployMsg::BlockSteps,
            |message| match message {
                DeployMsg::BlockStepResults(outcomes) => Ok(outcomes),
                other => Err(deploy_err(format!(
                    "expected BlockStepResults, got {other:?}"
                ))),
            },
        )
    }

    fn run_transfers(
        &self,
        ctx: &StepContext<'_>,
        tasks: Vec<TransferTask>,
    ) -> Result<Vec<TransferOutcome>, RuntimeError> {
        if ctx.config.transfer_mode == TransferMode::RealCrypto {
            // Certificates and per-node secrets never leave the master,
            // so real-crypto transfers cannot be placed remotely.
            return Err(deploy_err(
                "real-crypto transfers are local-only; deploy with TransferMode::Accounted",
            ));
        }
        self.fleet.round_trip(
            tasks,
            |task| task.to as usize,
            DeployMsg::Transfers,
            |message| match message {
                DeployMsg::TransferResults(outcomes) => Ok(outcomes),
                other => Err(deploy_err(format!(
                    "expected TransferResults, got {other:?}"
                ))),
            },
        )
    }
}

/// The aggregated record of one deployed run.
pub struct MasterReport {
    /// The engine's run record (noised output, phases, merged traffic).
    pub run: DStressRun,
    /// Per-node traffic totals as reported back by the workers — the
    /// remote share of `run.traffic`.
    pub worker_traffic: TrafficAccountant,
}

/// Builds each worker's [`JobSpec`] by replicating the engine's block
/// assignment: `generate_block_assignment` under the run seed is the
/// engine's first RNG draw, so the replica matches the run exactly.
pub fn build_jobs(config: &MasterConfig, graph: &Graph) -> Result<Vec<JobSpec>, RuntimeError> {
    let mut rng = Xoshiro256::new(config.seed);
    let setup = generate_block_assignment(
        graph.vertex_count(),
        config.collusion_bound,
        graph.degree_bound(),
        config.width,
        &mut rng,
    )?;
    let engine = config.engine_config();
    Ok((0..config.fleet)
        .map(|w| JobSpec {
            worker: w as u32,
            fleet: config.fleet as u32,
            width: config.width,
            rounds: config.rounds,
            degree_bound: graph.degree_bound() as u32,
            batching: engine.gmw_batching,
            transport: config.worker_transport,
            group: engine.group,
            blocks: (0..graph.vertex_count())
                .filter(|v| v % config.fleet == w)
                .map(|v| (v as u64, setup.block_of(NodeId(v)).members.clone()))
                .collect(),
        })
        .collect())
}

/// Runs one deployment end to end on an already-bound listener: accept
/// workers, register the fleet, drive the engine through a
/// [`RemoteExecutor`], then collect worker reports.
///
/// # Errors
///
/// Returns a [`RuntimeError`] if registration times out, a worker
/// connection fails mid-run, or the engine itself errors.
pub fn run_master(
    config: &MasterConfig,
    listener: TcpListener,
) -> Result<MasterReport, RuntimeError> {
    let status = StatusHandle::new(config.fleet);
    let running = Arc::new(AtomicBool::new(true));
    let (sender, receiver) = channel();
    let accept_handle = {
        let status = status.clone();
        let running = Arc::clone(&running);
        std::thread::spawn(move || accept_loop(listener, sender, status, running))
    };

    let result = run_master_inner(config, &receiver, &status);

    running.store(false, Ordering::Relaxed);
    drop(receiver);
    let _ = accept_handle.join();
    result
}

fn run_master_inner(
    config: &MasterConfig,
    incoming: &Receiver<TcpStream>,
    status: &StatusHandle,
) -> Result<MasterReport, RuntimeError> {
    let graph = config.build_graph();
    let fleet = Fleet::register(incoming, config.fleet)?;
    status.set_registered(fleet.len());
    status.set_phase("running");

    fleet.send_jobs(&build_jobs(config, &graph)?)?;

    let runtime = DStressRuntime::new(config.engine_config());
    let program = CounterProgram {
        width: config.width,
        rounds: config.rounds,
    };
    let executor = RemoteExecutor { fleet: &fleet };
    // Resume when the checkpoint directory already holds a round; the
    // engine validates the manifest's run fingerprint, so a foreign
    // checkpoint is a typed error rather than a wrong answer.
    let resume = match &config.checkpoint_dir {
        Some(dir) => latest_checkpoint_round(dir)?.is_some(),
        None => false,
    };
    let run = if resume {
        runtime.resume_with(&graph, &program, &executor)?
    } else {
        runtime.execute_with(&graph, &program, &executor)?
    };

    let worker_traffic = fleet.finish()?;
    status.set_phase("done");
    Ok(MasterReport {
        run,
        worker_traffic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthz_serves_status_and_404() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let status = StatusHandle::new(3);
        status.set_registered(2);
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (mut stream, _) = listener.accept().unwrap();
                serve_http(&mut stream, &status);
            }
        });

        let mut probe = TcpStream::connect(addr).unwrap();
        probe.write_all(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        probe.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
        assert!(response.contains("\"status\":\"waiting_for_workers\""));
        assert!(response.contains("\"workers_registered\":2"));
        assert!(response.contains("\"fleet\":3"));

        let mut probe = TcpStream::connect(addr).unwrap();
        probe.write_all(b"GET /other HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        probe.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 404"), "{response}");
        server.join().unwrap();
    }

    #[test]
    fn engine_config_threads_checkpoint_knobs() {
        let mut config = MasterConfig::loopback(2);
        assert!(config.engine_config().checkpoint.is_none());
        assert!(config.engine_config().halt_after_round.is_none());

        config.checkpoint_dir = Some(PathBuf::from("/tmp/ckpt"));
        config.halt_after_round = Some(0);
        let engine = config.engine_config();
        let checkpoint = engine.checkpoint.expect("checkpoint config is threaded");
        assert_eq!(checkpoint.dir, PathBuf::from("/tmp/ckpt"));
        assert_eq!(checkpoint.cadence(), 1);
        assert_eq!(engine.halt_after_round, Some(0));
    }

    #[test]
    fn jobs_partition_every_vertex_exactly_once() {
        let config = MasterConfig::loopback(3);
        let graph = config.build_graph();
        let jobs = build_jobs(&config, &graph).unwrap();
        assert_eq!(jobs.len(), 3);
        let mut seen = vec![0usize; graph.vertex_count()];
        for job in &jobs {
            assert_eq!(job.fleet, 3);
            assert_eq!(job.degree_bound, graph.degree_bound() as u32);
            for (vertex, members) in &job.blocks {
                assert_eq!(*vertex as usize % 3, job.worker as usize);
                assert_eq!(members.len(), config.collusion_bound + 1);
                assert_eq!(
                    members[0],
                    NodeId(*vertex as usize),
                    "owner leads the block"
                );
                seen[*vertex as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&count| count == 1));
    }

    #[test]
    fn registration_rejects_peer_that_never_registers() {
        // A peer that sends the frame magic but hangs up before a full
        // Register frame is dropped (torn frame); with no replacement
        // arriving the channel disconnect surfaces as a typed error, not
        // a hang.
        let (sender, receiver) = channel();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || listener.accept().unwrap().0);
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&[FRAME_MAGIC]).unwrap();
        drop(stream);
        let accepted = server.join().unwrap();
        sender.send(accepted).unwrap();
        drop(sender);
        let Err(err) = Fleet::register(&receiver, 1) else {
            panic!("registration accepted a torn peer");
        };
        assert!(matches!(err, RuntimeError::Deploy(_)), "{err}");
    }
}
