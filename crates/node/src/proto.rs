//! The master↔worker deployment protocol.
//!
//! Every message travels as one length-prefixed frame
//! ([`dstress_net::frame`]) whose payload is a [`DeployMsg`] in the
//! workspace [`Wire`] format.  The conversation is strictly
//! master-driven after registration:
//!
//! ```text
//! worker → master   Register { version }
//! master → worker   Job(JobSpec)                 run-wide parameters + blocks
//! master → worker   BlockSteps(tasks)        ┐
//! worker → master   BlockStepResults(..)     │ repeated per window,
//! master → worker   Transfers(tasks)         │ in engine schedule order
//! worker → master   TransferResults(..)      ┘
//! master → worker   Finish
//! worker → master   Report { traffic }           per-node totals, then close
//! ```
//!
//! The task and outcome payloads are exactly the engine's serializable
//! executor types ([`dstress_core::exec`]); the protocol adds only
//! envelope tags and the registration/job/report bookkeeping.  Workers
//! are deterministic functions of `Job` plus the task stream, so a
//! remote fleet is bit-identical to the in-process pool.

use dstress_core::{BlockStepOutcome, BlockStepTask, TransferOutcome, TransferTask, TransportKind};
use dstress_crypto::group::GroupKind;
use dstress_mpc::GmwBatching;
use dstress_net::traffic::{NodeId, NodeTraffic};
use dstress_net::wire::{self, Wire, WireError};

/// Protocol version sent in `Register`; the master rejects mismatches.
pub const PROTOCOL_VERSION: u64 = 1;

/// Run-wide parameters a worker needs to execute tasks bit-identically
/// to the master's in-process pool, plus the block assignment it hosts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// This worker's index in the fleet (assigned in registration order).
    pub worker: u32,
    /// Fleet size; vertex `v` is hosted by worker `v % fleet`.
    pub fleet: u32,
    /// Counter program word width (state and message bits).
    pub width: u32,
    /// Counter program iteration count.
    pub rounds: u32,
    /// Public degree bound `D` of the run's graph.
    pub degree_bound: u32,
    /// GMW AND-gate batching mode of every block MPC.
    pub batching: GmwBatching,
    /// Transport backend the worker's block MPCs run on.
    pub transport: TransportKind,
    /// ElGamal group of the run (sizes the accounted transfer costs).
    pub group: GroupKind,
    /// The blocks this worker hosts: `(vertex, members)` pairs from the
    /// master's replicated `generate_block_assignment`, owner first.
    pub blocks: Vec<(u64, Vec<NodeId>)>,
}

fn put_node_ids(out: &mut Vec<u8>, ids: &[NodeId]) {
    wire::put_uvarint(out, ids.len() as u64);
    for id in ids {
        id.encode_into(out);
    }
}

fn get_node_ids(buf: &mut &[u8]) -> Result<Vec<NodeId>, WireError> {
    let count = wire::get_uvarint(buf)? as usize;
    let mut ids = Vec::new();
    for _ in 0..count {
        ids.push(NodeId::decode(buf)?);
    }
    Ok(ids)
}

impl Wire for JobSpec {
    fn encode_into(&self, out: &mut Vec<u8>) {
        wire::put_uvarint(out, self.worker as u64);
        wire::put_uvarint(out, self.fleet as u64);
        wire::put_uvarint(out, self.width as u64);
        wire::put_uvarint(out, self.rounds as u64);
        wire::put_uvarint(out, self.degree_bound as u64);
        wire::put_u8(
            out,
            match self.batching {
                GmwBatching::PerGate => 0,
                GmwBatching::Layered => 1,
            },
        );
        wire::put_u8(
            out,
            match self.transport {
                TransportKind::Sim => 0,
                TransportKind::Socket => 1,
            },
        );
        wire::put_u8(
            out,
            match self.group {
                GroupKind::Sim64 => 0,
                GroupKind::Prod256 => 1,
            },
        );
        wire::put_uvarint(out, self.blocks.len() as u64);
        for (vertex, members) in &self.blocks {
            wire::put_uvarint(out, *vertex);
            put_node_ids(out, members);
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let worker = wire::get_uvarint(buf)? as u32;
        let fleet = wire::get_uvarint(buf)? as u32;
        let width = wire::get_uvarint(buf)? as u32;
        let rounds = wire::get_uvarint(buf)? as u32;
        let degree_bound = wire::get_uvarint(buf)? as u32;
        let batching = match wire::get_u8(buf)? {
            0 => GmwBatching::PerGate,
            1 => GmwBatching::Layered,
            tag => {
                return Err(WireError::BadTag {
                    tag,
                    what: "JobSpec batching",
                })
            }
        };
        let transport = match wire::get_u8(buf)? {
            0 => TransportKind::Sim,
            1 => TransportKind::Socket,
            tag => {
                return Err(WireError::BadTag {
                    tag,
                    what: "JobSpec transport",
                })
            }
        };
        let group = match wire::get_u8(buf)? {
            0 => GroupKind::Sim64,
            1 => GroupKind::Prod256,
            tag => {
                return Err(WireError::BadTag {
                    tag,
                    what: "JobSpec group",
                })
            }
        };
        let block_count = wire::get_uvarint(buf)? as usize;
        let mut blocks = Vec::new();
        for _ in 0..block_count {
            let vertex = wire::get_uvarint(buf)?;
            let members = get_node_ids(buf)?;
            blocks.push((vertex, members));
        }
        Ok(JobSpec {
            worker,
            fleet,
            width,
            rounds,
            degree_bound,
            batching,
            transport,
            group,
            blocks,
        })
    }
}

/// One frame of the master↔worker conversation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeployMsg {
    /// Worker → master, first frame on the connection.
    Register {
        /// The worker's [`PROTOCOL_VERSION`].
        version: u64,
    },
    /// Master → worker: run-wide parameters and the block assignment.
    Job(JobSpec),
    /// Master → worker: one window's computation-step tasks.
    BlockSteps(Vec<BlockStepTask>),
    /// Worker → master: outcomes, in task order.
    BlockStepResults(Vec<BlockStepOutcome>),
    /// Master → worker: one window's transfer tasks.
    Transfers(Vec<TransferTask>),
    /// Worker → master: outcomes, in task order.
    TransferResults(Vec<TransferOutcome>),
    /// Master → worker: the run is complete; report and close.
    Finish,
    /// Worker → master: per-node traffic totals the worker accounted.
    Report {
        /// `(node, totals)` entries, ascending node order.
        traffic: Vec<(NodeId, NodeTraffic)>,
    },
}

const TAG_REGISTER: u8 = 0x01;
const TAG_JOB: u8 = 0x02;
const TAG_BLOCK_STEPS: u8 = 0x03;
const TAG_BLOCK_STEP_RESULTS: u8 = 0x04;
const TAG_TRANSFERS: u8 = 0x05;
const TAG_TRANSFER_RESULTS: u8 = 0x06;
const TAG_FINISH: u8 = 0x07;
const TAG_REPORT: u8 = 0x08;

fn put_list<T: Wire>(out: &mut Vec<u8>, items: &[T]) {
    wire::put_uvarint(out, items.len() as u64);
    for item in items {
        item.encode_into(out);
    }
}

fn get_list<T: Wire>(buf: &mut &[u8]) -> Result<Vec<T>, WireError> {
    let count = wire::get_uvarint(buf)? as usize;
    let mut items = Vec::new();
    for _ in 0..count {
        items.push(T::decode(buf)?);
    }
    Ok(items)
}

impl Wire for DeployMsg {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            DeployMsg::Register { version } => {
                wire::put_u8(out, TAG_REGISTER);
                wire::put_uvarint(out, *version);
            }
            DeployMsg::Job(spec) => {
                wire::put_u8(out, TAG_JOB);
                spec.encode_into(out);
            }
            DeployMsg::BlockSteps(tasks) => {
                wire::put_u8(out, TAG_BLOCK_STEPS);
                put_list(out, tasks);
            }
            DeployMsg::BlockStepResults(outcomes) => {
                wire::put_u8(out, TAG_BLOCK_STEP_RESULTS);
                put_list(out, outcomes);
            }
            DeployMsg::Transfers(tasks) => {
                wire::put_u8(out, TAG_TRANSFERS);
                put_list(out, tasks);
            }
            DeployMsg::TransferResults(outcomes) => {
                wire::put_u8(out, TAG_TRANSFER_RESULTS);
                put_list(out, outcomes);
            }
            DeployMsg::Finish => wire::put_u8(out, TAG_FINISH),
            DeployMsg::Report { traffic } => {
                wire::put_u8(out, TAG_REPORT);
                wire::put_uvarint(out, traffic.len() as u64);
                for (id, totals) in traffic {
                    id.encode_into(out);
                    totals.encode_into(out);
                }
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match wire::get_u8(buf)? {
            TAG_REGISTER => Ok(DeployMsg::Register {
                version: wire::get_uvarint(buf)?,
            }),
            TAG_JOB => Ok(DeployMsg::Job(JobSpec::decode(buf)?)),
            TAG_BLOCK_STEPS => Ok(DeployMsg::BlockSteps(get_list(buf)?)),
            TAG_BLOCK_STEP_RESULTS => Ok(DeployMsg::BlockStepResults(get_list(buf)?)),
            TAG_TRANSFERS => Ok(DeployMsg::Transfers(get_list(buf)?)),
            TAG_TRANSFER_RESULTS => Ok(DeployMsg::TransferResults(get_list(buf)?)),
            TAG_FINISH => Ok(DeployMsg::Finish),
            TAG_REPORT => {
                let count = wire::get_uvarint(buf)? as usize;
                let mut traffic = Vec::new();
                for _ in 0..count {
                    let id = NodeId::decode(buf)?;
                    let totals = NodeTraffic::decode(buf)?;
                    traffic.push((id, totals));
                }
                Ok(DeployMsg::Report { traffic })
            }
            tag => Err(WireError::BadTag {
                tag,
                what: "DeployMsg",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_net::wire::hex;
    use proptest::prelude::*;

    fn sample_job() -> JobSpec {
        JobSpec {
            worker: 1,
            fleet: 3,
            width: 8,
            rounds: 2,
            degree_bound: 4,
            batching: GmwBatching::Layered,
            transport: TransportKind::Socket,
            group: GroupKind::Sim64,
            blocks: vec![
                (0, vec![NodeId(0), NodeId(5)]),
                (3, vec![NodeId(3), NodeId(1)]),
            ],
        }
    }

    #[test]
    fn golden_encodings() {
        assert_eq!(hex(&DeployMsg::Register { version: 1 }.encode()), "0101");
        assert_eq!(hex(&DeployMsg::Finish.encode()), "07");
        // tag · worker 01 · fleet 03 · width 08 · rounds 02 · degree 04 ·
        // batching 01 · transport 01 · group 00 · 2 blocks of
        // (vertex · id list)
        assert_eq!(
            hex(&DeployMsg::Job(sample_job()).encode()),
            "020103080204010100020002000503020301"
        );
        // tag · 1 entry · NodeId(1) · the traffic.rs golden NodeTraffic
        let report = DeployMsg::Report {
            traffic: vec![(
                NodeId(1),
                NodeTraffic {
                    bytes_sent: 1,
                    bytes_received: 200,
                    messages_sent: 3,
                    messages_received: 4,
                    wire_bytes_sent: 70_000,
                    wire_bytes_received: 6,
                },
            )],
        };
        assert_eq!(
            hex(&report.encode()),
            "080101".to_string() + "01c8010304f0a20406"
        );
    }

    #[test]
    fn batch_frames_reuse_executor_encodings() {
        let task = BlockStepTask {
            vertex: 2,
            seed: 0x0102_0304_0506_0708,
            members: vec![NodeId(2), NodeId(5)],
            out_slots: 1,
            input_shares: vec![vec![true, false], vec![false, true]],
        };
        // tag · count 01 · the core wire.rs BlockStepTask golden
        assert_eq!(
            hex(&DeployMsg::BlockSteps(vec![task]).encode()),
            "0301020807060504030201020205010202010202"
        );
        let transfer = TransferTask {
            edge_index: 7,
            seed: 0x11,
            from: 0,
            to: 1,
            in_slot: 0,
            sender_members: vec![NodeId(0), NodeId(2)],
            receiver_members: vec![NodeId(1), NodeId(3)],
            shares: vec![vec![true], vec![true]],
        };
        assert_eq!(
            hex(&DeployMsg::Transfers(vec![transfer]).encode()),
            "05010711000000000000000001000200020201030201010101"
        );
    }

    #[test]
    fn all_variants_round_trip() {
        let messages = vec![
            DeployMsg::Register {
                version: PROTOCOL_VERSION,
            },
            DeployMsg::Job(sample_job()),
            DeployMsg::BlockSteps(vec![BlockStepTask {
                vertex: 9,
                seed: 42,
                members: vec![NodeId(9), NodeId(1), NodeId(4)],
                out_slots: 2,
                input_shares: vec![vec![true; 5]; 3],
            }]),
            DeployMsg::BlockStepResults(vec![BlockStepOutcome {
                new_state: vec![vec![false, true]],
                outgoing: vec![vec![vec![true]]],
                counts: Default::default(),
                traffic: vec![(NodeId(2), NodeTraffic::default())],
            }]),
            DeployMsg::Transfers(vec![]),
            DeployMsg::TransferResults(vec![TransferOutcome {
                to: 3,
                in_slot: 1,
                receiver_shares: vec![vec![true, false, true]],
                counts: Default::default(),
                traffic: vec![],
            }]),
            DeployMsg::Finish,
            DeployMsg::Report {
                traffic: vec![(NodeId(0), NodeTraffic::default())],
            },
        ];
        for message in messages {
            let encoded = message.encode();
            assert_eq!(DeployMsg::decode_exact(&encoded).unwrap(), message);
        }
    }

    #[test]
    fn rejects_truncation_trailing_and_bad_tags() {
        let encoded = DeployMsg::Job(sample_job()).encode();
        for cut in 0..encoded.len() {
            assert!(DeployMsg::decode_exact(&encoded[..cut]).is_err());
        }
        let mut trailing = encoded;
        trailing.push(0x00);
        assert!(DeployMsg::decode_exact(&trailing).is_err());
        // Unknown envelope tag.
        assert!(matches!(
            DeployMsg::decode_exact(&[0xAB]),
            Err(WireError::BadTag { tag: 0xAB, .. })
        ));
        // Unknown enum byte inside a JobSpec.
        let mut bad_group = DeployMsg::Job(sample_job()).encode();
        // tag(1) + 5 uvarints + batching + transport, then the group byte.
        bad_group[8] = 9;
        assert!(DeployMsg::decode_exact(&bad_group).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_register_and_report_round_trip(
            version in any::<u64>(),
            ids in proptest::collection::vec(any::<u64>(), 0..8),
        ) {
            let register = DeployMsg::Register { version };
            prop_assert_eq!(DeployMsg::decode_exact(&register.encode()).unwrap(), register);
            let traffic: Vec<(NodeId, NodeTraffic)> = ids
                .into_iter()
                .map(|id| (
                    NodeId((id % 251) as usize),
                    NodeTraffic {
                        bytes_sent: id,
                        wire_bytes_sent: id.rotate_left(17),
                        ..Default::default()
                    },
                ))
                .collect();
            let report = DeployMsg::Report { traffic };
            prop_assert_eq!(DeployMsg::decode_exact(&report.encode()).unwrap(), report);
        }

        #[test]
        fn prop_job_spec_round_trips(
            worker in 0u32..64,
            fleet in 1u32..64,
            width in 1u32..32,
            rounds in 0u32..8,
            degree in 0u32..16,
            vertices in proptest::collection::vec(any::<u32>(), 0..6),
        ) {
            // Derive each block's members from its vertex so block shapes
            // vary without needing tuple strategies.
            let blocks: Vec<(u64, Vec<usize>)> = vertices
                .into_iter()
                .map(|v| (v as u64, (0..(v % 5) as usize).map(|i| v as usize + i).collect()))
                .collect();
            let spec = JobSpec {
                worker,
                fleet,
                width,
                rounds,
                degree_bound: degree,
                batching: if worker % 2 == 0 { GmwBatching::Layered } else { GmwBatching::PerGate },
                transport: if fleet % 2 == 0 { TransportKind::Sim } else { TransportKind::Socket },
                group: if width % 2 == 0 { GroupKind::Sim64 } else { GroupKind::Prod256 },
                blocks: blocks
                    .into_iter()
                    .map(|(v, members)| (v, members.into_iter().map(NodeId).collect()))
                    .collect(),
            };
            prop_assert_eq!(JobSpec::decode_exact(&spec.encode()).unwrap(), spec);
        }
    }
}
