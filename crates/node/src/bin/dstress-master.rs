//! `dstress-master`: bind a listener, wait for the fleet, run the job.
//!
//! Prints machine-readable lines on stdout:
//!
//! ```text
//! LISTEN 127.0.0.1:41234          actual bound address (port 0 resolves)
//! RESULT <noised-hex> <ideal-hex> f64::to_bits of the released values
//! WORKER_WIRE_BYTES <n>           wire bytes the fleet reported sending
//! DONE
//! ```
//!
//! The `RESULT` line is the loopback integration test's pin: it must
//! equal the in-process run's values bit for bit.
//!
//! With `--checkpoint-dir` the master checkpoints every round and
//! resumes from the directory's latest checkpoint when one exists.
//! `--halt-after-round N` injects a crash right after round `N`'s
//! checkpoint: the process prints `HALTED N` and exits 0 (the
//! checkpoint on disk is complete, so this is not a failure).

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

use dstress_core::engine::RuntimeError;
use dstress_core::TransportKind;
use dstress_deploy::master::{run_master, MasterConfig};

fn parse_args() -> Result<(MasterConfig, String), String> {
    let mut config = MasterConfig::loopback(3);
    let mut bind = "127.0.0.1:0".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--bind" => bind = value()?,
            "--workers" => {
                config.fleet = value()?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--banks" => config.banks = value()?.parse().map_err(|e| format!("--banks: {e}"))?,
            "--degree" => {
                config.degree_bound = value()?.parse().map_err(|e| format!("--degree: {e}"))?
            }
            "--width" => config.width = value()?.parse().map_err(|e| format!("--width: {e}"))?,
            "--rounds" => config.rounds = value()?.parse().map_err(|e| format!("--rounds: {e}"))?,
            "--k" => config.collusion_bound = value()?.parse().map_err(|e| format!("--k: {e}"))?,
            "--seed" => config.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--graph-seed" => {
                config.graph_seed = value()?.parse().map_err(|e| format!("--graph-seed: {e}"))?
            }
            "--checkpoint-dir" => config.checkpoint_dir = Some(PathBuf::from(value()?)),
            "--halt-after-round" => {
                config.halt_after_round = Some(
                    value()?
                        .parse()
                        .map_err(|e| format!("--halt-after-round: {e}"))?,
                )
            }
            "--gmw-transport" => {
                config.worker_transport = match value()?.as_str() {
                    "sim" => TransportKind::Sim,
                    "socket" => TransportKind::Socket,
                    other => return Err(format!("--gmw-transport: unknown backend {other:?}")),
                }
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok((config, bind))
}

fn main() -> ExitCode {
    let (config, bind) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("dstress-master: {e}");
            return ExitCode::FAILURE;
        }
    };
    let listener = match TcpListener::bind(&bind) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("dstress-master: bind {bind}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        Ok(addr) => println!("LISTEN {addr}"),
        Err(e) => {
            eprintln!("dstress-master: local_addr: {e}");
            return ExitCode::FAILURE;
        }
    }

    match run_master(&config, listener) {
        Ok(report) => {
            println!(
                "RESULT {:016x} {:016x}",
                report.run.noised_output.to_bits(),
                report.run.ideal_output.to_bits()
            );
            let fleet_wire: u64 = report
                .worker_traffic
                .sorted_node_entries()
                .iter()
                .map(|(_, totals)| totals.wire_bytes_sent)
                .sum();
            println!("WORKER_WIRE_BYTES {fleet_wire}");
            println!("DONE");
            ExitCode::SUCCESS
        }
        Err(RuntimeError::Halted { round }) => {
            // Injected crash: the checkpoint for `round` is on disk and
            // a restart with the same --checkpoint-dir resumes from it.
            println!("HALTED {round}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dstress-master: {e}");
            ExitCode::FAILURE
        }
    }
}
