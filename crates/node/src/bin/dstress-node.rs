//! `dstress-node`: one deployment worker process.
//!
//! Connects to the master given by `--master host:port`, registers,
//! executes task batches until the master sends `Finish`, reports its
//! per-node traffic totals, and exits 0.  Any connection, protocol, or
//! execution failure is printed to stderr with a non-zero exit.

use std::process::ExitCode;

use dstress_deploy::worker::run_worker;

fn main() -> ExitCode {
    let mut master = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--master" => master = args.next(),
            other => {
                eprintln!("dstress-node: unknown flag {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(master) = master else {
        eprintln!("dstress-node: usage: dstress-node --master host:port");
        return ExitCode::FAILURE;
    };
    match run_worker(&master) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dstress-node: {e}");
            ExitCode::FAILURE
        }
    }
}
