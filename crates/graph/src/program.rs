//! The vertex-program abstraction (§3.1 of the paper).
//!
//! A DStress program consists of: per-vertex initial state, an update
//! function invoked once per iteration with the messages received over the
//! in-edges, a message function producing exactly one message per
//! out-edge per iteration (the no-op message `⊥` when there is nothing to
//! say — required so communication patterns leak nothing), a fixed number
//! of iterations, an aggregation function over the final states and a
//! sensitivity bound for the Laplace mechanism.
//!
//! This trait is the *plaintext* form, used by the reference executor and
//! by tests.  The secure runtime in `dstress-core` additionally needs a
//! circuit encoding of the update and aggregation functions; the finance
//! crate provides both for its two systemic-risk models and tests that
//! they agree.

use crate::graph::{Graph, VertexId};

/// A vertex program in plaintext form.
pub trait VertexProgram {
    /// Per-vertex state.
    type State: Clone;
    /// Messages exchanged along edges.
    type Message: Clone + PartialEq;

    /// The initial state of vertex `v`.
    fn init(&self, v: VertexId) -> Self::State;

    /// The no-op message `⊥` sent when a vertex has nothing to say.
    fn no_op(&self) -> Self::Message;

    /// Computes the new state of `v` from its current state and the
    /// messages received from its in-neighbours this round.
    fn update(
        &self,
        v: VertexId,
        state: &Self::State,
        incoming: &[(VertexId, Self::Message)],
    ) -> Self::State;

    /// The message `v` sends to out-neighbour `to` given its (new) state.
    fn message(&self, v: VertexId, state: &Self::State, to: VertexId) -> Self::Message;

    /// Combines the final states into the scalar output (before noising).
    fn aggregate(&self, graph: &Graph, states: &[Self::State]) -> f64;

    /// Number of computation/communication iterations to run.
    fn iterations(&self) -> u32;

    /// The sensitivity bound `s` supplied by the programmer (§3.1, §4.4).
    fn sensitivity(&self) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy program: every vertex starts with value `id + 1`, repeatedly
    /// adds the values of its in-neighbours, and the aggregate is the sum.
    struct SumProgram {
        rounds: u32,
    }

    impl VertexProgram for SumProgram {
        type State = u64;
        type Message = u64;

        fn init(&self, v: VertexId) -> u64 {
            v.0 as u64 + 1
        }

        fn no_op(&self) -> u64 {
            0
        }

        fn update(&self, _v: VertexId, state: &u64, incoming: &[(VertexId, u64)]) -> u64 {
            state + incoming.iter().map(|(_, m)| m).sum::<u64>()
        }

        fn message(&self, _v: VertexId, state: &u64, _to: VertexId) -> u64 {
            *state
        }

        fn aggregate(&self, _graph: &Graph, states: &[u64]) -> f64 {
            states.iter().sum::<u64>() as f64
        }

        fn iterations(&self) -> u32 {
            self.rounds
        }

        fn sensitivity(&self) -> f64 {
            1.0
        }
    }

    #[test]
    fn trait_is_usable_as_object_free_generic() {
        let p = SumProgram { rounds: 2 };
        assert_eq!(p.init(VertexId(3)), 4);
        assert_eq!(p.no_op(), 0);
        assert_eq!(p.iterations(), 2);
        assert_eq!(p.sensitivity(), 1.0);
        let updated = p.update(VertexId(0), &5, &[(VertexId(1), 3), (VertexId(2), 4)]);
        assert_eq!(updated, 12);
        assert_eq!(p.message(VertexId(0), &7, VertexId(1)), 7);
        let g = Graph::new(2, 4);
        assert_eq!(p.aggregate(&g, &[1, 2, 3]), 6.0);
    }
}
