//! Plaintext reference executor for vertex programs.
//!
//! This is the "ideal functionality" of a DStress run: it executes the
//! vertex program exactly as §3.1 describes — `n` computation steps
//! interleaved with communication steps, a final computation step, then
//! aggregation — but on plaintext data with no blocks, MPC or encryption.
//! The secure runtime in `dstress-core` is required (and tested) to agree
//! with this executor up to the DP noise it adds.

use crate::graph::{Graph, VertexId};
use crate::program::VertexProgram;

/// The trace of a reference execution.
#[derive(Clone, Debug)]
pub struct ReferenceTrace<S> {
    /// Final per-vertex states after the last computation step.
    pub final_states: Vec<S>,
    /// The aggregate value before noising.
    pub aggregate: f64,
    /// Number of computation steps executed (iterations + final step).
    pub computation_steps: u32,
    /// Total number of (non-no-op and no-op) messages exchanged.
    pub messages_sent: u64,
}

/// Executes a vertex program in plaintext and returns its trace.
///
/// The execution follows §3.1 precisely: every vertex performs an update in
/// every computation step; between computation steps every vertex sends
/// exactly one message along each out-edge (the program decides whether it
/// is a real message or `⊥`); after `iterations()` computation and
/// communication steps a final computation step runs and the aggregation
/// function combines the final states.
pub fn execute_reference<P: VertexProgram>(graph: &Graph, program: &P) -> ReferenceTrace<P::State> {
    let n = graph.vertex_count();
    let mut states: Vec<P::State> = graph.vertices().map(|v| program.init(v)).collect();
    // Pending messages for the next computation step, indexed by recipient.
    let mut inboxes: Vec<Vec<(VertexId, P::Message)>> = vec![Vec::new(); n];
    let mut messages_sent = 0u64;

    let iterations = program.iterations();
    for _round in 0..iterations {
        // Computation step: update every vertex with its inbox.
        let mut new_states = Vec::with_capacity(n);
        for v in graph.vertices() {
            let incoming = std::mem::take(&mut inboxes[v.0]);
            new_states.push(program.update(v, &states[v.0], &incoming));
        }
        states = new_states;

        // Communication step: one message per out-edge.
        for v in graph.vertices() {
            for &to in graph.out_neighbors(v) {
                let msg = program.message(v, &states[v.0], to);
                inboxes[to.0].push((v, msg));
                messages_sent += 1;
            }
        }
    }

    // Final computation step consuming the last round of messages.
    let mut final_states = Vec::with_capacity(n);
    for v in graph.vertices() {
        let incoming = std::mem::take(&mut inboxes[v.0]);
        final_states.push(program.update(v, &states[v.0], &incoming));
    }

    let aggregate = program.aggregate(graph, &final_states);
    ReferenceTrace {
        final_states,
        aggregate,
        computation_steps: iterations + 1,
        messages_sent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts how many vertices are reachable within `iterations` hops of
    /// vertex 0 by flooding a "reached" flag.
    struct Reachability {
        rounds: u32,
    }

    impl VertexProgram for Reachability {
        type State = bool;
        type Message = bool;

        fn init(&self, v: VertexId) -> bool {
            v.0 == 0
        }

        fn no_op(&self) -> bool {
            false
        }

        fn update(&self, _v: VertexId, state: &bool, incoming: &[(VertexId, bool)]) -> bool {
            *state || incoming.iter().any(|(_, m)| *m)
        }

        fn message(&self, _v: VertexId, state: &bool, _to: VertexId) -> bool {
            *state
        }

        fn aggregate(&self, _graph: &Graph, states: &[bool]) -> f64 {
            states.iter().filter(|&&s| s).count() as f64
        }

        fn iterations(&self) -> u32 {
            self.rounds
        }

        fn sensitivity(&self) -> f64 {
            1.0
        }
    }

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new(n, 4);
        for i in 0..n - 1 {
            g.add_edge(VertexId(i), VertexId(i + 1)).unwrap();
        }
        g
    }

    #[test]
    fn flood_reaches_one_hop_per_round() {
        let g = path_graph(6);
        for rounds in 0..5u32 {
            let trace = execute_reference(&g, &Reachability { rounds });
            // After r communication rounds plus the final update, vertices
            // 0..=r+? — flooding moves one hop per communication step, and
            // the final computation step consumes the last messages, so
            // r rounds reach r+1 vertices... the final step consumes round
            // r's messages, giving r+1 hops total.
            assert_eq!(
                trace.aggregate,
                (rounds as f64 + 1.0).min(6.0),
                "rounds={rounds}"
            );
            assert_eq!(trace.computation_steps, rounds + 1);
        }
    }

    #[test]
    fn message_count_matches_edges_times_rounds() {
        let g = path_graph(4); // 3 edges
        let trace = execute_reference(&g, &Reachability { rounds: 5 });
        assert_eq!(trace.messages_sent, 3 * 5);
    }

    #[test]
    fn zero_iterations_still_runs_final_step() {
        let g = path_graph(3);
        let trace = execute_reference(&g, &Reachability { rounds: 0 });
        assert_eq!(trace.computation_steps, 1);
        assert_eq!(trace.aggregate, 1.0);
        assert_eq!(trace.final_states, vec![true, false, false]);
    }

    #[test]
    fn disconnected_vertices_never_reached() {
        let mut g = Graph::new(4, 4);
        g.add_edge(VertexId(0), VertexId(1)).unwrap();
        // Vertices 2 and 3 are isolated.
        let trace = execute_reference(&g, &Reachability { rounds: 10 });
        assert_eq!(trace.aggregate, 2.0);
    }
}
