//! Generic random-graph generators.
//!
//! The financial-network generators (core–periphery, scale-free) that the
//! paper's Appendix C uses live in `dstress-finance`, because they also
//! synthesise balance sheets.  This module provides the topology-only
//! generators used by unit tests and by the microbenchmarks, all of which
//! respect a degree bound `D`.

use crate::graph::{Graph, VertexId};
use dstress_math::rng::DetRng;

/// Generates an Erdős–Rényi-style directed graph: each ordered pair gets
/// an edge with probability `p`, skipping edges that would violate the
/// degree bound.
pub fn erdos_renyi(n: usize, p: f64, degree_bound: usize, rng: &mut dyn DetRng) -> Graph {
    let mut g = Graph::new(n, degree_bound);
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.next_f64() < p {
                // Ignore degree-bound rejections: the generator's contract
                // is "at most D", not "exactly the ER distribution".
                let _ = g.add_edge(VertexId(i), VertexId(j));
            }
        }
    }
    g
}

/// Generates a directed ring with `extra` random chords per vertex,
/// producing a connected graph with a small, predictable degree.
pub fn ring_with_chords(
    n: usize,
    extra: usize,
    degree_bound: usize,
    rng: &mut dyn DetRng,
) -> Graph {
    assert!(n >= 2, "need at least two vertices");
    let mut g = Graph::new(n, degree_bound);
    for i in 0..n {
        g.add_edge(VertexId(i), VertexId((i + 1) % n))
            .expect("ring edges satisfy any degree bound >= 1");
    }
    for i in 0..n {
        for _ in 0..extra {
            let j = rng.next_below(n as u64) as usize;
            if j != i {
                let _ = g.add_edge(VertexId(i), VertexId(j));
            }
        }
    }
    g
}

/// Generates a graph where every vertex has exactly `degree` out-edges to
/// uniformly chosen distinct targets (a simple regular-ish topology used
/// by the MPC microbenchmarks to pin `D`).
pub fn fixed_out_degree(n: usize, degree: usize, rng: &mut dyn DetRng) -> Graph {
    assert!(degree < n, "degree must be smaller than the vertex count");
    // In-degree is not strictly bounded by `degree` in this construction,
    // so allow head-room while keeping the declared bound tight enough for
    // benchmarks (2·degree is ample for uniform targets).
    let mut g = Graph::new(
        n,
        (2 * degree).max(degree + 1).min(n.saturating_sub(1)).max(1),
    );
    for i in 0..n {
        let mut added = 0;
        let mut guard = 0;
        while added < degree && guard < 100 * degree {
            guard += 1;
            let j = rng.next_below(n as u64) as usize;
            if j != i && g.add_edge(VertexId(i), VertexId(j)).is_ok() {
                added += 1;
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_math::rng::Xoshiro256;

    #[test]
    fn erdos_renyi_respects_bound() {
        let mut rng = Xoshiro256::new(1);
        let g = erdos_renyi(50, 0.3, 8, &mut rng);
        assert_eq!(g.vertex_count(), 50);
        assert!(g.max_degree() <= 8);
        assert!(g.edge_count() > 0);
    }

    #[test]
    fn erdos_renyi_density_scales_with_p() {
        let mut rng = Xoshiro256::new(2);
        let sparse = erdos_renyi(60, 0.02, 60, &mut rng);
        let dense = erdos_renyi(60, 0.2, 60, &mut rng);
        assert!(dense.edge_count() > 3 * sparse.edge_count());
    }

    #[test]
    fn ring_is_connected_and_has_cycle_edges() {
        let mut rng = Xoshiro256::new(3);
        let g = ring_with_chords(10, 0, 4, &mut rng);
        assert_eq!(g.edge_count(), 10);
        for i in 0..10 {
            assert!(g.has_edge(VertexId(i), VertexId((i + 1) % 10)));
        }
        let g2 = ring_with_chords(10, 2, 6, &mut rng);
        assert!(g2.edge_count() > 10);
    }

    #[test]
    fn fixed_out_degree_is_exact() {
        let mut rng = Xoshiro256::new(4);
        let g = fixed_out_degree(30, 5, &mut rng);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 5, "vertex {v}");
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let g1 = erdos_renyi(20, 0.2, 10, &mut Xoshiro256::new(7));
        let g2 = erdos_renyi(20, 0.2, 10, &mut Xoshiro256::new(7));
        assert_eq!(g1.edge_count(), g2.edge_count());
        for v in g1.vertices() {
            assert_eq!(g1.out_neighbors(v), g2.out_neighbors(v));
        }
    }
}
