//! Directed graphs with degree-bound bookkeeping.
//!
//! Two storage layouts back a [`Graph`]:
//!
//! * **adjacency lists** — one `Vec` of neighbours per vertex in each
//!   direction, grown edge by edge through [`Graph::add_edge`].  This is
//!   the mutable layout used by hand-built test graphs and the
//!   exposure-carrying financial networks.
//! * **CSR** (compressed sparse row) — two flat offset/target arrays per
//!   direction, built in one shot from an [`EdgeStream`] by
//!   [`Graph::from_edge_stream`].  This is the compact, cache-friendly
//!   layout the streaming generators produce: no per-vertex `Vec`
//!   headers, no growth slack, just `O(V + E)` words.  CSR graphs are
//!   frozen — [`Graph::add_edge`] reports
//!   [`GraphError::FrozenTopology`].
//!
//! Both layouts answer every query through the same API, so the engine
//! and the vertex programs never care which one they were handed.

use crate::stream::EdgeStream;
use core::fmt;

/// Identifier of a vertex (and of the participant that owns it).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VertexId(pub usize);

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Errors raised by graph construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a vertex outside the graph.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: usize,
        /// Number of vertices in the graph.
        vertices: usize,
    },
    /// A self-loop was added (DStress vertices do not message themselves).
    SelfLoop {
        /// The vertex.
        vertex: usize,
    },
    /// Adding the edge would exceed the declared degree bound `D`.
    DegreeBoundExceeded {
        /// The vertex whose degree would exceed the bound.
        vertex: usize,
        /// The declared bound.
        bound: usize,
    },
    /// The same directed edge was added twice.
    DuplicateEdge {
        /// Source vertex.
        from: usize,
        /// Destination vertex.
        to: usize,
    },
    /// The graph uses the frozen CSR layout and cannot accept new edges.
    FrozenTopology,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, vertices } => {
                write!(
                    f,
                    "vertex {vertex} out of range (graph has {vertices} vertices)"
                )
            }
            GraphError::SelfLoop { vertex } => write!(f, "self-loop on vertex {vertex}"),
            GraphError::DegreeBoundExceeded { vertex, bound } => {
                write!(f, "vertex {vertex} would exceed degree bound {bound}")
            }
            GraphError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge ({from}, {to})")
            }
            GraphError::FrozenTopology => {
                write!(
                    f,
                    "CSR-backed graphs are frozen; build edges through the stream"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Adjacency storage: mutable per-vertex lists or frozen CSR arrays.
#[derive(Clone, Debug)]
enum Storage {
    /// One neighbour list per vertex per direction (mutable).
    Lists {
        out: Vec<Vec<VertexId>>,
        inn: Vec<Vec<VertexId>>,
    },
    /// Compressed sparse row in both directions (frozen).
    Csr {
        out_offsets: Vec<usize>,
        out_targets: Vec<VertexId>,
        in_offsets: Vec<usize>,
        in_sources: Vec<VertexId>,
    },
}

/// A directed graph whose participants each own one vertex.
///
/// The graph stores both out- and in-adjacency so the executor can route
/// messages in either direction; the *degree bound* `D` is the public
/// upper bound on the number of neighbours (out-edges plus in-edges are
/// each bounded by `D`, matching the prototype's use of `D` message slots
/// per direction).
#[derive(Clone, Debug)]
pub struct Graph {
    storage: Storage,
    degree_bound: usize,
    edges: usize,
}

impl Graph {
    /// Creates an empty list-backed graph with `vertices` vertices and the
    /// public degree bound `degree_bound`.
    pub fn new(vertices: usize, degree_bound: usize) -> Self {
        Graph {
            storage: Storage::Lists {
                out: vec![Vec::new(); vertices],
                inn: vec![Vec::new(); vertices],
            },
            degree_bound,
            edges: 0,
        }
    }

    /// Builds a compact CSR-backed graph from an edge stream without ever
    /// materialising per-vertex `Vec`s: one counting pass sizes the
    /// offset arrays, a second (replayed) pass fills the flat target and
    /// source arrays.  Peak transient memory is `O(V)` beyond the final
    /// `O(V + E)` arrays, so arbitrarily large sparse topologies can be
    /// built without an adjacency-list blow-up.
    ///
    /// In-neighbour slots are assigned in stream-arrival order, exactly
    /// as [`Graph::add_edge`] assigns them in call order.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] for out-of-range endpoints, self-loops,
    /// duplicate edges, or degree-bound violations.
    ///
    /// # Panics
    ///
    /// Panics if the stream violates the [`EdgeStream`] contract by
    /// emitting a different edge sequence after [`EdgeStream::restart`].
    pub fn from_edge_stream(stream: &mut dyn EdgeStream) -> Result<Self, GraphError> {
        let n = stream.vertex_count();
        let degree_bound = stream.degree_bound();
        // Pass 1: count degrees and validate everything countable.
        let mut out_degree = vec![0usize; n];
        let mut in_degree = vec![0usize; n];
        let mut edges = 0usize;
        while let Some((from, to)) = stream.next_edge() {
            for v in [from.0, to.0] {
                if v >= n {
                    return Err(GraphError::VertexOutOfRange {
                        vertex: v,
                        vertices: n,
                    });
                }
            }
            if from == to {
                return Err(GraphError::SelfLoop { vertex: from.0 });
            }
            if out_degree[from.0] >= degree_bound {
                return Err(GraphError::DegreeBoundExceeded {
                    vertex: from.0,
                    bound: degree_bound,
                });
            }
            if in_degree[to.0] >= degree_bound {
                return Err(GraphError::DegreeBoundExceeded {
                    vertex: to.0,
                    bound: degree_bound,
                });
            }
            out_degree[from.0] += 1;
            in_degree[to.0] += 1;
            edges += 1;
        }

        // Prefix sums → offsets; the degree arrays become fill cursors.
        let mut out_offsets = vec![0usize; n + 1];
        let mut in_offsets = vec![0usize; n + 1];
        for v in 0..n {
            out_offsets[v + 1] = out_offsets[v] + out_degree[v];
            in_offsets[v + 1] = in_offsets[v] + in_degree[v];
        }
        let mut out_cursor = out_offsets[..n].to_vec();
        let mut in_cursor = in_offsets[..n].to_vec();
        let mut out_targets = vec![VertexId(0); edges];
        let mut in_sources = vec![VertexId(0); edges];

        // Pass 2: replay the stream and fill the flat arrays.  Duplicate
        // detection scans the already-filled slice of the source's out
        // list — O(D) per edge, no extra memory.
        stream.restart();
        let mut filled = 0usize;
        while let Some((from, to)) = stream.next_edge() {
            assert!(
                filled < edges && from.0 < n && to.0 < n,
                "EdgeStream contract violated: restart() replayed a different edge sequence"
            );
            let start = out_offsets[from.0];
            if out_targets[start..out_cursor[from.0]].contains(&to) {
                return Err(GraphError::DuplicateEdge {
                    from: from.0,
                    to: to.0,
                });
            }
            out_targets[out_cursor[from.0]] = to;
            out_cursor[from.0] += 1;
            in_sources[in_cursor[to.0]] = from;
            in_cursor[to.0] += 1;
            filled += 1;
        }
        assert_eq!(
            filled, edges,
            "EdgeStream contract violated: restart() replayed a different edge count"
        );

        Ok(Graph {
            storage: Storage::Csr {
                out_offsets,
                out_targets,
                in_offsets,
                in_sources,
            },
            degree_bound,
            edges,
        })
    }

    /// Whether the graph uses the frozen CSR layout.
    pub fn is_csr(&self) -> bool {
        matches!(self.storage, Storage::Csr { .. })
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        match &self.storage {
            Storage::Lists { out, .. } => out.len(),
            Storage::Csr { out_offsets, .. } => out_offsets.len() - 1,
        }
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// The public degree bound `D`.
    pub fn degree_bound(&self) -> usize {
        self.degree_bound
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.vertex_count()).map(VertexId)
    }

    /// Adds a directed edge (list-backed graphs only).
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] for out-of-range endpoints, self-loops,
    /// duplicates, edges that would push either endpoint past the degree
    /// bound, or a frozen CSR topology.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId) -> Result<(), GraphError> {
        let n = self.vertex_count();
        let bound = self.degree_bound;
        let Storage::Lists { out, inn } = &mut self.storage else {
            return Err(GraphError::FrozenTopology);
        };
        for v in [from.0, to.0] {
            if v >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v,
                    vertices: n,
                });
            }
        }
        if from == to {
            return Err(GraphError::SelfLoop { vertex: from.0 });
        }
        if out[from.0].contains(&to) {
            return Err(GraphError::DuplicateEdge {
                from: from.0,
                to: to.0,
            });
        }
        if out[from.0].len() >= bound {
            return Err(GraphError::DegreeBoundExceeded {
                vertex: from.0,
                bound,
            });
        }
        if inn[to.0].len() >= bound {
            return Err(GraphError::DegreeBoundExceeded {
                vertex: to.0,
                bound,
            });
        }
        out[from.0].push(to);
        inn[to.0].push(from);
        self.edges += 1;
        Ok(())
    }

    /// Adds edges in both directions between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Same as [`Self::add_edge`].
    pub fn add_bidirectional(&mut self, a: VertexId, b: VertexId) -> Result<(), GraphError> {
        self.add_edge(a, b)?;
        self.add_edge(b, a)
    }

    /// Returns `true` if the directed edge exists.
    pub fn has_edge(&self, from: VertexId, to: VertexId) -> bool {
        from.0 < self.vertex_count() && self.out_neighbors(from).contains(&to)
    }

    /// Out-neighbours of a vertex.
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        match &self.storage {
            Storage::Lists { out, .. } => &out[v.0],
            Storage::Csr {
                out_offsets,
                out_targets,
                ..
            } => &out_targets[out_offsets[v.0]..out_offsets[v.0 + 1]],
        }
    }

    /// In-neighbours of a vertex.
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        match &self.storage {
            Storage::Lists { inn, .. } => &inn[v.0],
            Storage::Csr {
                in_offsets,
                in_sources,
                ..
            } => &in_sources[in_offsets[v.0]..in_offsets[v.0 + 1]],
        }
    }

    /// Out-degree of a vertex.
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_neighbors(v).len()
    }

    /// In-degree of a vertex.
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_neighbors(v).len()
    }

    /// The maximum out- or in-degree across all vertices (always at most
    /// the declared bound).
    pub fn max_degree(&self) -> usize {
        self.vertices()
            .map(|v| self.out_degree(v).max(self.in_degree(v)))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::GraphEdgeStream;

    #[test]
    fn builds_small_graph() {
        let mut g = Graph::new(3, 10);
        g.add_edge(VertexId(0), VertexId(1)).unwrap();
        g.add_edge(VertexId(1), VertexId(2)).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(!g.has_edge(VertexId(1), VertexId(0)));
        assert_eq!(g.out_neighbors(VertexId(1)), &[VertexId(2)]);
        assert_eq!(g.in_neighbors(VertexId(1)), &[VertexId(0)]);
        assert_eq!(g.out_degree(VertexId(0)), 1);
        assert_eq!(g.in_degree(VertexId(2)), 1);
        assert_eq!(g.max_degree(), 1);
        assert_eq!(g.degree_bound(), 10);
        assert_eq!(g.vertices().count(), 3);
        assert!(!g.is_csr());
    }

    #[test]
    fn bidirectional_edges() {
        let mut g = Graph::new(2, 5);
        g.add_bidirectional(VertexId(0), VertexId(1)).unwrap();
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.has_edge(VertexId(1), VertexId(0)));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn rejects_invalid_edges() {
        let mut g = Graph::new(2, 1);
        assert!(matches!(
            g.add_edge(VertexId(0), VertexId(5)).unwrap_err(),
            GraphError::VertexOutOfRange { vertex: 5, .. }
        ));
        assert!(matches!(
            g.add_edge(VertexId(1), VertexId(1)).unwrap_err(),
            GraphError::SelfLoop { vertex: 1 }
        ));
        g.add_edge(VertexId(0), VertexId(1)).unwrap();
        assert!(matches!(
            g.add_edge(VertexId(0), VertexId(1)).unwrap_err(),
            GraphError::DuplicateEdge { .. }
        ));
    }

    #[test]
    fn degree_bound_is_enforced() {
        let mut g = Graph::new(4, 2);
        g.add_edge(VertexId(0), VertexId(1)).unwrap();
        g.add_edge(VertexId(0), VertexId(2)).unwrap();
        // Third out-edge from vertex 0 exceeds D = 2.
        assert!(matches!(
            g.add_edge(VertexId(0), VertexId(3)).unwrap_err(),
            GraphError::DegreeBoundExceeded {
                vertex: 0,
                bound: 2
            }
        ));
        // In-degree is bounded as well.
        let mut g = Graph::new(4, 1);
        g.add_edge(VertexId(1), VertexId(0)).unwrap();
        assert!(matches!(
            g.add_edge(VertexId(2), VertexId(0)).unwrap_err(),
            GraphError::DegreeBoundExceeded {
                vertex: 0,
                bound: 1
            }
        ));
    }

    #[test]
    fn error_messages() {
        assert!(GraphError::SelfLoop { vertex: 3 }.to_string().contains('3'));
        assert!(GraphError::DuplicateEdge { from: 1, to: 2 }
            .to_string()
            .contains("duplicate"));
        assert!(GraphError::DegreeBoundExceeded {
            vertex: 0,
            bound: 7
        }
        .to_string()
        .contains('7'));
        assert!(GraphError::VertexOutOfRange {
            vertex: 9,
            vertices: 3
        }
        .to_string()
        .contains("out of range"));
        assert!(GraphError::FrozenTopology.to_string().contains("frozen"));
        assert_eq!(VertexId(4).to_string(), "v4");
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0, 10);
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn csr_from_stream_matches_list_build() {
        let mut g = Graph::new(5, 4);
        g.add_edge(VertexId(0), VertexId(1)).unwrap();
        g.add_edge(VertexId(0), VertexId(3)).unwrap();
        g.add_edge(VertexId(2), VertexId(0)).unwrap();
        g.add_edge(VertexId(4), VertexId(2)).unwrap();
        g.add_edge(VertexId(2), VertexId(4)).unwrap();

        let csr = Graph::from_edge_stream(&mut GraphEdgeStream::new(&g)).unwrap();
        assert!(csr.is_csr());
        assert_eq!(csr.vertex_count(), 5);
        assert_eq!(csr.edge_count(), 5);
        assert_eq!(csr.degree_bound(), 4);
        for v in g.vertices() {
            assert_eq!(csr.out_neighbors(v), g.out_neighbors(v), "{v}");
            // GraphEdgeStream emits in vertex-major order, which is the
            // order the list build added the edges here, so even the
            // in-neighbour slots match.
            assert_eq!(csr.in_neighbors(v), g.in_neighbors(v), "{v}");
        }
        assert_eq!(csr.max_degree(), g.max_degree());
        assert!(csr.has_edge(VertexId(2), VertexId(4)));
        assert!(!csr.has_edge(VertexId(4), VertexId(0)));
    }

    #[test]
    fn csr_graphs_are_frozen() {
        let mut g = Graph::new(3, 2);
        g.add_edge(VertexId(0), VertexId(1)).unwrap();
        let mut csr = Graph::from_edge_stream(&mut GraphEdgeStream::new(&g)).unwrap();
        assert_eq!(
            csr.add_edge(VertexId(1), VertexId(2)).unwrap_err(),
            GraphError::FrozenTopology
        );
        assert_eq!(csr.edge_count(), 1);
    }

    #[test]
    fn from_stream_rejects_bad_streams() {
        use crate::stream::EdgeStream;

        /// Replays a fixed edge list (test helper for invalid inputs).
        struct FixedStream {
            n: usize,
            bound: usize,
            edges: Vec<(usize, usize)>,
            pos: usize,
        }
        impl EdgeStream for FixedStream {
            fn vertex_count(&self) -> usize {
                self.n
            }
            fn degree_bound(&self) -> usize {
                self.bound
            }
            fn next_edge(&mut self) -> Option<(VertexId, VertexId)> {
                let e = self.edges.get(self.pos)?;
                self.pos += 1;
                Some((VertexId(e.0), VertexId(e.1)))
            }
            fn restart(&mut self) {
                self.pos = 0;
            }
        }
        let mk = |edges: Vec<(usize, usize)>, bound| FixedStream {
            n: 3,
            bound,
            edges,
            pos: 0,
        };
        assert!(matches!(
            Graph::from_edge_stream(&mut mk(vec![(0, 7)], 4)).unwrap_err(),
            GraphError::VertexOutOfRange { vertex: 7, .. }
        ));
        assert!(matches!(
            Graph::from_edge_stream(&mut mk(vec![(1, 1)], 4)).unwrap_err(),
            GraphError::SelfLoop { vertex: 1 }
        ));
        assert!(matches!(
            Graph::from_edge_stream(&mut mk(vec![(0, 1), (0, 2)], 1)).unwrap_err(),
            GraphError::DegreeBoundExceeded {
                vertex: 0,
                bound: 1
            }
        ));
        assert!(matches!(
            Graph::from_edge_stream(&mut mk(vec![(0, 1), (0, 1)], 4)).unwrap_err(),
            GraphError::DuplicateEdge { from: 0, to: 1 }
        ));
    }
}
