//! Directed graphs with degree-bound bookkeeping.

use core::fmt;

/// Identifier of a vertex (and of the participant that owns it).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VertexId(pub usize);

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Errors raised by graph construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a vertex outside the graph.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: usize,
        /// Number of vertices in the graph.
        vertices: usize,
    },
    /// A self-loop was added (DStress vertices do not message themselves).
    SelfLoop {
        /// The vertex.
        vertex: usize,
    },
    /// Adding the edge would exceed the declared degree bound `D`.
    DegreeBoundExceeded {
        /// The vertex whose degree would exceed the bound.
        vertex: usize,
        /// The declared bound.
        bound: usize,
    },
    /// The same directed edge was added twice.
    DuplicateEdge {
        /// Source vertex.
        from: usize,
        /// Destination vertex.
        to: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, vertices } => {
                write!(
                    f,
                    "vertex {vertex} out of range (graph has {vertices} vertices)"
                )
            }
            GraphError::SelfLoop { vertex } => write!(f, "self-loop on vertex {vertex}"),
            GraphError::DegreeBoundExceeded { vertex, bound } => {
                write!(f, "vertex {vertex} would exceed degree bound {bound}")
            }
            GraphError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge ({from}, {to})")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A directed graph whose participants each own one vertex.
///
/// The graph stores both out- and in-adjacency so the executor can route
/// messages in either direction; the *degree bound* `D` is the public
/// upper bound on the number of neighbours (out-edges plus in-edges are
/// each bounded by `D`, matching the prototype's use of `D` message slots
/// per direction).
#[derive(Clone, Debug)]
pub struct Graph {
    out_edges: Vec<Vec<VertexId>>,
    in_edges: Vec<Vec<VertexId>>,
    degree_bound: usize,
    edges: usize,
}

impl Graph {
    /// Creates an empty graph with `vertices` vertices and the public
    /// degree bound `degree_bound`.
    pub fn new(vertices: usize, degree_bound: usize) -> Self {
        Graph {
            out_edges: vec![Vec::new(); vertices],
            in_edges: vec![Vec::new(); vertices],
            degree_bound,
            edges: 0,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.out_edges.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// The public degree bound `D`.
    pub fn degree_bound(&self) -> usize {
        self.degree_bound
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.vertex_count()).map(VertexId)
    }

    /// Adds a directed edge.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] for out-of-range endpoints, self-loops,
    /// duplicates, or edges that would push either endpoint past the
    /// degree bound.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId) -> Result<(), GraphError> {
        let n = self.vertex_count();
        for v in [from.0, to.0] {
            if v >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v,
                    vertices: n,
                });
            }
        }
        if from == to {
            return Err(GraphError::SelfLoop { vertex: from.0 });
        }
        if self.out_edges[from.0].contains(&to) {
            return Err(GraphError::DuplicateEdge {
                from: from.0,
                to: to.0,
            });
        }
        if self.out_edges[from.0].len() >= self.degree_bound {
            return Err(GraphError::DegreeBoundExceeded {
                vertex: from.0,
                bound: self.degree_bound,
            });
        }
        if self.in_edges[to.0].len() >= self.degree_bound {
            return Err(GraphError::DegreeBoundExceeded {
                vertex: to.0,
                bound: self.degree_bound,
            });
        }
        self.out_edges[from.0].push(to);
        self.in_edges[to.0].push(from);
        self.edges += 1;
        Ok(())
    }

    /// Adds edges in both directions between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Same as [`Self::add_edge`].
    pub fn add_bidirectional(&mut self, a: VertexId, b: VertexId) -> Result<(), GraphError> {
        self.add_edge(a, b)?;
        self.add_edge(b, a)
    }

    /// Returns `true` if the directed edge exists.
    pub fn has_edge(&self, from: VertexId, to: VertexId) -> bool {
        self.out_edges
            .get(from.0)
            .is_some_and(|edges| edges.contains(&to))
    }

    /// Out-neighbours of a vertex.
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.out_edges[v.0]
    }

    /// In-neighbours of a vertex.
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.in_edges[v.0]
    }

    /// Out-degree of a vertex.
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_edges[v.0].len()
    }

    /// In-degree of a vertex.
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_edges[v.0].len()
    }

    /// The maximum out- or in-degree across all vertices (always at most
    /// the declared bound).
    pub fn max_degree(&self) -> usize {
        (0..self.vertex_count())
            .map(|v| self.out_edges[v].len().max(self.in_edges[v].len()))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_small_graph() {
        let mut g = Graph::new(3, 10);
        g.add_edge(VertexId(0), VertexId(1)).unwrap();
        g.add_edge(VertexId(1), VertexId(2)).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(!g.has_edge(VertexId(1), VertexId(0)));
        assert_eq!(g.out_neighbors(VertexId(1)), &[VertexId(2)]);
        assert_eq!(g.in_neighbors(VertexId(1)), &[VertexId(0)]);
        assert_eq!(g.out_degree(VertexId(0)), 1);
        assert_eq!(g.in_degree(VertexId(2)), 1);
        assert_eq!(g.max_degree(), 1);
        assert_eq!(g.degree_bound(), 10);
        assert_eq!(g.vertices().count(), 3);
    }

    #[test]
    fn bidirectional_edges() {
        let mut g = Graph::new(2, 5);
        g.add_bidirectional(VertexId(0), VertexId(1)).unwrap();
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.has_edge(VertexId(1), VertexId(0)));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn rejects_invalid_edges() {
        let mut g = Graph::new(2, 1);
        assert!(matches!(
            g.add_edge(VertexId(0), VertexId(5)).unwrap_err(),
            GraphError::VertexOutOfRange { vertex: 5, .. }
        ));
        assert!(matches!(
            g.add_edge(VertexId(1), VertexId(1)).unwrap_err(),
            GraphError::SelfLoop { vertex: 1 }
        ));
        g.add_edge(VertexId(0), VertexId(1)).unwrap();
        assert!(matches!(
            g.add_edge(VertexId(0), VertexId(1)).unwrap_err(),
            GraphError::DuplicateEdge { .. }
        ));
    }

    #[test]
    fn degree_bound_is_enforced() {
        let mut g = Graph::new(4, 2);
        g.add_edge(VertexId(0), VertexId(1)).unwrap();
        g.add_edge(VertexId(0), VertexId(2)).unwrap();
        // Third out-edge from vertex 0 exceeds D = 2.
        assert!(matches!(
            g.add_edge(VertexId(0), VertexId(3)).unwrap_err(),
            GraphError::DegreeBoundExceeded {
                vertex: 0,
                bound: 2
            }
        ));
        // In-degree is bounded as well.
        let mut g = Graph::new(4, 1);
        g.add_edge(VertexId(1), VertexId(0)).unwrap();
        assert!(matches!(
            g.add_edge(VertexId(2), VertexId(0)).unwrap_err(),
            GraphError::DegreeBoundExceeded {
                vertex: 0,
                bound: 1
            }
        ));
    }

    #[test]
    fn error_messages() {
        assert!(GraphError::SelfLoop { vertex: 3 }.to_string().contains('3'));
        assert!(GraphError::DuplicateEdge { from: 1, to: 2 }
            .to_string()
            .contains("duplicate"));
        assert!(GraphError::DegreeBoundExceeded {
            vertex: 0,
            bound: 7
        }
        .to_string()
        .contains('7'));
        assert!(GraphError::VertexOutOfRange {
            vertex: 9,
            vertices: 3
        }
        .to_string()
        .contains("out of range"));
        assert_eq!(VertexId(4).to_string(), "v4");
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0, 10);
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.max_degree(), 0);
    }
}
