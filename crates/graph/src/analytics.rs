//! Plaintext graph-analytics vertex programs.
//!
//! The DP graph-analytics suite (ROADMAP: "scenario diversity") runs four
//! classic analytics — PageRank, weakly-connected components by label
//! propagation, single-source shortest paths, and a degree histogram — as
//! DStress vertex programs.  This module holds the *plaintext reference*
//! form of each: the same update/message/aggregate timeline as the secure
//! circuit encodings in `dstress_core::analytics`, executed by
//! [`crate::reference::execute_reference`], so the utility tests can
//! compare a noisy secure release against an exact reference value.
//!
//! Timeline fidelity matters more than textbook form here: the reference
//! executor runs `I` update+communication rounds plus one final update,
//! so information propagates exactly `I` hops.  The analytics below are
//! written against *that* timeline (e.g. SSSP distances are truncated at
//! `I`; label propagation converges only if `I` covers the diameter), and
//! the circuit encodings mirror it bit for bit.
//!
//! Each program releases a **single scalar** (the quantity DStress's
//! output mechanism noises): the rank of a designated vertex, the number
//! of component roots, the truncated distance to a target, or one
//! histogram bin's count.  The per-program edge-DP sensitivity of that
//! scalar is documented on each type and fed to the DP layer by the
//! secure encodings.

use crate::graph::{Graph, VertexId};
use crate::program::VertexProgram;

/// Plaintext PageRank releasing the rank of one designated vertex.
///
/// The update rule is the power iteration
/// `r_v ← (1 − d)/N + d · Σ_{u→v} r_u / outdeg(u)` with damping
/// `d = 1/4`, chosen dyadic so the circuit encoding applies it as an
/// exact shift.  Under the reference timeline the first update sees no
/// messages, so the iteration effectively starts from the uniform
/// `(1 − d)/N` vector; it converges to the same fixed point as any other
/// start.  Dangling vertices simply drop their mass (reference and
/// circuit agree on this).
///
/// **Sensitivity** (edge-DP, released scalar = target's rank in `[0, 1]`):
/// rewiring one edge changes the target's rank by at most
/// `min(1, 2d/(1 − d))`; with `d = 1/4` that is `2/3`.
pub struct PageRankRef {
    /// Vertex whose rank is released.
    pub target: VertexId,
    /// Number of power-iteration rounds.
    pub rounds: u32,
    /// `1 / outdeg(v)` per vertex (0 for dangling vertices), captured at
    /// construction because the trait's `init`/`message` take no graph.
    inv_outdeg: Vec<f64>,
    n: usize,
}

/// The damping factor `d` shared by the reference and circuit PageRank.
pub const PAGERANK_DAMPING: f64 = 0.25;

impl PageRankRef {
    /// Builds the program for `graph`, releasing `target`'s rank after
    /// `rounds` iterations.
    pub fn new(graph: &Graph, target: VertexId, rounds: u32) -> Self {
        let inv_outdeg = graph
            .vertices()
            .map(|v| {
                let d = graph.out_degree(v);
                if d == 0 {
                    0.0
                } else {
                    1.0 / d as f64
                }
            })
            .collect();
        PageRankRef {
            target,
            rounds,
            inv_outdeg,
            n: graph.vertex_count(),
        }
    }
}

impl VertexProgram for PageRankRef {
    type State = f64;
    type Message = f64;

    fn init(&self, _v: VertexId) -> f64 {
        1.0 / self.n as f64
    }

    fn no_op(&self) -> f64 {
        0.0
    }

    fn update(&self, _v: VertexId, _state: &f64, incoming: &[(VertexId, f64)]) -> f64 {
        let base = (1.0 - PAGERANK_DAMPING) / self.n as f64;
        base + PAGERANK_DAMPING * incoming.iter().map(|(_, m)| m).sum::<f64>()
    }

    fn message(&self, v: VertexId, state: &f64, _to: VertexId) -> f64 {
        state * self.inv_outdeg[v.0]
    }

    fn aggregate(&self, _graph: &Graph, states: &[f64]) -> f64 {
        states[self.target.0]
    }

    fn iterations(&self) -> u32 {
        self.rounds
    }

    fn sensitivity(&self) -> f64 {
        (2.0 * PAGERANK_DAMPING / (1.0 - PAGERANK_DAMPING)).min(1.0)
    }
}

/// Weakly-connected components by min-label propagation, releasing the
/// number of components.
///
/// Every vertex starts with the label `v + 1` (labels are ≥ 1 so the
/// no-op message can be 0), repeatedly adopts the minimum label heard
/// from an in-neighbour, and the release counts *roots* — vertices still
/// holding their own label.  On a **symmetric** graph (every edge paired
/// with its reverse) run for `iterations ≥ diameter`, the count equals
/// the number of weakly-connected components.
///
/// **Sensitivity** (edge-DP): adding or removing one (bidirectional)
/// edge merges or splits at most one pair of components — the root count
/// changes by at most 1.
pub struct WccLabels {
    /// Number of propagation rounds (must cover the diameter for an
    /// exact component count).
    pub rounds: u32,
}

impl VertexProgram for WccLabels {
    type State = u64;
    type Message = u64;

    fn init(&self, v: VertexId) -> u64 {
        v.0 as u64 + 1
    }

    fn no_op(&self) -> u64 {
        0
    }

    fn update(&self, _v: VertexId, state: &u64, incoming: &[(VertexId, u64)]) -> u64 {
        incoming
            .iter()
            .map(|(_, m)| *m)
            .filter(|&m| m != 0)
            .fold(*state, u64::min)
    }

    fn message(&self, _v: VertexId, state: &u64, _to: VertexId) -> u64 {
        *state
    }

    fn aggregate(&self, _graph: &Graph, states: &[u64]) -> f64 {
        states
            .iter()
            .enumerate()
            .filter(|&(v, &label)| label == v as u64 + 1)
            .count() as f64
    }

    fn iterations(&self) -> u32 {
        self.rounds
    }

    fn sensitivity(&self) -> f64 {
        1.0
    }
}

/// Single-source shortest paths (hop counts), releasing the truncated
/// distance from a source to a target vertex.
///
/// Distances propagate one hop per round, so after `I` rounds every
/// vertex within `I` hops holds its exact distance and everything
/// farther (or unreachable) holds the truncation cap `I + 1`.  Messages
/// carry `dist + 1` — the distance *through* the sending edge — with 0
/// as the no-op, exactly as the circuit encoding does.
///
/// **Sensitivity** (edge-DP): one edge can swing the released value
/// across its whole range `[0, I + 1]`, e.g. from unreachable (`I + 1`)
/// to adjacent (1); the range bound `I + 1` is the sensitivity.
pub struct SsspHops {
    /// Source vertex (distance 0).
    pub source: VertexId,
    /// Vertex whose truncated distance is released.
    pub target: VertexId,
    /// Number of propagation rounds; distances are exact up to this.
    pub rounds: u32,
}

impl SsspHops {
    /// The truncation cap: the state value meaning "farther than
    /// reachable in [`Self::rounds`] hops".
    pub fn cap(&self) -> u64 {
        self.rounds as u64 + 1
    }
}

impl VertexProgram for SsspHops {
    type State = u64;
    type Message = u64;

    fn init(&self, v: VertexId) -> u64 {
        if v == self.source {
            0
        } else {
            self.cap()
        }
    }

    fn no_op(&self) -> u64 {
        0
    }

    fn update(&self, _v: VertexId, state: &u64, incoming: &[(VertexId, u64)]) -> u64 {
        // A message m ≠ 0 from a neighbour at distance m − 1 offers the
        // distance m through that edge.
        incoming
            .iter()
            .map(|(_, m)| *m)
            .filter(|&m| m != 0)
            .fold(*state, u64::min)
            .min(self.cap())
    }

    fn message(&self, _v: VertexId, state: &u64, _to: VertexId) -> u64 {
        if *state >= self.cap() {
            0 // Nothing useful to offer yet: the no-op.
        } else {
            state + 1
        }
    }

    fn aggregate(&self, _graph: &Graph, states: &[u64]) -> f64 {
        states[self.target.0] as f64
    }

    fn iterations(&self) -> u32 {
        self.rounds
    }

    fn sensitivity(&self) -> f64 {
        self.cap() as f64
    }
}

/// Degree histogram, releasing the count of vertices whose out-degree
/// falls in one bin `[lo, hi]`.
///
/// The program is communication-free (each vertex knows its own degree):
/// zero iterations, a pass-through update, and an aggregation that
/// counts in-bin vertices.  A full histogram is a *sequence* of
/// single-bin releases — exactly the recurring-release regime the budget
/// accountant composes ε across.
///
/// **Sensitivity** (edge-DP): one edge changes one vertex's out-degree
/// by one, moving at most one vertex in or out of the bin — the count
/// changes by at most 1.
pub struct DegreeBin {
    /// Inclusive lower edge of the bin.
    pub lo: u64,
    /// Inclusive upper edge of the bin.
    pub hi: u64,
    /// Per-vertex out-degrees, captured at construction (the trait's
    /// `init` takes no graph).
    degrees: Vec<u64>,
}

impl DegreeBin {
    /// Builds the single-bin program for `graph`.
    pub fn new(graph: &Graph, lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "empty degree bin [{lo}, {hi}]");
        DegreeBin {
            lo,
            hi,
            degrees: graph
                .vertices()
                .map(|v| graph.out_degree(v) as u64)
                .collect(),
        }
    }
}

impl VertexProgram for DegreeBin {
    type State = u64;
    type Message = u64;

    fn init(&self, v: VertexId) -> u64 {
        self.degrees[v.0]
    }

    fn no_op(&self) -> u64 {
        0
    }

    fn update(&self, _v: VertexId, state: &u64, _incoming: &[(VertexId, u64)]) -> u64 {
        *state
    }

    fn message(&self, _v: VertexId, _state: &u64, _to: VertexId) -> u64 {
        0
    }

    fn aggregate(&self, _graph: &Graph, states: &[u64]) -> f64 {
        states
            .iter()
            .filter(|&&d| self.lo <= d && d <= self.hi)
            .count() as f64
    }

    fn iterations(&self) -> u32 {
        0
    }

    fn sensitivity(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::execute_reference;

    /// An undirected path 0 — 1 — … — (n−1).
    fn sym_path(n: usize) -> Graph {
        let mut g = Graph::new(n, 4);
        for i in 0..n - 1 {
            g.add_bidirectional(VertexId(i), VertexId(i + 1)).unwrap();
        }
        g
    }

    /// Exact BFS hop distances, the independent oracle for `SsspHops`.
    fn bfs_distances(graph: &Graph, source: VertexId) -> Vec<Option<u64>> {
        let mut dist = vec![None; graph.vertex_count()];
        dist[source.0] = Some(0);
        let mut frontier = vec![source];
        let mut d = 0u64;
        while !frontier.is_empty() {
            d += 1;
            let mut next = Vec::new();
            for v in frontier {
                for &to in graph.out_neighbors(v) {
                    if dist[to.0].is_none() {
                        dist[to.0] = Some(d);
                        next.push(to);
                    }
                }
            }
            frontier = next;
        }
        dist
    }

    #[test]
    fn sssp_matches_bfs_within_horizon() {
        let g = sym_path(7);
        let oracle = bfs_distances(&g, VertexId(0));
        for (target, expected) in oracle.iter().enumerate() {
            let prog = SsspHops {
                source: VertexId(0),
                target: VertexId(target),
                rounds: 6,
            };
            let trace = execute_reference(&g, &prog);
            assert_eq!(trace.aggregate, expected.unwrap() as f64);
        }
    }

    #[test]
    fn sssp_truncates_beyond_horizon_and_for_unreachable() {
        // A path over vertices 0..6 plus an isolated vertex 6.
        let mut g = Graph::new(7, 4);
        for i in 0..5 {
            g.add_bidirectional(VertexId(i), VertexId(i + 1)).unwrap();
        }
        let near_horizon = SsspHops {
            source: VertexId(0),
            target: VertexId(5),
            rounds: 3, // vertex 5 is 5 hops away — beyond the horizon
        };
        assert_eq!(execute_reference(&g, &near_horizon).aggregate, 4.0);
        let unreachable = SsspHops {
            source: VertexId(0),
            target: VertexId(6),
            rounds: 10,
        };
        assert_eq!(execute_reference(&g, &unreachable).aggregate, 11.0);
    }

    #[test]
    fn wcc_counts_components_on_symmetric_graphs() {
        // Two components: a path of 4 and a triangle of 3.
        let mut g = Graph::new(7, 4);
        for i in 0..3 {
            g.add_bidirectional(VertexId(i), VertexId(i + 1)).unwrap();
        }
        g.add_bidirectional(VertexId(4), VertexId(5)).unwrap();
        g.add_bidirectional(VertexId(5), VertexId(6)).unwrap();
        g.add_bidirectional(VertexId(6), VertexId(4)).unwrap();
        let trace = execute_reference(&g, &WccLabels { rounds: 7 });
        assert_eq!(trace.aggregate, 2.0);
    }

    #[test]
    fn wcc_needs_the_diameter_to_converge() {
        // One component shaped 2 — 3 — 0 — 4 — 5: vertex 2 is a local
        // label minimum two hops from the global minimum 0.
        let mut g = Graph::new(6, 4);
        for (a, b) in [(2, 3), (3, 0), (0, 4), (4, 5)] {
            g.add_bidirectional(VertexId(a), VertexId(b)).unwrap();
        }
        // Vertex 1 is isolated — a second component.
        assert_eq!(
            execute_reference(&g, &WccLabels { rounds: 4 }).aggregate,
            2.0
        );
        // One round is too few: label 1 has not yet displaced the local
        // minimum at vertex 2, so the count over-reports (documented
        // convergence requirement: iterations must cover the diameter).
        assert_eq!(
            execute_reference(&g, &WccLabels { rounds: 1 }).aggregate,
            3.0
        );
    }

    #[test]
    fn pagerank_is_a_distribution_and_favours_hubs() {
        // A star: every leaf points at the hub and back.
        let mut g = Graph::new(5, 8);
        for leaf in 1..5 {
            g.add_bidirectional(VertexId(0), VertexId(leaf)).unwrap();
        }
        let ranks: Vec<f64> = (0..5)
            .map(|t| execute_reference(&g, &PageRankRef::new(&g, VertexId(t), 20)).aggregate)
            .collect();
        let total: f64 = ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "ranks sum to {total}");
        for leaf in 1..5 {
            assert!(ranks[0] > ranks[leaf], "hub should outrank leaves");
        }
    }

    #[test]
    fn pagerank_sensitivity_is_the_dyadic_damping_bound() {
        let g = sym_path(3);
        let p = PageRankRef::new(&g, VertexId(0), 4);
        assert!((p.sensitivity() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degree_bin_counts_exactly() {
        let mut g = Graph::new(5, 8);
        // Out-degrees: 0 → 3, 1 → 1, 2 → 1, 3 → 1, 4 → 0.
        g.add_edge(VertexId(0), VertexId(1)).unwrap();
        g.add_edge(VertexId(0), VertexId(2)).unwrap();
        g.add_edge(VertexId(0), VertexId(3)).unwrap();
        g.add_edge(VertexId(1), VertexId(0)).unwrap();
        g.add_edge(VertexId(2), VertexId(0)).unwrap();
        g.add_edge(VertexId(3), VertexId(4)).unwrap();
        for (lo, hi, expected) in [(0, 0, 1.0), (1, 1, 3.0), (2, 3, 1.0), (0, 3, 5.0)] {
            let trace = execute_reference(&g, &DegreeBin::new(&g, lo, hi));
            assert_eq!(trace.aggregate, expected, "bin [{lo}, {hi}]");
        }
    }
}
