//! Streaming, bounded-memory edge generation.
//!
//! DStress's premise is that the graph is *physically distributed* — no
//! participant ever holds the full topology (§2).  The simulation should
//! not have to either: an [`EdgeStream`] emits edges one at a time from a
//! seeded RNG using only `O(V)` working state, so topologies far past the
//! dense-materialisation wall can be generated, measured and (through
//! [`crate::Graph::from_edge_stream`]) stored in compact CSR form.
//!
//! Two generator families are provided, both respecting the public
//! degree bound `D` *by construction* (attachment to a saturated vertex
//! is clamped — redirected or dropped — never emitted):
//!
//! * [`BarabasiAlbertStream`] — scale-free preferential attachment.  Each
//!   new vertex attaches `m` out-edges to earlier vertices with
//!   probability proportional to their degree (plus one), implemented
//!   with `O(1)`-expected rejection sampling against the degree array —
//!   no stub list, no repeated-endpoint table.
//! * [`ConfigurationModelStream`] — a clamped configuration model.  Every
//!   vertex draws an out-stub count and an in-stub capacity from the
//!   seed; out-stubs are paired with in-stubs sampled proportionally to
//!   *remaining* in-capacity.  Stubs that cannot be matched under the
//!   bound are dropped, which is exactly what degree clamping means.
//!
//! Streams are **restartable**: [`EdgeStream::restart`] rewinds the
//! generator to its initial state, and the same seed replays the same
//! edge sequence — the property [`crate::Graph::from_edge_stream`]'s
//! two-pass CSR build and the proptests rely on.
//!
//! ## Example
//!
//! ```
//! use dstress_graph::stream::{BarabasiAlbertStream, EdgeStream};
//! use dstress_graph::Graph;
//!
//! let mut stream = BarabasiAlbertStream::new(1_000, 2, 8, 42);
//! let graph = Graph::from_edge_stream(&mut stream).unwrap();
//! assert_eq!(graph.vertex_count(), 1_000);
//! assert!(graph.is_csr());
//! assert!(graph.max_degree() <= 8);
//! ```

use crate::graph::{Graph, VertexId};
use dstress_math::rng::{DetRng, Xoshiro256};

/// A restartable, seeded source of directed edges.
///
/// Implementations hold `O(V)` state (degree counters, cursors), never a
/// materialised edge list.  The contract consumers rely on:
///
/// * every emitted edge satisfies `from != to`, both endpoints in
///   `0..vertex_count()`, and no endpoint's degree ever exceeds
///   `degree_bound()`;
/// * no duplicate directed edge is emitted;
/// * after [`EdgeStream::restart`], the exact same sequence replays.
pub trait EdgeStream {
    /// Number of vertices the stream generates edges over.
    fn vertex_count(&self) -> usize;

    /// The public degree bound `D` every emitted edge respects.
    fn degree_bound(&self) -> usize;

    /// Emits the next edge, or `None` when the topology is complete.
    fn next_edge(&mut self) -> Option<(VertexId, VertexId)>;

    /// Rewinds the stream to its initial state; the same sequence
    /// replays.
    fn restart(&mut self);
}

/// Replays the edges of an existing [`Graph`] in vertex-major order
/// (all of vertex 0's out-edges, then vertex 1's, …).
///
/// Adapts materialised graphs to stream-consuming APIs and anchors the
/// equivalence proptests between the construction paths.
pub struct GraphEdgeStream<'g> {
    graph: &'g Graph,
    vertex: usize,
    slot: usize,
}

impl<'g> GraphEdgeStream<'g> {
    /// Creates a stream over `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        GraphEdgeStream {
            graph,
            vertex: 0,
            slot: 0,
        }
    }
}

impl EdgeStream for GraphEdgeStream<'_> {
    fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }

    fn degree_bound(&self) -> usize {
        self.graph.degree_bound()
    }

    fn next_edge(&mut self) -> Option<(VertexId, VertexId)> {
        while self.vertex < self.graph.vertex_count() {
            let v = VertexId(self.vertex);
            if let Some(&to) = self.graph.out_neighbors(v).get(self.slot) {
                self.slot += 1;
                return Some((v, to));
            }
            self.vertex += 1;
            self.slot = 0;
        }
        None
    }

    fn restart(&mut self) {
        self.vertex = 0;
        self.slot = 0;
    }
}

/// Where a growth-style stream currently is in its emission schedule.
#[derive(Clone, Copy, Debug)]
enum Cursor {
    /// Emitting the seed ring: next edge starts at this seed vertex.
    Seed(usize),
    /// Growing: `vertex` is attaching, `edge` of its quota already done.
    Grow { vertex: usize, edge: usize },
    /// All edges emitted.
    Done,
}

/// Scale-free topology by Barabási–Albert preferential attachment with
/// degree clamping to the public bound `D`.
///
/// Vertices `0..min(m + 1, n)` form a seed ring; every later vertex `v`
/// attaches `m` out-edges to distinct earlier vertices, chosen with
/// probability proportional to `degree + 1` via rejection sampling (the
/// total degree of any vertex is at most `2 D`, so a uniform proposal is
/// accepted with probability `(degree + 1) / (2 D + 1)` — `O(1)`
/// expected work, `O(V)` total state).  A target whose in-degree has
/// reached `D` is skipped; if rejection stalls, a deterministic scan
/// picks the next unsaturated vertex, and a vertex that cannot place all
/// `m` edges simply emits fewer — that is the clamp.
pub struct BarabasiAlbertStream {
    n: usize,
    m: usize,
    degree_bound: usize,
    seed: u64,
    rng: Xoshiro256,
    /// Total (in + out) degree per vertex: the preferential weight.
    total_degree: Vec<u32>,
    /// In-degree per vertex: the clamped quantity.
    in_degree: Vec<u32>,
    /// Targets already chosen by the in-progress vertex (≤ m entries).
    chosen: Vec<usize>,
    cursor: Cursor,
}

impl BarabasiAlbertStream {
    /// Creates a stream over `n` vertices attaching `m` edges each, with
    /// degree bound `degree_bound` and a deterministic `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero or exceeds the degree bound.
    pub fn new(n: usize, m: usize, degree_bound: usize, seed: u64) -> Self {
        assert!(m >= 1, "attachment count m must be at least 1");
        assert!(
            m <= degree_bound,
            "attachment count m = {m} exceeds degree bound D = {degree_bound}"
        );
        let mut stream = BarabasiAlbertStream {
            n,
            m,
            degree_bound,
            seed,
            rng: Xoshiro256::new(seed),
            total_degree: vec![0; n],
            in_degree: vec![0; n],
            chosen: Vec::with_capacity(m),
            cursor: Cursor::Seed(0),
        };
        stream.restart();
        stream
    }

    /// Number of seed-ring vertices.
    fn seed_size(&self) -> usize {
        (self.m + 1).min(self.n)
    }

    /// Picks the next preferential target for `vertex`, or `None` if
    /// every candidate is saturated or already chosen.
    fn pick_target(&mut self, vertex: usize) -> Option<usize> {
        let d = self.degree_bound as u32;
        // degree + 1 never exceeds 2 D + 1, the rejection envelope.
        let envelope = 2 * self.degree_bound as u64 + 1;
        for _ in 0..64 * (self.degree_bound + 1) {
            let u = self.rng.next_below(vertex as u64) as usize;
            let weight = self.total_degree[u] as u64 + 1;
            if self.rng.next_below(envelope) >= weight {
                continue;
            }
            if self.in_degree[u] >= d || self.chosen.contains(&u) {
                continue;
            }
            return Some(u);
        }
        // Rejection stalled (nearly everything saturated): deterministic
        // scan from a seeded start, so restarts still replay identically.
        let start = self.rng.next_below(vertex as u64) as usize;
        for off in 0..vertex {
            let u = (start + off) % vertex;
            if self.in_degree[u] < d && !self.chosen.contains(&u) {
                return Some(u);
            }
        }
        None
    }

    fn emit(&mut self, from: usize, to: usize) -> Option<(VertexId, VertexId)> {
        self.total_degree[from] += 1;
        self.total_degree[to] += 1;
        self.in_degree[to] += 1;
        Some((VertexId(from), VertexId(to)))
    }
}

impl EdgeStream for BarabasiAlbertStream {
    fn vertex_count(&self) -> usize {
        self.n
    }

    fn degree_bound(&self) -> usize {
        self.degree_bound
    }

    fn next_edge(&mut self) -> Option<(VertexId, VertexId)> {
        loop {
            match self.cursor {
                Cursor::Seed(i) => {
                    let s = self.seed_size();
                    if s < 2 || i >= s {
                        self.cursor = Cursor::Grow {
                            vertex: s.max(1),
                            edge: 0,
                        };
                        self.chosen.clear();
                        continue;
                    }
                    self.cursor = Cursor::Seed(i + 1);
                    return self.emit(i, (i + 1) % s);
                }
                Cursor::Grow { vertex, edge } => {
                    if vertex >= self.n {
                        self.cursor = Cursor::Done;
                        return None;
                    }
                    if edge >= self.m {
                        self.cursor = Cursor::Grow {
                            vertex: vertex + 1,
                            edge: 0,
                        };
                        self.chosen.clear();
                        continue;
                    }
                    match self.pick_target(vertex) {
                        Some(u) => {
                            self.chosen.push(u);
                            self.cursor = Cursor::Grow {
                                vertex,
                                edge: edge + 1,
                            };
                            return self.emit(vertex, u);
                        }
                        None => {
                            // Clamp: this vertex cannot place more edges.
                            self.cursor = Cursor::Grow {
                                vertex: vertex + 1,
                                edge: 0,
                            };
                            self.chosen.clear();
                        }
                    }
                }
                Cursor::Done => return None,
            }
        }
    }

    fn restart(&mut self) {
        self.rng = Xoshiro256::new(self.seed);
        self.total_degree.iter_mut().for_each(|d| *d = 0);
        self.in_degree.iter_mut().for_each(|d| *d = 0);
        self.chosen.clear();
        self.cursor = Cursor::Seed(0);
    }
}

/// A degree-clamped configuration model emitted as a stream.
///
/// Each vertex draws an out-stub count in `1..=max_out_degree` and an
/// in-stub capacity in `1..=D` from the seed.  Vertices emit their
/// out-stubs in order; each stub picks a target with probability
/// proportional to the target's *remaining* in-capacity (rejection
/// sampling against the capacity array — the streaming equivalent of
/// drawing from the in-stub multiset).  Stubs that cannot be matched
/// (everything saturated or duplicate) are dropped, which is the clamp.
pub struct ConfigurationModelStream {
    n: usize,
    degree_bound: usize,
    max_out_degree: usize,
    seed: u64,
    rng: Xoshiro256,
    /// Remaining in-stub capacity per vertex.
    remaining_in: Vec<u32>,
    /// Out-stub quota of the in-progress vertex.
    quota: usize,
    /// Targets already chosen by the in-progress vertex.
    chosen: Vec<usize>,
    cursor: Cursor,
}

impl ConfigurationModelStream {
    /// Creates a stream over `n` vertices with degree bound
    /// `degree_bound`, per-vertex out-degrees drawn in
    /// `1..=max_out_degree`, and a deterministic `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `max_out_degree` is zero or exceeds the degree bound.
    pub fn new(n: usize, degree_bound: usize, max_out_degree: usize, seed: u64) -> Self {
        assert!(max_out_degree >= 1, "max_out_degree must be at least 1");
        assert!(
            max_out_degree <= degree_bound,
            "max_out_degree = {max_out_degree} exceeds degree bound D = {degree_bound}"
        );
        let mut stream = ConfigurationModelStream {
            n,
            degree_bound,
            max_out_degree,
            seed,
            rng: Xoshiro256::new(seed),
            remaining_in: vec![0; n],
            quota: 0,
            chosen: Vec::with_capacity(max_out_degree),
            cursor: Cursor::Grow { vertex: 0, edge: 0 },
        };
        stream.restart();
        stream
    }

    /// Draws a stub count in `1..=limit` (clamped to the vertex count).
    fn draw_stubs(rng: &mut Xoshiro256, limit: usize, n: usize) -> u32 {
        let cap = limit.min(n.saturating_sub(1)).max(1) as u64;
        (1 + rng.next_below(cap)) as u32
    }

    /// Picks an in-stub for `vertex`'s next out-stub, or `None`.
    fn pick_target(&mut self, vertex: usize) -> Option<usize> {
        let envelope = self.degree_bound as u64;
        for _ in 0..64 * (self.degree_bound + 1) {
            let u = self.rng.next_below(self.n as u64) as usize;
            if u == vertex {
                continue;
            }
            // Accept proportionally to the remaining in-capacity: the
            // streaming equivalent of drawing a stub from the multiset.
            if self.rng.next_below(envelope) >= self.remaining_in[u] as u64 {
                continue;
            }
            if self.chosen.contains(&u) {
                continue;
            }
            return Some(u);
        }
        let start = self.rng.next_below(self.n as u64) as usize;
        for off in 0..self.n {
            let u = (start + off) % self.n;
            if u != vertex && self.remaining_in[u] > 0 && !self.chosen.contains(&u) {
                return Some(u);
            }
        }
        None
    }
}

impl EdgeStream for ConfigurationModelStream {
    fn vertex_count(&self) -> usize {
        self.n
    }

    fn degree_bound(&self) -> usize {
        self.degree_bound
    }

    fn next_edge(&mut self) -> Option<(VertexId, VertexId)> {
        if self.n < 2 {
            return None;
        }
        loop {
            match self.cursor {
                Cursor::Grow { vertex, edge } => {
                    if vertex >= self.n {
                        self.cursor = Cursor::Done;
                        return None;
                    }
                    if edge == 0 && self.chosen.is_empty() && self.quota == 0 {
                        self.quota =
                            Self::draw_stubs(&mut self.rng, self.max_out_degree, self.n) as usize;
                    }
                    if edge >= self.quota {
                        self.cursor = Cursor::Grow {
                            vertex: vertex + 1,
                            edge: 0,
                        };
                        self.chosen.clear();
                        self.quota = 0;
                        continue;
                    }
                    match self.pick_target(vertex) {
                        Some(u) => {
                            self.chosen.push(u);
                            self.remaining_in[u] -= 1;
                            self.cursor = Cursor::Grow {
                                vertex,
                                edge: edge + 1,
                            };
                            return Some((VertexId(vertex), VertexId(u)));
                        }
                        None => {
                            // Drop the unmatchable stubs: the clamp.
                            self.cursor = Cursor::Grow {
                                vertex: vertex + 1,
                                edge: 0,
                            };
                            self.chosen.clear();
                            self.quota = 0;
                        }
                    }
                }
                Cursor::Seed(_) => unreachable!("configuration model has no seed stage"),
                Cursor::Done => return None,
            }
        }
    }

    fn restart(&mut self) {
        self.rng = Xoshiro256::new(self.seed);
        // The in-capacities are part of the seeded state: redraw them in
        // a fixed order so the replay is exact.
        for slot in self.remaining_in.iter_mut() {
            *slot = Self::draw_stubs(&mut self.rng, self.degree_bound, self.n);
        }
        self.quota = 0;
        self.chosen.clear();
        self.cursor = Cursor::Grow { vertex: 0, edge: 0 };
    }
}

/// Collects a stream into a list-backed [`Graph`] through the incremental
/// [`Graph::add_edge`] path — the *materialised* build the proptests pin
/// the streaming CSR build against.
///
/// # Panics
///
/// Panics if the stream emits an edge the incremental build rejects
/// (which would be an [`EdgeStream`] contract violation).
pub fn materialise(stream: &mut dyn EdgeStream) -> Graph {
    let mut graph = Graph::new(stream.vertex_count(), stream.degree_bound());
    while let Some((from, to)) = stream.next_edge() {
        graph
            .add_edge(from, to)
            .expect("EdgeStream contract: emitted edges satisfy the graph invariants");
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn collect(stream: &mut dyn EdgeStream) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        while let Some((a, b)) = stream.next_edge() {
            edges.push((a.0, b.0));
        }
        edges
    }

    #[test]
    fn ba_stream_is_deterministic_and_restartable() {
        let mut a = BarabasiAlbertStream::new(200, 2, 6, 9);
        let mut b = BarabasiAlbertStream::new(200, 2, 6, 9);
        let ea = collect(&mut a);
        assert_eq!(ea, collect(&mut b));
        a.restart();
        assert_eq!(ea, collect(&mut a), "restart must replay");
        let mut c = BarabasiAlbertStream::new(200, 2, 6, 10);
        assert_ne!(ea, collect(&mut c), "different seeds differ");
        assert!(!ea.is_empty());
    }

    #[test]
    fn ba_stream_respects_degree_bound_and_is_scale_free() {
        let mut stream = BarabasiAlbertStream::new(400, 2, 8, 3);
        let graph = Graph::from_edge_stream(&mut stream).unwrap();
        assert_eq!(graph.vertex_count(), 400);
        assert!(graph.max_degree() <= 8);
        // Preferential attachment concentrates degree: the busiest vertex
        // saturates while the median stays near m.
        let degrees: Vec<usize> = graph
            .vertices()
            .map(|v| graph.in_degree(v) + graph.out_degree(v))
            .collect();
        let max = *degrees.iter().max().unwrap();
        let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        assert!(max as f64 > 2.0 * mean, "max {max}, mean {mean}");
        // Edges land close to m per grown vertex (clamping allows less).
        assert!(graph.edge_count() >= 400);
    }

    #[test]
    fn ba_handles_degenerate_sizes() {
        assert!(collect(&mut BarabasiAlbertStream::new(0, 1, 2, 1)).is_empty());
        assert!(collect(&mut BarabasiAlbertStream::new(1, 1, 2, 1)).is_empty());
        let two = collect(&mut BarabasiAlbertStream::new(2, 1, 2, 1));
        assert!(!two.is_empty());
        for &(a, b) in &two {
            assert_ne!(a, b);
        }
    }

    #[test]
    fn config_model_is_deterministic_and_bounded() {
        let mut a = ConfigurationModelStream::new(150, 6, 3, 11);
        let mut b = ConfigurationModelStream::new(150, 6, 3, 11);
        let ea = collect(&mut a);
        assert_eq!(ea, collect(&mut b));
        a.restart();
        assert_eq!(ea, collect(&mut a));
        let graph =
            Graph::from_edge_stream(&mut ConfigurationModelStream::new(150, 6, 3, 11)).unwrap();
        assert!(graph.max_degree() <= 6);
        assert!(graph.edge_count() >= 150, "every vertex has >= 1 out-stub");
        for v in graph.vertices() {
            assert!(graph.out_degree(v) <= 3);
        }
    }

    #[test]
    fn graph_edge_stream_replays_vertex_major() {
        let mut g = Graph::new(4, 3);
        g.add_edge(VertexId(2), VertexId(0)).unwrap();
        g.add_edge(VertexId(0), VertexId(1)).unwrap();
        g.add_edge(VertexId(0), VertexId(3)).unwrap();
        let mut stream = GraphEdgeStream::new(&g);
        assert_eq!(collect(&mut stream), vec![(0, 1), (0, 3), (2, 0)]);
        stream.restart();
        assert_eq!(collect(&mut stream), vec![(0, 1), (0, 3), (2, 0)]);
        assert_eq!(stream.vertex_count(), 4);
        assert_eq!(stream.degree_bound(), 3);
    }

    /// The satellite pin: the streaming CSR build and the materialised
    /// incremental build agree edge-for-edge at small `n`, for both
    /// generators, across seeds.
    fn assert_stream_matches_materialised<S: EdgeStream>(mut make: impl FnMut() -> S) {
        let csr = Graph::from_edge_stream(&mut make()).unwrap();
        let lists = materialise(&mut make());
        assert_eq!(csr.vertex_count(), lists.vertex_count());
        assert_eq!(csr.edge_count(), lists.edge_count());
        assert_eq!(csr.degree_bound(), lists.degree_bound());
        for v in csr.vertices() {
            assert_eq!(csr.out_neighbors(v), lists.out_neighbors(v), "{v}");
            assert_eq!(csr.in_neighbors(v), lists.in_neighbors(v), "{v}");
        }
        let bound = csr.degree_bound();
        assert!(csr.max_degree() <= bound);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_ba_streaming_matches_materialised(
            n in 2usize..120,
            m in 1usize..4,
            extra_bound in 0usize..6,
            seed in any::<u64>(),
        ) {
            let d = m + 1 + extra_bound;
            assert_stream_matches_materialised(|| BarabasiAlbertStream::new(n, m, d, seed));
        }

        #[test]
        fn prop_config_model_streaming_matches_materialised(
            n in 2usize..120,
            max_out in 1usize..4,
            extra_bound in 0usize..6,
            seed in any::<u64>(),
        ) {
            let d = max_out + extra_bound;
            assert_stream_matches_materialised(
                || ConfigurationModelStream::new(n, d, max_out, seed),
            );
        }

        #[test]
        fn prop_streams_are_deterministic_across_runs(
            n in 2usize..80,
            seed in any::<u64>(),
        ) {
            let a = Graph::from_edge_stream(&mut BarabasiAlbertStream::new(n, 1, 4, seed)).unwrap();
            let b = Graph::from_edge_stream(&mut BarabasiAlbertStream::new(n, 1, 4, seed)).unwrap();
            prop_assert_eq!(a.edge_count(), b.edge_count());
            for v in a.vertices() {
                prop_assert_eq!(a.out_neighbors(v), b.out_neighbors(v));
            }
        }
    }
}
