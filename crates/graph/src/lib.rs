//! Graphs and vertex programs for the DStress reproduction.
//!
//! DStress computes over a directed graph that is physically distributed:
//! each participant owns one vertex, its adjacent edges and its vertex
//! properties (§2).  The computation itself is expressed as a *vertex
//! program* (§3.1): per-vertex state, an update function, one message per
//! out-edge per round (with a no-op message `⊥` for padding), a fixed
//! iteration count, an aggregation function and a sensitivity bound.
//!
//! This crate provides:
//!
//! * [`graph`] — the directed graph type with degree-bound bookkeeping
//!   (the public bound `D` of assumption 4 in §3.2).
//! * [`program`] — the vertex-program trait in its plaintext form, which
//!   the finance crate implements for Eisenberg–Noe and
//!   Elliott–Golub–Jackson.
//! * [`reference`](mod@reference) — the plaintext reference executor: the "ideal
//!   functionality" that the secure runtime in `dstress-core` must agree
//!   with (up to DP noise).
//! * [`analytics`] — the plaintext reference forms of the DP
//!   graph-analytics suite (PageRank, WCC label propagation, SSSP hop
//!   counts, degree histogram); the circuit encodings live in
//!   `dstress_core::analytics`.
//! * [`generate`] — generic random-graph generators used to build test
//!   topologies (the financial core–periphery generator lives in
//!   `dstress-finance`).
//! * [`stream`] — streaming, bounded-memory generators: an
//!   [`stream::EdgeStream`] emits edges one at a time from a seeded RNG
//!   with `O(V)` state (scale-free Barabási–Albert and a clamped
//!   configuration model), and [`Graph::from_edge_stream`] stores the
//!   result in compact CSR form — the path past the dense
//!   materialisation wall.
//!
//! ## Example
//!
//! ```
//! use dstress_graph::generate::ring_with_chords;
//! use dstress_math::rng::Xoshiro256;
//!
//! // 8 participants in a ring with one extra chord, degree bound 3.
//! let mut rng = Xoshiro256::new(7);
//! let graph = ring_with_chords(8, 1, 3, &mut rng);
//! assert_eq!(graph.vertex_count(), 8);
//! assert!(graph.edge_count() >= 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytics;
pub mod generate;
pub mod graph;
pub mod program;
pub mod reference;
pub mod stream;

pub use analytics::{DegreeBin, PageRankRef, SsspHops, WccLabels};
pub use graph::{Graph, GraphError, VertexId};
pub use program::VertexProgram;
pub use reference::{execute_reference, ReferenceTrace};
pub use stream::{BarabasiAlbertStream, ConfigurationModelStream, EdgeStream, GraphEdgeStream};
