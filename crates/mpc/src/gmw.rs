//! The GMW protocol over Boolean circuits.
//!
//! In GMW every wire value is XOR-shared among the parties.  XOR and NOT
//! gates are evaluated locally (for NOT, a designated party flips its
//! share); each AND gate requires one 1-out-of-4 oblivious transfer per
//! unordered party pair; the number of sequential communication rounds
//! equals the circuit's AND depth.  This is exactly the protocol the
//! DStress prototype runs inside each block (§3.3, §5.1), and its cost
//! structure — traffic quadratic in the block size overall but linear per
//! node, time linear in block size because the pairwise work proceeds in
//! parallel — is what produces the shapes of Figures 3 and 4.
//!
//! The protocol is implemented as per-party state machines
//! ([`crate::party::GmwParty`]) driven by a
//! [`dstress_net::transport::Transport`]: the same parties run
//! deterministically in process ([`SimTransport`]) or genuinely
//! concurrently across a worker pool
//! ([`dstress_net::ThreadedTransport`]), with bit-identical results.
//! [`GmwProtocol::execute`] is the convenience entry point over the
//! deterministic backend.
//!
//! The executor measures, for every run: per-party bytes sent/received,
//! the number of OTs and AND gates, and the number of communication
//! rounds.  Those measurements feed the harness directly.

use crate::error::MpcError;
use crate::party::{GmwMessage, GmwParty, OtConfig};
use dstress_circuit::{Circuit, CircuitStats};
use dstress_crypto::sharing::{split_xor_bit, xor_reconstruct_bit};
use dstress_math::rng::DetRng;
use dstress_net::cost::OperationCounts;
use dstress_net::traffic::{NodeId, TrafficAccountant};
use dstress_net::transport::{NodeActor, SimTransport, Transport};

/// Configuration of a GMW execution.
#[derive(Clone, Debug)]
pub struct GmwConfig {
    /// Number of parties (the DStress block size `k + 1`).
    pub parties: usize,
    /// Node identities used for traffic accounting, one per party.
    pub node_ids: Vec<NodeId>,
}

impl GmwConfig {
    /// Creates a configuration for `parties` parties with node ids
    /// `0..parties`.
    pub fn with_default_ids(parties: usize) -> Self {
        GmwConfig {
            parties,
            node_ids: (0..parties).map(NodeId).collect(),
        }
    }

    /// Creates a configuration with explicit node identities.
    pub fn with_node_ids(node_ids: Vec<NodeId>) -> Self {
        GmwConfig {
            parties: node_ids.len(),
            node_ids,
        }
    }
}

/// Result of a GMW execution.
#[derive(Clone, Debug)]
pub struct GmwExecution {
    /// Output shares, indexed `[party][output bit]`; XORing across parties
    /// reconstructs each output bit.
    pub output_shares: Vec<Vec<bool>>,
    /// Operation counts accumulated during the execution (including the
    /// OT provider's counts for this run).
    pub counts: OperationCounts,
    /// Number of sequential communication rounds (the circuit's AND depth
    /// plus the output round).
    pub rounds: u64,
    /// Per-party bytes sent during this execution.
    pub bytes_sent_per_party: Vec<u64>,
}

/// The GMW protocol executor.
#[derive(Clone, Debug)]
pub struct GmwProtocol {
    config: GmwConfig,
}

impl GmwProtocol {
    /// Creates an executor for the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::TooFewParties`] for fewer than two parties.
    pub fn new(config: GmwConfig) -> Result<Self, MpcError> {
        if config.parties < 2 {
            return Err(MpcError::TooFewParties {
                parties: config.parties,
            });
        }
        if config.node_ids.len() != config.parties {
            return Err(MpcError::TooFewParties {
                parties: config.node_ids.len(),
            });
        }
        Ok(GmwProtocol { config })
    }

    /// Number of parties.
    pub fn parties(&self) -> usize {
        self.config.parties
    }

    /// Executes `circuit` on XOR-shared inputs with the deterministic
    /// in-process transport ([`SimTransport`]).
    ///
    /// `input_shares[p]` holds party `p`'s share of every input bit (so
    /// each inner vector has length `circuit.num_inputs()`, and XORing the
    /// vectors across parties yields the plaintext inputs).  The
    /// [`OtConfig`] selects the provider each party pair instantiates for
    /// its AND-gate transfers; traffic is recorded against the configured
    /// node ids.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::InputShareMismatch`] if the share vectors have
    /// the wrong shape.
    pub fn execute(
        &self,
        circuit: &Circuit,
        input_shares: &[Vec<bool>],
        ot: &OtConfig,
        traffic: &mut TrafficAccountant,
        rng: &mut dyn DetRng,
    ) -> Result<GmwExecution, MpcError> {
        self.execute_on(&SimTransport, circuit, input_shares, ot, traffic, rng)
    }

    /// Executes `circuit` on the given transport backend, drawing the
    /// master seed from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::InputShareMismatch`] for malformed share
    /// vectors and [`MpcError::Transport`] if the transport stalls.
    pub fn execute_on(
        &self,
        transport: &dyn Transport<GmwMessage>,
        circuit: &Circuit,
        input_shares: &[Vec<bool>],
        ot: &OtConfig,
        traffic: &mut TrafficAccountant,
        rng: &mut dyn DetRng,
    ) -> Result<GmwExecution, MpcError> {
        let master_seed = rng.next_u64();
        self.execute_seeded(transport, circuit, input_shares, ot, traffic, master_seed)
    }

    /// Executes `circuit` on the given transport backend with an explicit
    /// master seed.
    ///
    /// Every party's randomness and every pair's OT provider derive
    /// deterministically from `master_seed`, so the same seed produces
    /// bit-identical output shares and identical [`OperationCounts`] on
    /// every backend — the invariant the workspace's determinism suite
    /// asserts across [`SimTransport`] and
    /// [`dstress_net::ThreadedTransport`].
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::InputShareMismatch`] for malformed share
    /// vectors and [`MpcError::Transport`] if the transport stalls.
    pub fn execute_seeded(
        &self,
        transport: &dyn Transport<GmwMessage>,
        circuit: &Circuit,
        input_shares: &[Vec<bool>],
        ot: &OtConfig,
        traffic: &mut TrafficAccountant,
        master_seed: u64,
    ) -> Result<GmwExecution, MpcError> {
        let n = self.config.parties;
        if input_shares.len() != n {
            return Err(MpcError::InputShareMismatch {
                expected: n,
                actual: input_shares.len(),
            });
        }
        for shares in input_shares {
            if shares.len() != circuit.num_inputs() {
                return Err(MpcError::InputShareMismatch {
                    expected: circuit.num_inputs(),
                    actual: shares.len(),
                });
            }
        }

        let mut parties: Vec<GmwParty> = (0..n)
            .map(|p| {
                GmwParty::new(
                    circuit,
                    p,
                    self.config.node_ids.clone(),
                    input_shares[p].clone(),
                    ot,
                    master_seed,
                )
            })
            .collect();
        {
            let mut actors: Vec<&mut dyn NodeActor<GmwMessage>> = parties
                .iter_mut()
                .map(|p| p as &mut dyn NodeActor<GmwMessage>)
                .collect();
            transport.run(&mut actors).map_err(MpcError::Transport)?;
        }

        // Merge the per-party accounting.  Each pair's flows live in
        // exactly one party's accountant, so the merge is exact; counts
        // are sums and therefore order-independent.
        let mut merged_traffic = TrafficAccountant::with_pair_tracking();
        let mut counts = OperationCounts::default();
        for party in &parties {
            merged_traffic.merge(party.traffic());
            counts.merge(party.counts());
        }
        let stats = CircuitStats::of(circuit);
        let rounds = stats.and_depth as u64 + 1;
        counts.and_gates += stats.and_gates as u64;
        counts.free_gates += (stats.xor_gates + stats.not_gates) as u64;
        counts.rounds += rounds;
        let bytes_sent_per_party: Vec<u64> = self
            .config
            .node_ids
            .iter()
            .map(|&id| merged_traffic.node(id).bytes_sent)
            .collect();
        counts.bytes_sent += bytes_sent_per_party.iter().sum::<u64>();

        let output_shares: Vec<Vec<bool>> = parties.iter().map(GmwParty::output_share).collect();
        traffic.merge(&merged_traffic);

        Ok(GmwExecution {
            output_shares,
            counts,
            rounds,
            bytes_sent_per_party,
        })
    }
}

/// Splits plaintext input bits into XOR shares for `parties` parties.
pub fn share_inputs(inputs: &[bool], parties: usize, rng: &mut dyn DetRng) -> Vec<Vec<bool>> {
    let mut shares: Vec<Vec<bool>> = vec![Vec::with_capacity(inputs.len()); parties];
    for &bit in inputs {
        let bit_shares = split_xor_bit(bit, parties, rng);
        for (p, share) in bit_shares.into_iter().enumerate() {
            shares[p].push(share);
        }
    }
    shares
}

/// Reconstructs plaintext outputs from per-party output shares.
///
/// # Errors
///
/// Returns [`MpcError::OutputShareMismatch`] if the share vectors disagree
/// in length or no shares are provided.
pub fn reconstruct_outputs(output_shares: &[Vec<bool>]) -> Result<Vec<bool>, MpcError> {
    let first = output_shares.first().ok_or(MpcError::OutputShareMismatch)?;
    let len = first.len();
    if output_shares.iter().any(|s| s.len() != len) {
        return Err(MpcError::OutputShareMismatch);
    }
    Ok((0..len)
        .map(|i| xor_reconstruct_bit(&output_shares.iter().map(|s| s[i]).collect::<Vec<_>>()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_circuit::builder::{decode_word, encode_word, CircuitBuilder};
    use dstress_circuit::evaluate;
    use dstress_crypto::group::GroupKind;
    use dstress_math::rng::Xoshiro256;
    use proptest::prelude::*;

    fn adder_circuit(width: u32) -> Circuit {
        let mut b = CircuitBuilder::new();
        let x = b.input_word(width);
        let y = b.input_word(width);
        let s = b.add(&x, &y);
        b.output_word(&s);
        b.build().unwrap()
    }

    fn run_gmw(
        circuit: &Circuit,
        inputs: &[bool],
        parties: usize,
        seed: u64,
    ) -> (Vec<bool>, GmwExecution) {
        let mut rng = Xoshiro256::new(seed);
        let shares = share_inputs(inputs, parties, &mut rng);
        let protocol = GmwProtocol::new(GmwConfig::with_default_ids(parties)).unwrap();
        let mut traffic = TrafficAccountant::new();
        let exec = protocol
            .execute(
                circuit,
                &shares,
                &OtConfig::extension(),
                &mut traffic,
                &mut rng,
            )
            .unwrap();
        let outputs = reconstruct_outputs(&exec.output_shares).unwrap();
        (outputs, exec)
    }

    #[test]
    fn rejects_single_party() {
        assert!(matches!(
            GmwProtocol::new(GmwConfig::with_default_ids(1)).unwrap_err(),
            MpcError::TooFewParties { parties: 1 }
        ));
    }

    #[test]
    fn matches_plaintext_adder() {
        let circuit = adder_circuit(16);
        let mut inputs = encode_word(1234, 16);
        inputs.extend(encode_word(4321, 16));
        let expected = evaluate(&circuit, &inputs).unwrap();
        for parties in [2usize, 3, 5, 8] {
            let (outputs, _) = run_gmw(&circuit, &inputs, parties, 7);
            assert_eq!(outputs, expected, "parties = {parties}");
            assert_eq!(decode_word(&outputs), 5555);
        }
    }

    #[test]
    fn matches_plaintext_on_all_gate_kinds() {
        // Circuit exercising XOR, AND, NOT, constants and MUX.
        let mut b = CircuitBuilder::new();
        let x = b.input_word(8);
        let y = b.input_word(8);
        let lt = b.lt_unsigned(&x, &y);
        let mn = b.mux_word(lt, &x, &y);
        let t = b.const_bit(true);
        let flipped = b.not(lt);
        let both = b.and(t, flipped);
        b.output_word(&mn);
        b.output(both);
        let circuit = b.build().unwrap();

        for (a, bb) in [(5u64, 9u64), (9, 5), (7, 7), (0, 255)] {
            let mut inputs = encode_word(a, 8);
            inputs.extend(encode_word(bb, 8));
            let expected = evaluate(&circuit, &inputs).unwrap();
            let (outputs, _) = run_gmw(&circuit, &inputs, 3, 11);
            assert_eq!(outputs, expected, "a={a} b={bb}");
        }
    }

    #[test]
    fn works_with_real_elgamal_ot() {
        let mut b = CircuitBuilder::new();
        let x = b.input_word(4);
        let y = b.input_word(4);
        let p = b.mul(&x, &y);
        b.output_word(&p);
        let circuit = b.build().unwrap();

        let mut inputs = encode_word(5, 4);
        inputs.extend(encode_word(3, 4));
        let mut rng = Xoshiro256::new(3);
        let shares = share_inputs(&inputs, 3, &mut rng);
        let protocol = GmwProtocol::new(GmwConfig::with_default_ids(3)).unwrap();
        let mut traffic = TrafficAccountant::new();
        let exec = protocol
            .execute(
                &circuit,
                &shares,
                &OtConfig::elgamal(GroupKind::Sim64),
                &mut traffic,
                &mut rng,
            )
            .unwrap();
        let outputs = reconstruct_outputs(&exec.output_shares).unwrap();
        assert_eq!(decode_word(&outputs), 15);
        assert!(exec.counts.exponentiations > 0);
    }

    #[test]
    fn input_share_shape_is_checked() {
        let circuit = adder_circuit(4);
        let protocol = GmwProtocol::new(GmwConfig::with_default_ids(3)).unwrap();
        let ot = OtConfig::extension();
        let mut traffic = TrafficAccountant::new();
        let mut rng = Xoshiro256::new(1);
        // Wrong number of parties.
        let err = protocol
            .execute(
                &circuit,
                &vec![vec![false; 8]; 2],
                &ot,
                &mut traffic,
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, MpcError::InputShareMismatch { .. }));
        // Wrong number of bits.
        let err = protocol
            .execute(
                &circuit,
                &vec![vec![false; 7]; 3],
                &ot,
                &mut traffic,
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, MpcError::InputShareMismatch { .. }));
    }

    #[test]
    fn counts_scale_with_parties() {
        let circuit = adder_circuit(16);
        let mut inputs = encode_word(100, 16);
        inputs.extend(encode_word(200, 16));
        let (_, exec_small) = run_gmw(&circuit, &inputs, 4, 5);
        let (_, exec_large) = run_gmw(&circuit, &inputs, 8, 5);
        // AND gates are a circuit property, independent of party count.
        assert_eq!(exec_small.counts.and_gates, exec_large.counts.and_gates);
        // But OTs scale with the number of pairs: 6 pairs vs 28 pairs.
        assert_eq!(
            exec_small.counts.extended_ots * 28 / 6,
            exec_large.counts.extended_ots
        );
        assert!(exec_large.counts.bytes_sent > exec_small.counts.bytes_sent);
    }

    #[test]
    fn rounds_equal_and_depth_plus_one() {
        let circuit = adder_circuit(8);
        let stats = CircuitStats::of(&circuit);
        let mut inputs = encode_word(1, 8);
        inputs.extend(encode_word(2, 8));
        let (_, exec) = run_gmw(&circuit, &inputs, 3, 9);
        assert_eq!(exec.rounds, stats.and_depth as u64 + 1);
    }

    #[test]
    fn traffic_is_attributed_to_node_ids() {
        let circuit = adder_circuit(8);
        let mut inputs = encode_word(3, 8);
        inputs.extend(encode_word(4, 8));
        let mut rng = Xoshiro256::new(13);
        let shares = share_inputs(&inputs, 3, &mut rng);
        let ids = vec![NodeId(10), NodeId(20), NodeId(30)];
        let protocol = GmwProtocol::new(GmwConfig::with_node_ids(ids.clone())).unwrap();
        let mut traffic = TrafficAccountant::new();
        let exec = protocol
            .execute(
                &circuit,
                &shares,
                &OtConfig::extension(),
                &mut traffic,
                &mut rng,
            )
            .unwrap();
        for &id in &ids {
            assert!(traffic.node(id).bytes_sent > 0, "node {id} sent nothing");
        }
        // Per-party bytes in the execution agree with the accountant.
        for (p, &id) in ids.iter().enumerate() {
            assert_eq!(traffic.node(id).bytes_sent, exec.bytes_sent_per_party[p]);
        }
    }

    #[test]
    fn reconstruct_rejects_inconsistent_shares() {
        assert!(reconstruct_outputs(&[]).is_err());
        assert!(reconstruct_outputs(&[vec![true], vec![true, false]]).is_err());
        assert_eq!(
            reconstruct_outputs(&[vec![true, false], vec![true, true]]).unwrap(),
            vec![false, true]
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_gmw_matches_plaintext(a in 0u64..65536, b in 0u64..65536, seed in any::<u64>()) {
            let circuit = adder_circuit(16);
            let mut inputs = encode_word(a, 16);
            inputs.extend(encode_word(b, 16));
            let expected = evaluate(&circuit, &inputs).unwrap();
            let (outputs, _) = run_gmw(&circuit, &inputs, 3, seed);
            prop_assert_eq!(outputs, expected);
        }

        #[test]
        fn prop_share_reconstruct_roundtrip(bits in proptest::collection::vec(any::<bool>(), 1..64), parties in 2usize..10, seed in any::<u64>()) {
            let mut rng = Xoshiro256::new(seed);
            let shares = share_inputs(&bits, parties, &mut rng);
            prop_assert_eq!(shares.len(), parties);
            let rebuilt = reconstruct_outputs(&shares).unwrap();
            prop_assert_eq!(rebuilt, bits);
        }
    }
}
