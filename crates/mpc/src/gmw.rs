//! The GMW protocol over Boolean circuits.
//!
//! In GMW every wire value is XOR-shared among the parties.  XOR and NOT
//! gates are evaluated locally (for NOT, a designated party flips its
//! share); each AND gate requires one 1-out-of-4 oblivious transfer per
//! unordered party pair.  All OTs of one circuit *layer* are independent,
//! so the engine batches them into a single message exchange per pair per
//! layer ([`GmwBatching::Layered`], the default): the number of
//! sequential communication rounds scales with the circuit's AND depth,
//! not its AND-gate count — the amortisation that makes the paper's
//! wide-area deployment viable (§5.1).  The historical one-exchange-per-
//! gate path remains available ([`GmwBatching::PerGate`]) for A/B round
//! measurements and is bit-identical in everything but rounds.  This is
//! exactly the protocol the DStress prototype runs inside each block
//! (§3.3, §5.1), and its cost structure — traffic quadratic in the block
//! size overall but linear per node, time linear in block size because
//! the pairwise work proceeds in parallel — is what produces the shapes
//! of Figures 3 and 4.
//!
//! The protocol is implemented as per-party state machines
//! ([`crate::party::GmwParty`]) driven by a
//! [`dstress_net::transport::Transport`]: the same parties run
//! deterministically in process ([`SimTransport`]) or genuinely
//! concurrently across a worker pool
//! ([`dstress_net::ThreadedTransport`]), with bit-identical results.
//! [`GmwProtocol::execute`] is the convenience entry point over the
//! deterministic backend.
//!
//! The executor measures, for every run: per-party bytes sent/received,
//! the number of OTs and AND gates, and the number of communication
//! rounds.  Those measurements feed the harness directly.

use crate::error::MpcError;
use crate::party::{GmwBatching, GmwMessage, GmwParty, OtConfig};
use dstress_circuit::{Circuit, CircuitLayers, CircuitStats};
use dstress_crypto::sharing::{split_xor_bit, xor_reconstruct_bit};
use dstress_math::rng::DetRng;
use dstress_net::cost::OperationCounts;
use dstress_net::traffic::{NodeId, TrafficAccountant};
use dstress_net::transport::{NodeActor, SimTransport, Transport};

/// Configuration of a GMW execution.
#[derive(Clone, Debug)]
pub struct GmwConfig {
    /// Number of parties (the DStress block size `k + 1`).
    pub parties: usize,
    /// Node identities used for traffic accounting, one per party.
    pub node_ids: Vec<NodeId>,
    /// How AND-gate OTs are grouped into messages (layer-batched by
    /// default; per-gate kept for A/B round measurements).
    pub batching: GmwBatching,
}

impl GmwConfig {
    /// Creates a configuration for `parties` parties with node ids
    /// `0..parties`.
    pub fn with_default_ids(parties: usize) -> Self {
        GmwConfig {
            parties,
            node_ids: (0..parties).map(NodeId).collect(),
            batching: GmwBatching::default(),
        }
    }

    /// Creates a configuration with explicit node identities.
    pub fn with_node_ids(node_ids: Vec<NodeId>) -> Self {
        GmwConfig {
            parties: node_ids.len(),
            node_ids,
            batching: GmwBatching::default(),
        }
    }

    /// Selects the AND-gate batching mode.
    pub fn with_batching(mut self, batching: GmwBatching) -> Self {
        self.batching = batching;
        self
    }
}

/// Result of a GMW execution.
#[derive(Clone, Debug)]
pub struct GmwExecution {
    /// Output shares, indexed `[party][output bit]`; XORing across parties
    /// reconstructs each output bit.
    pub output_shares: Vec<Vec<bool>>,
    /// Operation counts accumulated during the execution (including the
    /// OT provider's counts for this run).
    pub counts: OperationCounts,
    /// Measured sequential one-way communication rounds per party pair
    /// (pairs exchange in parallel, so this is the critical path, not a
    /// sum over pairs): the OT session setup, two rounds per AND layer
    /// ([`GmwBatching::Layered`]) or per AND gate
    /// ([`GmwBatching::PerGate`]), plus the output-reconstruction round.
    pub rounds: u64,
    /// Per-party bytes sent during this execution (analytical model).
    pub bytes_sent_per_party: Vec<u64>,
    /// Per-party bytes *measured* on the wire: the summed encoded sizes
    /// of every message the party sent through the transport.
    pub wire_bytes_per_party: Vec<u64>,
}

/// The GMW protocol executor.
#[derive(Clone, Debug)]
pub struct GmwProtocol {
    config: GmwConfig,
}

impl GmwProtocol {
    /// Creates an executor for the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::TooFewParties`] for fewer than two parties.
    pub fn new(config: GmwConfig) -> Result<Self, MpcError> {
        if config.parties < 2 {
            return Err(MpcError::TooFewParties {
                parties: config.parties,
            });
        }
        if config.node_ids.len() != config.parties {
            return Err(MpcError::TooFewParties {
                parties: config.node_ids.len(),
            });
        }
        Ok(GmwProtocol { config })
    }

    /// Number of parties.
    pub fn parties(&self) -> usize {
        self.config.parties
    }

    /// Executes `circuit` on XOR-shared inputs with the deterministic
    /// in-process transport ([`SimTransport`]).
    ///
    /// `input_shares[p]` holds party `p`'s share of every input bit (so
    /// each inner vector has length `circuit.num_inputs()`, and XORing the
    /// vectors across parties yields the plaintext inputs).  The
    /// [`OtConfig`] selects the provider each party pair instantiates for
    /// its AND-gate transfers; traffic is recorded against the configured
    /// node ids.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::InputShareMismatch`] if the share vectors have
    /// the wrong shape.
    pub fn execute(
        &self,
        circuit: &Circuit,
        input_shares: &[Vec<bool>],
        ot: &OtConfig,
        traffic: &mut TrafficAccountant,
        rng: &mut dyn DetRng,
    ) -> Result<GmwExecution, MpcError> {
        self.execute_on(&SimTransport, circuit, input_shares, ot, traffic, rng)
    }

    /// Executes `circuit` on the given transport backend, drawing the
    /// master seed from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::InputShareMismatch`] for malformed share
    /// vectors and [`MpcError::Transport`] if the transport stalls.
    pub fn execute_on(
        &self,
        transport: &dyn Transport<GmwMessage>,
        circuit: &Circuit,
        input_shares: &[Vec<bool>],
        ot: &OtConfig,
        traffic: &mut TrafficAccountant,
        rng: &mut dyn DetRng,
    ) -> Result<GmwExecution, MpcError> {
        let master_seed = rng.next_u64();
        self.execute_seeded(transport, circuit, input_shares, ot, traffic, master_seed)
    }

    /// Executes `circuit` on the given transport backend with an explicit
    /// master seed.
    ///
    /// Every party's randomness and every pair's OT provider derive
    /// deterministically from `master_seed`, so the same seed produces
    /// bit-identical output shares and identical [`OperationCounts`] on
    /// every backend — the invariant the workspace's determinism suite
    /// asserts across [`SimTransport`] and
    /// [`dstress_net::ThreadedTransport`].
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::InputShareMismatch`] for malformed share
    /// vectors and [`MpcError::Transport`] if the transport stalls.
    pub fn execute_seeded(
        &self,
        transport: &dyn Transport<GmwMessage>,
        circuit: &Circuit,
        input_shares: &[Vec<bool>],
        ot: &OtConfig,
        traffic: &mut TrafficAccountant,
        master_seed: u64,
    ) -> Result<GmwExecution, MpcError> {
        let n = self.config.parties;
        if input_shares.len() != n {
            return Err(MpcError::InputShareMismatch {
                expected: n,
                actual: input_shares.len(),
            });
        }
        for shares in input_shares {
            if shares.len() != circuit.num_inputs() {
                return Err(MpcError::InputShareMismatch {
                    expected: circuit.num_inputs(),
                    actual: shares.len(),
                });
            }
        }

        // One layering pass per execution, shared by every party.
        let layers = CircuitLayers::of(circuit);
        let mut parties: Vec<GmwParty> = (0..n)
            .map(|p| {
                GmwParty::new(
                    circuit,
                    &layers,
                    p,
                    self.config.node_ids.clone(),
                    input_shares[p].clone(),
                    ot,
                    master_seed,
                    self.config.batching,
                )
            })
            .collect();
        let tally = {
            let mut actors: Vec<&mut dyn NodeActor<GmwMessage>> = parties
                .iter_mut()
                .map(|p| p as &mut dyn NodeActor<GmwMessage>)
                .collect();
            transport.run(&mut actors).map_err(MpcError::Transport)?
        };

        // Merge the per-party accounting.  Each pair's flows live in
        // exactly one party's accountant, so the merge is exact; counts
        // are sums and therefore order-independent.
        let mut merged_traffic = TrafficAccountant::with_pair_tracking();
        let mut counts = OperationCounts::default();
        for party in &parties {
            merged_traffic.merge(party.traffic());
            counts.merge(party.counts());
        }
        let stats = CircuitStats::of(circuit);
        // Rounds are *measured* from the parties' exchange counters, not
        // derived from circuit statistics: every pair exchanges in
        // parallel, so the critical path is the per-pair maximum plus the
        // final output-reconstruction round.
        let rounds = parties.iter().map(GmwParty::rounds).max().unwrap_or(0) + 1;
        counts.and_gates += stats.and_gates as u64;
        counts.free_gates += (stats.xor_gates + stats.not_gates) as u64;
        counts.rounds += rounds;
        let bytes_sent_per_party: Vec<u64> = self
            .config
            .node_ids
            .iter()
            .map(|&id| merged_traffic.node(id).bytes_sent)
            .collect();
        counts.bytes_sent += bytes_sent_per_party.iter().sum::<u64>();

        // Attribute the *measured* encoded bytes (from the transport's
        // tally, local indices) to the configured node identities, next
        // to the analytical totals the parties recorded.
        let mut wire_bytes_per_party = vec![0u64; n];
        for (from, to, bytes, _messages) in tally.pairs() {
            merged_traffic.record_wire(self.config.node_ids[from], self.config.node_ids[to], bytes);
            wire_bytes_per_party[from] += bytes;
        }
        counts.wire_bytes += tally.total_bytes();

        let output_shares: Vec<Vec<bool>> = parties.iter().map(GmwParty::output_share).collect();
        traffic.merge(&merged_traffic);

        Ok(GmwExecution {
            output_shares,
            counts,
            rounds,
            bytes_sent_per_party,
            wire_bytes_per_party,
        })
    }
}

/// Splits plaintext input bits into XOR shares for `parties` parties.
pub fn share_inputs(inputs: &[bool], parties: usize, rng: &mut dyn DetRng) -> Vec<Vec<bool>> {
    let mut shares: Vec<Vec<bool>> = vec![Vec::with_capacity(inputs.len()); parties];
    for &bit in inputs {
        let bit_shares = split_xor_bit(bit, parties, rng);
        for (p, share) in bit_shares.into_iter().enumerate() {
            shares[p].push(share);
        }
    }
    shares
}

/// Reconstructs plaintext outputs from per-party output shares.
///
/// # Errors
///
/// Returns [`MpcError::OutputShareMismatch`] if the share vectors disagree
/// in length or no shares are provided.
pub fn reconstruct_outputs(output_shares: &[Vec<bool>]) -> Result<Vec<bool>, MpcError> {
    let first = output_shares.first().ok_or(MpcError::OutputShareMismatch)?;
    let len = first.len();
    if output_shares.iter().any(|s| s.len() != len) {
        return Err(MpcError::OutputShareMismatch);
    }
    Ok((0..len)
        .map(|i| xor_reconstruct_bit(&output_shares.iter().map(|s| s[i]).collect::<Vec<_>>()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_circuit::builder::{decode_word, encode_word, CircuitBuilder};
    use dstress_circuit::evaluate;
    use dstress_crypto::group::GroupKind;
    use dstress_math::rng::Xoshiro256;
    use proptest::prelude::*;

    fn adder_circuit(width: u32) -> Circuit {
        let mut b = CircuitBuilder::new();
        let x = b.input_word(width);
        let y = b.input_word(width);
        let s = b.add(&x, &y);
        b.output_word(&s);
        b.build().unwrap()
    }

    fn run_gmw(
        circuit: &Circuit,
        inputs: &[bool],
        parties: usize,
        seed: u64,
    ) -> (Vec<bool>, GmwExecution) {
        let mut rng = Xoshiro256::new(seed);
        let shares = share_inputs(inputs, parties, &mut rng);
        let protocol = GmwProtocol::new(GmwConfig::with_default_ids(parties)).unwrap();
        let mut traffic = TrafficAccountant::new();
        let exec = protocol
            .execute(
                circuit,
                &shares,
                &OtConfig::extension(),
                &mut traffic,
                &mut rng,
            )
            .unwrap();
        let outputs = reconstruct_outputs(&exec.output_shares).unwrap();
        (outputs, exec)
    }

    #[test]
    fn rejects_single_party() {
        assert!(matches!(
            GmwProtocol::new(GmwConfig::with_default_ids(1)).unwrap_err(),
            MpcError::TooFewParties { parties: 1 }
        ));
    }

    #[test]
    fn matches_plaintext_adder() {
        let circuit = adder_circuit(16);
        let mut inputs = encode_word(1234, 16);
        inputs.extend(encode_word(4321, 16));
        let expected = evaluate(&circuit, &inputs).unwrap();
        for parties in [2usize, 3, 5, 8] {
            let (outputs, _) = run_gmw(&circuit, &inputs, parties, 7);
            assert_eq!(outputs, expected, "parties = {parties}");
            assert_eq!(decode_word(&outputs), 5555);
        }
    }

    #[test]
    fn matches_plaintext_on_all_gate_kinds() {
        // Circuit exercising XOR, AND, NOT, constants and MUX.
        let mut b = CircuitBuilder::new();
        let x = b.input_word(8);
        let y = b.input_word(8);
        let lt = b.lt_unsigned(&x, &y);
        let mn = b.mux_word(lt, &x, &y);
        let t = b.const_bit(true);
        let flipped = b.not(lt);
        let both = b.and(t, flipped);
        b.output_word(&mn);
        b.output(both);
        let circuit = b.build().unwrap();

        for (a, bb) in [(5u64, 9u64), (9, 5), (7, 7), (0, 255)] {
            let mut inputs = encode_word(a, 8);
            inputs.extend(encode_word(bb, 8));
            let expected = evaluate(&circuit, &inputs).unwrap();
            let (outputs, _) = run_gmw(&circuit, &inputs, 3, 11);
            assert_eq!(outputs, expected, "a={a} b={bb}");
        }
    }

    #[test]
    fn works_with_real_elgamal_ot() {
        let mut b = CircuitBuilder::new();
        let x = b.input_word(4);
        let y = b.input_word(4);
        let p = b.mul(&x, &y);
        b.output_word(&p);
        let circuit = b.build().unwrap();

        let mut inputs = encode_word(5, 4);
        inputs.extend(encode_word(3, 4));
        let mut rng = Xoshiro256::new(3);
        let shares = share_inputs(&inputs, 3, &mut rng);
        let protocol = GmwProtocol::new(GmwConfig::with_default_ids(3)).unwrap();
        let mut traffic = TrafficAccountant::new();
        let exec = protocol
            .execute(
                &circuit,
                &shares,
                &OtConfig::elgamal(GroupKind::Sim64),
                &mut traffic,
                &mut rng,
            )
            .unwrap();
        let outputs = reconstruct_outputs(&exec.output_shares).unwrap();
        assert_eq!(decode_word(&outputs), 15);
        assert!(exec.counts.exponentiations > 0);
    }

    #[test]
    fn input_share_shape_is_checked() {
        let circuit = adder_circuit(4);
        let protocol = GmwProtocol::new(GmwConfig::with_default_ids(3)).unwrap();
        let ot = OtConfig::extension();
        let mut traffic = TrafficAccountant::new();
        let mut rng = Xoshiro256::new(1);
        // Wrong number of parties.
        let err = protocol
            .execute(
                &circuit,
                &vec![vec![false; 8]; 2],
                &ot,
                &mut traffic,
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, MpcError::InputShareMismatch { .. }));
        // Wrong number of bits.
        let err = protocol
            .execute(
                &circuit,
                &vec![vec![false; 7]; 3],
                &ot,
                &mut traffic,
                &mut rng,
            )
            .unwrap_err();
        assert!(matches!(err, MpcError::InputShareMismatch { .. }));
    }

    #[test]
    fn counts_scale_with_parties() {
        let circuit = adder_circuit(16);
        let mut inputs = encode_word(100, 16);
        inputs.extend(encode_word(200, 16));
        let (_, exec_small) = run_gmw(&circuit, &inputs, 4, 5);
        let (_, exec_large) = run_gmw(&circuit, &inputs, 8, 5);
        // AND gates are a circuit property, independent of party count.
        assert_eq!(exec_small.counts.and_gates, exec_large.counts.and_gates);
        // But OTs scale with the number of pairs: 6 pairs vs 28 pairs.
        assert_eq!(
            exec_small.counts.extended_ots * 28 / 6,
            exec_large.counts.extended_ots
        );
        assert!(exec_large.counts.bytes_sent > exec_small.counts.bytes_sent);
    }

    fn run_gmw_with(
        circuit: &Circuit,
        inputs: &[bool],
        parties: usize,
        seed: u64,
        batching: GmwBatching,
    ) -> GmwExecution {
        let mut rng = Xoshiro256::new(seed);
        let shares = share_inputs(inputs, parties, &mut rng);
        let protocol =
            GmwProtocol::new(GmwConfig::with_default_ids(parties).with_batching(batching)).unwrap();
        let mut traffic = TrafficAccountant::new();
        protocol
            .execute(
                circuit,
                &shares,
                &OtConfig::extension(),
                &mut traffic,
                &mut rng,
            )
            .unwrap()
    }

    /// A wide, shallow circuit: `width` independent AND gates, depth 1.
    fn wide_shallow_circuit(width: usize) -> Circuit {
        let mut b = CircuitBuilder::new();
        let mut outs = Vec::new();
        for _ in 0..width {
            let x = b.input();
            let y = b.input();
            outs.push(b.and(x, y));
        }
        for o in outs {
            b.output(o);
        }
        b.build().unwrap()
    }

    /// A circuit with no AND gates: XOR/NOT/constants only.
    fn xor_only_circuit(width: u32) -> Circuit {
        let mut b = CircuitBuilder::new();
        let x = b.input_word(width);
        let y = b.input_word(width);
        let z = b.xor_word(&x, &y);
        let flipped = b.not(z[0]);
        b.output_word(&z);
        b.output(flipped);
        b.build().unwrap()
    }

    #[test]
    fn zero_and_circuit_pays_no_ot_setup() {
        // The lazy-setup regression: a session that never reaches an AND
        // gate performs no oblivious transfers, so it must not be charged
        // OT-extension setup — no OtSetup exchange, no wire bytes, no
        // base OTs, no setup rounds.  Only the output-reconstruction
        // round remains.
        let circuit = xor_only_circuit(8);
        let mut inputs = encode_word(0xA5, 8);
        inputs.extend(encode_word(0x3C, 8));
        let expected = evaluate(&circuit, &inputs).unwrap();
        for batching in [GmwBatching::Layered, GmwBatching::PerGate] {
            for parties in [2usize, 4] {
                let exec = run_gmw_with(&circuit, &inputs, parties, 21, batching);
                assert_eq!(
                    reconstruct_outputs(&exec.output_shares).unwrap(),
                    expected,
                    "{batching:?} parties={parties}"
                );
                assert_eq!(exec.counts.base_ots, 0, "{batching:?} parties={parties}");
                assert_eq!(exec.counts.extended_ots, 0);
                assert_eq!(exec.counts.exponentiations, 0);
                assert_eq!(exec.counts.bytes_sent, 0, "no modeled setup bytes");
                assert_eq!(exec.counts.wire_bytes, 0, "no measured setup bytes");
                assert_eq!(exec.rounds, 1, "only the output round remains");
            }
        }

        // Sanity: the moment one AND gate appears, the lazy setup fires
        // exactly once per pair with the full κ = 80 base-OT charge.
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let y = b.input();
        let z = b.and(x, y);
        b.output(z);
        let with_and = b.build().unwrap();
        let exec = run_gmw_with(&with_and, &[true, true], 3, 21, GmwBatching::Layered);
        assert_eq!(exec.counts.base_ots, 80 * 3, "3 pairs x kappa base OTs");
        assert!(exec.counts.wire_bytes > 0);
        assert_eq!(exec.rounds, 2 + 2 + 1, "setup + one layer + output");
    }

    #[test]
    fn batched_rounds_match_layering_analysis() {
        // The measured round count of a batched run reconciles with the
        // analytical estimate from the circuit layering: 2 setup rounds
        // (base OTs) + 2 per AND layer + 1 output round.
        let circuit = adder_circuit(8);
        let layers = dstress_circuit::CircuitLayers::of(&circuit);
        let mut inputs = encode_word(1, 8);
        inputs.extend(encode_word(2, 8));
        let (_, exec) = run_gmw(&circuit, &inputs, 3, 9);
        assert_eq!(exec.rounds, 2 + 2 * layers.rounds() as u64 + 1);
        assert_eq!(exec.counts.rounds, exec.rounds);
        // The layering covers *all* gates (GMW evaluates them all), so it
        // can only be at least the output-reachable AND depth.
        let stats = CircuitStats::of(&circuit);
        assert!(layers.rounds() >= stats.and_depth);
    }

    #[test]
    fn batched_rounds_scale_with_depth_not_gate_count() {
        // The acceptance criterion: on a wide shallow circuit (many
        // independent AND gates, depth 1), batched rounds stay constant
        // while per-gate rounds grow with the gate count.
        let narrow = wide_shallow_circuit(4);
        let wide = wide_shallow_circuit(64);
        let narrow_inputs = vec![true; narrow.num_inputs()];
        let wide_inputs = vec![true; wide.num_inputs()];

        let narrow_batched = run_gmw_with(&narrow, &narrow_inputs, 3, 5, GmwBatching::Layered);
        let wide_batched = run_gmw_with(&wide, &wide_inputs, 3, 5, GmwBatching::Layered);
        // 16x the AND gates, same depth: identical round count (2 setup
        // + 2 for the single layer + 1 output).
        assert_eq!(narrow_batched.rounds, 5);
        assert_eq!(wide_batched.rounds, 5);
        assert_eq!(wide_batched.counts.and_gates, 64);

        let narrow_per_gate = run_gmw_with(&narrow, &narrow_inputs, 3, 5, GmwBatching::PerGate);
        let wide_per_gate = run_gmw_with(&wide, &wide_inputs, 3, 5, GmwBatching::PerGate);
        assert_eq!(narrow_per_gate.rounds, 2 + 2 * 4 + 1);
        assert_eq!(wide_per_gate.rounds, 2 + 2 * 64 + 1);
        assert!(wide_batched.rounds < wide_per_gate.rounds);
    }

    #[test]
    fn batching_modes_are_bit_identical_except_rounds_and_framing() {
        // Layer batching regroups the same OT payloads into fewer
        // messages: output shares, modeled traffic and every work count
        // are bit-identical; the round count drops, and the *measured*
        // wire bytes shrink because one batched message pays one header
        // where the per-gate path pays one per gate.
        let circuit = adder_circuit(16);
        let mut inputs = encode_word(40_000, 16);
        inputs.extend(encode_word(1_234, 16));
        for parties in [2usize, 3, 5] {
            let batched = run_gmw_with(&circuit, &inputs, parties, 77, GmwBatching::Layered);
            let per_gate = run_gmw_with(&circuit, &inputs, parties, 77, GmwBatching::PerGate);
            assert_eq!(batched.output_shares, per_gate.output_shares);
            assert_eq!(batched.bytes_sent_per_party, per_gate.bytes_sent_per_party);
            let mut b = batched.counts;
            let mut p = per_gate.counts;
            assert!(b.rounds < p.rounds, "parties = {parties}");
            assert!(
                b.wire_bytes < p.wire_bytes,
                "parties = {parties}: batched framing must be smaller"
            );
            b.rounds = 0;
            p.rounds = 0;
            b.wire_bytes = 0;
            p.wire_bytes = 0;
            assert_eq!(b, p, "parties = {parties}");
        }
    }

    #[test]
    fn measured_wire_bytes_reconcile_with_the_analytic_model() {
        // The OT payload sizes carried by the wire messages match the
        // analytic per-OT and per-setup costs, so measured encoded bytes
        // land close to the modeled `bytes_sent`: the measured side adds
        // only the packed choice/share bits and per-message headers.
        // Tolerance: measured within [0.9, 1.2]× of modeled (the adder's
        // layers are narrow, so headers are the dominant extra).
        let circuit = adder_circuit(16);
        let mut inputs = encode_word(9, 16);
        inputs.extend(encode_word(11, 16));
        for parties in [2usize, 4] {
            let exec = run_gmw_with(&circuit, &inputs, parties, 3, GmwBatching::Layered);
            assert!(exec.counts.wire_bytes > 0);
            let ratio = exec.counts.wire_bytes as f64 / exec.counts.bytes_sent as f64;
            assert!(
                (0.9..1.2).contains(&ratio),
                "parties = {parties}: measured/modeled = {ratio}"
            );
            // Per-party measured bytes sum to the total.
            assert_eq!(
                exec.wire_bytes_per_party.iter().sum::<u64>(),
                exec.counts.wire_bytes
            );
        }
    }

    #[test]
    fn traffic_is_attributed_to_node_ids() {
        let circuit = adder_circuit(8);
        let mut inputs = encode_word(3, 8);
        inputs.extend(encode_word(4, 8));
        let mut rng = Xoshiro256::new(13);
        let shares = share_inputs(&inputs, 3, &mut rng);
        let ids = vec![NodeId(10), NodeId(20), NodeId(30)];
        let protocol = GmwProtocol::new(GmwConfig::with_node_ids(ids.clone())).unwrap();
        let mut traffic = TrafficAccountant::new();
        let exec = protocol
            .execute(
                &circuit,
                &shares,
                &OtConfig::extension(),
                &mut traffic,
                &mut rng,
            )
            .unwrap();
        for &id in &ids {
            assert!(traffic.node(id).bytes_sent > 0, "node {id} sent nothing");
        }
        // Per-party bytes in the execution agree with the accountant.
        for (p, &id) in ids.iter().enumerate() {
            assert_eq!(traffic.node(id).bytes_sent, exec.bytes_sent_per_party[p]);
        }
    }

    #[test]
    fn reconstruct_rejects_inconsistent_shares() {
        assert!(reconstruct_outputs(&[]).is_err());
        assert!(reconstruct_outputs(&[vec![true], vec![true, false]]).is_err());
        assert_eq!(
            reconstruct_outputs(&[vec![true, false], vec![true, true]]).unwrap(),
            vec![false, true]
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_gmw_matches_plaintext(a in 0u64..65536, b in 0u64..65536, seed in any::<u64>()) {
            let circuit = adder_circuit(16);
            let mut inputs = encode_word(a, 16);
            inputs.extend(encode_word(b, 16));
            let expected = evaluate(&circuit, &inputs).unwrap();
            let (outputs, _) = run_gmw(&circuit, &inputs, 3, seed);
            prop_assert_eq!(outputs, expected);
        }

        #[test]
        fn prop_share_reconstruct_roundtrip(bits in proptest::collection::vec(any::<bool>(), 1..64), parties in 2usize..10, seed in any::<u64>()) {
            let mut rng = Xoshiro256::new(seed);
            let shares = share_inputs(&bits, parties, &mut rng);
            prop_assert_eq!(shares.len(), parties);
            let rebuilt = reconstruct_outputs(&shares).unwrap();
            prop_assert_eq!(rebuilt, bits);
        }
    }
}
