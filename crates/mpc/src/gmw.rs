//! The GMW protocol over Boolean circuits.
//!
//! In GMW every wire value is XOR-shared among the parties.  XOR and NOT
//! gates are evaluated locally (for NOT, a designated party flips its
//! share); each AND gate requires one 1-out-of-4 oblivious transfer per
//! unordered party pair; the number of sequential communication rounds
//! equals the circuit's AND depth.  This is exactly the protocol the
//! DStress prototype runs inside each block (§3.3, §5.1), and its cost
//! structure — traffic quadratic in the block size overall but linear per
//! node, time linear in block size because the pairwise work proceeds in
//! parallel — is what produces the shapes of Figures 3 and 4.
//!
//! The executor measures, for every run: per-party bytes sent/received,
//! the number of OTs and AND gates, and the number of communication
//! rounds.  Those measurements feed the harness directly.

use crate::error::MpcError;
use crate::ot::OtProvider;
use dstress_circuit::{Circuit, CircuitStats, Gate};
use dstress_crypto::sharing::{split_xor_bit, xor_reconstruct_bit};
use dstress_math::rng::DetRng;
use dstress_net::cost::OperationCounts;
use dstress_net::traffic::{NodeId, TrafficAccountant};

/// Configuration of a GMW execution.
#[derive(Clone, Debug)]
pub struct GmwConfig {
    /// Number of parties (the DStress block size `k + 1`).
    pub parties: usize,
    /// Node identities used for traffic accounting, one per party.
    pub node_ids: Vec<NodeId>,
}

impl GmwConfig {
    /// Creates a configuration for `parties` parties with node ids
    /// `0..parties`.
    pub fn with_default_ids(parties: usize) -> Self {
        GmwConfig {
            parties,
            node_ids: (0..parties).map(NodeId).collect(),
        }
    }

    /// Creates a configuration with explicit node identities.
    pub fn with_node_ids(node_ids: Vec<NodeId>) -> Self {
        GmwConfig {
            parties: node_ids.len(),
            node_ids,
        }
    }
}

/// Result of a GMW execution.
#[derive(Clone, Debug)]
pub struct GmwExecution {
    /// Output shares, indexed `[party][output bit]`; XORing across parties
    /// reconstructs each output bit.
    pub output_shares: Vec<Vec<bool>>,
    /// Operation counts accumulated during the execution (including the
    /// OT provider's counts for this run).
    pub counts: OperationCounts,
    /// Number of sequential communication rounds (the circuit's AND depth
    /// plus the output round).
    pub rounds: u64,
    /// Per-party bytes sent during this execution.
    pub bytes_sent_per_party: Vec<u64>,
}

/// The GMW protocol executor.
#[derive(Clone, Debug)]
pub struct GmwProtocol {
    config: GmwConfig,
}

impl GmwProtocol {
    /// Creates an executor for the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::TooFewParties`] for fewer than two parties.
    pub fn new(config: GmwConfig) -> Result<Self, MpcError> {
        if config.parties < 2 {
            return Err(MpcError::TooFewParties {
                parties: config.parties,
            });
        }
        if config.node_ids.len() != config.parties {
            return Err(MpcError::TooFewParties {
                parties: config.node_ids.len(),
            });
        }
        Ok(GmwProtocol { config })
    }

    /// Number of parties.
    pub fn parties(&self) -> usize {
        self.config.parties
    }

    /// Executes `circuit` on XOR-shared inputs.
    ///
    /// `input_shares[p]` holds party `p`'s share of every input bit (so
    /// each inner vector has length `circuit.num_inputs()`, and XORing the
    /// vectors across parties yields the plaintext inputs).  The OT
    /// provider supplies the pairwise AND-gate transfers; traffic is
    /// recorded against the configured node ids.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError::InputShareMismatch`] if the share vectors have
    /// the wrong shape.
    pub fn execute(
        &self,
        circuit: &Circuit,
        input_shares: &[Vec<bool>],
        ot: &mut dyn OtProvider,
        traffic: &mut TrafficAccountant,
        rng: &mut dyn DetRng,
    ) -> Result<GmwExecution, MpcError> {
        let n = self.config.parties;
        if input_shares.len() != n {
            return Err(MpcError::InputShareMismatch {
                expected: n,
                actual: input_shares.len(),
            });
        }
        for shares in input_shares {
            if shares.len() != circuit.num_inputs() {
                return Err(MpcError::InputShareMismatch {
                    expected: circuit.num_inputs(),
                    actual: shares.len(),
                });
            }
        }

        let ot_counts_before = ot.counts();
        let mut bytes_sent_per_party = vec![0u64; n];

        // Per-session OT-extension setup for every unordered pair.
        for i in 0..n {
            for j in (i + 1)..n {
                let (sender_bytes, receiver_bytes) = ot.session_setup();
                bytes_sent_per_party[i] += sender_bytes;
                bytes_sent_per_party[j] += receiver_bytes;
                if sender_bytes > 0 {
                    traffic.record(self.config.node_ids[i], self.config.node_ids[j], sender_bytes);
                }
                if receiver_bytes > 0 {
                    traffic.record(self.config.node_ids[j], self.config.node_ids[i], receiver_bytes);
                }
            }
        }

        // Wire shares, indexed [party][wire].
        let mut shares: Vec<Vec<bool>> = (0..n)
            .map(|_| Vec::with_capacity(circuit.len()))
            .collect();
        let mut and_gates = 0u64;
        let mut free_gates = 0u64;
        // Pairwise traffic accumulated per party for the AND-gate OTs; we
        // flush it to the accountant once at the end so the hot loop stays
        // allocation-free.
        let mut pair_bytes: Vec<u64> = vec![0u64; n];

        for gate in circuit.gates() {
            match *gate {
                Gate::Input(idx) => {
                    for (p, wire_shares) in shares.iter_mut().enumerate() {
                        wire_shares.push(input_shares[p][idx]);
                    }
                }
                Gate::ConstFalse => {
                    for wire_shares in shares.iter_mut() {
                        wire_shares.push(false);
                    }
                }
                Gate::ConstTrue => {
                    // Party 0 holds the constant; all other shares are zero.
                    for (p, wire_shares) in shares.iter_mut().enumerate() {
                        wire_shares.push(p == 0);
                    }
                }
                Gate::Xor(a, b) => {
                    free_gates += 1;
                    for wire_shares in shares.iter_mut() {
                        let v = wire_shares[a] ^ wire_shares[b];
                        wire_shares.push(v);
                    }
                }
                Gate::Not(a) => {
                    free_gates += 1;
                    for (p, wire_shares) in shares.iter_mut().enumerate() {
                        let v = wire_shares[a] ^ (p == 0);
                        wire_shares.push(v);
                    }
                }
                Gate::And(a, b) => {
                    and_gates += 1;
                    // z_p starts as the local product x_p · y_p.
                    let mut new_shares: Vec<bool> = (0..n)
                        .map(|p| shares[p][a] && shares[p][b])
                        .collect();
                    // Every unordered pair (i, j) computes shares of
                    // x_i·y_j ⊕ x_j·y_i with one 1-out-of-4 OT: i is the
                    // sender with a random mask r, j the receiver choosing
                    // with (x_j, y_j).
                    for i in 0..n {
                        let (x_i, y_i) = (shares[i][a], shares[i][b]);
                        for j in (i + 1)..n {
                            let (x_j, y_j) = (shares[j][a], shares[j][b]);
                            let r = rng.next_bool();
                            let table = [
                                r, // (x_j = 0, y_j = 0): contribution 0
                                r ^ x_i,                 // (0, 1): x_i·y_j
                                r ^ y_i,                 // (1, 0): y_i·x_j
                                r ^ x_i ^ y_i,           // (1, 1): both
                            ];
                            let outcome = ot.transfer(table, (x_j, y_j));
                            new_shares[i] ^= r;
                            new_shares[j] ^= outcome.received;
                            pair_bytes[i] += outcome.sender_bytes;
                            pair_bytes[j] += outcome.receiver_bytes;
                        }
                    }
                    for (p, wire_shares) in shares.iter_mut().enumerate() {
                        wire_shares.push(new_shares[p]);
                    }
                }
            }
        }

        // Flush the pairwise AND-gate traffic.  Within a block every party
        // talks to every other party; we attribute each party's bytes as
        // broadcast-style traffic to its peers, which preserves per-node
        // totals (the quantity the paper reports).
        for (p, &bytes) in pair_bytes.iter().enumerate() {
            if bytes == 0 {
                continue;
            }
            bytes_sent_per_party[p] += bytes;
            let peers = n as u64 - 1;
            let per_peer = bytes / peers.max(1);
            let mut remainder = bytes - per_peer * peers;
            for q in 0..n {
                if q == p {
                    continue;
                }
                let extra = if remainder > 0 { 1 } else { 0 };
                remainder = remainder.saturating_sub(1);
                let amount = per_peer + extra;
                if amount > 0 {
                    traffic.record(self.config.node_ids[p], self.config.node_ids[q], amount);
                }
            }
        }

        let stats = CircuitStats::of(circuit);
        let rounds = stats.and_depth as u64 + 1;

        let output_shares: Vec<Vec<bool>> = (0..n)
            .map(|p| circuit.outputs().iter().map(|&o| shares[p][o]).collect())
            .collect();

        let ot_counts_after = ot.counts();
        let mut counts = OperationCounts {
            and_gates,
            free_gates,
            rounds,
            bytes_sent: bytes_sent_per_party.iter().sum(),
            ..OperationCounts::default()
        };
        // Fold in what the OT provider did during this execution.
        let ot_delta = OperationCounts {
            exponentiations: ot_counts_after.exponentiations - ot_counts_before.exponentiations,
            group_multiplications: ot_counts_after.group_multiplications
                - ot_counts_before.group_multiplications,
            base_ots: ot_counts_after.base_ots - ot_counts_before.base_ots,
            extended_ots: ot_counts_after.extended_ots - ot_counts_before.extended_ots,
            and_gates: 0,
            free_gates: 0,
            bytes_sent: 0,
            rounds: 0,
        };
        counts.add(&ot_delta);

        Ok(GmwExecution {
            output_shares,
            counts,
            rounds,
            bytes_sent_per_party,
        })
    }
}

/// Splits plaintext input bits into XOR shares for `parties` parties.
pub fn share_inputs(inputs: &[bool], parties: usize, rng: &mut dyn DetRng) -> Vec<Vec<bool>> {
    let mut shares: Vec<Vec<bool>> = vec![Vec::with_capacity(inputs.len()); parties];
    for &bit in inputs {
        let bit_shares = split_xor_bit(bit, parties, rng);
        for (p, share) in bit_shares.into_iter().enumerate() {
            shares[p].push(share);
        }
    }
    shares
}

/// Reconstructs plaintext outputs from per-party output shares.
///
/// # Errors
///
/// Returns [`MpcError::OutputShareMismatch`] if the share vectors disagree
/// in length or no shares are provided.
pub fn reconstruct_outputs(output_shares: &[Vec<bool>]) -> Result<Vec<bool>, MpcError> {
    let first = output_shares.first().ok_or(MpcError::OutputShareMismatch)?;
    let len = first.len();
    if output_shares.iter().any(|s| s.len() != len) {
        return Err(MpcError::OutputShareMismatch);
    }
    Ok((0..len)
        .map(|i| xor_reconstruct_bit(&output_shares.iter().map(|s| s[i]).collect::<Vec<_>>()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ot::{ElGamalOt, SimulatedOtExtension};
    use dstress_circuit::builder::{decode_word, encode_word, CircuitBuilder};
    use dstress_circuit::evaluate;
    use dstress_crypto::group::Group;
    use dstress_math::rng::Xoshiro256;
    use proptest::prelude::*;

    fn adder_circuit(width: u32) -> Circuit {
        let mut b = CircuitBuilder::new();
        let x = b.input_word(width);
        let y = b.input_word(width);
        let s = b.add(&x, &y);
        b.output_word(&s);
        b.build().unwrap()
    }

    fn run_gmw(
        circuit: &Circuit,
        inputs: &[bool],
        parties: usize,
        seed: u64,
    ) -> (Vec<bool>, GmwExecution) {
        let mut rng = Xoshiro256::new(seed);
        let shares = share_inputs(inputs, parties, &mut rng);
        let protocol = GmwProtocol::new(GmwConfig::with_default_ids(parties)).unwrap();
        let mut ot = SimulatedOtExtension::new();
        let mut traffic = TrafficAccountant::new();
        let exec = protocol
            .execute(circuit, &shares, &mut ot, &mut traffic, &mut rng)
            .unwrap();
        let outputs = reconstruct_outputs(&exec.output_shares).unwrap();
        (outputs, exec)
    }

    #[test]
    fn rejects_single_party() {
        assert!(matches!(
            GmwProtocol::new(GmwConfig::with_default_ids(1)).unwrap_err(),
            MpcError::TooFewParties { parties: 1 }
        ));
    }

    #[test]
    fn matches_plaintext_adder() {
        let circuit = adder_circuit(16);
        let mut inputs = encode_word(1234, 16);
        inputs.extend(encode_word(4321, 16));
        let expected = evaluate(&circuit, &inputs).unwrap();
        for parties in [2usize, 3, 5, 8] {
            let (outputs, _) = run_gmw(&circuit, &inputs, parties, 7);
            assert_eq!(outputs, expected, "parties = {parties}");
            assert_eq!(decode_word(&outputs), 5555);
        }
    }

    #[test]
    fn matches_plaintext_on_all_gate_kinds() {
        // Circuit exercising XOR, AND, NOT, constants and MUX.
        let mut b = CircuitBuilder::new();
        let x = b.input_word(8);
        let y = b.input_word(8);
        let lt = b.lt_unsigned(&x, &y);
        let mn = b.mux_word(lt, &x, &y);
        let t = b.const_bit(true);
        let flipped = b.not(lt);
        let both = b.and(t, flipped);
        b.output_word(&mn);
        b.output(both);
        let circuit = b.build().unwrap();

        for (a, bb) in [(5u64, 9u64), (9, 5), (7, 7), (0, 255)] {
            let mut inputs = encode_word(a, 8);
            inputs.extend(encode_word(bb, 8));
            let expected = evaluate(&circuit, &inputs).unwrap();
            let (outputs, _) = run_gmw(&circuit, &inputs, 3, 11);
            assert_eq!(outputs, expected, "a={a} b={bb}");
        }
    }

    #[test]
    fn works_with_real_elgamal_ot() {
        let mut b = CircuitBuilder::new();
        let x = b.input_word(4);
        let y = b.input_word(4);
        let p = b.mul(&x, &y);
        b.output_word(&p);
        let circuit = b.build().unwrap();

        let mut inputs = encode_word(5, 4);
        inputs.extend(encode_word(3, 4));
        let mut rng = Xoshiro256::new(3);
        let shares = share_inputs(&inputs, 3, &mut rng);
        let protocol = GmwProtocol::new(GmwConfig::with_default_ids(3)).unwrap();
        let mut ot = ElGamalOt::new(Group::sim64(), 99);
        let mut traffic = TrafficAccountant::new();
        let exec = protocol
            .execute(&circuit, &shares, &mut ot, &mut traffic, &mut rng)
            .unwrap();
        let outputs = reconstruct_outputs(&exec.output_shares).unwrap();
        assert_eq!(decode_word(&outputs), 15);
        assert!(exec.counts.exponentiations > 0);
    }

    #[test]
    fn input_share_shape_is_checked() {
        let circuit = adder_circuit(4);
        let protocol = GmwProtocol::new(GmwConfig::with_default_ids(3)).unwrap();
        let mut ot = SimulatedOtExtension::new();
        let mut traffic = TrafficAccountant::new();
        let mut rng = Xoshiro256::new(1);
        // Wrong number of parties.
        let err = protocol
            .execute(&circuit, &vec![vec![false; 8]; 2], &mut ot, &mut traffic, &mut rng)
            .unwrap_err();
        assert!(matches!(err, MpcError::InputShareMismatch { .. }));
        // Wrong number of bits.
        let err = protocol
            .execute(&circuit, &vec![vec![false; 7]; 3], &mut ot, &mut traffic, &mut rng)
            .unwrap_err();
        assert!(matches!(err, MpcError::InputShareMismatch { .. }));
    }

    #[test]
    fn counts_scale_with_parties() {
        let circuit = adder_circuit(16);
        let mut inputs = encode_word(100, 16);
        inputs.extend(encode_word(200, 16));
        let (_, exec_small) = run_gmw(&circuit, &inputs, 4, 5);
        let (_, exec_large) = run_gmw(&circuit, &inputs, 8, 5);
        // AND gates are a circuit property, independent of party count.
        assert_eq!(exec_small.counts.and_gates, exec_large.counts.and_gates);
        // But OTs scale with the number of pairs: 6 pairs vs 28 pairs.
        assert_eq!(
            exec_small.counts.extended_ots * 28 / 6,
            exec_large.counts.extended_ots
        );
        assert!(exec_large.counts.bytes_sent > exec_small.counts.bytes_sent);
    }

    #[test]
    fn rounds_equal_and_depth_plus_one() {
        let circuit = adder_circuit(8);
        let stats = CircuitStats::of(&circuit);
        let mut inputs = encode_word(1, 8);
        inputs.extend(encode_word(2, 8));
        let (_, exec) = run_gmw(&circuit, &inputs, 3, 9);
        assert_eq!(exec.rounds, stats.and_depth as u64 + 1);
    }

    #[test]
    fn traffic_is_attributed_to_node_ids() {
        let circuit = adder_circuit(8);
        let mut inputs = encode_word(3, 8);
        inputs.extend(encode_word(4, 8));
        let mut rng = Xoshiro256::new(13);
        let shares = share_inputs(&inputs, 3, &mut rng);
        let ids = vec![NodeId(10), NodeId(20), NodeId(30)];
        let protocol = GmwProtocol::new(GmwConfig::with_node_ids(ids.clone())).unwrap();
        let mut ot = SimulatedOtExtension::new();
        let mut traffic = TrafficAccountant::new();
        let exec = protocol
            .execute(&circuit, &shares, &mut ot, &mut traffic, &mut rng)
            .unwrap();
        for &id in &ids {
            assert!(traffic.node(id).bytes_sent > 0, "node {id} sent nothing");
        }
        // Per-party bytes in the execution agree with the accountant.
        for (p, &id) in ids.iter().enumerate() {
            assert_eq!(traffic.node(id).bytes_sent, exec.bytes_sent_per_party[p]);
        }
    }

    #[test]
    fn reconstruct_rejects_inconsistent_shares() {
        assert!(reconstruct_outputs(&[]).is_err());
        assert!(reconstruct_outputs(&[vec![true], vec![true, false]]).is_err());
        assert_eq!(
            reconstruct_outputs(&[vec![true, false], vec![true, true]]).unwrap(),
            vec![false, true]
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_gmw_matches_plaintext(a in 0u64..65536, b in 0u64..65536, seed in any::<u64>()) {
            let circuit = adder_circuit(16);
            let mut inputs = encode_word(a, 16);
            inputs.extend(encode_word(b, 16));
            let expected = evaluate(&circuit, &inputs).unwrap();
            let (outputs, _) = run_gmw(&circuit, &inputs, 3, seed);
            prop_assert_eq!(outputs, expected);
        }

        #[test]
        fn prop_share_reconstruct_roundtrip(bits in proptest::collection::vec(any::<bool>(), 1..64), parties in 2usize..10, seed in any::<u64>()) {
            let mut rng = Xoshiro256::new(seed);
            let shares = share_inputs(&bits, parties, &mut rng);
            prop_assert_eq!(shares.len(), parties);
            let rebuilt = reconstruct_outputs(&shares).unwrap();
            prop_assert_eq!(rebuilt, bits);
        }
    }
}
