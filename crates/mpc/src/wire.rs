//! Wire encoding of the GMW protocol messages.
//!
//! Every [`GmwMessage`] is encoded by hand on top of the primitives in
//! [`dstress_net::wire`]; both transport backends route each send through
//! this codec, so the byte totals in a run's
//! [`dstress_net::wire::WireTally`] are measured from these layouts.
//!
//! ## Layouts
//!
//! | message | layout |
//! |---|---|
//! | `OtSetup`   | `0x00` · bytes(ot_payload) |
//! | `Choice`    | `0x01` · uvarint(gate) · packed{bit0 = x, bit1 = y} · bytes(ot_payload) |
//! | `Response`  | `0x02` · uvarint(gate) · packed{bit0 = bit} · bytes(ot_payload) |
//! | `Choices`   | `0x03` · uvarint(layer) · uvarint(w) · x-plane⌈w/8⌉ · y-plane⌈w/8⌉ · bytes(ot_payload) |
//! | `Responses` | `0x04` · uvarint(layer) · uvarint(w) · bit-plane⌈w/8⌉ · bytes(ot_payload) |
//!
//! `bytes(…)` is a varint length followed by raw bytes; bit planes pack
//! LSB-first with zero padding (the decoder rejects dirty padding bits).
//! The batched choice and share bits therefore cost **one bit each** on
//! the wire — `⌈w/8⌉` bytes per plane for a `w`-gate layer — instead of
//! the byte-or-more the per-gate messages pay in headers.

use crate::party::{derive_seed, GmwMessage};
use dstress_math::rng::{DetRng, SplitMix64};
use dstress_net::wire::{self, Wire, WireError};

/// Message tags (the first byte of every encoding).
const TAG_OT_SETUP: u8 = 0x00;
const TAG_CHOICE: u8 = 0x01;
const TAG_RESPONSE: u8 = 0x02;
const TAG_CHOICES: u8 = 0x03;
const TAG_RESPONSES: u8 = 0x04;

/// Domain tag of the base-OT key material a pair *owner* sends at setup.
pub const PAYLOAD_SETUP_FROM_OWNER: u64 = 0x7365_7475_703A_6F77; // "setup:ow"
/// Domain tag of the base-OT key material the *peer* answers with.
pub const PAYLOAD_SETUP_FROM_PEER: u64 = 0x7365_7475_703A_7065; // "setup:pe"
/// Domain tag of the receiver-side per-OT payload (extension-matrix
/// columns or public keys), carried by `Choice`/`Choices` messages.
pub const PAYLOAD_RECEIVER: u64 = 0x6F74_3A72_6563_6569; // "ot:recei"
/// Domain tag of the sender-side per-OT payload (masked messages or
/// ciphertexts), carried by `Response`/`Responses` messages.
pub const PAYLOAD_SENDER: u64 = 0x6F74_3A73_656E_6465; // "ot:sende"

/// Derives the simulated OT payload *content* for one message from the
/// pair seed, a direction tag and the gate/layer index.
///
/// Both ends of a pair derive the same seed from the execution's master
/// seed, so every OT payload byte on the wire is a pure function of
/// `(master seed, pair, direction, index)`: transcripts are replayable
/// and byte-identical across transport backends *by construction*, not
/// merely size-faithful (the sizes still match the provider's analytic
/// per-OT costs — see [`crate::party::OtConfig`]).
pub fn ot_payload(pair_seed: u64, direction: u64, index: u64, len: usize) -> Vec<u8> {
    let mut stream = SplitMix64::new(derive_seed(pair_seed, direction, index));
    let mut bytes = vec![0u8; len];
    stream.fill_bytes(&mut bytes);
    bytes
}

/// Upper bound on the header bytes of a batched `Choices`/`Responses`
/// encoding: the tag, two worst-case `u32` varints (layer, count) and the
/// varint length of an empty OT payload.  The regression tests assert a
/// `w`-gate `Choices` message costs at most `2·⌈w/8⌉` bit-plane bytes
/// (one bit per choice bit, two planes) plus this header.
pub const BATCH_HEADER_MAX: usize = 1 + 5 + 5 + 1;

impl Wire for GmwMessage {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            GmwMessage::OtSetup { ot_payload } => {
                wire::put_u8(out, TAG_OT_SETUP);
                wire::put_bytes(out, ot_payload);
            }
            GmwMessage::Choice {
                gate,
                x,
                y,
                ot_payload,
            } => {
                wire::put_u8(out, TAG_CHOICE);
                wire::put_uvarint(out, u64::from(*gate));
                wire::put_bits(out, &[*x, *y]);
                wire::put_bytes(out, ot_payload);
            }
            GmwMessage::Response {
                gate,
                bit,
                ot_payload,
            } => {
                wire::put_u8(out, TAG_RESPONSE);
                wire::put_uvarint(out, u64::from(*gate));
                wire::put_bits(out, &[*bit]);
                wire::put_bytes(out, ot_payload);
            }
            GmwMessage::Choices {
                layer,
                pairs,
                ot_payload,
            } => {
                wire::put_u8(out, TAG_CHOICES);
                wire::put_uvarint(out, u64::from(*layer));
                wire::put_uvarint(out, pairs.len() as u64);
                let xs: Vec<bool> = pairs.iter().map(|&(x, _)| x).collect();
                let ys: Vec<bool> = pairs.iter().map(|&(_, y)| y).collect();
                wire::put_bits(out, &xs);
                wire::put_bits(out, &ys);
                wire::put_bytes(out, ot_payload);
            }
            GmwMessage::Responses {
                layer,
                bits,
                ot_payload,
            } => {
                wire::put_u8(out, TAG_RESPONSES);
                wire::put_uvarint(out, u64::from(*layer));
                wire::put_uvarint(out, bits.len() as u64);
                wire::put_bits(out, bits);
                wire::put_bytes(out, ot_payload);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let what = "GmwMessage";
        let gate_or_layer = |buf: &mut &[u8]| -> Result<u32, WireError> {
            u32::try_from(wire::get_uvarint(buf)?).map_err(|_| WireError::Invalid { what })
        };
        match wire::get_u8(buf)? {
            TAG_OT_SETUP => Ok(GmwMessage::OtSetup {
                ot_payload: wire::get_bytes(buf)?,
            }),
            TAG_CHOICE => {
                let gate = gate_or_layer(buf)?;
                let bits = wire::get_bits(buf, 2)?;
                Ok(GmwMessage::Choice {
                    gate,
                    x: bits[0],
                    y: bits[1],
                    ot_payload: wire::get_bytes(buf)?,
                })
            }
            TAG_RESPONSE => {
                let gate = gate_or_layer(buf)?;
                let bits = wire::get_bits(buf, 1)?;
                Ok(GmwMessage::Response {
                    gate,
                    bit: bits[0],
                    ot_payload: wire::get_bytes(buf)?,
                })
            }
            TAG_CHOICES => {
                let layer = gate_or_layer(buf)?;
                let count = wire::get_uvarint(buf)? as usize;
                let xs = wire::get_bits(buf, count)?;
                let ys = wire::get_bits(buf, count)?;
                Ok(GmwMessage::Choices {
                    layer,
                    pairs: xs.into_iter().zip(ys).collect(),
                    ot_payload: wire::get_bytes(buf)?,
                })
            }
            TAG_RESPONSES => {
                let layer = gate_or_layer(buf)?;
                let count = wire::get_uvarint(buf)? as usize;
                Ok(GmwMessage::Responses {
                    layer,
                    bits: wire::get_bits(buf, count)?,
                    ot_payload: wire::get_bytes(buf)?,
                })
            }
            tag => Err(WireError::BadTag { tag, what }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_net::wire::hex;
    use proptest::prelude::*;

    fn sample_messages() -> Vec<GmwMessage> {
        vec![
            GmwMessage::OtSetup {
                ot_payload: vec![0, 1, 2],
            },
            GmwMessage::Choice {
                gate: 300,
                x: true,
                y: false,
                ot_payload: vec![0xAA; 10],
            },
            GmwMessage::Response {
                gate: 7,
                bit: true,
                ot_payload: vec![],
            },
            GmwMessage::Choices {
                layer: 2,
                pairs: vec![(true, false), (false, false), (true, true)],
                ot_payload: vec![0x55; 30],
            },
            GmwMessage::Responses {
                layer: 2,
                bits: vec![false, true, true],
                ot_payload: vec![1, 2, 3],
            },
        ]
    }

    #[test]
    fn ot_payload_content_is_seed_derived_and_replayable() {
        // Same (pair seed, direction, index) => same bytes, every time.
        let a = ot_payload(42, PAYLOAD_RECEIVER, 7, 33);
        let b = ot_payload(42, PAYLOAD_RECEIVER, 7, 33);
        assert_eq!(a, b);
        assert_eq!(a.len(), 33);
        // The content is pseudorandom key material, not filler.
        assert!(a.iter().any(|&byte| byte != 0));
        // Any coordinate change yields a different stream.
        assert_ne!(a, ot_payload(43, PAYLOAD_RECEIVER, 7, 33));
        assert_ne!(a, ot_payload(42, PAYLOAD_SENDER, 7, 33));
        assert_ne!(a, ot_payload(42, PAYLOAD_RECEIVER, 8, 33));
        // A shorter request is a prefix of the same stream.
        assert_eq!(a[..16], ot_payload(42, PAYLOAD_RECEIVER, 7, 16)[..]);
        // Setup directions are distinct streams too.
        assert_ne!(
            ot_payload(5, PAYLOAD_SETUP_FROM_OWNER, 0, 64),
            ot_payload(5, PAYLOAD_SETUP_FROM_PEER, 0, 64)
        );
        assert!(ot_payload(5, PAYLOAD_SENDER, 0, 0).is_empty());
    }

    #[test]
    fn every_variant_round_trips() {
        for message in sample_messages() {
            let encoded = message.encode();
            assert_eq!(
                GmwMessage::decode_exact(&encoded).unwrap(),
                message,
                "{message:?}"
            );
        }
    }

    #[test]
    fn truncation_and_trailing_garbage_are_rejected_not_panics() {
        for message in sample_messages() {
            let encoded = message.encode();
            for cut in 0..encoded.len() {
                assert!(
                    GmwMessage::decode_exact(&encoded[..cut]).is_err(),
                    "{message:?} truncated to {cut} bytes decoded"
                );
            }
            let mut trailing = encoded;
            trailing.push(0x00);
            assert_eq!(
                GmwMessage::decode_exact(&trailing),
                Err(WireError::Trailing { remaining: 1 }),
                "{message:?}"
            );
        }
    }

    #[test]
    fn unknown_tags_and_dirty_padding_are_rejected() {
        assert_eq!(
            GmwMessage::decode_exact(&[0x07]),
            Err(WireError::BadTag {
                tag: 0x07,
                what: "GmwMessage"
            })
        );
        // A Choice whose packed byte sets bits above bit 1.
        let mut bad = Vec::new();
        wire::put_u8(&mut bad, 0x01);
        wire::put_uvarint(&mut bad, 3);
        bad.push(0b0000_0100);
        wire::put_bytes(&mut bad, &[]);
        assert!(matches!(
            GmwMessage::decode_exact(&bad),
            Err(WireError::Invalid { .. })
        ));
    }

    /// Golden byte-layout fixtures: one canonical encoding per message
    /// type.  A failure here means the wire format changed — bump these
    /// deliberately, never silently.
    #[test]
    fn golden_encodings() {
        let cases: Vec<(GmwMessage, &str)> = vec![
            (
                GmwMessage::OtSetup {
                    ot_payload: vec![0xAB, 0xCD],
                },
                "0002abcd",
            ),
            (
                GmwMessage::Choice {
                    gate: 300,
                    x: true,
                    y: false,
                    ot_payload: vec![0xEE],
                },
                // tag 01 · varint 300 = ac02 · packed x=1,y=0 = 01 · len 1 · ee
                "01ac020101ee",
            ),
            (
                GmwMessage::Response {
                    gate: 7,
                    bit: true,
                    ot_payload: vec![],
                },
                "02070100",
            ),
            (
                GmwMessage::Choices {
                    layer: 1,
                    pairs: vec![(true, false), (true, true), (false, true)],
                    ot_payload: vec![0x11, 0x22],
                },
                // tag 03 · layer 01 · count 03 · x-plane (1,1,0) = 03 ·
                // y-plane (0,1,1) = 06 · len 02 · 1122
                "0301030306021122",
            ),
            (
                GmwMessage::Responses {
                    layer: 4,
                    bits: vec![true, true, false, false, true],
                    ot_payload: vec![0xFF],
                },
                // tag 04 · layer 04 · count 05 · plane 0b10011 = 13 ·
                // len 01 · ff
                "0404051301ff",
            ),
        ];
        for (message, expected) in cases {
            assert_eq!(hex(&message.encode()), expected, "{message:?}");
        }
    }

    #[test]
    fn batched_choices_are_bit_packed() {
        // The satellite regression: a w-wide layer's Choices payload is
        // two 1-bit-per-gate planes — at most 2·⌈w/8⌉ bytes plus the
        // bounded header — and Responses is one plane.
        for w in [1usize, 7, 8, 9, 64, 333] {
            let choices = GmwMessage::Choices {
                layer: u32::MAX,
                pairs: vec![(true, false); w],
                ot_payload: vec![],
            };
            assert!(
                choices.encode().len() <= 2 * w.div_ceil(8) + BATCH_HEADER_MAX,
                "choices for w = {w}"
            );
            let responses = GmwMessage::Responses {
                layer: u32::MAX,
                bits: vec![true; w],
                ot_payload: vec![],
            };
            assert!(
                responses.encode().len() <= w.div_ceil(8) + BATCH_HEADER_MAX,
                "responses for w = {w}"
            );
        }
    }

    /// Every variant built from one random draw, so the proptests cover
    /// the whole message space.
    fn messages_from(
        tag: u32,
        x_bits: &[bool],
        y_bits: &[bool],
        payload: &[u8],
    ) -> Vec<GmwMessage> {
        vec![
            GmwMessage::OtSetup {
                ot_payload: payload.to_vec(),
            },
            GmwMessage::Choice {
                gate: tag,
                x: x_bits.first().copied().unwrap_or(false),
                y: y_bits.first().copied().unwrap_or(true),
                ot_payload: payload.to_vec(),
            },
            GmwMessage::Response {
                gate: tag,
                bit: x_bits.last().copied().unwrap_or(false),
                ot_payload: payload.to_vec(),
            },
            GmwMessage::Choices {
                layer: tag,
                pairs: x_bits.iter().copied().zip(y_bits.iter().copied()).collect(),
                ot_payload: payload.to_vec(),
            },
            GmwMessage::Responses {
                layer: tag,
                bits: y_bits.to_vec(),
                ot_payload: payload.to_vec(),
            },
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_gmw_messages_round_trip(
            tag in any::<u32>(),
            x_bits in proptest::collection::vec(any::<bool>(), 0..80),
            y_bits in proptest::collection::vec(any::<bool>(), 0..80),
            payload in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            for message in messages_from(tag, &x_bits, &y_bits, &payload) {
                let encoded = message.encode();
                prop_assert_eq!(GmwMessage::decode_exact(&encoded).unwrap(), message);
            }
        }

        #[test]
        fn prop_truncations_error(
            tag in any::<u32>(),
            x_bits in proptest::collection::vec(any::<bool>(), 0..40),
            y_bits in proptest::collection::vec(any::<bool>(), 0..40),
            payload in proptest::collection::vec(any::<u8>(), 0..32),
            cut_frac in 0.0f64..1.0,
        ) {
            for message in messages_from(tag, &x_bits, &y_bits, &payload) {
                let encoded = message.encode();
                let cut = ((encoded.len() as f64) * cut_frac) as usize;
                if cut < encoded.len() {
                    prop_assert!(GmwMessage::decode_exact(&encoded[..cut]).is_err());
                }
            }
        }
    }
}
