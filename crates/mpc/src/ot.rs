//! Oblivious transfer providers.
//!
//! GMW needs exactly one primitive beyond XOR-sharing: a 1-out-of-4
//! oblivious transfer per AND gate per party pair.  The sender holds four
//! bits, the receiver holds a two-bit choice, and the receiver learns only
//! the chosen bit while the sender learns nothing about the choice.
//!
//! Two providers are implemented:
//!
//! * [`ElGamalOt`] — a real public-key OT in the style of Bellare–Micali:
//!   the receiver publishes four public keys of which it knows the secret
//!   key for exactly the chosen index; the sender encrypts each bit under
//!   the corresponding key.  Honest-but-curious security only, which is
//!   DStress's threat model (§3.2).  Expensive (≈10 exponentiations per
//!   transfer), so it is used by unit tests and the cryptographic
//!   microbenchmarks.
//! * [`SimulatedOtExtension`] — a functionally-correct stand-in for
//!   IKNP-style OT extension [41, 46], which is what the prototype's GMW
//!   implementation uses (§5.3 credits OT extension for the low traffic).
//!   It delivers the chosen bit directly and *accounts* the amortised
//!   per-OT cost (symmetric-crypto work and ≈11 bytes of traffic with the
//!   GMW statistical parameter κ = 80), plus the κ base OTs per party pair
//!   charged at session setup.  See `DESIGN.md` for the substitution
//!   argument.

use dstress_crypto::elgamal::{self, KeyPair, PublicKey};
use dstress_crypto::group::Group;
use dstress_crypto::DlogTable;
use dstress_math::rng::Xoshiro256;
use dstress_net::cost::OperationCounts;

/// The result of a single oblivious transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OtOutcome {
    /// The bit the receiver learned.
    pub received: bool,
    /// Bytes sent by the sender during the transfer.
    pub sender_bytes: u64,
    /// Bytes sent by the receiver during the transfer.
    pub receiver_bytes: u64,
}

/// The result of a batch of oblivious transfers performed in one message
/// exchange (one circuit layer's worth for a round-batched evaluator).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchOtOutcome {
    /// The bit the receiver learned from each transfer, in request order.
    pub received: Vec<bool>,
    /// Total bytes sent by the sender across the batch.
    pub sender_bytes: u64,
    /// Total bytes sent by the receiver across the batch.
    pub receiver_bytes: u64,
}

/// One batched-transfer request: the sender's four messages and the
/// receiver's two-bit choice.
pub type OtRequest = ([bool; 4], (bool, bool));

/// A provider of 1-out-of-4 oblivious transfers.
pub trait OtProvider {
    /// Performs one 1-out-of-4 OT.  `messages[m]` is indexed by
    /// `m = 2·choice.0 + choice.1`.
    fn transfer(&mut self, messages: [bool; 4], choice: (bool, bool)) -> OtOutcome;

    /// Performs a batch of OTs that share one message exchange, as when a
    /// whole circuit layer's transfers ride in a single round.
    ///
    /// The default implementation loops [`OtProvider::transfer`], so the
    /// accounted totals are *identical* to per-gate execution — batching
    /// changes the round structure, never the work.  Providers with
    /// amortisable per-call overhead (OT extension) override this with a
    /// vectorised path charging the same totals in one pass.
    fn transfer_many(&mut self, requests: &[OtRequest]) -> BatchOtOutcome {
        let mut received = Vec::with_capacity(requests.len());
        let mut sender_bytes = 0;
        let mut receiver_bytes = 0;
        for &(messages, choice) in requests {
            let outcome = self.transfer(messages, choice);
            received.push(outcome.received);
            sender_bytes += outcome.sender_bytes;
            receiver_bytes += outcome.receiver_bytes;
        }
        BatchOtOutcome {
            received,
            sender_bytes,
            receiver_bytes,
        }
    }

    /// Charges the per-session setup cost for one party pair (base OTs for
    /// extension providers; nothing for public-key OT).  Returns the bytes
    /// exchanged `(sender_bytes, receiver_bytes)`.
    fn session_setup(&mut self) -> (u64, u64);

    /// Cumulative operation counts performed by this provider.
    fn counts(&self) -> OperationCounts;
}

/// Converts a two-bit choice into a message index.
pub fn choice_index(choice: (bool, bool)) -> usize {
    (choice.0 as usize) * 2 + (choice.1 as usize)
}

/// Real public-key 1-out-of-4 OT over ElGamal.
pub struct ElGamalOt {
    group: Group,
    rng: Xoshiro256,
    table: DlogTable,
    counts: OperationCounts,
}

impl ElGamalOt {
    /// Creates a provider over the given group with a deterministic seed.
    pub fn new(group: Group, seed: u64) -> Self {
        let table = DlogTable::new(&group, 1);
        ElGamalOt {
            group,
            rng: Xoshiro256::new(seed),
            table,
            counts: OperationCounts::default(),
        }
    }
}

impl OtProvider for ElGamalOt {
    fn transfer(&mut self, messages: [bool; 4], choice: (bool, bool)) -> OtOutcome {
        let chosen = choice_index(choice);

        // Receiver: generate a real key pair for the chosen index and
        // random public keys (with discarded secrets) for the others.
        // Under the honest-but-curious model the receiver follows this
        // prescription, so the sender's other messages stay hidden from it
        // and the choice stays hidden from the sender (all four keys are
        // uniformly distributed group elements).
        let mut public_keys = Vec::with_capacity(4);
        let mut chosen_keypair = None;
        for idx in 0..4 {
            let kp = KeyPair::generate(&self.group, &mut self.rng);
            self.counts.exponentiations += 1;
            if idx == chosen {
                chosen_keypair = Some(kp);
            }
            public_keys.push(kp.public);
        }
        let chosen_keypair = chosen_keypair.expect("chosen index is in 0..4");
        // Erase the relationship for non-chosen keys: replace them with
        // fresh elements whose discrete log the receiver does not retain.
        for (idx, pk) in public_keys.iter_mut().enumerate() {
            if idx != chosen {
                let r = self.group.random_nonzero_exponent(&mut self.rng);
                *pk = PublicKey::from_element(self.group.generator_pow(&r));
                self.counts.exponentiations += 1;
            }
        }

        // Sender: encrypt each message bit under the matching key.
        let mut cts = Vec::with_capacity(4);
        for (idx, pk) in public_keys.iter().enumerate() {
            let ct =
                elgamal::encrypt_exponent(&self.group, pk, messages[idx] as u64, &mut self.rng);
            self.counts.exponentiations += 2;
            cts.push(ct);
        }

        // Receiver: decrypt the chosen ciphertext.
        let elem = elgamal::decrypt(&self.group, &chosen_keypair.secret, &cts[chosen])
            .expect("ciphertext was produced by encrypt");
        self.counts.exponentiations += 1;
        let received = self
            .table
            .lookup(&self.group, elem)
            .expect("message is a bit")
            == 1;

        let element_bytes = self.group.element_bytes() as u64;
        let receiver_bytes = 4 * element_bytes; // four public keys
        let sender_bytes = 4 * 2 * element_bytes; // four ciphertexts
        self.counts.bytes_sent += receiver_bytes + sender_bytes;
        self.counts.base_ots += 1;
        self.counts.rounds += 2;

        OtOutcome {
            received,
            sender_bytes,
            receiver_bytes,
        }
    }

    fn session_setup(&mut self) -> (u64, u64) {
        // Public-key OT needs no per-session setup.
        (0, 0)
    }

    fn counts(&self) -> OperationCounts {
        self.counts
    }
}

/// Functionally-correct simulation of IKNP OT extension with faithful cost
/// accounting.
pub struct SimulatedOtExtension {
    /// Statistical security parameter κ (the prototype used κ = 80).
    security_parameter: u32,
    /// Bytes of a group element, used to charge the base OTs.
    base_ot_element_bytes: u64,
    counts: OperationCounts,
}

impl SimulatedOtExtension {
    /// Creates a provider with the paper's default parameters (κ = 80,
    /// base OTs over the 256-bit group).
    pub fn new() -> Self {
        SimulatedOtExtension {
            security_parameter: 80,
            base_ot_element_bytes: 32,
            counts: OperationCounts::default(),
        }
    }

    /// Creates a provider with an explicit statistical security parameter.
    pub fn with_security_parameter(kappa: u32) -> Self {
        SimulatedOtExtension {
            security_parameter: kappa,
            ..SimulatedOtExtension::new()
        }
    }

    /// The configured statistical security parameter.
    pub fn security_parameter(&self) -> u32 {
        self.security_parameter
    }
}

impl Default for SimulatedOtExtension {
    fn default() -> Self {
        SimulatedOtExtension::new()
    }
}

impl OtProvider for SimulatedOtExtension {
    fn transfer(&mut self, messages: [bool; 4], choice: (bool, bool)) -> OtOutcome {
        let received = messages[choice_index(choice)];
        // Amortised IKNP cost per extended OT: the receiver sends one
        // κ-bit column of the extension matrix, the sender returns the
        // four masked message bits (padded to a byte).
        let receiver_bytes = (self.security_parameter as u64).div_ceil(8);
        let sender_bytes = 1;
        self.counts.extended_ots += 1;
        self.counts.bytes_sent += receiver_bytes + sender_bytes;
        OtOutcome {
            received,
            sender_bytes,
            receiver_bytes,
        }
    }

    /// The amortised batch path: one extension-matrix exchange serves the
    /// whole layer.  Totals are bit-identical to looping [`Self::transfer`]
    /// (a unit test pins them against each other); what the batch saves is
    /// per-call overhead and, at the protocol level, message rounds.
    fn transfer_many(&mut self, requests: &[OtRequest]) -> BatchOtOutcome {
        let n = requests.len() as u64;
        let received = requests
            .iter()
            .map(|&(messages, choice)| messages[choice_index(choice)])
            .collect();
        let receiver_bytes = n * (self.security_parameter as u64).div_ceil(8);
        let sender_bytes = n;
        self.counts.extended_ots += n;
        self.counts.bytes_sent += receiver_bytes + sender_bytes;
        BatchOtOutcome {
            received,
            sender_bytes,
            receiver_bytes,
        }
    }

    fn session_setup(&mut self) -> (u64, u64) {
        // κ base OTs, each transferring two group elements of key material
        // in each direction (Bellare–Micali style).
        let per_base_receiver = 2 * self.base_ot_element_bytes;
        let per_base_sender = 2 * self.base_ot_element_bytes;
        let kappa = self.security_parameter as u64;
        self.counts.base_ots += kappa;
        self.counts.exponentiations += 3 * kappa;
        let sender_bytes = kappa * per_base_sender;
        let receiver_bytes = kappa * per_base_receiver;
        self.counts.bytes_sent += sender_bytes + receiver_bytes;
        self.counts.rounds += 2;
        (sender_bytes, receiver_bytes)
    }

    fn counts(&self) -> OperationCounts {
        self.counts
    }
}

/// Exhaustively checks an OT provider against the ideal functionality on
/// all 64 (message, choice) combinations.  Used by tests for both
/// providers and available to downstream crates' tests.
pub fn check_ot_correctness(provider: &mut dyn OtProvider) -> bool {
    for mask in 0u32..16 {
        let messages = [mask & 1 != 0, mask & 2 != 0, mask & 4 != 0, mask & 8 != 0];
        for c in 0..4usize {
            let choice = (c & 2 != 0, c & 1 != 0);
            let outcome = provider.transfer(messages, choice);
            if outcome.received != messages[choice_index(choice)] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_crypto::group::Group;

    #[test]
    fn choice_indexing() {
        assert_eq!(choice_index((false, false)), 0);
        assert_eq!(choice_index((false, true)), 1);
        assert_eq!(choice_index((true, false)), 2);
        assert_eq!(choice_index((true, true)), 3);
    }

    #[test]
    fn simulated_extension_is_correct() {
        let mut ot = SimulatedOtExtension::new();
        assert!(check_ot_correctness(&mut ot));
        let counts = ot.counts();
        assert_eq!(counts.extended_ots, 64);
        assert_eq!(counts.bytes_sent, 64 * 11);
    }

    #[test]
    fn simulated_extension_setup_cost() {
        let mut ot = SimulatedOtExtension::new();
        assert_eq!(ot.security_parameter(), 80);
        let (s, r) = ot.session_setup();
        assert_eq!(s, 80 * 64);
        assert_eq!(r, 80 * 64);
        assert_eq!(ot.counts().base_ots, 80);
        assert!(ot.counts().exponentiations > 0);

        let mut small = SimulatedOtExtension::with_security_parameter(8);
        let _ = small.session_setup();
        assert_eq!(small.counts().base_ots, 8);
    }

    #[test]
    fn elgamal_ot_is_correct() {
        let mut ot = ElGamalOt::new(Group::sim64(), 42);
        // A reduced sweep (the full 64-case sweep is used for the simulated
        // provider; public-key OT is slower).
        for (messages, choice) in [
            ([true, false, false, true], (false, false)),
            ([true, false, false, true], (true, true)),
            ([false, true, true, false], (false, true)),
            ([false, true, true, false], (true, false)),
        ] {
            let outcome = ot.transfer(messages, choice);
            assert_eq!(outcome.received, messages[choice_index(choice)]);
            assert!(outcome.sender_bytes > 0);
            assert!(outcome.receiver_bytes > 0);
        }
        assert!(ot.counts().exponentiations >= 4 * 10);
        assert_eq!(ot.session_setup(), (0, 0));
    }

    #[test]
    fn batched_transfers_match_per_transfer_totals() {
        let requests: Vec<OtRequest> = (0u32..48)
            .map(|i| {
                let m = [i & 1 != 0, i & 2 != 0, i & 4 != 0, i & 8 != 0];
                (m, (i & 16 != 0, i & 32 != 0))
            })
            .collect();

        // The extension provider's vectorised path charges exactly what the
        // per-transfer loop charges.
        let mut batched = SimulatedOtExtension::new();
        let mut looped = SimulatedOtExtension::new();
        let outcome = batched.transfer_many(&requests);
        let mut expected_bits = Vec::new();
        let mut sender_bytes = 0;
        let mut receiver_bytes = 0;
        for &(messages, choice) in &requests {
            let o = looped.transfer(messages, choice);
            expected_bits.push(o.received);
            sender_bytes += o.sender_bytes;
            receiver_bytes += o.receiver_bytes;
        }
        assert_eq!(outcome.received, expected_bits);
        assert_eq!(outcome.sender_bytes, sender_bytes);
        assert_eq!(outcome.receiver_bytes, receiver_bytes);
        assert_eq!(batched.counts(), looped.counts());

        // The default (looping) implementation serves providers without a
        // vectorised path, e.g. ElGamal OT.
        let mut eg = ElGamalOt::new(Group::sim64(), 9);
        let small = &requests[..4];
        let outcome = eg.transfer_many(small);
        for (bit, &(messages, choice)) in outcome.received.iter().zip(small) {
            assert_eq!(*bit, messages[choice_index(choice)]);
        }
        assert!(outcome.sender_bytes > 0 && outcome.receiver_bytes > 0);
    }

    #[test]
    fn elgamal_ot_accounts_traffic_by_group_size() {
        let mut small = ElGamalOt::new(Group::sim64(), 1);
        let mut large = ElGamalOt::new(Group::prod256(), 1);
        let o_small = small.transfer([true, true, false, false], (false, true));
        let o_large = large.transfer([true, true, false, false], (false, true));
        assert!(o_large.sender_bytes > o_small.sender_bytes);
        assert_eq!(o_small.sender_bytes, 4 * 2 * 8);
        assert_eq!(o_large.sender_bytes, 4 * 2 * 32);
    }
}
