//! The naïve monolithic-MPC baseline (§5.5).
//!
//! The paper's baseline evaluates the entire contagion computation as one
//! monolithic MPC: the closed form of Eisenberg–Noe essentially raises an
//! `N×N` matrix to the `I`-th power, so the authors wrote a Wysteria
//! program multiplying two square matrices, measured it for `N ≤ 25`
//! (1.8 minutes at `N = 10`, 40 minutes at `N = 25`) and extrapolated the
//! `O(N³)` cost to `N = 1750`, arriving at ≈287 years.
//!
//! This module reproduces both halves: [`matrix_multiply_circuit`] builds
//! the Boolean circuit for a fixed-point matrix product (which can be run
//! under our GMW engine for small `N`), and [`extrapolate_full_scale`]
//! performs the same cubic extrapolation the paper uses.

use crate::error::MpcError;
use crate::gmw::{reconstruct_outputs, share_inputs, GmwConfig, GmwProtocol};
use crate::party::OtConfig;
use dstress_circuit::builder::{decode_word, encode_word, CircuitBuilder};
use dstress_circuit::{Circuit, CircuitStats};
use dstress_math::rng::DetRng;
use dstress_net::cost::{CostModel, OperationCounts};
use dstress_net::traffic::TrafficAccountant;

/// Builds a circuit computing the product of two `n × n` matrices of
/// unsigned fixed-point words.
///
/// Inputs are the entries of `A` (row-major) followed by the entries of
/// `B`; outputs are the entries of `A·B` (row-major), truncated to the
/// same width with `frac_bits` fractional bits.
pub fn matrix_multiply_circuit(n: usize, width: u32, frac_bits: u32) -> Circuit {
    let mut builder = CircuitBuilder::new();
    let a: Vec<Vec<_>> = (0..n * n).map(|_| builder.input_word(width)).collect();
    let b: Vec<Vec<_>> = (0..n * n).map(|_| builder.input_word(width)).collect();
    for i in 0..n {
        for j in 0..n {
            let mut acc = builder.const_word(0, width);
            for (k, a_row) in a.iter().enumerate().skip(i * n).take(n) {
                let _ = k;
                let b_entry = &b[(k - i * n) * n + j];
                let product = builder.mul_fixed(a_row, b_entry, frac_bits);
                acc = builder.add(&acc, &product);
            }
            builder.output_word(&acc);
        }
    }
    builder
        .build()
        .expect("builder-produced circuits are well formed")
}

/// The result of running (or projecting) the monolithic baseline.
#[derive(Clone, Debug)]
pub struct BaselineMeasurement {
    /// Matrix dimension.
    pub n: usize,
    /// AND-gate count of one matrix multiplication.
    pub and_gates: u64,
    /// Operation counts of one multiplication under GMW.
    pub counts: OperationCounts,
    /// Projected single-multiplication time under the calibrated cost
    /// model, in seconds.
    pub projected_seconds: f64,
    /// The plaintext product (row-major raw fixed-point words), when the
    /// circuit was actually executed.
    pub product: Option<Vec<u64>>,
}

/// Runs one `n × n` matrix multiplication under GMW with `parties`
/// parties and returns the measurement (including the reconstructed
/// product for correctness checks).
///
/// # Errors
///
/// Propagates GMW configuration/sharing errors.
#[allow(clippy::too_many_arguments)]
pub fn run_matrix_multiply(
    n: usize,
    width: u32,
    frac_bits: u32,
    parties: usize,
    a: &[u64],
    b: &[u64],
    cost_model: &CostModel,
    rng: &mut dyn DetRng,
) -> Result<BaselineMeasurement, MpcError> {
    assert_eq!(a.len(), n * n, "matrix A has wrong size");
    assert_eq!(b.len(), n * n, "matrix B has wrong size");
    let circuit = matrix_multiply_circuit(n, width, frac_bits);
    let stats = CircuitStats::of(&circuit);

    let mut inputs = Vec::with_capacity(2 * n * n * width as usize);
    for &v in a.iter().chain(b.iter()) {
        inputs.extend(encode_word(v, width));
    }
    let shares = share_inputs(&inputs, parties, rng);
    let protocol = GmwProtocol::new(GmwConfig::with_default_ids(parties))?;
    let mut traffic = TrafficAccountant::new();
    let exec = protocol.execute(&circuit, &shares, &OtConfig::extension(), &mut traffic, rng)?;
    let output_bits = reconstruct_outputs(&exec.output_shares)?;
    let product: Vec<u64> = output_bits
        .chunks(width as usize)
        .map(decode_word)
        .collect();

    Ok(BaselineMeasurement {
        n,
        and_gates: stats.and_gates as u64,
        counts: exec.counts,
        projected_seconds: cost_model.estimate_seconds(&exec.counts),
        product: Some(product),
    })
}

/// Computes the circuit-level measurement for an `n × n` multiplication
/// *without* executing it (counts only), which is how the larger points of
/// the §5.5 comparison are obtained.
pub fn measure_matrix_multiply_counts(
    n: usize,
    width: u32,
    frac_bits: u32,
    parties: usize,
    cost_model: &CostModel,
) -> BaselineMeasurement {
    let circuit = matrix_multiply_circuit(n, width, frac_bits);
    let stats = CircuitStats::of(&circuit);
    let layers = dstress_circuit::CircuitLayers::of(&circuit);
    let pairs = (parties * (parties - 1) / 2) as u64;
    let kappa = 80u64;
    let counts = OperationCounts {
        extended_ots: stats.and_gates as u64 * pairs,
        base_ots: kappa * pairs,
        exponentiations: 3 * kappa * pairs,
        and_gates: stats.and_gates as u64,
        free_gates: (stats.xor_gates + stats.not_gates) as u64,
        bytes_sent: stats.and_gates as u64 * pairs * 11 + kappa * pairs * 128,
        // The layer-batched round model: 2 setup rounds, 2 per AND
        // layer, 1 output round (matches the executed engine's measured
        // rounds under GmwBatching::Layered).
        rounds: 2 * layers.rounds() as u64 + 3,
        ..OperationCounts::default()
    };
    BaselineMeasurement {
        n,
        and_gates: stats.and_gates as u64,
        counts,
        projected_seconds: cost_model.estimate_seconds(&counts),
        product: None,
    }
}

/// Extrapolates a measured single-multiplication time at dimension
/// `measured_n` to the full-scale monolithic computation at dimension
/// `target_n` with `iterations` chained multiplications, using the same
/// `O(N³)` scaling argument as §5.5 of the paper.
pub fn extrapolate_full_scale(
    measured_seconds: f64,
    measured_n: usize,
    target_n: usize,
    iterations: u32,
) -> f64 {
    let ratio = target_n as f64 / measured_n as f64;
    measured_seconds * ratio.powi(3) * iterations as f64
}

/// Multiplies two fixed-point matrices in plaintext (reference for tests).
pub fn plaintext_matrix_multiply(n: usize, frac_bits: u32, a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0u64;
            for k in 0..n {
                acc = acc.wrapping_add((a[i * n + k] * b[k * n + j]) >> frac_bits);
            }
            out[i * n + j] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_math::rng::Xoshiro256;

    #[test]
    fn circuit_matches_plaintext_product() {
        let n = 2;
        let width = 16;
        let frac = 4;
        // 1.0 = 16 at 4 fractional bits.
        let a = vec![16u64, 32, 0, 16]; // [[1, 2], [0, 1]]
        let b = vec![16u64, 0, 16, 16]; // [[1, 0], [1, 1]]
        let mut rng = Xoshiro256::new(1);
        let m = run_matrix_multiply(
            n,
            width,
            frac,
            3,
            &a,
            &b,
            &CostModel::paper_reference(),
            &mut rng,
        )
        .unwrap();
        let expected = plaintext_matrix_multiply(n, frac, &a, &b);
        assert_eq!(m.product.as_deref().unwrap(), expected.as_slice());
        // [[1,2],[0,1]] * [[1,0],[1,1]] = [[3,2],[1,1]]
        assert_eq!(expected, vec![48, 32, 16, 16]);
        assert!(m.and_gates > 0);
        assert!(m.projected_seconds > 0.0);
    }

    #[test]
    fn counts_only_measurement_matches_executed_gate_count() {
        let cost = CostModel::paper_reference();
        let counted = measure_matrix_multiply_counts(2, 16, 4, 3, &cost);
        let mut rng = Xoshiro256::new(2);
        let executed = run_matrix_multiply(
            2,
            16,
            4,
            3,
            &[16, 0, 0, 16],
            &[16, 0, 0, 16],
            &cost,
            &mut rng,
        )
        .unwrap();
        assert_eq!(counted.and_gates, executed.and_gates);
        assert_eq!(counted.counts.extended_ots, executed.counts.extended_ots);
    }

    #[test]
    fn cost_grows_cubically_with_n() {
        let cost = CostModel::paper_reference();
        let m4 = measure_matrix_multiply_counts(4, 12, 4, 3, &cost);
        let m8 = measure_matrix_multiply_counts(8, 12, 4, 3, &cost);
        let m16 = measure_matrix_multiply_counts(16, 12, 4, 3, &cost);
        // Doubling n multiplies the AND-gate count (the dominant cost at
        // scale) by roughly 8; the small additive terms (row sums) pull the
        // ratio slightly below the asymptote.
        let r1 = m8.and_gates as f64 / m4.and_gates as f64;
        let r2 = m16.and_gates as f64 / m8.and_gates as f64;
        assert!((6.0..9.0).contains(&r1), "ratio was {r1}");
        assert!((6.5..9.0).contains(&r2), "ratio was {r2}");
        // Projected time is monotone in n even with the fixed OT-setup term.
        assert!(m8.projected_seconds > m4.projected_seconds);
        assert!(m16.projected_seconds > m8.projected_seconds);
    }

    #[test]
    fn extrapolation_matches_paper_formula() {
        // The paper: 40 minutes at N = 25, extrapolated to N = 1750 and 11
        // multiplications gives (1750/25)^3 * 40 * 11 minutes ≈ 287 years.
        let seconds = extrapolate_full_scale(40.0 * 60.0, 25, 1750, 11);
        let years = seconds / (365.25 * 24.0 * 3600.0);
        assert!(
            (250.0..320.0).contains(&years),
            "extrapolated {years} years"
        );
    }

    #[test]
    fn plaintext_identity_multiplication() {
        let n = 3;
        let frac = 4;
        let identity: Vec<u64> = (0..9).map(|i| if i % 4 == 0 { 16 } else { 0 }).collect();
        let m: Vec<u64> = (1..=9).map(|v| v * 16).collect();
        assert_eq!(plaintext_matrix_multiply(n, frac, &identity, &m), m);
    }
}
