//! Error type for the MPC layer.

use core::fmt;
use dstress_circuit::CircuitError;
use dstress_crypto::CryptoError;

/// Errors produced by the GMW engine and its oblivious-transfer providers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpcError {
    /// The circuit itself was malformed.
    Circuit(CircuitError),
    /// An underlying cryptographic operation failed.
    Crypto(CryptoError),
    /// The number of parties is below the minimum (GMW needs at least two;
    /// DStress blocks need `k + 1 >= 2`).
    TooFewParties {
        /// Parties requested.
        parties: usize,
    },
    /// Input shares were not provided for every party, or had the wrong
    /// length.
    InputShareMismatch {
        /// Expected number of input bits per party.
        expected: usize,
        /// What was provided.
        actual: usize,
    },
    /// Output share vectors passed to reconstruction disagree in length.
    OutputShareMismatch,
    /// The transport driving the per-party state machines stalled (a
    /// protocol bug: every unfinished party idle with no message in
    /// flight).
    Transport(dstress_net::transport::TransportError),
}

impl fmt::Display for MpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpcError::Circuit(e) => write!(f, "circuit error: {e}"),
            MpcError::Crypto(e) => write!(f, "crypto error: {e}"),
            MpcError::TooFewParties { parties } => {
                write!(f, "GMW requires at least 2 parties, got {parties}")
            }
            MpcError::InputShareMismatch { expected, actual } => {
                write!(
                    f,
                    "expected {expected} input share bits per party, got {actual}"
                )
            }
            MpcError::OutputShareMismatch => write!(f, "output share vectors disagree in length"),
            MpcError::Transport(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for MpcError {}

impl From<CircuitError> for MpcError {
    fn from(e: CircuitError) -> Self {
        MpcError::Circuit(e)
    }
}

impl From<CryptoError> for MpcError {
    fn from(e: CryptoError) -> Self {
        MpcError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(MpcError::TooFewParties { parties: 1 }
            .to_string()
            .contains('1'));
        assert!(MpcError::OutputShareMismatch
            .to_string()
            .contains("disagree"));
        assert!(MpcError::InputShareMismatch {
            expected: 3,
            actual: 2
        }
        .to_string()
        .contains('3'));
        let c: MpcError = CircuitError::InvalidOutput { wire: 2 }.into();
        assert!(c.to_string().contains("circuit"));
        let k: MpcError = CryptoError::MalformedCiphertext.into();
        assert!(k.to_string().contains("crypto"));
        let t = MpcError::Transport(dstress_net::transport::TransportError::Stalled {
            done: 1,
            actors: 3,
        });
        assert!(t.to_string().contains("stalled"));
    }
}
