//! N-party secure computation (GMW) for the DStress reproduction.
//!
//! DStress evaluates every vertex-program step inside a *small* multi-party
//! computation among the `k + 1` members of a block, using the GMW
//! protocol \[34\] over Boolean circuits (the paper's prototype used the
//! Wysteria runtime on top of the Choi et al. GMW implementation).  This
//! crate reproduces that machinery:
//!
//! * [`ot`] — 1-out-of-4 oblivious transfer, the only communication
//!   primitive GMW needs.  Two providers are included: a real
//!   public-key OT built on our ElGamal (used by the crypto-level tests
//!   and microbenchmarks) and a *simulated OT-extension* provider that
//!   delivers the same values while accounting for the amortised cost of
//!   IKNP-style extension (used by the large end-to-end simulations, since
//!   the paper's own prototype relied on OT extension for exactly this
//!   reason, §5.3).
//! * [`party`] — the per-party GMW state machine
//!   ([`party::GmwParty`]): a [`dstress_net::NodeActor`] that evaluates
//!   free gates locally and batches all of a circuit layer's AND-gate OTs
//!   into one message exchange with each peer through a
//!   [`dstress_net::Transport`] ([`party::GmwBatching`]), so a block's
//!   parties can run deterministically in process or one-per-thread with
//!   bit-identical results and round counts that scale with circuit
//!   depth.
//! * [`gmw`] — the GMW engine driving those parties: XOR-shared wires,
//!   free XOR/NOT gates, one OT per unordered party pair per AND gate
//!   (grouped per layer on the wire), per-party traffic and operation
//!   accounting, and helpers for sharing inputs and reconstructing
//!   outputs.
//! * [`wire`] — the wire encoding of every [`party::GmwMessage`]:
//!   bit-packed choice/share planes plus the OT payloads, measured by the
//!   transports so byte totals come from real encodings.
//! * [`baseline`] — the naïve monolithic-MPC baseline of §5.5: an `N×N`
//!   fixed-point matrix-multiplication circuit evaluated under GMW, plus
//!   the extrapolation the paper uses to arrive at its "287 years"
//!   estimate.
//!
//! ## Example
//!
//! ```
//! use dstress_math::rng::Xoshiro256;
//! use dstress_mpc::{reconstruct_outputs, share_inputs};
//!
//! // XOR-share a bit vector among 3 parties and reconstruct it.
//! let mut rng = Xoshiro256::new(1);
//! let bits = vec![true, false, true, true];
//! let shares = share_inputs(&bits, 3, &mut rng);
//! assert_eq!(shares.len(), 3);
//! assert_eq!(reconstruct_outputs(&shares).unwrap(), bits);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod error;
pub mod gmw;
pub mod ot;
pub mod party;
pub mod wire;

pub use error::MpcError;
pub use gmw::{reconstruct_outputs, share_inputs, GmwConfig, GmwExecution, GmwProtocol};
pub use ot::{ElGamalOt, OtProvider, SimulatedOtExtension};
pub use party::{GmwBatching, GmwMessage, GmwParty, OtConfig};
