//! The per-party GMW state machine.
//!
//! A [`GmwParty`] is one party's half of the GMW protocol, written as a
//! resumable [`NodeActor`]: it evaluates free gates locally, and at every
//! AND gate exchanges one oblivious transfer with each peer through the
//! transport.  Because each party is a self-contained actor, a block's
//! parties can run round-robin on one thread
//! ([`dstress_net::SimTransport`]) or genuinely concurrently, one node
//! per worker ([`dstress_net::ThreadedTransport`]) — with bit-identical
//! results, since parties consume messages in a protocol-fixed per-peer
//! order and draw randomness from their own seeded streams.
//!
//! ## Wire protocol
//!
//! For every AND gate, each unordered party pair `(i, j)` with `i < j`
//! performs one 1-out-of-4 OT in which `i` is the sender:
//!
//! 1. `j` sends [`GmwMessage::Choice`] (its shares of the gate inputs).
//! 2. `i` runs the pair's [`OtProvider`], masks with a fresh random bit
//!    from its own stream, and answers with [`GmwMessage::Response`].
//!
//! The lower-indexed party owns the pair's OT provider and accounts the
//! pair's operation counts and traffic (both directions) in its own
//! [`TrafficAccountant`]; merging every party's accountant therefore
//! yields each flow exactly once.
//!
//! ## Example
//!
//! ```
//! use dstress_circuit::builder::{decode_word, encode_word, CircuitBuilder};
//! use dstress_math::rng::Xoshiro256;
//! use dstress_mpc::gmw::{reconstruct_outputs, share_inputs, GmwConfig, GmwProtocol};
//! use dstress_mpc::party::OtConfig;
//! use dstress_net::{SimTransport, ThreadedTransport, TrafficAccountant};
//!
//! let mut b = CircuitBuilder::new();
//! let x = b.input_word(8);
//! let y = b.input_word(8);
//! let s = b.add(&x, &y);
//! b.output_word(&s);
//! let circuit = b.build().unwrap();
//!
//! let mut inputs = encode_word(20, 8);
//! inputs.extend(encode_word(22, 8));
//! let mut rng = Xoshiro256::new(7);
//! let shares = share_inputs(&inputs, 3, &mut rng);
//! let protocol = GmwProtocol::new(GmwConfig::with_default_ids(3)).unwrap();
//!
//! // The same parties run on the deterministic backend or a worker pool.
//! let mut traffic = TrafficAccountant::new();
//! let sim = protocol
//!     .execute_seeded(&SimTransport, &circuit, &shares, &OtConfig::extension(), &mut traffic, 99)
//!     .unwrap();
//! let mut traffic = TrafficAccountant::new();
//! let threaded = protocol
//!     .execute_seeded(
//!         &ThreadedTransport::with_threads(2),
//!         &circuit,
//!         &shares,
//!         &OtConfig::extension(),
//!         &mut traffic,
//!         99,
//!     )
//!     .unwrap();
//!
//! assert_eq!(sim.output_shares, threaded.output_shares);
//! assert_eq!(sim.counts, threaded.counts);
//! assert_eq!(decode_word(&reconstruct_outputs(&sim.output_shares).unwrap()), 42);
//! ```

use crate::ot::{ElGamalOt, OtProvider, SimulatedOtExtension};
use dstress_circuit::{Circuit, Gate};
use dstress_crypto::group::{Group, GroupKind};
use dstress_math::rng::{DetRng, SplitMix64, Xoshiro256};
use dstress_net::cost::OperationCounts;
use dstress_net::traffic::{NodeId, TrafficAccountant};
use dstress_net::transport::{ActorStatus, Endpoint, NodeActor};

/// A GMW protocol message, routed between parties by a transport.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GmwMessage {
    /// OT receiver → sender: the receiver's shares of the AND-gate inputs
    /// (its 1-out-of-4 choice).  Flows from the higher-indexed to the
    /// lower-indexed party of a pair.
    Choice {
        /// Sequence number of the AND gate, for in-order delivery checks.
        gate: u32,
        /// The receiver's share of the gate's left input.
        x: bool,
        /// The receiver's share of the gate's right input.
        y: bool,
    },
    /// OT sender → receiver: the masked table entry the receiver chose.
    Response {
        /// Sequence number of the AND gate.
        gate: u32,
        /// The received bit.
        bit: bool,
    },
}

/// Which oblivious-transfer provider the parties instantiate per pair.
///
/// This replaces the old pattern of threading a single shared
/// `&mut dyn OtProvider` through a monolithic executor: with per-party
/// state machines, each unordered pair owns an independent provider
/// (held by the lower-indexed party), so parties can run on different
/// threads without sharing mutable state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OtConfig {
    /// Simulated IKNP-style OT extension with the given statistical
    /// security parameter κ (the paper's prototype used κ = 80).
    Extension {
        /// The statistical security parameter.
        security_parameter: u32,
    },
    /// Real public-key OT over ElGamal in the given group (slow; used by
    /// crypto-level tests and microbenchmarks).
    ElGamal {
        /// The group to instantiate.
        group: GroupKind,
    },
}

impl OtConfig {
    /// The default provider: OT extension with the paper's κ = 80.
    pub fn extension() -> Self {
        OtConfig::Extension {
            security_parameter: 80,
        }
    }

    /// Real ElGamal OT over the given group.
    pub fn elgamal(group: GroupKind) -> Self {
        OtConfig::ElGamal { group }
    }

    /// Instantiates a provider for one party pair.
    pub fn provider(&self, seed: u64) -> Box<dyn OtProvider + Send> {
        match *self {
            OtConfig::Extension { security_parameter } => Box::new(
                SimulatedOtExtension::with_security_parameter(security_parameter),
            ),
            OtConfig::ElGamal { group } => Box::new(ElGamalOt::new(Group::new(group), seed)),
        }
    }
}

impl Default for OtConfig {
    fn default() -> Self {
        OtConfig::extension()
    }
}

/// Domain tags for [`derive_seed`] streams.
const TAG_PARTY_RNG: u64 = 0x7061_7274_795F_726E; // "party_rn"
const TAG_PAIR_OT: u64 = 0x7061_6972_5F6F_745F; // "pair_ot_"

/// Derives an independent sub-seed from a master seed, a domain tag and
/// an index; used to give every party and every pair its own stream.
pub fn derive_seed(master: u64, tag: u64, index: u64) -> u64 {
    let mut sm =
        SplitMix64::new(master ^ tag.rotate_left(17) ^ index.wrapping_mul(0xA24B_AED4_963E_E407));
    sm.next_u64()
}

/// In-flight state of the AND gate a party is currently evaluating.
#[derive(Clone, Copy, Debug)]
struct AndGateState {
    /// Left input wire.
    a: usize,
    /// Right input wire.
    b: usize,
    /// The party's accumulating share of the gate output.
    share: bool,
    /// Whether the choice messages to lower-indexed peers went out.
    choices_sent: bool,
    /// Next higher-indexed peer whose Choice this party (as OT sender)
    /// still has to serve.
    next_sender_peer: usize,
    /// Next lower-indexed peer whose Response this party (as OT
    /// receiver) still awaits.
    next_receiver_peer: usize,
}

/// One party of a GMW execution, runnable on any transport backend.
pub struct GmwParty<'c> {
    circuit: &'c Circuit,
    index: usize,
    parties: usize,
    node_ids: Vec<NodeId>,
    rng: Xoshiro256,
    /// OT provider for every pair this party owns (peers with a larger
    /// index); `None` for peers whose pair the peer owns.
    ots: Vec<Option<Box<dyn OtProvider + Send>>>,
    input_share: Vec<bool>,
    wires: Vec<bool>,
    counts: OperationCounts,
    traffic: TrafficAccountant,
    gate_index: usize,
    and_seq: u32,
    and_state: Option<AndGateState>,
    setup_done: bool,
    finished: bool,
}

impl<'c> GmwParty<'c> {
    /// Creates party `index` of `node_ids.len()` parties.
    ///
    /// `input_share` is this party's XOR share of every circuit input.
    /// All party and pair randomness derives from `master_seed`, so a
    /// fixed seed yields bit-identical executions on every backend.
    pub fn new(
        circuit: &'c Circuit,
        index: usize,
        node_ids: Vec<NodeId>,
        input_share: Vec<bool>,
        ot: &OtConfig,
        master_seed: u64,
    ) -> Self {
        let parties = node_ids.len();
        let rng = Xoshiro256::new(derive_seed(master_seed, TAG_PARTY_RNG, index as u64));
        let ots = (0..parties)
            .map(|peer| {
                (peer > index).then(|| {
                    let pair = (index * parties + peer) as u64;
                    ot.provider(derive_seed(master_seed, TAG_PAIR_OT, pair))
                })
            })
            .collect();
        GmwParty {
            circuit,
            index,
            parties,
            node_ids,
            rng,
            ots,
            input_share,
            wires: Vec::with_capacity(circuit.len()),
            counts: OperationCounts::default(),
            // Pair tracking is cheap at block scale and keeps per-pair
            // byte flows available to callers that merge into a
            // pair-tracking accountant.
            traffic: TrafficAccountant::with_pair_tracking(),
            gate_index: 0,
            and_seq: 0,
            and_state: None,
            setup_done: false,
            finished: false,
        }
    }

    /// This party's index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Whether the party has completed its protocol role.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The operation counts this party accounted (pair owners account
    /// their pairs' OT work; gate and round counts are added once at the
    /// execution level).
    pub fn counts(&self) -> &OperationCounts {
        &self.counts
    }

    /// The traffic this party accounted (each flow of a pair appears in
    /// exactly one party's accountant).
    pub fn traffic(&self) -> &TrafficAccountant {
        &self.traffic
    }

    /// This party's share of every circuit output.
    ///
    /// # Panics
    ///
    /// Panics if the party has not finished.
    pub fn output_share(&self) -> Vec<bool> {
        assert!(self.finished, "party {} has not finished", self.index);
        self.circuit
            .outputs()
            .iter()
            .map(|&wire| self.wires[wire])
            .collect()
    }

    /// Charges the per-pair OT session setup for every pair this party
    /// owns (no messages carry values here; the costs are what matters).
    fn session_setup(&mut self) {
        let me = self.node_ids[self.index];
        for peer in (self.index + 1)..self.parties {
            let provider = self.ots[peer].as_mut().expect("pair owner has a provider");
            let before = provider.counts();
            let (sender_bytes, receiver_bytes) = provider.session_setup();
            let after = provider.counts();
            absorb_provider_delta(&mut self.counts, &before, &after);
            let peer_id = self.node_ids[peer];
            if sender_bytes > 0 {
                self.traffic.record(me, peer_id, sender_bytes);
            }
            if receiver_bytes > 0 {
                self.traffic.record(peer_id, me, receiver_bytes);
            }
        }
    }

    /// Drives the in-flight AND gate as far as possible; returns `true`
    /// when the gate completed and its output share was pushed.
    fn advance_and_gate(&mut self, endpoint: &mut dyn Endpoint<GmwMessage>) -> bool {
        let mut st = self.and_state.take().expect("an AND gate is in flight");
        let x = self.wires[st.a];
        let y = self.wires[st.b];

        // As OT receiver: announce the choice to every pair owner.
        if !st.choices_sent {
            if self.index > 0 {
                let gate = self.and_seq;
                let batch: Vec<(usize, GmwMessage)> = (0..self.index)
                    .map(|owner| (owner, GmwMessage::Choice { gate, x, y }))
                    .collect();
                endpoint.send_many(batch);
            }
            st.choices_sent = true;
        }

        // As OT sender (pair owner): serve every higher-indexed peer in
        // index order.
        while st.next_sender_peer < self.parties {
            let peer = st.next_sender_peer;
            let Some(message) = endpoint.try_recv_from(peer) else {
                self.and_state = Some(st);
                return false;
            };
            let GmwMessage::Choice { gate, x: xj, y: yj } = message else {
                panic!(
                    "party {peer} must send Choice messages to party {}",
                    self.index
                );
            };
            debug_assert_eq!(gate, self.and_seq, "AND-gate choice out of order");
            // The sender's mask; the pair's cross terms x_i·y_j ⊕ x_j·y_i
            // are encoded in the table, indexed by the receiver's choice.
            let r = self.rng.next_bool();
            let table = [r, r ^ x, r ^ y, r ^ x ^ y];
            let provider = self.ots[peer].as_mut().expect("pair owner has a provider");
            let before = provider.counts();
            let outcome = provider.transfer(table, (xj, yj));
            let after = provider.counts();
            absorb_provider_delta(&mut self.counts, &before, &after);
            endpoint.send(
                peer,
                GmwMessage::Response {
                    gate: self.and_seq,
                    bit: outcome.received,
                },
            );
            st.share ^= r;
            let me = self.node_ids[self.index];
            let peer_id = self.node_ids[peer];
            if outcome.sender_bytes > 0 {
                self.traffic.record(me, peer_id, outcome.sender_bytes);
            }
            if outcome.receiver_bytes > 0 {
                self.traffic.record(peer_id, me, outcome.receiver_bytes);
            }
            st.next_sender_peer += 1;
        }

        // As OT receiver: collect every owner's response in index order.
        while st.next_receiver_peer < self.index {
            let owner = st.next_receiver_peer;
            let Some(message) = endpoint.try_recv_from(owner) else {
                self.and_state = Some(st);
                return false;
            };
            let GmwMessage::Response { gate, bit } = message else {
                panic!(
                    "party {owner} must send Response messages to party {}",
                    self.index
                );
            };
            debug_assert_eq!(gate, self.and_seq, "AND-gate response out of order");
            st.share ^= bit;
            st.next_receiver_peer += 1;
        }

        self.wires.push(st.share);
        true
    }
}

/// Folds the compute-side delta of an OT provider's counts into a
/// party's counts.  Bytes and rounds are excluded: bytes are accounted at
/// the transport boundary via the traffic accountant, and the round
/// structure is a circuit property added once per execution.
fn absorb_provider_delta(
    counts: &mut OperationCounts,
    before: &OperationCounts,
    after: &OperationCounts,
) {
    counts.exponentiations += after.exponentiations - before.exponentiations;
    counts.group_multiplications += after.group_multiplications - before.group_multiplications;
    counts.base_ots += after.base_ots - before.base_ots;
    counts.extended_ots += after.extended_ots - before.extended_ots;
}

impl NodeActor<GmwMessage> for GmwParty<'_> {
    fn poll(&mut self, endpoint: &mut dyn Endpoint<GmwMessage>) -> ActorStatus {
        if self.finished {
            return ActorStatus::Done;
        }
        if !self.setup_done {
            self.session_setup();
            self.setup_done = true;
        }
        loop {
            if self.and_state.is_some() && !self.advance_and_gate(endpoint) {
                return ActorStatus::Idle;
            }
            while self.gate_index < self.circuit.len() {
                let gate = self.circuit.gates()[self.gate_index];
                self.gate_index += 1;
                match gate {
                    Gate::Input(i) => self.wires.push(self.input_share[i]),
                    Gate::ConstFalse => self.wires.push(false),
                    // Party 0 holds constants and NOT flips; all other
                    // parties' shares are zero.
                    Gate::ConstTrue => self.wires.push(self.index == 0),
                    Gate::Xor(a, b) => {
                        let v = self.wires[a] ^ self.wires[b];
                        self.wires.push(v);
                    }
                    Gate::Not(a) => {
                        let v = self.wires[a] ^ (self.index == 0);
                        self.wires.push(v);
                    }
                    Gate::And(a, b) => {
                        self.and_seq = self.and_seq.wrapping_add(1);
                        self.and_state = Some(AndGateState {
                            a,
                            b,
                            share: self.wires[a] && self.wires[b],
                            choices_sent: false,
                            next_sender_peer: self.index + 1,
                            next_receiver_peer: 0,
                        });
                        break;
                    }
                }
            }
            if self.and_state.is_none() {
                break;
            }
        }
        self.finished = true;
        ActorStatus::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_circuit::builder::CircuitBuilder;

    fn tiny_and_circuit() -> Circuit {
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let y = b.input();
        let z = b.and(x, y);
        b.output(z);
        b.build().unwrap()
    }

    #[test]
    fn ot_config_builds_providers() {
        let mut ext = OtConfig::extension().provider(1);
        let outcome = ext.transfer([true, false, true, false], (false, false));
        assert!(outcome.received);
        let mut eg = OtConfig::elgamal(GroupKind::Sim64).provider(2);
        let outcome = eg.transfer([false, true, false, false], (false, true));
        assert!(outcome.received);
        assert_eq!(OtConfig::default(), OtConfig::extension());
    }

    #[test]
    fn derive_seed_separates_streams() {
        let a = derive_seed(1, TAG_PARTY_RNG, 0);
        let b = derive_seed(1, TAG_PARTY_RNG, 1);
        let c = derive_seed(1, TAG_PAIR_OT, 0);
        let d = derive_seed(2, TAG_PARTY_RNG, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a, derive_seed(1, TAG_PARTY_RNG, 0));
    }

    #[test]
    #[should_panic(expected = "has not finished")]
    fn output_share_requires_completion() {
        let circuit = tiny_and_circuit();
        let party = GmwParty::new(
            &circuit,
            0,
            vec![NodeId(0), NodeId(1)],
            vec![false, true],
            &OtConfig::extension(),
            7,
        );
        let _ = party.output_share();
    }
}
