//! The per-party GMW state machine.
//!
//! A [`GmwParty`] is one party's half of the GMW protocol, written as a
//! resumable [`NodeActor`]: it evaluates free gates locally and performs
//! the AND-gate oblivious transfers with each peer through the transport.
//! Because each party is a self-contained actor, a block's parties can run
//! round-robin on one thread ([`dstress_net::SimTransport`]) or genuinely
//! concurrently, one node per worker ([`dstress_net::ThreadedTransport`])
//! — with bit-identical results, since parties consume messages in a
//! protocol-fixed per-peer order and derive all randomness from their own
//! seeded streams.
//!
//! ## Wire protocol
//!
//! For every AND gate, each unordered party pair `(i, j)` with `i < j`
//! performs one 1-out-of-4 OT in which `i` is the sender.  How those OTs
//! map onto messages is the [`GmwBatching`] knob:
//!
//! * [`GmwBatching::Layered`] (the default) — the circuit is partitioned
//!   into AND layers ([`dstress_circuit::CircuitLayers`]) and all of a
//!   layer's OTs ride in **one** message pair per peer:
//!   1. `j` sends [`GmwMessage::Choices`] (its shares of every gate input
//!      in the layer).
//!   2. `i` serves the whole layer through the pair's
//!      [`OtProvider::transfer_many`] and answers with one
//!      [`GmwMessage::Responses`].
//!
//!   Rounds per pair therefore scale with the circuit's AND *depth*, the
//!   dominant wide-area cost in the paper's model.
//! * [`GmwBatching::PerGate`] — the historical path, one
//!   [`GmwMessage::Choice`]/[`GmwMessage::Response`] exchange per AND
//!   gate, kept for A/B round measurements.  Rounds scale with the AND
//!   *gate count*.
//!
//! At its first AND layer (or AND gate, in per-gate mode) — and only
//! then — every pair exchanges one [`GmwMessage::OtSetup`] message in
//! each direction carrying the base-OT key material of the pair's
//! session (sized by the provider's analytic setup cost; skipped for
//! providers with no setup).  The exchange is charged *lazily*: a
//! circuit with no AND gates performs no oblivious transfers and
//! therefore pays no setup rounds, bytes or base OTs.  Each choice
//! message additionally carries the OT receiver-side payload
//! (extension-matrix columns or public keys) and each response the
//! sender-side payload, so the *measured* encoded bytes of a run
//! reconcile with the analytic model; see [`crate::wire`] for the exact
//! layouts.  Payload *content* is derived from the pair's seed
//! ([`crate::wire::ot_payload`]), so transcripts are replayable and
//! byte-identical across backends by construction.
//!
//! The two modes exchange the same OT payloads in a different grouping:
//! every AND-gate mask is derived from the pair `(wire, peer)` rather than
//! drawn from a sequential stream, so output shares, operation counts and
//! modeled traffic totals are bit-identical across modes (and across
//! transport backends); only the measured round count and the measured
//! per-message framing bytes differ.
//!
//! The lower-indexed party owns the pair's OT provider and accounts the
//! pair's operation counts and traffic (both directions) in its own
//! [`TrafficAccountant`]; merging every party's accountant therefore
//! yields each flow exactly once.
//!
//! ## Example
//!
//! ```
//! use dstress_circuit::builder::{decode_word, encode_word, CircuitBuilder};
//! use dstress_math::rng::Xoshiro256;
//! use dstress_mpc::gmw::{reconstruct_outputs, share_inputs, GmwConfig, GmwProtocol};
//! use dstress_mpc::party::OtConfig;
//! use dstress_net::{SimTransport, ThreadedTransport, TrafficAccountant};
//!
//! let mut b = CircuitBuilder::new();
//! let x = b.input_word(8);
//! let y = b.input_word(8);
//! let s = b.add(&x, &y);
//! b.output_word(&s);
//! let circuit = b.build().unwrap();
//!
//! let mut inputs = encode_word(20, 8);
//! inputs.extend(encode_word(22, 8));
//! let mut rng = Xoshiro256::new(7);
//! let shares = share_inputs(&inputs, 3, &mut rng);
//! let protocol = GmwProtocol::new(GmwConfig::with_default_ids(3)).unwrap();
//!
//! // The same parties run on the deterministic backend or a worker pool.
//! let mut traffic = TrafficAccountant::new();
//! let sim = protocol
//!     .execute_seeded(&SimTransport, &circuit, &shares, &OtConfig::extension(), &mut traffic, 99)
//!     .unwrap();
//! let mut traffic = TrafficAccountant::new();
//! let threaded = protocol
//!     .execute_seeded(
//!         &ThreadedTransport::with_threads(2),
//!         &circuit,
//!         &shares,
//!         &OtConfig::extension(),
//!         &mut traffic,
//!         99,
//!     )
//!     .unwrap();
//!
//! assert_eq!(sim.output_shares, threaded.output_shares);
//! assert_eq!(sim.counts, threaded.counts);
//! assert_eq!(decode_word(&reconstruct_outputs(&sim.output_shares).unwrap()), 42);
//! ```

use crate::ot::{ElGamalOt, OtProvider, OtRequest, SimulatedOtExtension};
use dstress_circuit::{Circuit, CircuitLayers, Gate};
use dstress_crypto::group::{Group, GroupKind};
use dstress_net::cost::OperationCounts;
use dstress_net::traffic::{NodeId, TrafficAccountant};
use dstress_net::transport::{ActorStatus, Endpoint, NodeActor};

/// A GMW protocol message, routed between parties by a transport.
///
/// Every variant has a hand-rolled wire encoding (see [`crate::wire`]):
/// the per-gate and batched choice/share bits are bit-packed (one bit
/// each), and the `ot_payload` fields carry the oblivious-transfer
/// traffic that rides in the same round — base-OT key material at setup,
/// extension-matrix columns with the choices, masked messages with the
/// responses.  The payload *sizes* are protocol-faithful (they match the
/// provider's analytic per-OT costs, so the measured wire bytes reconcile
/// with the cost model); the payload *content* is derived from the pair's
/// seed by [`crate::wire::ot_payload`] — the simulated OT providers
/// deliver their outputs in-process, but the bytes on the wire are a pure
/// function of the execution seed, so transcripts replay byte-identically
/// on every backend.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GmwMessage {
    /// Per-pair OT session setup (both directions), exchanged lazily at
    /// the pair's first AND layer: the base-OT key material of the
    /// pair's extension session.  Never sent for circuits without AND
    /// gates, nor for providers with no per-session setup (public-key
    /// OT).
    OtSetup {
        /// Seed-derived key material sized by the provider's setup cost.
        ot_payload: Vec<u8>,
    },
    /// Per-gate mode, OT receiver → sender: the receiver's shares of one
    /// AND gate's inputs (its 1-out-of-4 choice).  Flows from the
    /// higher-indexed to the lower-indexed party of a pair.
    Choice {
        /// Wire id of the AND gate, for in-order delivery checks.
        gate: u32,
        /// The receiver's share of the gate's left input.
        x: bool,
        /// The receiver's share of the gate's right input.
        y: bool,
        /// This OT's receiver-side payload (extension-matrix column or
        /// the four ElGamal public keys), sized by the provider.
        ot_payload: Vec<u8>,
    },
    /// Per-gate mode, OT sender → receiver: the masked table entry the
    /// receiver chose.
    Response {
        /// Wire id of the AND gate.
        gate: u32,
        /// The received bit.
        bit: bool,
        /// This OT's sender-side payload (masked messages or the four
        /// ElGamal ciphertexts), sized by the provider.
        ot_payload: Vec<u8>,
    },
    /// Layered mode, OT receiver → sender: the receiver's input shares for
    /// *every* AND gate of one circuit layer, in layer order — a whole
    /// round's worth of choices in one message, two bit-packed planes.
    Choices {
        /// Index of the AND layer, for in-order delivery checks.
        layer: u32,
        /// `(x, y)` input shares per gate of the layer.
        pairs: Vec<(bool, bool)>,
        /// The layer's batched receiver-side OT payload.
        ot_payload: Vec<u8>,
    },
    /// Layered mode, OT sender → receiver: the masked table entries for
    /// every AND gate of one circuit layer, one bit-packed plane.
    Responses {
        /// Index of the AND layer.
        layer: u32,
        /// The received bit per gate of the layer.
        bits: Vec<bool>,
        /// The layer's batched sender-side OT payload.
        ot_payload: Vec<u8>,
    },
}

/// How a party groups its AND-gate OTs into messages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GmwBatching {
    /// One message exchange per AND gate per pair: rounds scale with the
    /// AND-gate count.  Kept for A/B measurements against the paper's
    /// round model.
    PerGate,
    /// One message exchange per AND *layer* per pair: rounds scale with
    /// the circuit's AND depth (the paper's §5.1 amortisation).  The
    /// default.
    #[default]
    Layered,
}

/// Which oblivious-transfer provider the parties instantiate per pair.
///
/// With per-party state machines, each unordered pair owns an independent
/// provider (held by the lower-indexed party), so parties can run on
/// different threads without sharing mutable state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OtConfig {
    /// Simulated IKNP-style OT extension with the given statistical
    /// security parameter κ (the paper's prototype used κ = 80).
    Extension {
        /// The statistical security parameter.
        security_parameter: u32,
    },
    /// Real public-key OT over ElGamal in the given group (slow; used by
    /// crypto-level tests and microbenchmarks).
    ElGamal {
        /// The group to instantiate.
        group: GroupKind,
    },
}

impl OtConfig {
    /// The default provider: OT extension with the paper's κ = 80.
    pub fn extension() -> Self {
        OtConfig::Extension {
            security_parameter: 80,
        }
    }

    /// Real ElGamal OT over the given group.
    pub fn elgamal(group: GroupKind) -> Self {
        OtConfig::ElGamal { group }
    }

    /// Instantiates a provider for one party pair.
    pub fn provider(&self, seed: u64) -> Box<dyn OtProvider + Send> {
        match *self {
            OtConfig::Extension { security_parameter } => Box::new(
                SimulatedOtExtension::with_security_parameter(security_parameter),
            ),
            OtConfig::ElGamal { group } => Box::new(ElGamalOt::new(Group::new(group), seed)),
        }
    }

    /// Wire bytes the OT *receiver* contributes per transfer: the κ-bit
    /// extension-matrix column (IKNP) or the four public keys (ElGamal).
    /// Matches the provider's analytic `receiver_bytes` per transfer, so
    /// the measured wire traffic reconciles with the cost model (a unit
    /// test pins the two together).
    pub fn wire_receiver_bytes_per_ot(&self) -> usize {
        match *self {
            OtConfig::Extension { security_parameter } => (security_parameter as usize).div_ceil(8),
            OtConfig::ElGamal { group } => 4 * Group::new(group).element_bytes(),
        }
    }

    /// Wire bytes the OT *sender* contributes per transfer: the masked
    /// message bits padded to a byte (IKNP) or the four ciphertexts
    /// (ElGamal).  Matches the provider's analytic `sender_bytes`.
    pub fn wire_sender_bytes_per_ot(&self) -> usize {
        match *self {
            OtConfig::Extension { .. } => 1,
            OtConfig::ElGamal { group } => 4 * 2 * Group::new(group).element_bytes(),
        }
    }

    /// Wire bytes of the per-pair session setup as
    /// `(owner_to_peer, peer_to_owner)`: κ base OTs worth of key material
    /// each way for extension providers, nothing for public-key OT.
    /// Matches the provider's analytic `session_setup` byte totals.
    pub fn wire_setup_bytes(&self) -> (usize, usize) {
        match *self {
            OtConfig::Extension { security_parameter } => {
                // Two 32-byte group elements per base OT in each
                // direction (see `SimulatedOtExtension::session_setup`).
                let each = security_parameter as usize * 2 * 32;
                (each, each)
            }
            OtConfig::ElGamal { .. } => (0, 0),
        }
    }
}

impl Default for OtConfig {
    fn default() -> Self {
        OtConfig::extension()
    }
}

/// Domain tags for [`derive_seed`] streams.
const TAG_PARTY_RNG: u64 = 0x7061_7274_795F_726E; // "party_rn"
const TAG_PAIR_OT: u64 = 0x7061_6972_5F6F_745F; // "pair_ot_"
const TAG_AND_MASK: u64 = 0x616e_645f_6d61_736b; // "and_mask"
const TAG_PAIR_PAYLOAD: u64 = 0x7061_6972_5F70_6179; // "pair_pay"

/// Derives an independent sub-seed from a master seed, a domain tag and
/// an index; used to give every party, every pair and every AND-gate mask
/// its own stream.
///
/// Each input passes through its own
/// [`splitmix64_finalize`](dstress_math::rng::splitmix64_finalize) round
/// before the next is folded in, so no linear relation between
/// `(master, tag, index)` tuples survives into the output.  (The previous
/// implementation XOR-ed the three inputs into a single SplitMix64 step,
/// which left adjacent pair indices with correlated — and occasionally
/// colliding — streams.)
pub fn derive_seed(master: u64, tag: u64, index: u64) -> u64 {
    use dstress_math::rng::splitmix64_finalize as mix;
    let mut h = mix(master.wrapping_add(0x9E37_79B9_7F4A_7C15));
    h = mix(h ^ tag);
    mix(h ^ index)
}

/// The OT-sender mask for one AND gate toward one peer, derived from the
/// party's mask stream.
///
/// Keying the mask by `(wire, peer)` — instead of drawing from a
/// sequential stream — makes the mask independent of the order in which
/// gates are processed, which is what keeps [`GmwBatching::Layered`] and
/// [`GmwBatching::PerGate`] executions bit-identical in their output
/// shares.
fn mask_bit(mask_seed: u64, parties: usize, wire: usize, peer: usize) -> bool {
    derive_seed(mask_seed, TAG_AND_MASK, (wire * parties + peer) as u64) & 1 == 1
}

/// In-flight state of the AND gate a party is evaluating (per-gate mode).
#[derive(Clone, Copy, Debug)]
struct AndGateState {
    /// The gate's wire id.
    wire: usize,
    /// Left input wire.
    a: usize,
    /// Right input wire.
    b: usize,
    /// The party's accumulating share of the gate output.
    share: bool,
    /// Whether the choice messages to lower-indexed peers went out.
    choices_sent: bool,
    /// Next higher-indexed peer whose Choice this party (as OT sender)
    /// still has to serve.
    next_sender_peer: usize,
    /// Next lower-indexed peer whose Response this party (as OT
    /// receiver) still awaits.
    next_receiver_peer: usize,
}

/// In-flight state of the AND layer a party is evaluating (layered mode).
#[derive(Clone, Debug)]
struct LayerState {
    /// Index of the layer in the circuit's [`CircuitLayers`].
    layer: usize,
    /// The party's accumulating output share per gate of the layer.
    shares: Vec<bool>,
    /// Whether the batched choices to lower-indexed peers went out.
    choices_sent: bool,
    /// Next higher-indexed peer whose Choices this party still serves.
    next_sender_peer: usize,
    /// Next lower-indexed peer whose Responses this party still awaits.
    next_receiver_peer: usize,
}

/// One party of a GMW execution, runnable on any transport backend.
pub struct GmwParty<'c> {
    circuit: &'c Circuit,
    /// The circuit's depth layering, computed once per execution and
    /// shared by every party (it depends only on the circuit).
    layers: &'c CircuitLayers,
    batching: GmwBatching,
    index: usize,
    parties: usize,
    node_ids: Vec<NodeId>,
    /// Seed of this party's AND-mask stream (see [`mask_bit`]).
    mask_seed: u64,
    /// OT provider for every pair this party owns (peers with a larger
    /// index); `None` for peers whose pair the peer owns.
    ots: Vec<Option<Box<dyn OtProvider + Send>>>,
    /// Per-peer payload-stream seed, identical at both ends of a pair, so
    /// the simulated OT payload *content* on the wire is replayable by
    /// construction (see [`crate::wire::ot_payload`]).
    pair_payload_seed: Vec<u64>,
    /// Receiver-side wire payload per OT (cached from the [`OtConfig`]).
    ot_recv_payload: usize,
    /// Sender-side wire payload per OT.
    ot_send_payload: usize,
    /// Session-setup wire payloads `(owner_to_peer, peer_to_owner)`.
    ot_setup_payload: (usize, usize),
    input_share: Vec<bool>,
    /// Wire values, indexed by wire id (filled as the schedule runs).
    wires: Vec<bool>,
    counts: OperationCounts,
    traffic: TrafficAccountant,
    /// Measured one-way message rounds this party participated in per
    /// pair: session setup, then 2 per exchange (choices out, responses
    /// back).  All pairs run in parallel, so this is the sequential
    /// critical path, not a sum over pairs.
    protocol_rounds: u64,
    // Per-gate mode cursor.
    gate_index: usize,
    and_state: Option<AndGateState>,
    // Layered mode cursor.
    round: usize,
    free_done: bool,
    layer_state: Option<LayerState>,
    /// Whether this party's setup costs were charged and its OtSetup
    /// messages went out.
    setup_sent: bool,
    /// Next peer whose OtSetup message this party still awaits.
    setup_recv_peer: usize,
    setup_done: bool,
    finished: bool,
}

impl<'c> GmwParty<'c> {
    /// Creates party `index` of `node_ids.len()` parties.
    ///
    /// `input_share` is this party's XOR share of every circuit input,
    /// and `layers` is the circuit's [`CircuitLayers`] (computed once by
    /// the caller and shared across the block's parties).  All party and
    /// pair randomness derives from `master_seed`, so a fixed seed yields
    /// bit-identical executions on every backend — and, because AND masks
    /// are keyed by `(wire, peer)`, across both [`GmwBatching`] modes.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        circuit: &'c Circuit,
        layers: &'c CircuitLayers,
        index: usize,
        node_ids: Vec<NodeId>,
        input_share: Vec<bool>,
        ot: &OtConfig,
        master_seed: u64,
        batching: GmwBatching,
    ) -> Self {
        let parties = node_ids.len();
        let mask_seed = derive_seed(master_seed, TAG_PARTY_RNG, index as u64);
        let ots = (0..parties)
            .map(|peer| {
                (peer > index).then(|| {
                    let pair = (index * parties + peer) as u64;
                    ot.provider(derive_seed(master_seed, TAG_PAIR_OT, pair))
                })
            })
            .collect();
        // Keyed by the unordered pair (lower index first), so both ends
        // derive the same payload stream.
        let pair_payload_seed = (0..parties)
            .map(|peer| {
                let (lo, hi) = (index.min(peer), index.max(peer));
                derive_seed(master_seed, TAG_PAIR_PAYLOAD, (lo * parties + hi) as u64)
            })
            .collect();
        GmwParty {
            circuit,
            layers,
            batching,
            index,
            parties,
            node_ids,
            mask_seed,
            ots,
            pair_payload_seed,
            ot_recv_payload: ot.wire_receiver_bytes_per_ot(),
            ot_send_payload: ot.wire_sender_bytes_per_ot(),
            ot_setup_payload: ot.wire_setup_bytes(),
            input_share,
            wires: vec![false; circuit.len()],
            counts: OperationCounts::default(),
            // Pair tracking is cheap at block scale and keeps per-pair
            // byte flows available to callers that merge into a
            // pair-tracking accountant.
            traffic: TrafficAccountant::with_pair_tracking(),
            protocol_rounds: 0,
            gate_index: 0,
            and_state: None,
            round: 0,
            free_done: false,
            layer_state: None,
            setup_sent: false,
            setup_recv_peer: 0,
            setup_done: false,
            finished: false,
        }
    }

    /// This party's index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Whether the party has completed its protocol role.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The operation counts this party accounted (pair owners account
    /// their pairs' OT work; gate and round counts are added once at the
    /// execution level).
    pub fn counts(&self) -> &OperationCounts {
        &self.counts
    }

    /// The traffic this party accounted (each flow of a pair appears in
    /// exactly one party's accountant).
    pub fn traffic(&self) -> &TrafficAccountant {
        &self.traffic
    }

    /// Measured sequential message rounds this party took part in (its
    /// pairwise exchanges run in parallel, so this counts exchanges, not
    /// exchanges × pairs): the OT session setup plus two one-way rounds
    /// per AND layer (layered mode) or per AND gate (per-gate mode).
    pub fn rounds(&self) -> u64 {
        self.protocol_rounds
    }

    /// This party's share of every circuit output.
    ///
    /// # Panics
    ///
    /// Panics if the party has not finished.
    pub fn output_share(&self) -> Vec<bool> {
        assert!(self.finished, "party {} has not finished", self.index);
        self.circuit
            .outputs()
            .iter()
            .map(|&wire| self.wires[wire])
            .collect()
    }

    /// Charges the per-pair OT session setup for every pair this party
    /// owns (no messages carry values here; the costs are what matters).
    /// The pairs' setups run in parallel, so the measured rounds take the
    /// maximum — not the sum — of the providers' setup exchanges.
    fn session_setup(&mut self) {
        let me = self.node_ids[self.index];
        let mut setup_rounds = 0;
        for peer in (self.index + 1)..self.parties {
            let provider = self.ots[peer].as_mut().expect("pair owner has a provider");
            let before = provider.counts();
            let (sender_bytes, receiver_bytes) = provider.session_setup();
            let after = provider.counts();
            setup_rounds = setup_rounds.max(after.rounds - before.rounds);
            absorb_provider_delta(&mut self.counts, &before, &after);
            let peer_id = self.node_ids[peer];
            if sender_bytes > 0 {
                self.traffic.record(me, peer_id, sender_bytes);
            }
            if receiver_bytes > 0 {
                self.traffic.record(peer_id, me, receiver_bytes);
            }
        }
        self.protocol_rounds += setup_rounds;
    }

    /// Evaluates one non-AND gate locally.
    fn eval_free_gate(&mut self, w: usize) {
        self.wires[w] = match self.circuit.gates()[w] {
            Gate::Input(i) => self.input_share[i],
            Gate::ConstFalse => false,
            // Party 0 holds constants and NOT flips; all other parties'
            // shares are zero.
            Gate::ConstTrue => self.index == 0,
            Gate::Xor(a, b) => self.wires[a] ^ self.wires[b],
            Gate::Not(a) => self.wires[a] ^ (self.index == 0),
            Gate::And(_, _) => unreachable!("AND gates go through the OT path"),
        };
    }

    // ------------------------------------------------------------------
    // Per-gate mode
    // ------------------------------------------------------------------

    /// Drives the in-flight AND gate as far as possible; returns `true`
    /// when the gate completed and its output share was committed.
    fn advance_and_gate(&mut self, endpoint: &mut dyn Endpoint<GmwMessage>) -> bool {
        let mut st = self.and_state.take().expect("an AND gate is in flight");
        let x = self.wires[st.a];
        let y = self.wires[st.b];
        let gate_tag = st.wire as u32;

        // As OT receiver: announce the choice to every pair owner, each
        // message carrying one OT's worth of receiver-side payload.
        if !st.choices_sent {
            if self.index > 0 {
                let batch: Vec<(usize, GmwMessage)> = (0..self.index)
                    .map(|owner| {
                        (
                            owner,
                            GmwMessage::Choice {
                                gate: gate_tag,
                                x,
                                y,
                                ot_payload: crate::wire::ot_payload(
                                    self.pair_payload_seed[owner],
                                    crate::wire::PAYLOAD_RECEIVER,
                                    u64::from(gate_tag),
                                    self.ot_recv_payload,
                                ),
                            },
                        )
                    })
                    .collect();
                endpoint.send_many(batch);
            }
            st.choices_sent = true;
        }

        // As OT sender (pair owner): serve every higher-indexed peer in
        // index order.
        while st.next_sender_peer < self.parties {
            let peer = st.next_sender_peer;
            let Some(message) = endpoint.try_recv_from(peer) else {
                self.and_state = Some(st);
                return false;
            };
            let GmwMessage::Choice {
                gate,
                x: xj,
                y: yj,
                ot_payload,
            } = message
            else {
                panic!(
                    "party {peer} must send Choice messages to party {}",
                    self.index
                );
            };
            debug_assert_eq!(ot_payload.len(), self.ot_recv_payload, "OT payload size");
            debug_assert_eq!(gate, gate_tag, "AND-gate choice out of order");
            // The sender's mask; the pair's cross terms x_i·y_j ⊕ x_j·y_i
            // are encoded in the table, indexed by the receiver's choice.
            let r = mask_bit(self.mask_seed, self.parties, st.wire, peer);
            let table = [r, r ^ x, r ^ y, r ^ x ^ y];
            let provider = self.ots[peer].as_mut().expect("pair owner has a provider");
            let before = provider.counts();
            let outcome = provider.transfer(table, (xj, yj));
            let after = provider.counts();
            absorb_provider_delta(&mut self.counts, &before, &after);
            endpoint.send(
                peer,
                GmwMessage::Response {
                    gate: gate_tag,
                    bit: outcome.received,
                    ot_payload: crate::wire::ot_payload(
                        self.pair_payload_seed[peer],
                        crate::wire::PAYLOAD_SENDER,
                        u64::from(gate_tag),
                        self.ot_send_payload,
                    ),
                },
            );
            st.share ^= r;
            let me = self.node_ids[self.index];
            let peer_id = self.node_ids[peer];
            if outcome.sender_bytes > 0 {
                self.traffic.record(me, peer_id, outcome.sender_bytes);
            }
            if outcome.receiver_bytes > 0 {
                self.traffic.record(peer_id, me, outcome.receiver_bytes);
            }
            st.next_sender_peer += 1;
        }

        // As OT receiver: collect every owner's response in index order.
        while st.next_receiver_peer < self.index {
            let owner = st.next_receiver_peer;
            let Some(message) = endpoint.try_recv_from(owner) else {
                self.and_state = Some(st);
                return false;
            };
            let GmwMessage::Response {
                gate,
                bit,
                ot_payload: _,
            } = message
            else {
                panic!(
                    "party {owner} must send Response messages to party {}",
                    self.index
                );
            };
            debug_assert_eq!(gate, gate_tag, "AND-gate response out of order");
            st.share ^= bit;
            st.next_receiver_peer += 1;
        }

        self.wires[st.wire] = st.share;
        // One gate = one choice/response exchange = two one-way rounds,
        // identical for every pair (they run in parallel).
        self.protocol_rounds += 2;
        true
    }

    fn poll_per_gate(&mut self, endpoint: &mut dyn Endpoint<GmwMessage>) -> ActorStatus {
        loop {
            if self.and_state.is_some() && !self.advance_and_gate(endpoint) {
                return ActorStatus::Idle;
            }
            while self.gate_index < self.circuit.len() {
                let w = self.gate_index;
                match self.circuit.gates()[w] {
                    Gate::And(a, b) => {
                        // Lazy OT setup at the first AND gate; the gate
                        // cursor only advances once setup completed.
                        if !self.setup_done {
                            if !self.advance_setup(endpoint) {
                                return ActorStatus::Idle;
                            }
                            self.setup_done = true;
                        }
                        self.gate_index += 1;
                        self.and_state = Some(AndGateState {
                            wire: w,
                            a,
                            b,
                            share: self.wires[a] && self.wires[b],
                            choices_sent: false,
                            next_sender_peer: self.index + 1,
                            next_receiver_peer: 0,
                        });
                        break;
                    }
                    _ => {
                        self.gate_index += 1;
                        self.eval_free_gate(w);
                    }
                }
            }
            if self.and_state.is_none() {
                break;
            }
        }
        self.finished = true;
        ActorStatus::Done
    }

    // ------------------------------------------------------------------
    // Layered mode
    // ------------------------------------------------------------------

    /// Drives the in-flight AND layer as far as possible; returns `true`
    /// when the whole layer completed and its output shares were
    /// committed.
    fn advance_layer(&mut self, endpoint: &mut dyn Endpoint<GmwMessage>) -> bool {
        let mut st = self.layer_state.take().expect("a layer is in flight");
        let circuit = self.circuit;
        let parties = self.parties;
        let mask_seed = self.mask_seed;
        let layer_tag = st.layer as u32;

        // As OT receiver: announce the whole layer's choices to every
        // pair owner in one message each.
        if !st.choices_sent {
            if self.index > 0 {
                let gates = &self.layers.and_layers()[st.layer];
                let pairs: Vec<(bool, bool)> = gates
                    .iter()
                    .map(|&w| {
                        let Gate::And(a, b) = circuit.gates()[w] else {
                            unreachable!("AND layers hold only AND gates");
                        };
                        (self.wires[a], self.wires[b])
                    })
                    .collect();
                let batch: Vec<(usize, GmwMessage)> = (0..self.index)
                    .map(|owner| {
                        (
                            owner,
                            GmwMessage::Choices {
                                layer: layer_tag,
                                pairs: pairs.clone(),
                                ot_payload: crate::wire::ot_payload(
                                    self.pair_payload_seed[owner],
                                    crate::wire::PAYLOAD_RECEIVER,
                                    u64::from(layer_tag),
                                    pairs.len() * self.ot_recv_payload,
                                ),
                            },
                        )
                    })
                    .collect();
                endpoint.send_many(batch);
            }
            st.choices_sent = true;
        }

        // As OT sender (pair owner): serve each higher-indexed peer's
        // whole layer through one batched transfer and one response
        // message.
        while st.next_sender_peer < parties {
            let peer = st.next_sender_peer;
            let Some(message) = endpoint.try_recv_from(peer) else {
                self.layer_state = Some(st);
                return false;
            };
            let GmwMessage::Choices {
                layer,
                pairs,
                ot_payload,
            } = message
            else {
                panic!(
                    "party {peer} must send Choices messages to party {}",
                    self.index
                );
            };
            debug_assert_eq!(layer, layer_tag, "layer choices out of order");
            debug_assert_eq!(
                ot_payload.len(),
                pairs.len() * self.ot_recv_payload,
                "batched OT payload size"
            );
            let gates = &self.layers.and_layers()[st.layer];
            debug_assert_eq!(pairs.len(), gates.len(), "peer batched a different layer");
            let mut requests: Vec<OtRequest> = Vec::with_capacity(gates.len());
            for (slot, &w) in gates.iter().enumerate() {
                let Gate::And(a, b) = circuit.gates()[w] else {
                    unreachable!("AND layers hold only AND gates");
                };
                let (x, y) = (self.wires[a], self.wires[b]);
                let r = mask_bit(mask_seed, parties, w, peer);
                requests.push(([r, r ^ x, r ^ y, r ^ x ^ y], pairs[slot]));
                st.shares[slot] ^= r;
            }
            let provider = self.ots[peer].as_mut().expect("pair owner has a provider");
            let before = provider.counts();
            let outcome = provider.transfer_many(&requests);
            let after = provider.counts();
            absorb_provider_delta(&mut self.counts, &before, &after);
            let batch_len = outcome.received.len();
            endpoint.send(
                peer,
                GmwMessage::Responses {
                    layer: layer_tag,
                    bits: outcome.received,
                    ot_payload: crate::wire::ot_payload(
                        self.pair_payload_seed[peer],
                        crate::wire::PAYLOAD_SENDER,
                        u64::from(layer_tag),
                        batch_len * self.ot_send_payload,
                    ),
                },
            );
            let me = self.node_ids[self.index];
            let peer_id = self.node_ids[peer];
            if outcome.sender_bytes > 0 {
                self.traffic.record(me, peer_id, outcome.sender_bytes);
            }
            if outcome.receiver_bytes > 0 {
                self.traffic.record(peer_id, me, outcome.receiver_bytes);
            }
            st.next_sender_peer += 1;
        }

        // As OT receiver: fold in each owner's batched responses in index
        // order.
        while st.next_receiver_peer < self.index {
            let owner = st.next_receiver_peer;
            let Some(message) = endpoint.try_recv_from(owner) else {
                self.layer_state = Some(st);
                return false;
            };
            let GmwMessage::Responses {
                layer,
                bits,
                ot_payload: _,
            } = message
            else {
                panic!(
                    "party {owner} must send Responses messages to party {}",
                    self.index
                );
            };
            debug_assert_eq!(layer, layer_tag, "layer responses out of order");
            debug_assert_eq!(bits.len(), st.shares.len(), "response batch size");
            for (share, bit) in st.shares.iter_mut().zip(bits) {
                *share ^= bit;
            }
            st.next_receiver_peer += 1;
        }

        // Commit the layer's output shares and advance the schedule.
        let gates = &self.layers.and_layers()[st.layer];
        for (slot, &w) in gates.iter().enumerate() {
            self.wires[w] = st.shares[slot];
        }
        // One layer = one choices/responses exchange = two one-way
        // rounds, regardless of how many gates it carried.
        self.protocol_rounds += 2;
        self.round = st.layer + 1;
        self.free_done = false;
        true
    }

    fn poll_layered(&mut self, endpoint: &mut dyn Endpoint<GmwMessage>) -> ActorStatus {
        loop {
            if self.layer_state.is_some() && !self.advance_layer(endpoint) {
                return ActorStatus::Idle;
            }
            if !self.free_done {
                let layers = self.layers;
                for &w in &layers.free_schedule()[self.round] {
                    self.eval_free_gate(w);
                }
                self.free_done = true;
            }
            if self.round == self.layers.rounds() {
                break;
            }
            // Lazy OT setup: the first AND layer is each pair's first
            // transfer, so the session setup (and its key-material
            // exchange) is charged here — a circuit with no AND layers
            // never pays it.
            if !self.setup_done {
                if !self.advance_setup(endpoint) {
                    return ActorStatus::Idle;
                }
                self.setup_done = true;
            }
            // Start the next layer: seed each gate's share with the
            // party's local cross term x_i · y_i.
            let gates = &self.layers.and_layers()[self.round];
            let shares: Vec<bool> = gates
                .iter()
                .map(|&w| {
                    let Gate::And(a, b) = self.circuit.gates()[w] else {
                        unreachable!("AND layers hold only AND gates");
                    };
                    self.wires[a] && self.wires[b]
                })
                .collect();
            self.layer_state = Some(LayerState {
                layer: self.round,
                shares,
                choices_sent: false,
                next_sender_peer: self.index + 1,
                next_receiver_peer: 0,
            });
        }
        self.finished = true;
        ActorStatus::Done
    }
}

/// Folds the compute-side delta of an OT provider's counts into a
/// party's counts.  Bytes and rounds are excluded: bytes are accounted at
/// the transport boundary via the traffic accountant, and rounds are
/// measured by the party's own exchange counter (the provider's internal
/// round notion would double-count the exchanges its messages ride on).
fn absorb_provider_delta(
    counts: &mut OperationCounts,
    before: &OperationCounts,
    after: &OperationCounts,
) {
    counts.exponentiations += after.exponentiations - before.exponentiations;
    counts.group_multiplications += after.group_multiplications - before.group_multiplications;
    counts.base_ots += after.base_ots - before.base_ots;
    counts.extended_ots += after.extended_ots - before.extended_ots;
}

impl GmwParty<'_> {
    /// Drives the session-setup message exchange: charge the setup costs,
    /// send the base-OT key material to every peer, and wait until every
    /// peer's material arrived.  Returns `false` while still waiting.
    ///
    /// The exchange is *lazy*: it runs at a pair's first AND layer (or
    /// AND gate, in per-gate mode), never up front — and since every pair
    /// serves every AND layer in GMW, that is the circuit's first AND
    /// work.  A circuit with no AND gates therefore never reaches this
    /// path and pays **zero** setup rounds, bytes and base OTs, matching
    /// a session that never needs an oblivious transfer.
    ///
    /// Providers with no per-session setup (both payloads empty) skip the
    /// message exchange, matching their analytic model of zero setup
    /// messages.
    fn advance_setup(&mut self, endpoint: &mut dyn Endpoint<GmwMessage>) -> bool {
        let (owner_to_peer, peer_to_owner) = self.ot_setup_payload;
        if !self.setup_sent {
            self.session_setup();
            if owner_to_peer > 0 || peer_to_owner > 0 {
                let batch: Vec<(usize, GmwMessage)> = (0..self.parties)
                    .filter(|&peer| peer != self.index)
                    .map(|peer| {
                        // Pair owners (lower index) send the sender-side
                        // key material; the peer answers with the
                        // receiver side.
                        let (len, direction) = if peer > self.index {
                            (owner_to_peer, crate::wire::PAYLOAD_SETUP_FROM_OWNER)
                        } else {
                            (peer_to_owner, crate::wire::PAYLOAD_SETUP_FROM_PEER)
                        };
                        (
                            peer,
                            GmwMessage::OtSetup {
                                ot_payload: crate::wire::ot_payload(
                                    self.pair_payload_seed[peer],
                                    direction,
                                    0,
                                    len,
                                ),
                            },
                        )
                    })
                    .collect();
                endpoint.send_many(batch);
            }
            self.setup_sent = true;
        }
        if owner_to_peer > 0 || peer_to_owner > 0 {
            while self.setup_recv_peer < self.parties {
                let peer = self.setup_recv_peer;
                if peer == self.index {
                    self.setup_recv_peer += 1;
                    continue;
                }
                let Some(message) = endpoint.try_recv_from(peer) else {
                    return false;
                };
                let GmwMessage::OtSetup { .. } = message else {
                    panic!(
                        "party {peer} must open toward party {} with an OtSetup message",
                        self.index
                    );
                };
                self.setup_recv_peer += 1;
            }
        }
        true
    }
}

impl NodeActor<GmwMessage> for GmwParty<'_> {
    fn poll(&mut self, endpoint: &mut dyn Endpoint<GmwMessage>) -> ActorStatus {
        if self.finished {
            return ActorStatus::Done;
        }
        // The OT session setup is charged lazily inside the gate
        // schedules, at the first AND layer/gate — never here.
        match self.batching {
            GmwBatching::PerGate => self.poll_per_gate(endpoint),
            GmwBatching::Layered => self.poll_layered(endpoint),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_circuit::builder::CircuitBuilder;
    use std::collections::HashSet; // lint:allow-nondeterminism -- test-only membership set

    fn tiny_and_circuit() -> Circuit {
        let mut b = CircuitBuilder::new();
        let x = b.input();
        let y = b.input();
        let z = b.and(x, y);
        b.output(z);
        b.build().unwrap()
    }

    #[test]
    fn ot_config_builds_providers() {
        let mut ext = OtConfig::extension().provider(1);
        let outcome = ext.transfer([true, false, true, false], (false, false));
        assert!(outcome.received);
        let mut eg = OtConfig::elgamal(GroupKind::Sim64).provider(2);
        let outcome = eg.transfer([false, true, false, false], (false, true));
        assert!(outcome.received);
        assert_eq!(OtConfig::default(), OtConfig::extension());
        assert_eq!(GmwBatching::default(), GmwBatching::Layered);
    }

    #[test]
    fn derive_seed_separates_streams() {
        let a = derive_seed(1, TAG_PARTY_RNG, 0);
        let b = derive_seed(1, TAG_PARTY_RNG, 1);
        let c = derive_seed(1, TAG_PAIR_OT, 0);
        let d = derive_seed(2, TAG_PARTY_RNG, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a, derive_seed(1, TAG_PARTY_RNG, 0));
    }

    #[test]
    fn derive_seed_has_no_collisions_across_streams() {
        // Adjacent indices under every domain tag, several masters: no
        // collisions anywhere in the cross product.
        let mut seen = HashSet::new(); // lint:allow-nondeterminism -- test-only, order never observed
        for master in [0u64, 1, 2, 0x9E37_79B9_7F4A_7C15] {
            for tag in [TAG_PARTY_RNG, TAG_PAIR_OT, TAG_AND_MASK] {
                for index in 0..2048u64 {
                    assert!(
                        seen.insert(derive_seed(master, tag, index)),
                        "collision at master={master:#x} tag={tag:#x} index={index}"
                    );
                }
            }
        }
    }

    #[test]
    fn derive_seed_avalanches_on_single_bit_flips() {
        // Flipping any single input bit (of the index or the master)
        // flips about half the output bits on average.
        let mut total = 0u64;
        let mut samples = 0u64;
        for index in 0..32u64 {
            let base = derive_seed(7, TAG_PAIR_OT, index);
            for bit in 0..64 {
                total +=
                    (base ^ derive_seed(7, TAG_PAIR_OT, index ^ (1 << bit))).count_ones() as u64;
                total +=
                    (base ^ derive_seed(7 ^ (1 << bit), TAG_PAIR_OT, index)).count_ones() as u64;
                samples += 2;
            }
        }
        let mean = total as f64 / samples as f64;
        assert!((28.0..36.0).contains(&mean), "mean avalanche {mean}");
        // In particular, adjacent pair indices share no visible structure.
        for index in 0..64u64 {
            let a = derive_seed(9, TAG_PAIR_OT, index);
            let b = derive_seed(9, TAG_PAIR_OT, index + 1);
            assert!((a ^ b).count_ones() >= 10, "index {index}");
        }
    }

    #[test]
    fn masks_are_order_independent() {
        // The mask of a gate/peer pair is a pure function — it does not
        // depend on how many masks were drawn before it.
        let a = mask_bit(42, 4, 17, 2);
        let _ = mask_bit(42, 4, 3, 1);
        let _ = mask_bit(42, 4, 99, 3);
        assert_eq!(a, mask_bit(42, 4, 17, 2));
        // Different parties draw from different streams.
        let bits_a: Vec<bool> = (0..64).map(|w| mask_bit(1, 4, w, 2)).collect();
        let bits_b: Vec<bool> = (0..64).map(|w| mask_bit(2, 4, w, 2)).collect();
        assert_ne!(bits_a, bits_b);
    }

    /// A loop-back endpoint for driving a single party by hand: captures
    /// everything the party sends and feeds it scripted messages.
    struct ScriptedEndpoint {
        nodes: usize,
        sent: Vec<(usize, GmwMessage)>,
        inbox: Vec<Vec<GmwMessage>>,
    }

    impl ScriptedEndpoint {
        fn new(nodes: usize) -> Self {
            ScriptedEndpoint {
                nodes,
                sent: Vec::new(),
                inbox: (0..nodes).map(|_| Vec::new()).collect(),
            }
        }

        fn feed(&mut self, from: usize, message: GmwMessage) {
            self.inbox[from].push(message);
        }
    }

    impl Endpoint<GmwMessage> for ScriptedEndpoint {
        fn nodes(&self) -> usize {
            self.nodes
        }
        fn send(&mut self, to: usize, message: GmwMessage) {
            self.sent.push((to, message));
        }
        fn try_recv_from(&mut self, peer: usize) -> Option<GmwMessage> {
            if self.inbox[peer].is_empty() {
                None
            } else {
                Some(self.inbox[peer].remove(0))
            }
        }
    }

    #[test]
    fn wire_payload_content_is_derived_from_the_pair_seed() {
        // Drive party 1 of a 2-party single-AND execution by hand and pin
        // the exact payload bytes it puts on the wire against the
        // documented derivation — the "replayable by construction" claim.
        let circuit = tiny_and_circuit();
        let layers = CircuitLayers::of(&circuit);
        let master = 0xFEED;
        let ot = OtConfig::extension();
        let mut party = GmwParty::new(
            &circuit,
            &layers,
            1,
            vec![NodeId(0), NodeId(1)],
            vec![true, false],
            &ot,
            master,
            GmwBatching::Layered,
        );
        let pair_seed = derive_seed(master, TAG_PAIR_PAYLOAD, 1);
        let mut endpoint = ScriptedEndpoint::new(2);

        // First poll: party 1 sends its OtSetup (peer side) and waits for
        // the owner's.
        assert_eq!(party.poll(&mut endpoint), ActorStatus::Idle);
        let (to, setup) = &endpoint.sent[0];
        assert_eq!(*to, 0);
        let GmwMessage::OtSetup { ot_payload } = setup else {
            panic!("first message must be the lazy OtSetup");
        };
        let (_, peer_to_owner) = ot.wire_setup_bytes();
        assert_eq!(
            ot_payload,
            &crate::wire::ot_payload(
                pair_seed,
                crate::wire::PAYLOAD_SETUP_FROM_PEER,
                0,
                peer_to_owner
            )
        );

        // Feed the owner's OtSetup; the party then sends its layer-0
        // Choices with the receiver-side payload from the same stream.
        let (owner_to_peer, _) = ot.wire_setup_bytes();
        endpoint.feed(
            0,
            GmwMessage::OtSetup {
                ot_payload: crate::wire::ot_payload(
                    pair_seed,
                    crate::wire::PAYLOAD_SETUP_FROM_OWNER,
                    0,
                    owner_to_peer,
                ),
            },
        );
        assert_eq!(party.poll(&mut endpoint), ActorStatus::Idle);
        let (to, choices) = endpoint.sent.last().unwrap();
        assert_eq!(*to, 0);
        let GmwMessage::Choices {
            layer, ot_payload, ..
        } = choices
        else {
            panic!("after setup the party batches its layer-0 choices");
        };
        assert_eq!(*layer, 0);
        let expected = crate::wire::ot_payload(
            pair_seed,
            crate::wire::PAYLOAD_RECEIVER,
            0,
            ot.wire_receiver_bytes_per_ot(),
        );
        assert_eq!(ot_payload, &expected);
        assert!(expected.iter().any(|&b| b != 0), "payload is key material");
    }

    #[test]
    #[should_panic(expected = "has not finished")]
    fn output_share_requires_completion() {
        let circuit = tiny_and_circuit();
        let layers = CircuitLayers::of(&circuit);
        let party = GmwParty::new(
            &circuit,
            &layers,
            0,
            vec![NodeId(0), NodeId(1)],
            vec![false, true],
            &OtConfig::extension(),
            7,
            GmwBatching::Layered,
        );
        let _ = party.output_share();
    }
}
