//! The repo's core invariants, proven for the concurrent runtime:
//!
//! 1. GMW executions are bit-identical across transport backends.  For
//!    random circuits, inputs and seeds, running the same per-party state
//!    machines on the deterministic [`SimTransport`] and on the
//!    multi-threaded [`ThreadedTransport`] must produce identical output
//!    shares, identical `OperationCounts`, identical per-party byte
//!    totals and identical traffic reports — concurrency may only change
//!    wall-clock, never results.
//! 2. GMW executions are bit-identical across [`GmwBatching`] modes in
//!    everything except the round structure: layer batching regroups the
//!    same OT payloads into fewer messages, so output shares and byte
//!    totals match the per-gate path exactly while rounds drop from
//!    O(AND gates) to O(depth) and the message count shrinks.

use dstress_circuit::builder::CircuitBuilder;
use dstress_circuit::{evaluate, Circuit, WireId};
use dstress_math::rng::{DetRng, SplitMix64, Xoshiro256};
use dstress_mpc::gmw::{reconstruct_outputs, share_inputs, GmwConfig, GmwProtocol};
use dstress_mpc::party::{GmwBatching, OtConfig};
use dstress_mpc::GmwExecution;
use dstress_net::traffic::TrafficAccountant;
use dstress_net::transport::{SimTransport, ThreadedTransport, Transport};
use proptest::prelude::*;

/// Builds a random circuit mixing AND / XOR / NOT / MUX gates over a
/// growing wire pool, with a handful of outputs.
fn random_circuit(seed: u64, inputs: usize, extra_gates: usize) -> Circuit {
    let mut rng = SplitMix64::new(seed);
    let mut builder = CircuitBuilder::new();
    let mut pool: Vec<WireId> = (0..inputs).map(|_| builder.input()).collect();
    for _ in 0..extra_gates {
        let a = pool[rng.next_below(pool.len() as u64) as usize];
        let b = pool[rng.next_below(pool.len() as u64) as usize];
        let wire = match rng.next_below(4) {
            0 => builder.and(a, b),
            1 => builder.xor(a, b),
            2 => builder.not(a),
            _ => {
                let sel = pool[rng.next_below(pool.len() as u64) as usize];
                builder.mux(sel, a, b)
            }
        };
        pool.push(wire);
    }
    for &wire in pool.iter().rev().take(4) {
        builder.output(wire);
    }
    builder
        .build()
        .expect("random circuits are topologically valid")
}

fn run_on(
    transport: &dyn Transport<dstress_mpc::GmwMessage>,
    circuit: &Circuit,
    shares: &[Vec<bool>],
    parties: usize,
    ot: &OtConfig,
    master_seed: u64,
    batching: GmwBatching,
) -> (GmwExecution, TrafficAccountant) {
    let protocol =
        GmwProtocol::new(GmwConfig::with_default_ids(parties).with_batching(batching)).unwrap();
    let mut traffic = TrafficAccountant::new();
    let exec = protocol
        .execute_seeded(transport, circuit, shares, ot, &mut traffic, master_seed)
        .expect("execution succeeds");
    (exec, traffic)
}

/// Shared fixture: circuit, plaintext inputs, shares and master seed for
/// one deterministic scenario.
fn scenario(seed: u64, parties: usize) -> (Circuit, Vec<bool>, Vec<Vec<bool>>, u64) {
    let circuit = random_circuit(seed, 3 + (seed % 6) as usize, 12 + (seed % 20) as usize);
    let mut input_rng = SplitMix64::new(seed ^ 0xC1C0);
    let inputs: Vec<bool> = (0..circuit.num_inputs())
        .map(|_| input_rng.next_bool())
        .collect();
    let mut share_rng = Xoshiro256::new(seed ^ 0x5EED);
    let shares = share_inputs(&inputs, parties, &mut share_rng);
    let master_seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (circuit, inputs, shares, master_seed)
}

fn assert_backends_agree(
    seed: u64,
    parties: usize,
    ot: &OtConfig,
    threads: usize,
    batching: GmwBatching,
) {
    let (circuit, inputs, shares, master_seed) = scenario(seed, parties);

    let (sim, sim_traffic) = run_on(
        &SimTransport,
        &circuit,
        &shares,
        parties,
        ot,
        master_seed,
        batching,
    );
    let (thr, thr_traffic) = run_on(
        &ThreadedTransport::with_threads(threads),
        &circuit,
        &shares,
        parties,
        ot,
        master_seed,
        batching,
    );

    // Bit-identical shares, not merely identical reconstructions.
    assert_eq!(sim.output_shares, thr.output_shares, "seed {seed}");
    assert_eq!(sim.counts, thr.counts, "seed {seed}");
    assert_eq!(sim.rounds, thr.rounds, "seed {seed}");
    assert_eq!(
        sim.bytes_sent_per_party, thr.bytes_sent_per_party,
        "seed {seed}"
    );
    assert_eq!(sim_traffic.report(), thr_traffic.report(), "seed {seed}");

    // Both must also be *correct*: reconstruction equals the plaintext
    // evaluation.
    let expected = evaluate(&circuit, &inputs).unwrap();
    assert_eq!(reconstruct_outputs(&sim.output_shares).unwrap(), expected);
}

/// Batched vs per-gate GMW on the *same* backend: identical output
/// shares and byte totals, fewer rounds and messages when batching.
fn assert_batching_modes_agree(
    seed: u64,
    parties: usize,
    transport: &dyn Transport<dstress_mpc::GmwMessage>,
) {
    let (circuit, _, shares, master_seed) = scenario(seed, parties);
    let ot = OtConfig::extension();
    let (batched, batched_traffic) = run_on(
        transport,
        &circuit,
        &shares,
        parties,
        &ot,
        master_seed,
        GmwBatching::Layered,
    );
    let (per_gate, per_gate_traffic) = run_on(
        transport,
        &circuit,
        &shares,
        parties,
        &ot,
        master_seed,
        GmwBatching::PerGate,
    );

    assert_eq!(batched.output_shares, per_gate.output_shares, "seed {seed}");
    assert_eq!(
        batched.bytes_sent_per_party, per_gate.bytes_sent_per_party,
        "seed {seed}"
    );
    let br = batched_traffic.report();
    let pr = per_gate_traffic.report();
    assert_eq!(br.total_bytes, pr.total_bytes, "seed {seed}");
    assert_eq!(br.max_node_bytes, pr.max_node_bytes, "seed {seed}");
    // Identical work; only the round structure changes.
    let mut b = batched.counts;
    let mut p = per_gate.counts;
    assert!(b.rounds <= p.rounds, "seed {seed}");
    if circuit.and_gates() > 0 {
        assert!(br.total_messages <= pr.total_messages, "seed {seed}");
    }
    b.rounds = 0;
    p.rounds = 0;
    assert_eq!(b, p, "seed {seed}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_sim_and_threaded_backends_are_bit_identical(
        seed in any::<u64>(),
        parties in 2usize..6,
        threads in 1usize..5,
        batched in any::<bool>(),
    ) {
        let batching = if batched { GmwBatching::Layered } else { GmwBatching::PerGate };
        assert_backends_agree(seed, parties, &OtConfig::extension(), threads, batching);
    }

    #[test]
    fn prop_batched_and_per_gate_gmw_are_bit_identical(
        seed in any::<u64>(),
        parties in 2usize..6,
        threaded in any::<bool>(),
    ) {
        if threaded {
            assert_batching_modes_agree(seed, parties, &ThreadedTransport::with_threads(2));
        } else {
            assert_batching_modes_agree(seed, parties, &SimTransport);
        }
    }
}

#[test]
fn backends_agree_batched_mode() {
    assert_backends_agree(0xBA7C, 4, &OtConfig::extension(), 3, GmwBatching::Layered);
}

#[test]
fn backends_agree_per_gate_mode() {
    assert_backends_agree(0xBA7C, 4, &OtConfig::extension(), 3, GmwBatching::PerGate);
}

#[test]
fn backends_agree_with_real_elgamal_ot() {
    assert_backends_agree(
        0xE16A,
        3,
        &OtConfig::elgamal(dstress_crypto::group::GroupKind::Sim64),
        2,
        GmwBatching::Layered,
    );
}

#[test]
fn same_seed_reproduces_across_repeated_threaded_runs() {
    let circuit = random_circuit(42, 6, 24);
    let mut input_rng = SplitMix64::new(43);
    let inputs: Vec<bool> = (0..circuit.num_inputs())
        .map(|_| input_rng.next_bool())
        .collect();
    let mut share_rng = Xoshiro256::new(44);
    let shares = share_inputs(&inputs, 4, &mut share_rng);
    let ot = OtConfig::extension();
    let (a, _) = run_on(
        &ThreadedTransport::with_threads(4),
        &circuit,
        &shares,
        4,
        &ot,
        99,
        GmwBatching::Layered,
    );
    let (b, _) = run_on(
        &ThreadedTransport::with_threads(2),
        &circuit,
        &shares,
        4,
        &ot,
        99,
        GmwBatching::Layered,
    );
    assert_eq!(a.output_shares, b.output_shares);
    assert_eq!(a.counts, b.counts);
}
