//! The repo's core invariant, proven for the concurrent runtime: GMW
//! executions are bit-identical across transport backends.
//!
//! For random circuits, inputs and seeds, running the same per-party
//! state machines on the deterministic [`SimTransport`] and on the
//! multi-threaded [`ThreadedTransport`] must produce identical output
//! shares, identical [`OperationCounts`], identical per-party byte totals
//! and identical traffic reports — concurrency may only change
//! wall-clock, never results.

use dstress_circuit::builder::CircuitBuilder;
use dstress_circuit::{evaluate, Circuit, WireId};
use dstress_math::rng::{DetRng, SplitMix64, Xoshiro256};
use dstress_mpc::gmw::{reconstruct_outputs, share_inputs, GmwConfig, GmwProtocol};
use dstress_mpc::party::OtConfig;
use dstress_mpc::GmwExecution;
use dstress_net::traffic::TrafficAccountant;
use dstress_net::transport::{SimTransport, ThreadedTransport, Transport};
use proptest::prelude::*;

/// Builds a random circuit mixing AND / XOR / NOT / MUX gates over a
/// growing wire pool, with a handful of outputs.
fn random_circuit(seed: u64, inputs: usize, extra_gates: usize) -> Circuit {
    let mut rng = SplitMix64::new(seed);
    let mut builder = CircuitBuilder::new();
    let mut pool: Vec<WireId> = (0..inputs).map(|_| builder.input()).collect();
    for _ in 0..extra_gates {
        let a = pool[rng.next_below(pool.len() as u64) as usize];
        let b = pool[rng.next_below(pool.len() as u64) as usize];
        let wire = match rng.next_below(4) {
            0 => builder.and(a, b),
            1 => builder.xor(a, b),
            2 => builder.not(a),
            _ => {
                let sel = pool[rng.next_below(pool.len() as u64) as usize];
                builder.mux(sel, a, b)
            }
        };
        pool.push(wire);
    }
    for &wire in pool.iter().rev().take(4) {
        builder.output(wire);
    }
    builder
        .build()
        .expect("random circuits are topologically valid")
}

fn run_on(
    transport: &dyn Transport<dstress_mpc::GmwMessage>,
    circuit: &Circuit,
    shares: &[Vec<bool>],
    parties: usize,
    ot: &OtConfig,
    master_seed: u64,
) -> (GmwExecution, TrafficAccountant) {
    let protocol = GmwProtocol::new(GmwConfig::with_default_ids(parties)).unwrap();
    let mut traffic = TrafficAccountant::new();
    let exec = protocol
        .execute_seeded(transport, circuit, shares, ot, &mut traffic, master_seed)
        .expect("execution succeeds");
    (exec, traffic)
}

fn assert_backends_agree(seed: u64, parties: usize, ot: &OtConfig, threads: usize) {
    let circuit = random_circuit(seed, 3 + (seed % 6) as usize, 12 + (seed % 20) as usize);
    let mut input_rng = SplitMix64::new(seed ^ 0xC1C0);
    let inputs: Vec<bool> = (0..circuit.num_inputs())
        .map(|_| input_rng.next_bool())
        .collect();
    let mut share_rng = Xoshiro256::new(seed ^ 0x5EED);
    let shares = share_inputs(&inputs, parties, &mut share_rng);
    let master_seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);

    let (sim, sim_traffic) = run_on(&SimTransport, &circuit, &shares, parties, ot, master_seed);
    let (thr, thr_traffic) = run_on(
        &ThreadedTransport::with_threads(threads),
        &circuit,
        &shares,
        parties,
        ot,
        master_seed,
    );

    // Bit-identical shares, not merely identical reconstructions.
    assert_eq!(sim.output_shares, thr.output_shares, "seed {seed}");
    assert_eq!(sim.counts, thr.counts, "seed {seed}");
    assert_eq!(sim.rounds, thr.rounds, "seed {seed}");
    assert_eq!(
        sim.bytes_sent_per_party, thr.bytes_sent_per_party,
        "seed {seed}"
    );
    assert_eq!(sim_traffic.report(), thr_traffic.report(), "seed {seed}");

    // Both must also be *correct*: reconstruction equals the plaintext
    // evaluation.
    let expected = evaluate(&circuit, &inputs).unwrap();
    assert_eq!(reconstruct_outputs(&sim.output_shares).unwrap(), expected);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_sim_and_threaded_backends_are_bit_identical(
        seed in any::<u64>(),
        parties in 2usize..6,
        threads in 1usize..5,
    ) {
        assert_backends_agree(seed, parties, &OtConfig::extension(), threads);
    }
}

#[test]
fn backends_agree_with_real_elgamal_ot() {
    assert_backends_agree(
        0xE16A,
        3,
        &OtConfig::elgamal(dstress_crypto::group::GroupKind::Sim64),
        2,
    );
}

#[test]
fn same_seed_reproduces_across_repeated_threaded_runs() {
    let circuit = random_circuit(42, 6, 24);
    let mut input_rng = SplitMix64::new(43);
    let inputs: Vec<bool> = (0..circuit.num_inputs())
        .map(|_| input_rng.next_bool())
        .collect();
    let mut share_rng = Xoshiro256::new(44);
    let shares = share_inputs(&inputs, 4, &mut share_rng);
    let ot = OtConfig::extension();
    let (a, _) = run_on(
        &ThreadedTransport::with_threads(4),
        &circuit,
        &shares,
        4,
        &ot,
        99,
    );
    let (b, _) = run_on(
        &ThreadedTransport::with_threads(2),
        &circuit,
        &shares,
        4,
        &ot,
        99,
    );
    assert_eq!(a.output_shares, b.output_shares);
    assert_eq!(a.counts, b.counts);
}
