//! The repo's core invariants, proven for the concurrent runtime:
//!
//! 1. GMW executions are bit-identical across transport backends.  For
//!    random circuits, inputs and seeds, running the same per-party state
//!    machines on the deterministic [`SimTransport`], on the
//!    multi-threaded [`ThreadedTransport`] and on the real-TCP
//!    [`SocketTransport`] must produce identical output shares, identical
//!    `OperationCounts`, identical per-party byte totals and identical
//!    traffic reports — concurrency and real sockets may only change
//!    wall-clock, never results.  This three-way contract is what lets
//!    the deployment layer place block MPCs on remote workers without
//!    changing a bit of any run.
//! 2. GMW executions are bit-identical across [`GmwBatching`] modes in
//!    everything except the round structure: layer batching regroups the
//!    same OT payloads into fewer messages, so output shares and byte
//!    totals match the per-gate path exactly while rounds drop from
//!    O(AND gates) to O(depth) and the message count shrinks.

use dstress_circuit::builder::CircuitBuilder;
use dstress_circuit::{evaluate, Circuit, WireId};
use dstress_math::rng::{DetRng, SplitMix64, Xoshiro256};
use dstress_mpc::gmw::{reconstruct_outputs, share_inputs, GmwConfig, GmwProtocol};
use dstress_mpc::party::{GmwBatching, OtConfig};
use dstress_mpc::GmwExecution;
use dstress_net::socket::SocketTransport;
use dstress_net::traffic::TrafficAccountant;
use dstress_net::transport::{SimTransport, ThreadedTransport, Transport};
use proptest::prelude::*;

/// Builds a random circuit mixing AND / XOR / NOT / MUX gates over a
/// growing wire pool, with a handful of outputs.
fn random_circuit(seed: u64, inputs: usize, extra_gates: usize) -> Circuit {
    let mut rng = SplitMix64::new(seed);
    let mut builder = CircuitBuilder::new();
    let mut pool: Vec<WireId> = (0..inputs).map(|_| builder.input()).collect();
    for _ in 0..extra_gates {
        let a = pool[rng.next_below(pool.len() as u64) as usize];
        let b = pool[rng.next_below(pool.len() as u64) as usize];
        let wire = match rng.next_below(4) {
            0 => builder.and(a, b),
            1 => builder.xor(a, b),
            2 => builder.not(a),
            _ => {
                let sel = pool[rng.next_below(pool.len() as u64) as usize];
                builder.mux(sel, a, b)
            }
        };
        pool.push(wire);
    }
    for &wire in pool.iter().rev().take(4) {
        builder.output(wire);
    }
    builder
        .build()
        .expect("random circuits are topologically valid")
}

fn run_on(
    transport: &dyn Transport<dstress_mpc::GmwMessage>,
    circuit: &Circuit,
    shares: &[Vec<bool>],
    parties: usize,
    ot: &OtConfig,
    master_seed: u64,
    batching: GmwBatching,
) -> (GmwExecution, TrafficAccountant) {
    let protocol =
        GmwProtocol::new(GmwConfig::with_default_ids(parties).with_batching(batching)).unwrap();
    let mut traffic = TrafficAccountant::new();
    let exec = protocol
        .execute_seeded(transport, circuit, shares, ot, &mut traffic, master_seed)
        .expect("execution succeeds");
    (exec, traffic)
}

/// Shared fixture: circuit, plaintext inputs, shares and master seed for
/// one deterministic scenario.
fn scenario(seed: u64, parties: usize) -> (Circuit, Vec<bool>, Vec<Vec<bool>>, u64) {
    let circuit = random_circuit(seed, 3 + (seed % 6) as usize, 12 + (seed % 20) as usize);
    let mut input_rng = SplitMix64::new(seed ^ 0xC1C0);
    let inputs: Vec<bool> = (0..circuit.num_inputs())
        .map(|_| input_rng.next_bool())
        .collect();
    let mut share_rng = Xoshiro256::new(seed ^ 0x5EED);
    let shares = share_inputs(&inputs, parties, &mut share_rng);
    let master_seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (circuit, inputs, shares, master_seed)
}

fn assert_backends_agree(
    seed: u64,
    parties: usize,
    ot: &OtConfig,
    threads: usize,
    batching: GmwBatching,
) {
    let (circuit, inputs, shares, master_seed) = scenario(seed, parties);

    let (sim, sim_traffic) = run_on(
        &SimTransport,
        &circuit,
        &shares,
        parties,
        ot,
        master_seed,
        batching,
    );
    let (thr, thr_traffic) = run_on(
        &ThreadedTransport::with_threads(threads),
        &circuit,
        &shares,
        parties,
        ot,
        master_seed,
        batching,
    );
    let (sock, sock_traffic) = run_on(
        &SocketTransport::with_threads(threads),
        &circuit,
        &shares,
        parties,
        ot,
        master_seed,
        batching,
    );

    for (label, other, other_traffic) in [
        ("threaded", &thr, &thr_traffic),
        ("socket", &sock, &sock_traffic),
    ] {
        // Bit-identical shares, not merely identical reconstructions.
        assert_eq!(
            sim.output_shares, other.output_shares,
            "{label} seed {seed}"
        );
        assert_eq!(sim.counts, other.counts, "{label} seed {seed}");
        assert_eq!(sim.rounds, other.rounds, "{label} seed {seed}");
        assert_eq!(
            sim.bytes_sent_per_party, other.bytes_sent_per_party,
            "{label} seed {seed}"
        );
        // Measured wire bytes — the encoded sizes of the actual messages
        // — are as deterministic as the modeled totals, even when the
        // messages crossed real TCP frames.
        assert_eq!(
            sim.wire_bytes_per_party, other.wire_bytes_per_party,
            "{label} seed {seed}"
        );
        assert_eq!(
            sim.counts.wire_bytes, other.counts.wire_bytes,
            "{label} seed {seed}"
        );
        assert_eq!(
            sim_traffic.report(),
            other_traffic.report(),
            "{label} seed {seed}"
        );
    }

    // Both must also be *correct*: reconstruction equals the plaintext
    // evaluation.
    let expected = evaluate(&circuit, &inputs).unwrap();
    assert_eq!(reconstruct_outputs(&sim.output_shares).unwrap(), expected);
}

/// Batched vs per-gate GMW on the *same* backend: identical output
/// shares and byte totals, fewer rounds and messages when batching.
fn assert_batching_modes_agree(
    seed: u64,
    parties: usize,
    transport: &dyn Transport<dstress_mpc::GmwMessage>,
) {
    let (circuit, _, shares, master_seed) = scenario(seed, parties);
    let ot = OtConfig::extension();
    let (batched, batched_traffic) = run_on(
        transport,
        &circuit,
        &shares,
        parties,
        &ot,
        master_seed,
        GmwBatching::Layered,
    );
    let (per_gate, per_gate_traffic) = run_on(
        transport,
        &circuit,
        &shares,
        parties,
        &ot,
        master_seed,
        GmwBatching::PerGate,
    );

    assert_eq!(batched.output_shares, per_gate.output_shares, "seed {seed}");
    assert_eq!(
        batched.bytes_sent_per_party, per_gate.bytes_sent_per_party,
        "seed {seed}"
    );
    let br = batched_traffic.report();
    let pr = per_gate_traffic.report();
    assert_eq!(br.total_bytes, pr.total_bytes, "seed {seed}");
    assert_eq!(br.max_node_bytes, pr.max_node_bytes, "seed {seed}");
    // Identical work; only the round structure and the measured message
    // *framing* change (batching pays one header per layer where the
    // per-gate path pays one per gate, so the measured wire bytes differ
    // even though every modeled count matches).
    let mut b = batched.counts;
    let mut p = per_gate.counts;
    assert!(b.rounds <= p.rounds, "seed {seed}");
    if circuit.and_gates() > 0 {
        assert!(br.total_messages <= pr.total_messages, "seed {seed}");
    } else {
        // With no AND gates neither mode exchanges OT messages, so even
        // the measured wire bytes are identical.
        assert_eq!(b.wire_bytes, p.wire_bytes, "seed {seed}");
    }
    b.rounds = 0;
    p.rounds = 0;
    b.wire_bytes = 0;
    p.wire_bytes = 0;
    assert_eq!(b, p, "seed {seed}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_all_three_backends_are_bit_identical(
        seed in any::<u64>(),
        parties in 2usize..6,
        threads in 1usize..5,
        batched in any::<bool>(),
    ) {
        let batching = if batched { GmwBatching::Layered } else { GmwBatching::PerGate };
        assert_backends_agree(seed, parties, &OtConfig::extension(), threads, batching);
    }

    #[test]
    fn prop_batched_and_per_gate_gmw_are_bit_identical(
        seed in any::<u64>(),
        parties in 2usize..6,
        backend in 0u8..3,
    ) {
        match backend {
            0 => assert_batching_modes_agree(seed, parties, &SimTransport),
            1 => assert_batching_modes_agree(seed, parties, &ThreadedTransport::with_threads(2)),
            _ => assert_batching_modes_agree(seed, parties, &SocketTransport::with_threads(2)),
        }
    }
}

#[test]
fn backends_agree_batched_mode() {
    assert_backends_agree(0xBA7C, 4, &OtConfig::extension(), 3, GmwBatching::Layered);
}

#[test]
fn backends_agree_per_gate_mode() {
    assert_backends_agree(0xBA7C, 4, &OtConfig::extension(), 3, GmwBatching::PerGate);
}

#[test]
fn backends_agree_with_real_elgamal_ot() {
    assert_backends_agree(
        0xE16A,
        3,
        &OtConfig::elgamal(dstress_crypto::group::GroupKind::Sim64),
        2,
        GmwBatching::Layered,
    );
}

#[test]
fn backends_agree_per_gate_with_real_elgamal_ot() {
    assert_backends_agree(
        0xE16B,
        3,
        &OtConfig::elgamal(dstress_crypto::group::GroupKind::Sim64),
        2,
        GmwBatching::PerGate,
    );
}

/// Measured byte totals across the full backend × batching grid —
/// {Sim, Threaded, Socket} × {Layered, PerGate}: within each batching
/// mode all three backends must agree bit for bit, and the batched
/// framing must never exceed the per-gate framing.
#[test]
fn measured_wire_bytes_bit_identical_across_the_grid() {
    let parties = 4;
    let (circuit, _, shares, master_seed) = scenario(0x2B17, parties);
    let ot = OtConfig::extension();
    let mut grid = Vec::new();
    for batching in [GmwBatching::Layered, GmwBatching::PerGate] {
        let (sim, sim_traffic) = run_on(
            &SimTransport,
            &circuit,
            &shares,
            parties,
            &ot,
            master_seed,
            batching,
        );
        let backends: [(&str, Box<dyn Transport<dstress_mpc::GmwMessage>>); 2] = [
            ("threaded", Box::new(ThreadedTransport::with_threads(3))),
            ("socket", Box::new(SocketTransport::with_threads(3))),
        ];
        for (label, transport) in backends {
            let (other, other_traffic) = run_on(
                &*transport,
                &circuit,
                &shares,
                parties,
                &ot,
                master_seed,
                batching,
            );
            assert_eq!(
                sim.counts.wire_bytes, other.counts.wire_bytes,
                "{label} {batching:?}"
            );
            assert_eq!(
                sim.wire_bytes_per_party, other.wire_bytes_per_party,
                "{label} {batching:?}"
            );
            assert_eq!(
                sim_traffic.report().total_wire_bytes,
                other_traffic.report().total_wire_bytes,
                "{label} {batching:?}"
            );
        }
        assert!(sim.counts.wire_bytes > 0, "{batching:?}");
        grid.push(sim.counts.wire_bytes);
    }
    let (layered, per_gate) = (grid[0], grid[1]);
    assert!(layered <= per_gate, "batched framing must not cost more");
}

/// The satellite regression: on a `w`-wide single-AND-layer circuit the
/// batched `Choices` message is two bit-packed planes — at most
/// `2·⌈w/8⌉` bytes plus a bounded header — where the per-gate path pays
/// a whole headed message per gate.  Run with κ = 0 so no OT payload
/// rides along and the framing itself is what gets measured.
#[test]
fn batched_choices_payload_is_bit_packed_on_the_wire() {
    let w = 64usize;
    let mut builder = CircuitBuilder::new();
    let mut outs = Vec::new();
    for _ in 0..w {
        let x = builder.input();
        let y = builder.input();
        outs.push(builder.and(x, y));
    }
    for o in outs {
        builder.output(o);
    }
    let circuit = builder.build().unwrap();
    let mut share_rng = Xoshiro256::new(0xB17);
    let shares = share_inputs(&vec![true; circuit.num_inputs()], 2, &mut share_rng);
    let ot = OtConfig::Extension {
        security_parameter: 0,
    };

    let (batched, _) = run_on(
        &SimTransport,
        &circuit,
        &shares,
        2,
        &ot,
        9,
        GmwBatching::Layered,
    );
    // Party 1 (the OT receiver toward pair owner 0) sends exactly one
    // Choices message: two w-bit planes plus the header.
    let header_max = dstress_mpc::wire::BATCH_HEADER_MAX as u64;
    assert!(
        batched.wire_bytes_per_party[1] <= (2 * w.div_ceil(8)) as u64 + header_max,
        "batched choices cost {} bytes for w = {w}",
        batched.wire_bytes_per_party[1]
    );

    let (per_gate, _) = run_on(
        &SimTransport,
        &circuit,
        &shares,
        2,
        &ot,
        9,
        GmwBatching::PerGate,
    );
    // Per-gate framing pays at least tag + gate id + packed byte +
    // payload length per AND gate — measurably more than the bit-packed
    // batch.
    assert!(per_gate.wire_bytes_per_party[1] >= (3 * w) as u64);
    assert!(batched.wire_bytes_per_party[1] * 4 < per_gate.wire_bytes_per_party[1]);
}

#[test]
fn same_seed_reproduces_across_repeated_threaded_runs() {
    let circuit = random_circuit(42, 6, 24);
    let mut input_rng = SplitMix64::new(43);
    let inputs: Vec<bool> = (0..circuit.num_inputs())
        .map(|_| input_rng.next_bool())
        .collect();
    let mut share_rng = Xoshiro256::new(44);
    let shares = share_inputs(&inputs, 4, &mut share_rng);
    let ot = OtConfig::extension();
    let (a, _) = run_on(
        &ThreadedTransport::with_threads(4),
        &circuit,
        &shares,
        4,
        &ot,
        99,
        GmwBatching::Layered,
    );
    let (b, _) = run_on(
        &ThreadedTransport::with_threads(2),
        &circuit,
        &shares,
        4,
        &ot,
        99,
        GmwBatching::Layered,
    );
    assert_eq!(a.output_shares, b.output_shares);
    assert_eq!(a.counts, b.counts);
}
