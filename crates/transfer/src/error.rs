//! Error type for setup and transfer.

use core::fmt;
use dstress_crypto::CryptoError;
use dstress_math::MathError;
use dstress_net::wire::WireError;

/// Errors produced by the trusted-party setup or the transfer protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransferError {
    /// An underlying cryptographic operation failed.
    Crypto(CryptoError),
    /// An underlying arithmetic operation failed.
    Math(MathError),
    /// There are not enough nodes to form blocks of `k + 1` distinct
    /// members.
    NotEnoughNodes {
        /// Number of registered nodes.
        nodes: usize,
        /// Required block size `k + 1`.
        block_size: usize,
    },
    /// The number of shares supplied does not match the block size.
    BlockSizeMismatch {
        /// Expected block size.
        expected: usize,
        /// Provided count.
        actual: usize,
    },
    /// The certificate does not carry keys for the expected block size or
    /// bit width.
    CertificateShapeMismatch,
    /// A decryption produced a sum outside the lookup-table window — the
    /// `P_fail` event of Appendix B.
    DecryptionFailure,
    /// A certificate or block list failed signature verification.
    BadSignature,
    /// A protocol hop could not be decoded from its wire bytes.
    WireFormat(WireError),
}

impl fmt::Display for TransferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferError::Crypto(e) => write!(f, "crypto error: {e}"),
            TransferError::Math(e) => write!(f, "math error: {e}"),
            TransferError::NotEnoughNodes { nodes, block_size } => {
                write!(f, "cannot form blocks of {block_size} from {nodes} nodes")
            }
            TransferError::BlockSizeMismatch { expected, actual } => {
                write!(f, "expected {expected} block members, got {actual}")
            }
            TransferError::CertificateShapeMismatch => {
                write!(f, "block certificate has the wrong shape")
            }
            TransferError::DecryptionFailure => {
                write!(
                    f,
                    "noised sum fell outside the discrete-log window (P_fail event)"
                )
            }
            TransferError::BadSignature => write!(f, "trusted-party signature check failed"),
            TransferError::WireFormat(e) => write!(f, "wire format error: {e}"),
        }
    }
}

impl std::error::Error for TransferError {}

impl From<CryptoError> for TransferError {
    fn from(e: CryptoError) -> Self {
        TransferError::Crypto(e)
    }
}

impl From<MathError> for TransferError {
    fn from(e: MathError) -> Self {
        TransferError::Math(e)
    }
}

impl From<WireError> for TransferError {
    fn from(e: WireError) -> Self {
        TransferError::WireFormat(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(TransferError::DecryptionFailure
            .to_string()
            .contains("P_fail"));
        assert!(TransferError::BadSignature
            .to_string()
            .contains("signature"));
        assert!(TransferError::NotEnoughNodes {
            nodes: 3,
            block_size: 8
        }
        .to_string()
        .contains('8'));
        assert!(TransferError::BlockSizeMismatch {
            expected: 4,
            actual: 2
        }
        .to_string()
        .contains('4'));
        assert!(TransferError::CertificateShapeMismatch
            .to_string()
            .contains("shape"));
        let e: TransferError = CryptoError::MalformedCiphertext.into();
        assert!(e.to_string().contains("crypto"));
        let e: TransferError = MathError::InvalidHex.into();
        assert!(e.to_string().contains("math"));
        let e: TransferError = WireError::VarintOverflow.into();
        assert!(e.to_string().contains("wire format"));
    }
}
