//! One-time trusted-party setup (§3.4).
//!
//! Before a graph can be analysed, a trusted party (the paper suggests the
//! Federal Reserve for the banking scenario) performs a one-time setup:
//!
//! 1. every node submits its public ElGamal keys and `D` freshly chosen
//!    secret *neighbor keys*;
//! 2. the TP assigns every node `i` a block `B_i` of `k + 1` members
//!    (including `i` itself), plus a special aggregation block `B_A`, and
//!    publishes the signed assignment;
//! 3. the TP issues `D` *block certificates* per node: the `j`-th
//!    certificate for node `i` contains the public keys of `B_i`'s members
//!    re-randomised with `i`'s `j`-th neighbor key, so that the neighbour
//!    who eventually receives it cannot recognise the members by their
//!    public keys.
//!
//! Node `i` then forwards its `j`-th certificate to its `j`-th neighbour
//! (discarding leftovers if it has fewer than `D` neighbours).  The TP
//! never learns the topology and can leave the system.
//!
//! Signatures are modelled with a keyed FNV-1a tag: the reproduction's
//! threat model is honest-but-curious, so the signature only needs to be a
//! checkable integrity tag, not an unforgeable one (see `DESIGN.md`).

use crate::error::TransferError;
use dstress_crypto::elgamal::{KeyPair, PublicKey};
use dstress_crypto::group::Group;
use dstress_math::rng::DetRng;
use dstress_math::U256;
use dstress_net::traffic::NodeId;

/// Secrets held by a single node after key generation.
#[derive(Clone, Debug)]
pub struct NodeSecrets {
    /// One ElGamal key pair per message bit (the Kurosawa multi-recipient
    /// optimisation of §5.1 needs `L` distinct public keys per recipient).
    pub bit_keys: Vec<KeyPair>,
    /// The `D` neighbor keys this node chose (exponents in `Z_q`).
    pub neighbor_keys: Vec<U256>,
}

impl NodeSecrets {
    /// Generates fresh secrets for one node.
    pub fn generate(
        group: &Group,
        message_bits: u32,
        degree_bound: usize,
        rng: &mut dyn DetRng,
    ) -> Self {
        NodeSecrets {
            bit_keys: (0..message_bits)
                .map(|_| KeyPair::generate(group, rng))
                .collect(),
            neighbor_keys: (0..degree_bound)
                .map(|_| group.random_nonzero_exponent(rng))
                .collect(),
        }
    }

    /// The node's public bit keys (what gets registered with the TP).
    pub fn public_bit_keys(&self) -> Vec<PublicKey> {
        self.bit_keys.iter().map(|kp| kp.public).collect()
    }
}

/// A block: the `k + 1` nodes that jointly hold one vertex's state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// The node whose vertex this block serves (a member of the block).
    pub owner: NodeId,
    /// All members, including the owner.
    pub members: Vec<NodeId>,
}

impl Block {
    /// Block size (`k + 1`).
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Index of a node within the block, if it is a member.
    pub fn member_index(&self, node: NodeId) -> Option<usize> {
        self.members.iter().position(|&m| m == node)
    }
}

/// A block certificate: the re-randomised public keys of one block,
/// destined for one of the owner's neighbours.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockCertificate {
    /// The node whose block these keys belong to.
    pub block_owner: NodeId,
    /// Which of the owner's neighbor keys re-randomised the certificate
    /// (the owner's `j`-th neighbour receives certificate `j`).
    pub neighbor_index: usize,
    /// `keys[member][bit]`: the re-randomised public key of each block
    /// member for each message bit position.
    pub keys: Vec<Vec<PublicKey>>,
    /// The trusted party's integrity tag.
    pub signature: u64,
}

/// The output of the one-time setup.
#[derive(Clone, Debug)]
pub struct SystemSetup {
    /// The collusion bound `k`.
    pub collusion_bound: usize,
    /// The public degree bound `D`.
    pub degree_bound: usize,
    /// Message bit width `L`.
    pub message_bits: u32,
    /// One block per node, indexed by node id.
    pub blocks: Vec<Block>,
    /// The special aggregation block `B_A` (§3.6).
    pub aggregation_block: Block,
    /// `certificates[i][j]`: node `i`'s `j`-th block certificate, which
    /// `i` forwards to its `j`-th neighbour.
    pub certificates: Vec<Vec<BlockCertificate>>,
    /// Integrity tag over the block assignment.
    pub assignment_signature: u64,
}

impl SystemSetup {
    /// The block serving node `i`'s vertex.
    pub fn block_of(&self, node: NodeId) -> &Block {
        &self.blocks[node.0]
    }

    /// Number of participating nodes.
    pub fn node_count(&self) -> usize {
        self.blocks.len()
    }
}

/// The trusted party.
///
/// In a deployment the TP runs once and goes offline; here it is an
/// ordinary value whose `setup` method performs the whole procedure.
#[derive(Clone, Debug)]
pub struct TrustedParty {
    signing_key: u64,
}

/// Keyed FNV-1a over a byte stream — the stand-in integrity tag.
fn tag(signing_key: u64, bytes: impl Iterator<Item = u8>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ signing_key;
    for b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

impl TrustedParty {
    /// Creates a trusted party with a signing key derived from the seed.
    pub fn new(seed: u64) -> Self {
        TrustedParty { signing_key: seed }
    }

    /// Runs the one-time setup for `registrations.len()` nodes.
    ///
    /// `registrations[i]` holds node `i`'s public bit keys and neighbor
    /// keys (the neighbor keys are secrets shared only with the TP, which
    /// needs them to build the certificates; the TP never learns which
    /// neighbour each key will be used for).
    ///
    /// # Errors
    ///
    /// Returns [`TransferError::NotEnoughNodes`] if fewer than `k + 1`
    /// nodes registered, and propagates key-shape errors.
    pub fn setup(
        &self,
        group: &Group,
        registrations: &[(Vec<PublicKey>, Vec<U256>)],
        collusion_bound: usize,
        degree_bound: usize,
        message_bits: u32,
        rng: &mut dyn DetRng,
    ) -> Result<SystemSetup, TransferError> {
        let n = registrations.len();
        let block_size = collusion_bound + 1;
        if n < block_size {
            return Err(TransferError::NotEnoughNodes {
                nodes: n,
                block_size,
            });
        }
        for (keys, neighbor_keys) in registrations {
            if keys.len() != message_bits as usize || neighbor_keys.len() != degree_bound {
                return Err(TransferError::CertificateShapeMismatch);
            }
        }

        let (blocks, aggregation_block, assignment_signature) =
            self.assign_blocks(n, block_size, rng);

        // Build the D certificates for every node's block.
        let mut certificates = Vec::with_capacity(n);
        for i in 0..n {
            let (_, neighbor_keys) = &registrations[i];
            let mut node_certs = Vec::with_capacity(degree_bound);
            for (j, neighbor_key) in neighbor_keys.iter().enumerate() {
                let mut keys = Vec::with_capacity(block_size);
                for &member in &blocks[i].members {
                    let member_keys = &registrations[member.0].0;
                    let rerandomized: Vec<PublicKey> = member_keys
                        .iter()
                        .map(|pk| {
                            dstress_crypto::elgamal::rerandomize_public_key(group, pk, neighbor_key)
                        })
                        .collect();
                    keys.push(rerandomized);
                }
                let signature = tag(
                    self.signing_key,
                    keys.iter().flat_map(|member_keys| {
                        member_keys
                            .iter()
                            .flat_map(|pk| group.elem_to_int(pk.element()).to_be_bytes())
                    }),
                );
                node_certs.push(BlockCertificate {
                    block_owner: NodeId(i),
                    neighbor_index: j,
                    keys,
                    signature,
                });
            }
            certificates.push(node_certs);
        }

        Ok(SystemSetup {
            collusion_bound,
            degree_bound,
            message_bits,
            blocks,
            aggregation_block,
            certificates,
            assignment_signature,
        })
    }

    /// Verifies a block certificate's integrity tag.
    pub fn verify_certificate(&self, group: &Group, cert: &BlockCertificate) -> bool {
        let expected = tag(
            self.signing_key,
            cert.keys.iter().flat_map(|member_keys| {
                member_keys
                    .iter()
                    .flat_map(|pk| group.elem_to_int(pk.element()).to_be_bytes())
            }),
        );
        expected == cert.signature
    }

    /// Verifies the block-assignment signature of a setup.
    pub fn verify_assignment(&self, setup: &SystemSetup) -> bool {
        let expected = tag(
            self.signing_key,
            setup
                .blocks
                .iter()
                .flat_map(|b| b.members.iter().flat_map(|m| (m.0 as u64).to_le_bytes())),
        );
        expected == setup.assignment_signature
    }

    /// Assigns every node its block plus the aggregation block and signs
    /// the assignment — the part of [`TrustedParty::setup`] that needs no
    /// key material.  Exposed through [`generate_block_assignment`] for
    /// cost-accounted runs that never decrypt anything.
    fn assign_blocks(
        &self,
        n: usize,
        block_size: usize,
        rng: &mut dyn DetRng,
    ) -> (Vec<Block>, Block, u64) {
        // Assign blocks: each node's block contains itself plus k distinct
        // other nodes chosen uniformly at random.
        let mut blocks = Vec::with_capacity(n);
        for i in 0..n {
            let members = Self::pick_members(i, n, block_size, rng);
            blocks.push(Block {
                owner: NodeId(i),
                members,
            });
        }
        // The aggregation block is owned by no vertex; we record its owner
        // as its first member for bookkeeping.
        let agg_members = Self::pick_members(rng.next_below(n as u64) as usize, n, block_size, rng);
        let aggregation_block = Block {
            owner: agg_members[0],
            members: agg_members,
        };

        let assignment_signature = tag(
            self.signing_key,
            blocks
                .iter()
                .flat_map(|b| b.members.iter().flat_map(|m| (m.0 as u64).to_le_bytes())),
        );
        (blocks, aggregation_block, assignment_signature)
    }

    fn pick_members(
        owner: usize,
        n: usize,
        block_size: usize,
        rng: &mut dyn DetRng,
    ) -> Vec<NodeId> {
        let mut members = vec![NodeId(owner)];
        while members.len() < block_size {
            let candidate = NodeId(rng.next_below(n as u64) as usize);
            if !members.contains(&candidate) {
                members.push(candidate);
            }
        }
        members
    }
}

/// Block-assignment-only setup for cost-accounted runs: assigns blocks
/// and the aggregation block exactly as [`TrustedParty::setup`] does (the
/// same RNG draws, so a seed maps to the same assignment) but generates
/// **no** key material and **no** certificates — both are `O(N · D · L)`
/// group elements that an accounted execution never touches.  This is
/// what keeps the streaming engine's setup memory `O(N · k)` instead of
/// scaling with the edge count.
///
/// # Errors
///
/// Returns [`TransferError::NotEnoughNodes`] if fewer than `k + 1` nodes
/// participate.
pub fn generate_block_assignment(
    nodes: usize,
    collusion_bound: usize,
    degree_bound: usize,
    message_bits: u32,
    rng: &mut dyn DetRng,
) -> Result<SystemSetup, TransferError> {
    let block_size = collusion_bound + 1;
    if nodes < block_size {
        return Err(TransferError::NotEnoughNodes { nodes, block_size });
    }
    let tp = TrustedParty::new(0x0FED_5EED);
    let (blocks, aggregation_block, assignment_signature) =
        tp.assign_blocks(nodes, block_size, rng);
    Ok(SystemSetup {
        collusion_bound,
        degree_bound,
        message_bits,
        blocks,
        aggregation_block,
        certificates: Vec::new(),
        assignment_signature,
    })
}

/// Convenience helper used by tests and the runtime: generates secrets for
/// every node and runs the full setup, returning both.
///
/// # Errors
///
/// Propagates [`TrustedParty::setup`] errors.
pub fn generate_system(
    group: &Group,
    nodes: usize,
    collusion_bound: usize,
    degree_bound: usize,
    message_bits: u32,
    rng: &mut dyn DetRng,
) -> Result<(Vec<NodeSecrets>, SystemSetup), TransferError> {
    let secrets: Vec<NodeSecrets> = (0..nodes)
        .map(|_| NodeSecrets::generate(group, message_bits, degree_bound, rng))
        .collect();
    let registrations: Vec<(Vec<PublicKey>, Vec<U256>)> = secrets
        .iter()
        .map(|s| (s.public_bit_keys(), s.neighbor_keys.clone()))
        .collect();
    let tp = TrustedParty::new(0x0FED_5EED);
    let setup = tp.setup(
        group,
        &registrations,
        collusion_bound,
        degree_bound,
        message_bits,
        rng,
    )?;
    Ok((secrets, setup))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_math::rng::Xoshiro256;

    fn small_system() -> (Group, Vec<NodeSecrets>, SystemSetup) {
        let group = Group::sim64();
        let mut rng = Xoshiro256::new(42);
        let (secrets, setup) = generate_system(&group, 10, 3, 4, 12, &mut rng).unwrap();
        (group, secrets, setup)
    }

    #[test]
    fn blocks_have_correct_shape() {
        let (_, _, setup) = small_system();
        assert_eq!(setup.node_count(), 10);
        for (i, block) in setup.blocks.iter().enumerate() {
            assert_eq!(block.size(), 4, "block of node {i}");
            assert_eq!(block.owner, NodeId(i));
            assert!(block.members.contains(&NodeId(i)), "owner must be a member");
            let mut sorted = block.members.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "members must be distinct");
            assert_eq!(block.member_index(NodeId(i)).unwrap(), 0);
        }
        assert_eq!(setup.aggregation_block.size(), 4);
        assert_eq!(setup.block_of(NodeId(3)).owner, NodeId(3));
    }

    #[test]
    fn certificates_have_correct_shape() {
        let (_, _, setup) = small_system();
        for node_certs in &setup.certificates {
            assert_eq!(node_certs.len(), 4, "D certificates per node");
            for (j, cert) in node_certs.iter().enumerate() {
                assert_eq!(cert.neighbor_index, j);
                assert_eq!(cert.keys.len(), 4, "one key set per member");
                for member_keys in &cert.keys {
                    assert_eq!(member_keys.len(), 12, "L keys per member");
                }
            }
        }
    }

    #[test]
    fn certificates_hide_original_keys() {
        let (_, secrets, setup) = small_system();
        // The re-randomised keys must differ from every registered public
        // key (so a colluding neighbour cannot identify block members).
        let all_public: Vec<_> = secrets
            .iter()
            .flat_map(|s| s.public_bit_keys())
            .map(|pk| pk.element())
            .collect();
        for node_certs in &setup.certificates {
            for cert in node_certs {
                for member_keys in &cert.keys {
                    for pk in member_keys {
                        assert!(!all_public.contains(&pk.element()));
                    }
                }
            }
        }
    }

    #[test]
    fn rerandomized_keys_decrypt_after_adjustment() {
        let (group, secrets, setup) = small_system();
        // Node 0's certificate for its first neighbor: encrypt to member 1,
        // bit 3, adjust with node 0's first neighbor key, decrypt with the
        // member's original secret key.
        let cert = &setup.certificates[0][0];
        let member = setup.blocks[0].members[1];
        let pk = cert.keys[1][3];
        let mut rng = Xoshiro256::new(7);
        let ct = dstress_crypto::elgamal::encrypt_exponent(&group, &pk, 1, &mut rng);
        let adjusted =
            dstress_crypto::elgamal::adjust_ciphertext(&group, &ct, &secrets[0].neighbor_keys[0]);
        let table = dstress_crypto::DlogTable::new(&group, 2);
        let elem = dstress_crypto::elgamal::decrypt(
            &group,
            &secrets[member.0].bit_keys[3].secret,
            &adjusted,
        )
        .unwrap();
        assert_eq!(table.lookup(&group, elem).unwrap(), 1);
    }

    #[test]
    fn signatures_verify_and_detect_tampering() {
        let group = Group::sim64();
        let mut rng = Xoshiro256::new(3);
        let secrets: Vec<NodeSecrets> = (0..6)
            .map(|_| NodeSecrets::generate(&group, 4, 2, &mut rng))
            .collect();
        let registrations: Vec<_> = secrets
            .iter()
            .map(|s| (s.public_bit_keys(), s.neighbor_keys.clone()))
            .collect();
        let tp = TrustedParty::new(123);
        let mut setup = tp.setup(&group, &registrations, 2, 2, 4, &mut rng).unwrap();
        assert!(tp.verify_assignment(&setup));
        assert!(tp.verify_certificate(&group, &setup.certificates[0][0]));
        // A different TP key rejects.
        let other = TrustedParty::new(456);
        assert!(!other.verify_assignment(&setup));
        // Tampering with the assignment is detected.
        setup.blocks[0].members.swap(1, 2);
        assert!(!tp.verify_assignment(&setup));
    }

    #[test]
    fn setup_rejects_bad_inputs() {
        let group = Group::sim64();
        let mut rng = Xoshiro256::new(5);
        let tp = TrustedParty::new(1);
        // Too few nodes for k = 5.
        let secrets: Vec<NodeSecrets> = (0..3)
            .map(|_| NodeSecrets::generate(&group, 4, 2, &mut rng))
            .collect();
        let regs: Vec<_> = secrets
            .iter()
            .map(|s| (s.public_bit_keys(), s.neighbor_keys.clone()))
            .collect();
        assert!(matches!(
            tp.setup(&group, &regs, 5, 2, 4, &mut rng).unwrap_err(),
            TransferError::NotEnoughNodes { .. }
        ));
        // Wrong number of bit keys.
        let bad_regs: Vec<_> = secrets
            .iter()
            .map(|s| (s.public_bit_keys()[..2].to_vec(), s.neighbor_keys.clone()))
            .collect();
        assert!(matches!(
            tp.setup(&group, &bad_regs, 1, 2, 4, &mut rng).unwrap_err(),
            TransferError::CertificateShapeMismatch
        ));
    }

    #[test]
    fn block_assignment_only_setup_matches_full_setup() {
        let group = Group::sim64();
        let mut rng = Xoshiro256::new(77);
        let (_, full) = generate_system(&group, 12, 3, 4, 8, &mut rng).unwrap();

        // Position a fresh RNG past the same secret-generation draws, then
        // run the assignment-only path: the block picks must coincide.
        let mut rng = Xoshiro256::new(77);
        for _ in 0..12 {
            let _ = NodeSecrets::generate(&group, 8, 4, &mut rng);
        }
        let light = generate_block_assignment(12, 3, 4, 8, &mut rng).unwrap();
        assert_eq!(light.blocks.len(), full.blocks.len());
        for (a, b) in light.blocks.iter().zip(&full.blocks) {
            assert_eq!(a.members, b.members);
        }
        assert_eq!(
            light.aggregation_block.members,
            full.aggregation_block.members
        );
        assert_eq!(light.assignment_signature, full.assignment_signature);
        // No key material, no certificates — that is the point.
        assert!(light.certificates.is_empty());
        assert!(TrustedParty::new(0x0FED_5EED).verify_assignment(&light));
        // Too few nodes still rejected.
        assert!(matches!(
            generate_block_assignment(2, 5, 4, 8, &mut rng).unwrap_err(),
            TransferError::NotEnoughNodes { .. }
        ));
    }

    #[test]
    fn setup_is_deterministic_in_seed() {
        let group = Group::sim64();
        let run = |seed: u64| {
            let mut rng = Xoshiro256::new(seed);
            generate_system(&group, 8, 2, 3, 8, &mut rng).unwrap().1
        };
        let a = run(9);
        let b = run(9);
        for (ba, bb) in a.blocks.iter().zip(b.blocks.iter()) {
            assert_eq!(ba.members, bb.members);
        }
        let c = run(10);
        assert!(a
            .blocks
            .iter()
            .zip(c.blocks.iter())
            .any(|(x, y)| x.members != y.members));
    }
}
