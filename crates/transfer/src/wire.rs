//! Wire encoding of the message-transfer protocol's ElGamal hops.
//!
//! Every hop of the transfer protocol (`B_i → i → j → B_j`, §3.5) routes
//! its ciphertexts through these encodings: the sender converts group
//! elements to bytes, the byte buffer is measured (that is the hop's
//! *measured* wire traffic), and the receiver decodes and re-validates
//! the elements against the group.
//!
//! ## Layouts
//!
//! Group elements are fixed-width little-endian integers; the element
//! width in bytes appears once per message (8 for the 64-bit simulation
//! group, 32 for the production group), so measured sizes track the
//! group exactly like the analytical cost model does.
//!
//! | message | layout |
//! |---|---|
//! | `SubShares`  | `0x00` · width · uvarint(receiver) · uvarint(L) · ephemeral · L masked elements |
//! | `Aggregated` | `0x01` · width · uvarint(members) · per member ( uvarint(L) · L·(c1, c2) ) |
//! | `Adjusted`   | `0x02` · width · uvarint(L) · L·(c1, c2) |
//!
//! `SubShares` exploits the Kurosawa shared-ephemeral optimisation the
//! protocol actually uses ([`dstress_crypto::elgamal::encrypt_bits_multi_recipient`]):
//! the ephemeral component `g^y` is encoded **once** for the whole
//! bundle, so a bundle costs `(L + 1)` elements on the wire — exactly
//! the analytical model's figure.  After homomorphic aggregation the
//! ephemerals differ per bit, so `Aggregated`/`Adjusted` carry full
//! `(c1, c2)` pairs.

use crate::error::TransferError;
use dstress_crypto::elgamal::Ciphertext;
use dstress_crypto::group::Group;
use dstress_math::U256;
use dstress_net::wire::{self, Wire, WireError};

/// Message tags.
const TAG_SUB_SHARES: u8 = 0x00;
const TAG_AGGREGATED: u8 = 0x01;
const TAG_ADJUSTED: u8 = 0x02;

/// The wire form of one transfer-protocol hop.  Elements are raw
/// integers here — group membership is re-checked when converting back
/// to [`Ciphertext`]s with the `into_*` helpers
/// ([`TransferWire::into_adjusted`] and friends), because a context-free
/// decoder cannot know the group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransferWire {
    /// Sender-block member → vertex `i`: one bit-decomposed sub-share
    /// bundle under a shared ephemeral.
    SubShares {
        /// Element width in bytes.
        width: u8,
        /// Index of the receiver-block member the bundle is for.
        receiver: u32,
        /// The shared ephemeral component `g^y`.
        ephemeral: U256,
        /// One masked element per message bit.
        masked: Vec<U256>,
    },
    /// Vertex `i` → vertex `j`: the aggregated (and noised) ciphertexts,
    /// one full pair per receiver member and bit.
    Aggregated {
        /// Element width in bytes.
        width: u8,
        /// `per_member[y][l]` = `(c1, c2)` of bit `l` for member `y`.
        per_member: Vec<Vec<(U256, U256)>>,
    },
    /// Vertex `j` → receiver member: that member's adjusted ciphertexts.
    Adjusted {
        /// Element width in bytes.
        width: u8,
        /// `(c1, c2)` per message bit.
        pairs: Vec<(U256, U256)>,
    },
}

/// Writes the low `width` bytes of `v` little-endian.  The caller
/// guarantees `v` fits (group elements are reduced mod `p < 2^(8·width)`).
fn put_elem(out: &mut Vec<u8>, v: &U256, width: usize) {
    let limbs = v.limbs();
    debug_assert!(
        (width..32).all(|i| limbs[i / 8] >> (8 * (i % 8)) & 0xFF == 0),
        "element does not fit the declared width"
    );
    for i in 0..width {
        out.push((limbs[i / 8] >> (8 * (i % 8))) as u8);
    }
}

/// Reads a `width`-byte little-endian integer.
fn get_elem(buf: &mut &[u8], width: usize) -> Result<U256, WireError> {
    let bytes = wire::take(buf, width)?;
    let mut limbs = [0u64; 4];
    for (i, &b) in bytes.iter().enumerate() {
        limbs[i / 8] |= (b as u64) << (8 * (i % 8));
    }
    Ok(U256::from_limbs(limbs))
}

fn get_width(buf: &mut &[u8]) -> Result<u8, WireError> {
    let width = wire::get_u8(buf)?;
    if (1..=32).contains(&width) {
        Ok(width)
    } else {
        Err(WireError::Invalid {
            what: "element width",
        })
    }
}

/// Decodes a varint count whose elements each cost at least `unit` bytes,
/// guarding the subsequent allocation against a lying prefix.
fn get_count(buf: &mut &[u8], unit: usize) -> Result<usize, WireError> {
    let count = wire::get_uvarint(buf)? as usize;
    let needed = count.saturating_mul(unit.max(1));
    if needed > buf.len() {
        return Err(WireError::Truncated {
            needed,
            available: buf.len(),
        });
    }
    Ok(count)
}

impl Wire for TransferWire {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            TransferWire::SubShares {
                width,
                receiver,
                ephemeral,
                masked,
            } => {
                wire::put_u8(out, TAG_SUB_SHARES);
                wire::put_u8(out, *width);
                wire::put_uvarint(out, u64::from(*receiver));
                wire::put_uvarint(out, masked.len() as u64);
                put_elem(out, ephemeral, *width as usize);
                for m in masked {
                    put_elem(out, m, *width as usize);
                }
            }
            TransferWire::Aggregated { width, per_member } => {
                wire::put_u8(out, TAG_AGGREGATED);
                wire::put_u8(out, *width);
                wire::put_uvarint(out, per_member.len() as u64);
                for per_bit in per_member {
                    wire::put_uvarint(out, per_bit.len() as u64);
                    for (c1, c2) in per_bit {
                        put_elem(out, c1, *width as usize);
                        put_elem(out, c2, *width as usize);
                    }
                }
            }
            TransferWire::Adjusted { width, pairs } => {
                wire::put_u8(out, TAG_ADJUSTED);
                wire::put_u8(out, *width);
                wire::put_uvarint(out, pairs.len() as u64);
                for (c1, c2) in pairs {
                    put_elem(out, c1, *width as usize);
                    put_elem(out, c2, *width as usize);
                }
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match wire::get_u8(buf)? {
            TAG_SUB_SHARES => {
                let width = get_width(buf)?;
                let receiver =
                    wire::get_uvarint(buf)?
                        .try_into()
                        .map_err(|_| WireError::Invalid {
                            what: "receiver index",
                        })?;
                let count = get_count(buf, width as usize)?;
                let ephemeral = get_elem(buf, width as usize)?;
                let mut masked = Vec::with_capacity(count);
                for _ in 0..count {
                    masked.push(get_elem(buf, width as usize)?);
                }
                Ok(TransferWire::SubShares {
                    width,
                    receiver,
                    ephemeral,
                    masked,
                })
            }
            TAG_AGGREGATED => {
                let width = get_width(buf)?;
                let members = get_count(buf, 1)?;
                let mut per_member = Vec::with_capacity(members);
                for _ in 0..members {
                    let count = get_count(buf, 2 * width as usize)?;
                    let mut per_bit = Vec::with_capacity(count);
                    for _ in 0..count {
                        let c1 = get_elem(buf, width as usize)?;
                        let c2 = get_elem(buf, width as usize)?;
                        per_bit.push((c1, c2));
                    }
                    per_member.push(per_bit);
                }
                Ok(TransferWire::Aggregated { width, per_member })
            }
            TAG_ADJUSTED => {
                let width = get_width(buf)?;
                let count = get_count(buf, 2 * width as usize)?;
                let mut pairs = Vec::with_capacity(count);
                for _ in 0..count {
                    let c1 = get_elem(buf, width as usize)?;
                    let c2 = get_elem(buf, width as usize)?;
                    pairs.push((c1, c2));
                }
                Ok(TransferWire::Adjusted { width, pairs })
            }
            tag => Err(WireError::BadTag {
                tag,
                what: "TransferWire",
            }),
        }
    }
}

impl TransferWire {
    /// Builds the sub-share bundle for a ciphertext batch that shares one
    /// ephemeral component (as produced by
    /// [`dstress_crypto::elgamal::encrypt_bits_multi_recipient`]).
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty or the ciphertexts do not share their
    /// ephemeral (an internal protocol bug, never data-dependent).
    pub fn subshares(group: &Group, receiver: usize, cts: &[Ciphertext]) -> Self {
        let first = cts
            .first()
            .expect("a sub-share bundle has at least one bit");
        assert!(
            cts.iter().all(|ct| ct.c1 == first.c1),
            "sub-share bundle must share its ephemeral component"
        );
        TransferWire::SubShares {
            width: group.element_bytes() as u8,
            receiver: receiver as u32,
            ephemeral: group.elem_to_int(first.c1),
            masked: cts.iter().map(|ct| group.elem_to_int(ct.c2)).collect(),
        }
    }

    /// Builds the aggregated-hop message.
    pub fn aggregated(group: &Group, per_member: &[Vec<Ciphertext>]) -> Self {
        TransferWire::Aggregated {
            width: group.element_bytes() as u8,
            per_member: per_member
                .iter()
                .map(|per_bit| {
                    per_bit
                        .iter()
                        .map(|ct| (group.elem_to_int(ct.c1), group.elem_to_int(ct.c2)))
                        .collect()
                })
                .collect(),
        }
    }

    /// Builds the adjusted-hop message (also used to measure the
    /// whole-share strawman hops, which move plain ciphertext bundles).
    pub fn adjusted(group: &Group, cts: &[Ciphertext]) -> Self {
        TransferWire::Adjusted {
            width: group.element_bytes() as u8,
            pairs: cts
                .iter()
                .map(|ct| (group.elem_to_int(ct.c1), group.elem_to_int(ct.c2)))
                .collect(),
        }
    }

    /// Converts a sub-share bundle back to ciphertexts, re-validating
    /// every element against the group.
    ///
    /// # Errors
    ///
    /// Returns [`TransferError::WireFormat`] on a width mismatch and
    /// [`TransferError::Crypto`] for out-of-group elements.
    pub fn into_subshares(self, group: &Group) -> Result<(usize, Vec<Ciphertext>), TransferError> {
        let TransferWire::SubShares {
            width,
            receiver,
            ephemeral,
            masked,
        } = self
        else {
            return Err(TransferError::WireFormat(WireError::Invalid {
                what: "expected a SubShares hop",
            }));
        };
        check_width(group, width)?;
        let c1 = group.elem_from_int(ephemeral)?;
        let cts = masked
            .into_iter()
            .map(|m| {
                Ok(Ciphertext {
                    c1,
                    c2: group.elem_from_int(m)?,
                })
            })
            .collect::<Result<_, TransferError>>()?;
        Ok((receiver as usize, cts))
    }

    /// Converts an aggregated hop back to per-member ciphertexts.
    ///
    /// # Errors
    ///
    /// As [`TransferWire::into_subshares`].
    pub fn into_aggregated(self, group: &Group) -> Result<Vec<Vec<Ciphertext>>, TransferError> {
        let TransferWire::Aggregated { width, per_member } = self else {
            return Err(TransferError::WireFormat(WireError::Invalid {
                what: "expected an Aggregated hop",
            }));
        };
        check_width(group, width)?;
        per_member
            .into_iter()
            .map(|per_bit| per_bit.into_iter().map(|p| pair_to_ct(group, p)).collect())
            .collect()
    }

    /// Converts an adjusted hop back to ciphertexts.
    ///
    /// # Errors
    ///
    /// As [`TransferWire::into_subshares`].
    pub fn into_adjusted(self, group: &Group) -> Result<Vec<Ciphertext>, TransferError> {
        let TransferWire::Adjusted { width, pairs } = self else {
            return Err(TransferError::WireFormat(WireError::Invalid {
                what: "expected an Adjusted hop",
            }));
        };
        check_width(group, width)?;
        pairs.into_iter().map(|p| pair_to_ct(group, p)).collect()
    }
}

fn check_width(group: &Group, width: u8) -> Result<(), TransferError> {
    if width as usize == group.element_bytes() {
        Ok(())
    } else {
        Err(TransferError::WireFormat(WireError::Invalid {
            what: "element width",
        }))
    }
}

fn pair_to_ct(group: &Group, (c1, c2): (U256, U256)) -> Result<Ciphertext, TransferError> {
    Ok(Ciphertext {
        c1: group.elem_from_int(c1)?,
        c2: group.elem_from_int(c2)?,
    })
}

// ---------------------------------------------------------------------------
// Closed-form encoded lengths
// ---------------------------------------------------------------------------
//
// The engine's cost-accounted transfer mode reproduces the measured wire
// bytes of the real-crypto mode without encrypting anything; these
// formulas must therefore match the encoders byte for byte (a test in
// `dstress-core` pins the two modes against each other).

/// Encoded length of a [`TransferWire::SubShares`] bundle.
pub fn subshares_wire_len(receiver: usize, bits: usize, elem_bytes: usize) -> u64 {
    (2 + wire::uvarint_len(receiver as u64)
        + wire::uvarint_len(bits as u64)
        + (bits + 1) * elem_bytes) as u64
}

/// Encoded length of a [`TransferWire::Aggregated`] message.
pub fn aggregated_wire_len(members: usize, bits: usize, elem_bytes: usize) -> u64 {
    (2 + wire::uvarint_len(members as u64)
        + members * (wire::uvarint_len(bits as u64) + bits * 2 * elem_bytes)) as u64
}

/// Encoded length of a [`TransferWire::Adjusted`] message.
pub fn adjusted_wire_len(bits: usize, elem_bytes: usize) -> u64 {
    (2 + wire::uvarint_len(bits as u64) + bits * 2 * elem_bytes) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstress_crypto::elgamal::{encrypt_bits_multi_recipient, KeyPair};
    use dstress_math::rng::Xoshiro256;
    use dstress_net::wire::hex;
    use proptest::prelude::*;

    fn sample_bundle(group: &Group, bits: usize, seed: u64) -> Vec<Ciphertext> {
        let mut rng = Xoshiro256::new(seed);
        let keys: Vec<KeyPair> = (0..bits)
            .map(|_| KeyPair::generate(group, &mut rng))
            .collect();
        let pks: Vec<_> = keys.iter().map(|k| k.public).collect();
        let values: Vec<bool> = (0..bits).map(|i| i % 3 == 0).collect();
        encrypt_bits_multi_recipient(group, &pks, &values, &mut rng).unwrap()
    }

    #[test]
    fn subshares_round_trip_and_share_the_ephemeral() {
        let group = Group::sim64();
        let cts = sample_bundle(&group, 8, 7);
        let msg = TransferWire::subshares(&group, 3, &cts);
        let encoded = msg.encode();
        // (L + 1) elements: the shared ephemeral is encoded exactly once.
        assert_eq!(encoded.len() as u64, subshares_wire_len(3, 8, 8));
        let (receiver, decoded) = TransferWire::decode_exact(&encoded)
            .unwrap()
            .into_subshares(&group)
            .unwrap();
        assert_eq!(receiver, 3);
        assert_eq!(decoded, cts);
    }

    #[test]
    fn aggregated_and_adjusted_round_trip() {
        let group = Group::sim64();
        let per_member: Vec<Vec<Ciphertext>> =
            (0..3).map(|m| sample_bundle(&group, 4, 100 + m)).collect();
        let msg = TransferWire::aggregated(&group, &per_member);
        let encoded = msg.encode();
        assert_eq!(encoded.len() as u64, aggregated_wire_len(3, 4, 8));
        let decoded = TransferWire::decode_exact(&encoded)
            .unwrap()
            .into_aggregated(&group)
            .unwrap();
        assert_eq!(decoded, per_member);

        let cts = sample_bundle(&group, 5, 42);
        let msg = TransferWire::adjusted(&group, &cts);
        let encoded = msg.encode();
        assert_eq!(encoded.len() as u64, adjusted_wire_len(5, 8));
        let decoded = TransferWire::decode_exact(&encoded)
            .unwrap()
            .into_adjusted(&group)
            .unwrap();
        assert_eq!(decoded, cts);
    }

    #[test]
    fn element_width_follows_the_group() {
        let small = Group::sim64();
        let large = Group::prod256();
        let cts_small = sample_bundle(&small, 4, 1);
        let cts_large = sample_bundle(&large, 4, 1);
        let len_small = TransferWire::adjusted(&small, &cts_small).encode().len();
        let len_large = TransferWire::adjusted(&large, &cts_large).encode().len();
        assert_eq!(len_small as u64, adjusted_wire_len(4, 8));
        assert_eq!(len_large as u64, adjusted_wire_len(4, 32));
        // A message encoded for one group is rejected by the other.
        let cross = TransferWire::adjusted(&small, &cts_small);
        assert!(matches!(
            cross.into_adjusted(&large),
            Err(TransferError::WireFormat(_))
        ));
    }

    #[test]
    fn truncation_trailing_and_bad_tags_error_not_panic() {
        let group = Group::sim64();
        let cts = sample_bundle(&group, 6, 9);
        for msg in [
            TransferWire::subshares(&group, 1, &cts),
            TransferWire::aggregated(&group, &[cts.clone(), cts.clone()]),
            TransferWire::adjusted(&group, &cts),
        ] {
            let encoded = msg.encode();
            for cut in 0..encoded.len() {
                assert!(
                    TransferWire::decode_exact(&encoded[..cut]).is_err(),
                    "{msg:?} truncated to {cut}"
                );
            }
            let mut trailing = encoded;
            trailing.push(0);
            assert_eq!(
                TransferWire::decode_exact(&trailing),
                Err(WireError::Trailing { remaining: 1 })
            );
        }
        assert!(matches!(
            TransferWire::decode_exact(&[0x09]),
            Err(WireError::BadTag { .. })
        ));
        // A lying length prefix near usize::MAX must error, not overflow
        // the needed-bytes computation or allocate.
        let mut lying = vec![TAG_ADJUSTED, 8];
        dstress_net::wire::put_uvarint(&mut lying, 1 << 62);
        assert!(matches!(
            TransferWire::decode_exact(&lying),
            Err(WireError::Truncated { .. })
        ));
        // Width 0 and width 33 are both invalid.
        for width in [0u8, 33] {
            assert!(matches!(
                TransferWire::decode_exact(&[TAG_ADJUSTED, width, 0]),
                Err(WireError::Invalid { .. })
            ));
        }
    }

    /// Golden byte-layout fixture: one canonical encoding per hop type
    /// over the deterministic 64-bit simulation group.
    #[test]
    fn golden_encodings() {
        let group = Group::sim64();
        // Hand-built elements with known integer values.
        let e = |v: u64| group.elem_from_int(U256::from_u64(v)).unwrap();
        let sub = TransferWire::SubShares {
            width: 8,
            receiver: 2,
            ephemeral: U256::from_u64(0x0102),
            masked: vec![U256::from_u64(0xAA), U256::from_u64(0xBB)],
        };
        assert_eq!(
            hex(&sub.encode()),
            // tag 00 · width 08 · receiver 02 · L 02 · ephemeral · 2 masked
            "000802020201000000000000aa00000000000000bb00000000000000"
        );
        let adj = TransferWire::adjusted(&group, &[Ciphertext { c1: e(3), c2: e(4) }]);
        assert_eq!(
            hex(&adj.encode()),
            // tag 02 · width 08 · L 01 · c1 = 3 · c2 = 4
            "02080103000000000000000400000000000000"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn prop_hops_round_trip(bits in 1usize..12, members in 1usize..5, seed in any::<u64>()) {
            let group = Group::sim64();
            let per_member: Vec<Vec<Ciphertext>> = (0..members)
                .map(|m| sample_bundle(&group, bits, seed ^ m as u64))
                .collect();
            let agg = TransferWire::aggregated(&group, &per_member);
            prop_assert_eq!(
                TransferWire::decode_exact(&agg.encode()).unwrap().into_aggregated(&group).unwrap(),
                per_member.clone()
            );
            let sub = TransferWire::subshares(&group, members - 1, &per_member[0]);
            let (receiver, cts) = TransferWire::decode_exact(&sub.encode())
                .unwrap()
                .into_subshares(&group)
                .unwrap();
            prop_assert_eq!(receiver, members - 1);
            prop_assert_eq!(cts, per_member[0].clone());
        }
    }
}
