//! The DStress block setup and message transfer protocol.
//!
//! Two pieces of the system live here:
//!
//! * [`setup`] — the one-time trusted-party setup of §3.4: every node
//!   registers its public keys and `D` secret *neighbor keys*; the trusted
//!   party assigns each node a block of `k + 1` members (plus a special
//!   aggregation block) and issues `D` *block certificates* per block,
//!   each containing the members' public keys re-randomised with one of
//!   the owner's neighbor keys.  The TP never learns the graph topology
//!   and can go offline afterwards.
//! * [`protocol`] — the message transfer protocol of §3.5 that moves the
//!   XOR shares of a message from the sending block `B_i` to the receiving
//!   block `B_j` across the edge `(i, j)` without revealing the message to
//!   any `k`-collusion or the edge to anyone else.  All four protocol
//!   versions from the paper are implemented (strawmen #1–#3 and the
//!   final protocol with even geometric noise), so the ablation benches
//!   can compare their costs and tests can demonstrate exactly which
//!   attack each revision closes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod protocol;
pub mod setup;

pub use error::TransferError;
pub use protocol::{transfer_message, ProtocolVariant, TransferConfig, TransferOutcome};
pub use setup::{Block, BlockCertificate, NodeSecrets, SystemSetup, TrustedParty};
