//! The DStress block setup and message transfer protocol.
//!
//! Two pieces of the system live here:
//!
//! * [`setup`] — the one-time trusted-party setup of §3.4: every node
//!   registers its public keys and `D` secret *neighbor keys*; the trusted
//!   party assigns each node a block of `k + 1` members (plus a special
//!   aggregation block) and issues `D` *block certificates* per block,
//!   each containing the members' public keys re-randomised with one of
//!   the owner's neighbor keys.  The TP never learns the graph topology
//!   and can go offline afterwards.
//! * [`protocol`] — the message transfer protocol of §3.5 that moves the
//!   XOR shares of a message from the sending block `B_i` to the receiving
//!   block `B_j` across the edge `(i, j)` without revealing the message to
//!   any `k`-collusion or the edge to anyone else.  All four protocol
//!   versions from the paper are implemented (strawmen #1–#3 and the
//!   final protocol with even geometric noise), so the ablation benches
//!   can compare their costs and tests can demonstrate exactly which
//!   attack each revision closes.
//!
//! ## Example
//!
//! ```
//! use dstress_crypto::Group;
//! use dstress_math::rng::Xoshiro256;
//! use dstress_transfer::setup::generate_system;
//! use dstress_transfer::TransferConfig;
//!
//! // Trusted-party setup for 6 nodes with collusion bound k = 2:
//! // every block has k + 1 = 3 members and a verifiable certificate.
//! let group = Group::sim64();
//! let mut rng = Xoshiro256::new(42);
//! let (secrets, setup) = generate_system(&group, 6, 2, 2, 8, &mut rng).unwrap();
//! assert_eq!(secrets.len(), 6);
//! assert!(setup.blocks.iter().all(|b| b.size() == 3));
//!
//! // The deployed protocol variant with noise parameter α = 0.6.
//! let config = TransferConfig::final_protocol(8, 0.6);
//! assert_eq!(config.message_bits, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod protocol;
pub mod setup;
pub mod wire;

pub use error::TransferError;
pub use protocol::{
    transfer_message, transfer_message_with_kernels, KernelMode, ProtocolVariant, TransferConfig,
    TransferOutcome,
};
pub use setup::{Block, BlockCertificate, NodeSecrets, SystemSetup, TrustedParty};
pub use wire::TransferWire;
