//! The message transfer protocol (§3.5).
//!
//! When vertex `i` sends a message `m` to its neighbour `j`, the members
//! of block `B_i` each hold one XOR share of `m` (left over from the
//! computation-step MPC) and the members of `B_j` must end up holding
//! fresh XOR shares of the same `m`, such that
//!
//! * no coalition of up to `k` nodes learns `m`, and
//! * nobody outside `{i, j}` learns that the edge `(i, j)` exists.
//!
//! The paper develops the protocol through three strawmen, each fixing a
//! weakness of the previous one; all four are implemented here so the
//! benches can quantify what each revision costs and the tests can
//! document which attack each closes:
//!
//! | Variant | Mechanism | Weakness addressed by the next variant |
//! |---|---|---|
//! | [`ProtocolVariant::Strawman1`] | each `B_i` member encrypts its whole share to one `B_j` member | a node in both blocks (or one colluder in each) learns two shares |
//! | [`ProtocolVariant::Strawman2`] | shares are split into per-recipient sub-shares | colluders can recognise forwarded sub-shares and infer the edge |
//! | [`ProtocolVariant::Strawman3`] | sub-shares are bit-decomposed, encrypted bit-wise and homomorphically summed by `i` | the plaintext bit-sums still leak a little information about the edge |
//! | [`ProtocolVariant::Final`] | `i` adds even two-sided geometric noise to every bit-sum | — (remaining leakage is ε-DP, Appendix B) |
//!
//! Routing is always `B_i → i → j → B_j`: only the two endpoints of the
//! edge ever see traffic related to it, which is what preserves edge
//! privacy (§3.3).

use crate::error::TransferError;
use crate::setup::{Block, BlockCertificate, NodeSecrets};
use crate::wire::TransferWire;
use dstress_crypto::dlog::DlogTable;
use dstress_crypto::elgamal::{
    adjust_ciphertext, decrypt, encrypt_bits_shared_c1, encrypt_with_ephemeral, homomorphic_add,
    Ciphertext, PublicKey,
};
use dstress_crypto::group::Group;
use dstress_crypto::kernels::{FixedBasePow, TransferKernels};
use dstress_crypto::sharing::{split_xor, BitMessage};
use dstress_dp::geometric::TwoSidedGeometric;
use dstress_math::rng::DetRng;
use dstress_math::U256;
use dstress_net::cost::OperationCounts;
use dstress_net::mailbox::Mailbox;
use dstress_net::traffic::{NodeId, TrafficAccountant};
use dstress_net::wire::Wire;

/// Routes a ciphertext bundle through the wire format: encode, record
/// the *measured* bytes of the hop, decode, and hand the decoded copy
/// back — so every hop's values genuinely pass through the codec and a
/// broken encoding fails the transfer instead of going unnoticed.
fn wire_hop_cts(
    group: &Group,
    traffic: &mut TrafficAccountant,
    counts: &mut OperationCounts,
    from: NodeId,
    to: NodeId,
    cts: Vec<Ciphertext>,
) -> Result<Vec<Ciphertext>, TransferError> {
    let encoded = TransferWire::adjusted(group, &cts).encode();
    traffic.record_wire(from, to, encoded.len() as u64);
    counts.wire_bytes += encoded.len() as u64;
    TransferWire::decode_exact(&encoded)?.into_adjusted(group)
}

/// Window width of the per-receiver decryption tables built on the shared
/// (adjusted) ephemeral component: small, because each table serves only
/// `L` fused decryptions before being discarded.
const DECRYPT_WINDOW_BITS: u32 = 4;

/// Which exponentiation kernels the bitwise transfer protocols use.
///
/// All three modes are bit-identical in every produced value and every
/// byte on the wire — they draw from the RNG in the same order and every
/// kernel is pinned equal to its naive counterpart — so the mode only
/// changes *how fast* the group arithmetic runs and how the work is
/// split between `exponentiations` and `fixed_base_exponentiations`.
#[derive(Clone, Copy, Debug)]
pub enum KernelMode<'a> {
    /// The pre-kernel path: square-and-multiply for every exponentiation,
    /// Fermat inversions for negative noise, per-bit ciphertext adjustment
    /// and inversion-based decryption. The honest baseline for the A/B.
    Naive,
    /// The kernel defaults: windowed generator table, shared-`c1`
    /// encryption and aggregation, adjust-once-per-receiver, and fused
    /// decryption through a per-receiver fixed-base table.
    Auto,
    /// Everything in `Auto`, plus precomputed fixed-base tables for the
    /// certificate's bit-keys (built once per certificate and reused
    /// across every transfer to that block).
    Precomputed(&'a TransferKernels),
}

impl KernelMode<'_> {
    fn is_naive(&self) -> bool {
        matches!(self, KernelMode::Naive)
    }
}

/// Which revision of the transfer protocol to run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProtocolVariant {
    /// Whole shares encrypted one-to-one (§3.5 strawman #1).
    Strawman1,
    /// Per-recipient sub-shares (§3.5 strawman #2).
    Strawman2,
    /// Bit-decomposed sub-shares with homomorphic aggregation at `i`
    /// (§3.5 strawman #3).
    Strawman3,
    /// Strawman #3 plus even geometric noise `2·Geo(α^{2/(k+1)})` added by
    /// `i` to every bit-sum (the deployed protocol).
    Final {
        /// The privacy parameter α ∈ (0, 1) of Appendix B.
        alpha: f64,
    },
}

/// Configuration of a transfer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransferConfig {
    /// Protocol revision to run.
    pub variant: ProtocolVariant,
    /// Message width `L` in bits (the prototype used 12).
    pub message_bits: u32,
}

impl TransferConfig {
    /// The deployed protocol with the given noise parameter.
    pub fn final_protocol(message_bits: u32, alpha: f64) -> Self {
        TransferConfig {
            variant: ProtocolVariant::Final { alpha },
            message_bits,
        }
    }
}

/// The result of one message transfer.
#[derive(Clone, Debug)]
pub struct TransferOutcome {
    /// The new shares held by the members of the receiving block, aligned
    /// with `receiver_block.members`.
    pub receiver_shares: Vec<BitMessage>,
    /// Operation counts for the whole transfer (all roles combined).
    pub counts: OperationCounts,
}

/// Homomorphically adds a (possibly negative) plaintext constant into an
/// exponential-ElGamal ciphertext through the generator table: negative
/// values are encoded as `g^(q − |v|)` — the subgroup inverse of `g^|v|` —
/// so no Fermat inversion is needed.
fn homomorphic_add_signed(group: &Group, ct: &Ciphertext, value: i64) -> Ciphertext {
    let magnitude = U256::from_u64(value.unsigned_abs()).rem(&group.q());
    let exponent = if value >= 0 {
        magnitude
    } else {
        group.q().wrapping_sub(&magnitude)
    };
    Ciphertext {
        c1: ct.c1,
        c2: group.mul(ct.c2, group.generator_pow(&exponent)),
    }
}

/// The pre-kernel noise fold: square-and-multiply encoding plus a Fermat
/// inversion for negative values. Bit-identical to
/// [`homomorphic_add_signed`]; kept as the honest baseline for the
/// kernel A/B.
fn homomorphic_add_signed_naive(
    group: &Group,
    ct: &Ciphertext,
    value: i64,
) -> Result<Ciphertext, TransferError> {
    let magnitude = group.pow(group.generator(), &U256::from_u64(value.unsigned_abs()));
    let adjustment = if value >= 0 {
        magnitude
    } else {
        group.inv(magnitude)?
    };
    Ok(Ciphertext {
        c1: ct.c1,
        c2: group.mul(ct.c2, adjustment),
    })
}

/// The pre-kernel bit encryption: square-and-multiply for every component,
/// recomputing `c1` for each bit exactly as the original multi-recipient
/// path did before the generator table existed.
fn encrypt_bits_naive(
    group: &Group,
    pks: &[PublicKey],
    bit_values: &[bool],
    ephemeral: &U256,
) -> Vec<Ciphertext> {
    let generator = group.generator();
    bit_values
        .iter()
        .zip(pks)
        .map(|(&bit, pk)| {
            let c1 = group.pow(generator, ephemeral);
            let shared = group.pow(pk.element(), ephemeral);
            let msg = group.pow(generator, &U256::from_u64(bit as u64));
            Ciphertext {
                c1,
                c2: group.mul(msg, shared),
            }
        })
        .collect()
}

/// Transfers the shares of one message from block `B_i` to block `B_j`
/// along the edge `(i, j)`.
///
/// * `sender_shares[x]` is the share held by `sender_block.members[x]`.
/// * `node_secrets` is indexed by node id and must contain the bit keys of
///   every member of the receiving block (the simulation plays all roles).
/// * `certificate` is `B_j`'s block certificate as held by the members of
///   `B_i` (i.e. re-randomised with `j`'s neighbor key for `i`), and
///   `neighbor_key` is that key (known to `j`, used in the adjust step).
/// * `dlog` must be a signed lookup table wide enough for the bit-sums
///   plus noise; an undersized table surfaces as
///   [`TransferError::DecryptionFailure`], the paper's `P_fail` event.
///
/// # Errors
///
/// Returns shape-mismatch errors for inconsistent blocks/certificates and
/// [`TransferError::DecryptionFailure`] when a noised sum falls outside
/// the lookup window.
#[allow(clippy::too_many_arguments)]
pub fn transfer_message(
    group: &Group,
    config: &TransferConfig,
    sender_vertex: NodeId,
    receiver_vertex: NodeId,
    sender_block: &Block,
    receiver_block: &Block,
    sender_shares: &[BitMessage],
    node_secrets: &[NodeSecrets],
    certificate: &BlockCertificate,
    neighbor_key: &U256,
    dlog: &DlogTable,
    traffic: &mut TrafficAccountant,
    rng: &mut dyn DetRng,
) -> Result<TransferOutcome, TransferError> {
    transfer_message_with_kernels(
        group,
        config,
        KernelMode::Auto,
        sender_vertex,
        receiver_vertex,
        sender_block,
        receiver_block,
        sender_shares,
        node_secrets,
        certificate,
        neighbor_key,
        dlog,
        traffic,
        rng,
    )
}

/// [`transfer_message`] with explicit control over the exponentiation
/// kernels of the bitwise protocols (the whole-share strawmen are
/// unaffected — they always run the default path).
///
/// Every [`KernelMode`] produces bit-identical shares, traffic and wire
/// bytes; only the speed and the `exponentiations` /
/// `fixed_base_exponentiations` split in the returned counts change.
///
/// # Errors
///
/// In addition to [`transfer_message`]'s errors, returns
/// [`TransferError::CertificateShapeMismatch`] when
/// [`KernelMode::Precomputed`] tables do not cover the certificate.
#[allow(clippy::too_many_arguments)]
pub fn transfer_message_with_kernels(
    group: &Group,
    config: &TransferConfig,
    mode: KernelMode<'_>,
    sender_vertex: NodeId,
    receiver_vertex: NodeId,
    sender_block: &Block,
    receiver_block: &Block,
    sender_shares: &[BitMessage],
    node_secrets: &[NodeSecrets],
    certificate: &BlockCertificate,
    neighbor_key: &U256,
    dlog: &DlogTable,
    traffic: &mut TrafficAccountant,
    rng: &mut dyn DetRng,
) -> Result<TransferOutcome, TransferError> {
    let block_size = sender_block.size();
    let bits = config.message_bits as usize;
    if sender_shares.len() != block_size {
        return Err(TransferError::BlockSizeMismatch {
            expected: block_size,
            actual: sender_shares.len(),
        });
    }
    if receiver_block.size() != block_size {
        return Err(TransferError::BlockSizeMismatch {
            expected: block_size,
            actual: receiver_block.size(),
        });
    }
    if certificate.keys.len() != block_size || certificate.keys.iter().any(|k| k.len() != bits) {
        return Err(TransferError::CertificateShapeMismatch);
    }
    if let KernelMode::Precomputed(kernels) = mode {
        if !kernels.matches_shape(block_size, bits) {
            return Err(TransferError::CertificateShapeMismatch);
        }
    }

    match config.variant {
        ProtocolVariant::Strawman1 => strawman1(
            group,
            config,
            sender_vertex,
            receiver_vertex,
            sender_block,
            receiver_block,
            sender_shares,
            node_secrets,
            certificate,
            neighbor_key,
            dlog,
            traffic,
            rng,
        ),
        ProtocolVariant::Strawman2 => strawman2(
            group,
            config,
            sender_vertex,
            receiver_vertex,
            sender_block,
            receiver_block,
            sender_shares,
            node_secrets,
            certificate,
            neighbor_key,
            dlog,
            traffic,
            rng,
        ),
        ProtocolVariant::Strawman3 => bitwise_protocol(
            group,
            config,
            None,
            mode,
            sender_vertex,
            receiver_vertex,
            sender_block,
            receiver_block,
            sender_shares,
            node_secrets,
            certificate,
            neighbor_key,
            dlog,
            traffic,
            rng,
        ),
        ProtocolVariant::Final { alpha } => bitwise_protocol(
            group,
            config,
            Some(alpha),
            mode,
            sender_vertex,
            receiver_vertex,
            sender_block,
            receiver_block,
            sender_shares,
            node_secrets,
            certificate,
            neighbor_key,
            dlog,
            traffic,
            rng,
        ),
    }
}

/// Strawman #1: whole shares, one recipient each.
#[allow(clippy::too_many_arguments)]
fn strawman1(
    group: &Group,
    config: &TransferConfig,
    sender_vertex: NodeId,
    receiver_vertex: NodeId,
    sender_block: &Block,
    receiver_block: &Block,
    sender_shares: &[BitMessage],
    node_secrets: &[NodeSecrets],
    certificate: &BlockCertificate,
    neighbor_key: &U256,
    dlog: &DlogTable,
    traffic: &mut TrafficAccountant,
    rng: &mut dyn DetRng,
) -> Result<TransferOutcome, TransferError> {
    let block_size = sender_block.size();
    let elem_bytes = group.element_bytes() as u64;
    let ct_bytes = 2 * elem_bytes;
    let mut counts = OperationCounts::default();

    // Each sender member x encrypts its whole share under the first bit
    // key of the x-th receiver member.
    let mut forwarded = Vec::with_capacity(block_size);
    for (x_idx, &x_node) in sender_block.members.iter().enumerate() {
        let pk = certificate.keys[x_idx][0];
        let ephemeral = group.random_nonzero_exponent(rng);
        let ct = encrypt_with_ephemeral(
            group,
            &pk,
            group.encode_exponent(sender_shares[x_idx].value()),
            &ephemeral,
        );
        // The message encoding and `c1 = g^y` go through the generator
        // table; only the key term `h^y` is a variable-base pow.
        counts.exponentiations += 1;
        counts.fixed_base_exponentiations += 2;
        traffic.record(x_node, sender_vertex, ct_bytes);
        counts.bytes_sent += ct_bytes;
        let ct = wire_hop_cts(group, traffic, &mut counts, x_node, sender_vertex, vec![ct])?
            .pop()
            .expect("one ciphertext in, one out");
        forwarded.push(ct);
    }

    // i forwards everything to j.
    traffic.record(sender_vertex, receiver_vertex, block_size as u64 * ct_bytes);
    counts.bytes_sent += block_size as u64 * ct_bytes;
    let forwarded = wire_hop_cts(
        group,
        traffic,
        &mut counts,
        sender_vertex,
        receiver_vertex,
        forwarded,
    )?;

    // j adjusts and distributes one ciphertext to each member of B_j.
    let mut receiver_shares = Vec::with_capacity(block_size);
    for (y_idx, &y_node) in receiver_block.members.iter().enumerate() {
        let adjusted = adjust_ciphertext(group, &forwarded[y_idx], neighbor_key);
        counts.exponentiations += 1;
        traffic.record(receiver_vertex, y_node, ct_bytes);
        counts.bytes_sent += ct_bytes;
        let adjusted = wire_hop_cts(
            group,
            traffic,
            &mut counts,
            receiver_vertex,
            y_node,
            vec![adjusted],
        )?
        .pop()
        .expect("one ciphertext in, one out");
        let secret = &node_secrets[y_node.0].bit_keys[0].secret;
        let elem = decrypt(group, secret, &adjusted)?;
        counts.exponentiations += 2;
        let value = dlog
            .lookup(group, elem)
            .map_err(|_| TransferError::DecryptionFailure)?;
        receiver_shares
            .push(BitMessage::new(value, config.message_bits).map_err(TransferError::Crypto)?);
    }
    counts.rounds += 3;

    Ok(TransferOutcome {
        receiver_shares,
        counts,
    })
}

/// Strawman #2: per-recipient sub-shares, still encrypted as whole values.
#[allow(clippy::too_many_arguments)]
fn strawman2(
    group: &Group,
    config: &TransferConfig,
    sender_vertex: NodeId,
    receiver_vertex: NodeId,
    sender_block: &Block,
    receiver_block: &Block,
    sender_shares: &[BitMessage],
    node_secrets: &[NodeSecrets],
    certificate: &BlockCertificate,
    neighbor_key: &U256,
    dlog: &DlogTable,
    traffic: &mut TrafficAccountant,
    rng: &mut dyn DetRng,
) -> Result<TransferOutcome, TransferError> {
    let block_size = sender_block.size();
    let elem_bytes = group.element_bytes() as u64;
    let ct_bytes = 2 * elem_bytes;
    let mut counts = OperationCounts::default();

    // subshare_cts[y] collects the ciphertexts destined for receiver y.
    let mut subshare_cts: Vec<Vec<Ciphertext>> = vec![Vec::with_capacity(block_size); block_size];
    for (x_idx, &x_node) in sender_block.members.iter().enumerate() {
        let subshares = split_xor(sender_shares[x_idx], block_size, rng);
        let mut row = Vec::with_capacity(block_size);
        for (y_idx, subshare) in subshares.iter().enumerate() {
            let pk = certificate.keys[y_idx][0];
            let ephemeral = group.random_nonzero_exponent(rng);
            let ct = encrypt_with_ephemeral(
                group,
                &pk,
                group.encode_exponent(subshare.value()),
                &ephemeral,
            );
            counts.exponentiations += 1;
            counts.fixed_base_exponentiations += 2;
            traffic.record(x_node, sender_vertex, ct_bytes);
            counts.bytes_sent += ct_bytes;
            row.push(ct);
        }
        // One wire hop per member: its k+1 encrypted sub-shares to i.
        let row = wire_hop_cts(group, traffic, &mut counts, x_node, sender_vertex, row)?;
        for (y_idx, ct) in row.into_iter().enumerate() {
            subshare_cts[y_idx].push(ct);
        }
    }

    // i forwards all (k+1)^2 ciphertexts to j.
    let forwarded_bytes = (block_size * block_size) as u64 * ct_bytes;
    traffic.record(sender_vertex, receiver_vertex, forwarded_bytes);
    counts.bytes_sent += forwarded_bytes;
    let flat: Vec<Ciphertext> = subshare_cts.iter().flatten().copied().collect();
    let flat = wire_hop_cts(
        group,
        traffic,
        &mut counts,
        sender_vertex,
        receiver_vertex,
        flat,
    )?;
    let mut flat = flat.into_iter();
    let subshare_cts: Vec<Vec<Ciphertext>> = (0..block_size)
        .map(|_| flat.by_ref().take(block_size).collect())
        .collect();

    // j adjusts everything and hands each receiver its k+1 sub-shares.
    let mut receiver_shares = Vec::with_capacity(block_size);
    for (y_idx, &y_node) in receiver_block.members.iter().enumerate() {
        traffic.record(receiver_vertex, y_node, block_size as u64 * ct_bytes);
        counts.bytes_sent += block_size as u64 * ct_bytes;
        let bundle = wire_hop_cts(
            group,
            traffic,
            &mut counts,
            receiver_vertex,
            y_node,
            subshare_cts[y_idx].clone(),
        )?;
        let mut share = BitMessage::zero(config.message_bits);
        for ct in &bundle {
            let adjusted = adjust_ciphertext(group, ct, neighbor_key);
            counts.exponentiations += 1;
            let secret = &node_secrets[y_node.0].bit_keys[0].secret;
            let elem = decrypt(group, secret, &adjusted)?;
            counts.exponentiations += 2;
            let value = dlog
                .lookup(group, elem)
                .map_err(|_| TransferError::DecryptionFailure)?;
            share = share
                .xor(&BitMessage::new(value, config.message_bits).map_err(TransferError::Crypto)?);
        }
        receiver_shares.push(share);
    }
    counts.rounds += 3;

    Ok(TransferOutcome {
        receiver_shares,
        counts,
    })
}

/// A message of the bitwise transfer protocol, routed between the
/// participants through the simulated network's [`Mailbox`] (the same
/// queue that backs `dstress_net`'s `SimTransport`).
enum TransferMsg {
    /// Sender member → vertex `i`: the encrypted, bit-decomposed
    /// sub-share destined for receiver member `receiver` (shared
    /// ephemeral, one ciphertext per bit).
    SubShares {
        /// Index of the receiver-block member this bundle is for.
        receiver: usize,
        /// One ciphertext per message bit.
        bits: Vec<Ciphertext>,
    },
    /// Vertex `i` → vertex `j`: the homomorphically aggregated (and, in
    /// the final protocol, noised) ciphertexts, per receiver member and
    /// bit.
    Aggregated(Vec<Vec<Ciphertext>>),
    /// Vertex `j` → receiver member: that member's adjusted ciphertexts,
    /// one per bit.
    Adjusted(Vec<Ciphertext>),
}

/// Local mailbox addresses of the transfer participants: sender-block
/// members first, then the two edge endpoints, then the receiver-block
/// members.  (Global [`NodeId`]s are only used for traffic accounting;
/// blocks may contain arbitrary node ids, so the in-flight messages use
/// dense local indices.)
struct TransferAddresses {
    block_size: usize,
}

impl TransferAddresses {
    fn sender_member(&self, x: usize) -> NodeId {
        NodeId(x)
    }
    fn vertex_i(&self) -> NodeId {
        NodeId(self.block_size)
    }
    fn vertex_j(&self) -> NodeId {
        NodeId(self.block_size + 1)
    }
    fn receiver_member(&self, y: usize) -> NodeId {
        NodeId(self.block_size + 2 + y)
    }
    fn nodes(&self) -> usize {
        2 * self.block_size + 2
    }
}

/// Strawmen #3 and the final protocol: bit decomposition, homomorphic
/// aggregation at `i`, optional geometric noise.
///
/// The ciphertexts genuinely flow `B_i → i → j → B_j` through a
/// [`Mailbox`]; every hop is a `send`/`recv` on the queue, with the
/// analytic wire-format sizes recorded against the real node ids.
#[allow(clippy::too_many_arguments)]
fn bitwise_protocol(
    group: &Group,
    config: &TransferConfig,
    noise_alpha: Option<f64>,
    mode: KernelMode<'_>,
    sender_vertex: NodeId,
    receiver_vertex: NodeId,
    sender_block: &Block,
    receiver_block: &Block,
    sender_shares: &[BitMessage],
    node_secrets: &[NodeSecrets],
    certificate: &BlockCertificate,
    neighbor_key: &U256,
    dlog: &DlogTable,
    traffic: &mut TrafficAccountant,
    rng: &mut dyn DetRng,
) -> Result<TransferOutcome, TransferError> {
    let block_size = sender_block.size();
    let bits = config.message_bits as usize;
    let elem_bytes = group.element_bytes() as u64;
    let mut counts = OperationCounts::default();
    let addresses = TransferAddresses { block_size };
    let mut network: Mailbox<TransferMsg> = Mailbox::new(addresses.nodes());

    // Step 1+2: every sender member splits its share into sub-shares (one
    // per receiver member), bit-decomposes each sub-share, encrypts the
    // bits with the Kurosawa single-ephemeral optimisation, and sends the
    // whole batch to its vertex `i`.
    for (x_idx, &x_node) in sender_block.members.iter().enumerate() {
        let subshares = split_xor(sender_shares[x_idx], block_size, rng);
        let mut batch = Vec::with_capacity(block_size);
        for (y_idx, subshare) in subshares.iter().enumerate() {
            let bit_values = subshare.to_bits();
            let ephemeral = group.random_nonzero_exponent(rng);
            let keys = &certificate.keys[y_idx];
            let cts = match mode {
                KernelMode::Naive => {
                    counts.exponentiations += bits as u64 + 1;
                    encrypt_bits_naive(group, keys, &bit_values, &ephemeral)
                }
                KernelMode::Auto => {
                    // `c1 = g^y` through the generator table, shared across
                    // the bits; the key terms stay variable-base.
                    counts.fixed_base_exponentiations += 1;
                    counts.exponentiations += bits as u64;
                    encrypt_bits_shared_c1(group, keys, &bit_values, &ephemeral)?
                }
                KernelMode::Precomputed(kernels) => {
                    // The key terms also run through the per-certificate
                    // fixed-base tables.
                    counts.fixed_base_exponentiations += bits as u64 + 1;
                    let c1 = group.generator_pow(&ephemeral);
                    bit_values
                        .iter()
                        .enumerate()
                        .map(|(l, &bit)| {
                            let shared = kernels.key_pow(y_idx, l, &ephemeral);
                            Ciphertext {
                                c1,
                                c2: group.mul(group.encode_exponent(bit as u64), shared),
                            }
                        })
                        .collect()
                }
            };
            // The message bits are folded in with multiplications.
            counts.group_multiplications += bits as u64;
            // Analytic wire size: the shared ephemeral component plus one
            // masked element per bit.
            let bytes = (bits as u64 + 1) * elem_bytes;
            traffic.record(x_node, sender_vertex, bytes);
            counts.bytes_sent += bytes;
            // The measured hop: the bundle crosses the wire as a
            // SubShares message (ephemeral encoded once), and the
            // decoded copy is what travels on.
            let encoded = TransferWire::subshares(group, y_idx, &cts).encode();
            traffic.record_wire(x_node, sender_vertex, encoded.len() as u64);
            counts.wire_bytes += encoded.len() as u64;
            let (receiver, decoded) =
                TransferWire::decode_exact(&encoded)?.into_subshares(group)?;
            batch.push((
                addresses.vertex_i(),
                TransferMsg::SubShares {
                    receiver,
                    bits: decoded,
                },
            ));
        }
        network.send_many(addresses.sender_member(x_idx), batch);
    }

    // Step 3: vertex i drains its inbox (per-sender FIFO keeps the
    // bundles in member order), homomorphically aggregates per receiver
    // member and bit position, and (final protocol only) folds in even
    // geometric noise.
    //
    // encrypted[y][x][l] = ciphertext of bit l of x's sub-share for y.
    let mut encrypted: Vec<Vec<Vec<Ciphertext>>> = vec![Vec::with_capacity(block_size); block_size];
    while let Some((_, message)) = network.recv(addresses.vertex_i()) {
        let TransferMsg::SubShares { receiver, bits } = message else {
            unreachable!("vertex i only receives sub-share bundles");
        };
        encrypted[receiver].push(bits);
    }
    let noise = noise_alpha.map(|alpha| {
        // Sensitivity of the bit-sum query is the block size k + 1; the
        // protocol therefore samples from Geo(alpha^{2/(k+1)}) and doubles.
        TwoSidedGeometric::new(alpha.powf(2.0 / block_size as f64))
    });
    let mut aggregated: Vec<Vec<Ciphertext>> = Vec::with_capacity(block_size);
    for per_receiver in &encrypted {
        let mut per_bit = Vec::with_capacity(bits);
        if mode.is_naive() {
            for l in 0..bits {
                let mut acc = per_receiver[0][l];
                for sender_cts in per_receiver.iter().skip(1) {
                    acc = homomorphic_add(group, &acc, &sender_cts[l]);
                    counts.group_multiplications += 2;
                }
                if let Some(dist) = &noise {
                    let noise_value = dist.sample_even(rng);
                    acc = homomorphic_add_signed_naive(group, &acc, noise_value)?;
                    counts.exponentiations += 1;
                    counts.group_multiplications += 1;
                }
                per_bit.push(acc);
            }
        } else {
            // Every sender's L ciphertexts for this receiver share one
            // ephemeral component, so the aggregated `c1` is identical at
            // every bit position: one product per receiver instead of L.
            let mut c1 = per_receiver[0][0].c1;
            for sender_cts in per_receiver.iter().skip(1) {
                c1 = group.mul(c1, sender_cts[0].c1);
                counts.group_multiplications += 1;
            }
            for l in 0..bits {
                let mut c2 = per_receiver[0][l].c2;
                for sender_cts in per_receiver.iter().skip(1) {
                    c2 = group.mul(c2, sender_cts[l].c2);
                    counts.group_multiplications += 1;
                }
                let mut acc = Ciphertext { c1, c2 };
                if let Some(dist) = &noise {
                    let noise_value = dist.sample_even(rng);
                    acc = homomorphic_add_signed(group, &acc, noise_value);
                    counts.fixed_base_exponentiations += 1;
                    counts.group_multiplications += 1;
                }
                per_bit.push(acc);
            }
        }
        aggregated.push(per_bit);
    }

    // i forwards the aggregated ciphertexts to j.  After aggregation the
    // ephemeral components differ per bit (they are products of the
    // senders' ephemerals), so each bit costs a full ciphertext.
    let forwarded_bytes = (block_size * bits) as u64 * 2 * elem_bytes;
    traffic.record(sender_vertex, receiver_vertex, forwarded_bytes);
    counts.bytes_sent += forwarded_bytes;
    let encoded = TransferWire::aggregated(group, &aggregated).encode();
    traffic.record_wire(sender_vertex, receiver_vertex, encoded.len() as u64);
    counts.wire_bytes += encoded.len() as u64;
    let aggregated = TransferWire::decode_exact(&encoded)?.into_aggregated(group)?;
    network.send(
        addresses.vertex_i(),
        addresses.vertex_j(),
        TransferMsg::Aggregated(aggregated),
    );

    // Step 4: j adjusts the ephemeral keys with its neighbor key for i
    // and forwards each receiver member its L ciphertexts.
    let Some((_, TransferMsg::Aggregated(aggregated))) = network.recv(addresses.vertex_j()) else {
        unreachable!("vertex j receives exactly one aggregate from i");
    };
    for (y_idx, (&y_node, per_bit)) in receiver_block.members.iter().zip(aggregated).enumerate() {
        let member_bytes = bits as u64 * 2 * elem_bytes;
        traffic.record(receiver_vertex, y_node, member_bytes);
        counts.bytes_sent += member_bytes;
        let adjusted: Vec<Ciphertext> = if mode.is_naive() {
            per_bit
                .iter()
                .map(|ct| {
                    counts.exponentiations += 1;
                    adjust_ciphertext(group, ct, neighbor_key)
                })
                .collect()
        } else {
            // The aggregated ciphertexts share their ephemeral component,
            // so the expensive `c1^r` happens once per receiver.
            counts.exponentiations += 1;
            let shared_c1 = group.pow(per_bit[0].c1, neighbor_key);
            per_bit
                .iter()
                .map(|ct| Ciphertext {
                    c1: shared_c1,
                    c2: ct.c2,
                })
                .collect()
        };
        let adjusted = wire_hop_cts(
            group,
            traffic,
            &mut counts,
            receiver_vertex,
            y_node,
            adjusted,
        )?;
        network.send(
            addresses.vertex_j(),
            addresses.receiver_member(y_idx),
            TransferMsg::Adjusted(adjusted),
        );
    }

    // Step 5: every receiver member decrypts its bits and assembles its
    // fresh share.
    let mut receiver_shares = Vec::with_capacity(block_size);
    for (y_idx, &y_node) in receiver_block.members.iter().enumerate() {
        let Some((_, TransferMsg::Adjusted(cts))) = network.recv(addresses.receiver_member(y_idx))
        else {
            unreachable!("every receiver member gets exactly one bundle from j");
        };
        let mut bit_shares = Vec::with_capacity(bits);
        // Kernel path: all L adjusted ciphertexts share one ephemeral
        // component, so a small per-receiver fixed-base table serves every
        // fused decryption `c2 · c1^(q − x_l)`.
        let decrypt_table = (!mode.is_naive() && !cts.is_empty())
            .then(|| FixedBasePow::new(group, cts[0].c1, DECRYPT_WINDOW_BITS));
        for (l, ct) in cts.iter().enumerate() {
            let secret = &node_secrets[y_node.0].bit_keys[l].secret;
            let elem = match &decrypt_table {
                Some(table) => {
                    counts.fixed_base_exponentiations += 1;
                    let neg = group.q().wrapping_sub(&secret.exponent().rem(&group.q()));
                    group.mul(ct.c2, table.pow(&neg))
                }
                None => {
                    counts.exponentiations += 2;
                    decrypt(group, secret, ct)?
                }
            };
            let sum = dlog
                .lookup_signed(group, elem)
                .map_err(|_| TransferError::DecryptionFailure)?;
            // Even sum (noise is always even) means the XOR of the sub-share
            // bits was zero.
            bit_shares.push(sum.rem_euclid(2) == 1);
        }
        receiver_shares.push(BitMessage::from_bits(&bit_shares));
    }
    debug_assert!(network.is_idle(), "every transfer message was consumed");
    counts.rounds += 3;

    Ok(TransferOutcome {
        receiver_shares,
        counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::generate_system;
    use dstress_crypto::sharing::xor_reconstruct;
    use dstress_math::rng::Xoshiro256;
    use proptest::prelude::*;

    const BITS: u32 = 8;

    struct Fixture {
        group: Group,
        secrets: Vec<NodeSecrets>,
        setup: crate::setup::SystemSetup,
        dlog: DlogTable,
    }

    fn fixture(collusion_bound: usize) -> Fixture {
        let group = Group::sim64();
        let mut rng = Xoshiro256::new(0xF1CE);
        let (secrets, setup) =
            generate_system(&group, 12, collusion_bound, 3, BITS, &mut rng).unwrap();
        // Signed window wide enough for bit sums (≤ block size) plus noise.
        let dlog = DlogTable::new_signed(&group, 600);
        Fixture {
            group,
            secrets,
            setup,
            dlog,
        }
    }

    /// Runs a transfer of `value` over the edge (0, 1) and returns the
    /// outcome plus the reconstructed received value.
    fn run_transfer(
        fx: &Fixture,
        variant: ProtocolVariant,
        value: u64,
        seed: u64,
    ) -> (TransferOutcome, u64) {
        let config = TransferConfig {
            variant,
            message_bits: BITS,
        };
        let mut rng = Xoshiro256::new(seed);
        let sender_vertex = NodeId(0);
        let receiver_vertex = NodeId(1);
        let sender_block = &fx.setup.blocks[0];
        let receiver_block = &fx.setup.blocks[1];
        let message = BitMessage::new(value, BITS).unwrap();
        let sender_shares = split_xor(message, sender_block.size(), &mut rng);
        // Receiver vertex 1 treats vertex 0 as its first neighbour, so the
        // certificate is blocks[1]'s certificate 0 and the matching
        // neighbor key is secrets[1].neighbor_keys[0].
        let certificate = &fx.setup.certificates[1][0];
        let neighbor_key = &fx.secrets[1].neighbor_keys[0];
        let mut traffic = TrafficAccountant::new();
        let outcome = transfer_message(
            &fx.group,
            &config,
            sender_vertex,
            receiver_vertex,
            sender_block,
            receiver_block,
            &sender_shares,
            &fx.secrets,
            certificate,
            neighbor_key,
            &fx.dlog,
            &mut traffic,
            &mut rng,
        )
        .unwrap();
        let received = xor_reconstruct(&outcome.receiver_shares).unwrap().value();
        (outcome, received)
    }

    #[test]
    fn all_variants_are_correct() {
        let fx = fixture(3);
        for variant in [
            ProtocolVariant::Strawman1,
            ProtocolVariant::Strawman2,
            ProtocolVariant::Strawman3,
            ProtocolVariant::Final { alpha: 0.5 },
        ] {
            for value in [0u64, 1, 0xAB, 0xFF] {
                let (_, received) = run_transfer(&fx, variant, value, 77);
                assert_eq!(received, value, "variant {variant:?}, value {value}");
            }
        }
    }

    #[test]
    fn final_protocol_shares_differ_from_sender_shares() {
        // The receiving block's shares must be fresh (not recognisable as
        // the sender's shares) — this is what defeats the strawman-2
        // recognition attack.
        let fx = fixture(3);
        let mut rng = Xoshiro256::new(5);
        let message = BitMessage::new(0x5A, BITS).unwrap();
        let sender_shares = split_xor(message, 4, &mut rng);
        let config = TransferConfig::final_protocol(BITS, 0.5);
        let mut traffic = TrafficAccountant::new();
        let outcome = transfer_message(
            &fx.group,
            &config,
            NodeId(0),
            NodeId(1),
            &fx.setup.blocks[0],
            &fx.setup.blocks[1],
            &sender_shares,
            &fx.secrets,
            &fx.setup.certificates[1][0],
            &fx.secrets[1].neighbor_keys[0],
            &fx.dlog,
            &mut traffic,
            &mut rng,
        )
        .unwrap();
        assert_ne!(outcome.receiver_shares, sender_shares);
        assert_eq!(xor_reconstruct(&outcome.receiver_shares).unwrap(), message);
    }

    #[test]
    fn traffic_matches_paper_roles() {
        // §5.3: node i receives (k+1)^2 encrypted sub-shares; members of
        // B_i each send k+1; members of B_j receive a constant amount.
        let fx = fixture(3);
        let block_size = 4u64;
        let config = TransferConfig::final_protocol(BITS, 0.5);
        let mut rng = Xoshiro256::new(21);
        let message = BitMessage::new(0x3C, BITS).unwrap();
        let sender_shares = split_xor(message, block_size as usize, &mut rng);
        let mut traffic = TrafficAccountant::new();
        transfer_message(
            &fx.group,
            &config,
            NodeId(0),
            NodeId(1),
            &fx.setup.blocks[0],
            &fx.setup.blocks[1],
            &sender_shares,
            &fx.secrets,
            &fx.setup.certificates[1][0],
            &fx.secrets[1].neighbor_keys[0],
            &fx.dlog,
            &mut traffic,
            &mut rng,
        )
        .unwrap();

        let elem = fx.group.element_bytes() as u64;
        // Vertex i (node 0) receives the (k+1)^2 encrypted sub-shares, each
        // (L+1) elements wide thanks to the shared ephemeral.
        let i_received = traffic.node(NodeId(0)).bytes_received;
        let expected_subshare_bytes = block_size * block_size * (BITS as u64 + 1) * elem;
        // Node 0 is also a member of its own block, so it may receive a bit
        // more if it appears in B_j; with this fixture it does not.
        assert_eq!(i_received, expected_subshare_bytes);

        // Members of B_j each receive exactly L ciphertexts from j.
        for &member in &fx.setup.blocks[1].members {
            if member == NodeId(1) {
                continue; // j itself also receives the aggregate from i.
            }
            let received = traffic.node(member).bytes_received;
            assert!(
                received >= BITS as u64 * 2 * elem,
                "member {member} received {received}"
            );
        }
    }

    #[test]
    fn undersized_table_reports_p_fail() {
        let fx = fixture(3);
        let group = &fx.group;
        // A lookup window of 1 cannot hold bit sums up to k+1 = 4.
        let tiny = DlogTable::new_signed(group, 1);
        let config = TransferConfig::final_protocol(BITS, 0.9);
        let mut rng = Xoshiro256::new(2);
        let message = BitMessage::new(0xFF, BITS).unwrap();
        let sender_shares = split_xor(message, 4, &mut rng);
        let mut traffic = TrafficAccountant::new();
        let err = transfer_message(
            group,
            &config,
            NodeId(0),
            NodeId(1),
            &fx.setup.blocks[0],
            &fx.setup.blocks[1],
            &sender_shares,
            &fx.secrets,
            &fx.setup.certificates[1][0],
            &fx.secrets[1].neighbor_keys[0],
            &tiny,
            &mut traffic,
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err, TransferError::DecryptionFailure);
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let fx = fixture(3);
        let config = TransferConfig::final_protocol(BITS, 0.5);
        let mut rng = Xoshiro256::new(3);
        let mut traffic = TrafficAccountant::new();
        // Wrong number of sender shares.
        let err = transfer_message(
            &fx.group,
            &config,
            NodeId(0),
            NodeId(1),
            &fx.setup.blocks[0],
            &fx.setup.blocks[1],
            &[BitMessage::zero(BITS); 2],
            &fx.secrets,
            &fx.setup.certificates[1][0],
            &fx.secrets[1].neighbor_keys[0],
            &fx.dlog,
            &mut traffic,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, TransferError::BlockSizeMismatch { .. }));
    }

    #[test]
    fn measured_wire_bytes_reconcile_with_the_analytic_model() {
        // Every hop routes its ciphertexts through the wire codec, so
        // `wire_bytes` is measured from real encodings.  For the final
        // protocol the SubShares hop encodes the shared ephemeral once —
        // the analytic model's (L+1)-element figure — so measured lands
        // within [1.0, 1.1]× of modeled: equal payloads plus per-message
        // headers (tag, width, varints).
        let fx = fixture(3);
        for variant in [
            ProtocolVariant::Strawman3,
            ProtocolVariant::Final { alpha: 0.5 },
        ] {
            let (outcome, _) = run_transfer(&fx, variant, 0x21, 5);
            assert!(outcome.counts.wire_bytes > 0);
            let ratio = outcome.counts.wire_bytes as f64 / outcome.counts.bytes_sent as f64;
            assert!(
                (1.0..1.1).contains(&ratio),
                "{variant:?}: measured/modeled = {ratio}"
            );
        }
        // The whole-share strawmen cross the wire too (their hops are
        // measured as plain ciphertext bundles).
        let (s1, _) = run_transfer(&fx, ProtocolVariant::Strawman1, 0x21, 5);
        assert!(s1.counts.wire_bytes > s1.counts.bytes_sent);
    }

    #[test]
    fn wire_traffic_is_recorded_per_node() {
        let fx = fixture(3);
        let config = TransferConfig::final_protocol(BITS, 0.5);
        let mut rng = Xoshiro256::new(8);
        let message = BitMessage::new(0x4D, BITS).unwrap();
        let sender_shares = split_xor(message, 4, &mut rng);
        let mut traffic = TrafficAccountant::new();
        transfer_message(
            &fx.group,
            &config,
            NodeId(0),
            NodeId(1),
            &fx.setup.blocks[0],
            &fx.setup.blocks[1],
            &sender_shares,
            &fx.secrets,
            &fx.setup.certificates[1][0],
            &fx.secrets[1].neighbor_keys[0],
            &fx.dlog,
            &mut traffic,
            &mut rng,
        )
        .unwrap();
        // Vertex i (node 0) received the measured sub-share bundles and
        // forwarded the measured aggregate to j.
        assert!(traffic.node(NodeId(0)).wire_bytes_received > 0);
        assert!(traffic.node(NodeId(0)).wire_bytes_sent > 0);
        assert!(traffic.report().total_wire_bytes > 0);
    }

    #[test]
    fn strawman_costs_grow_toward_final() {
        // The revisions trade cost for privacy: the bitwise protocols do
        // more exponentiations than the whole-share strawmen.
        let fx = fixture(3);
        let (s1, _) = run_transfer(&fx, ProtocolVariant::Strawman1, 0x12, 9);
        let (s2, _) = run_transfer(&fx, ProtocolVariant::Strawman2, 0x12, 9);
        let (s3, _) = run_transfer(&fx, ProtocolVariant::Strawman3, 0x12, 9);
        let (fin, _) = run_transfer(&fx, ProtocolVariant::Final { alpha: 0.5 }, 0x12, 9);
        assert!(s2.counts.exponentiations > s1.counts.exponentiations);
        assert!(s3.counts.exponentiations > s2.counts.exponentiations);
        assert!(fin.counts.exponentiations >= s3.counts.exponentiations);
        // The final protocol performs the homomorphic noise additions.
        assert!(fin.counts.group_multiplications > s3.counts.group_multiplications);
    }

    #[test]
    fn cost_scales_with_block_size() {
        // §5.2: transfer time is roughly linear in k (the dominant cost is
        // the k+1 sub-share encryptions per member), with a quadratic
        // number of ciphertexts handled at i.
        let small = fixture(3); // block size 4
        let large = fixture(7); // block size 8
        let (o_small, _) = run_transfer(&small, ProtocolVariant::Final { alpha: 0.5 }, 0x55, 4);
        let (o_large, _) = run_transfer(&large, ProtocolVariant::Final { alpha: 0.5 }, 0x55, 4);
        let ratio = o_large.counts.exponentiations as f64 / o_small.counts.exponentiations as f64;
        // Quadratic component: 8^2/4^2 = 4; linear components pull it down.
        assert!(ratio > 2.0 && ratio < 5.0, "ratio = {ratio}");
        assert!(o_large.counts.bytes_sent > o_small.counts.bytes_sent);
    }

    /// Like `run_transfer`, with an explicit kernel mode (always the
    /// final protocol variant).
    fn run_transfer_with_mode(
        fx: &Fixture,
        mode: KernelMode<'_>,
        value: u64,
        seed: u64,
    ) -> TransferOutcome {
        let config = TransferConfig::final_protocol(BITS, 0.5);
        let mut rng = Xoshiro256::new(seed);
        let message = BitMessage::new(value, BITS).unwrap();
        let sender_shares = split_xor(message, fx.setup.blocks[0].size(), &mut rng);
        let mut traffic = TrafficAccountant::new();
        transfer_message_with_kernels(
            &fx.group,
            &config,
            mode,
            NodeId(0),
            NodeId(1),
            &fx.setup.blocks[0],
            &fx.setup.blocks[1],
            &sender_shares,
            &fx.secrets,
            &fx.setup.certificates[1][0],
            &fx.secrets[1].neighbor_keys[0],
            &fx.dlog,
            &mut traffic,
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn kernel_modes_are_bit_identical() {
        let fx = fixture(3);
        let kernels =
            TransferKernels::for_certificate(&fx.group, &fx.setup.certificates[1][0].keys, 6);
        let naive = run_transfer_with_mode(&fx, KernelMode::Naive, 0x9C, 31);
        let auto = run_transfer_with_mode(&fx, KernelMode::Auto, 0x9C, 31);
        let pre = run_transfer_with_mode(&fx, KernelMode::Precomputed(&kernels), 0x9C, 31);
        assert_eq!(naive.receiver_shares, auto.receiver_shares);
        assert_eq!(naive.receiver_shares, pre.receiver_shares);
        assert_eq!(naive.counts.wire_bytes, auto.counts.wire_bytes);
        assert_eq!(naive.counts.wire_bytes, pre.counts.wire_bytes);
        assert_eq!(naive.counts.bytes_sent, auto.counts.bytes_sent);
        // Naive counts everything as variable-base work; the kernels shift
        // progressively more of it onto fixed-base tables.
        assert_eq!(naive.counts.fixed_base_exponentiations, 0);
        assert!(auto.counts.exponentiations < naive.counts.exponentiations);
        assert!(pre.counts.exponentiations < auto.counts.exponentiations);
    }

    #[test]
    fn kernel_counts_match_the_analytic_model() {
        // Cross-check with `dstress-core`'s accounted execution model: for
        // block size b and L message bits the default kernel path does
        // b²L + b variable-base and b² + 2bL fixed-base exponentiations.
        let fx = fixture(3);
        let (b, l) = (4u64, BITS as u64);
        let out = run_transfer_with_mode(&fx, KernelMode::Auto, 0x2F, 13);
        assert_eq!(out.counts.exponentiations, b * b * l + b);
        assert_eq!(out.counts.fixed_base_exponentiations, b * b + 2 * b * l);
    }

    #[test]
    fn precomputed_kernels_of_wrong_shape_are_rejected() {
        let fx = fixture(3);
        let wrong =
            TransferKernels::for_certificate(&fx.group, &fx.setup.certificates[1][0].keys[..2], 6);
        let config = TransferConfig::final_protocol(BITS, 0.5);
        let mut rng = Xoshiro256::new(3);
        let message = BitMessage::new(1, BITS).unwrap();
        let sender_shares = split_xor(message, 4, &mut rng);
        let mut traffic = TrafficAccountant::new();
        let err = transfer_message_with_kernels(
            &fx.group,
            &config,
            KernelMode::Precomputed(&wrong),
            NodeId(0),
            NodeId(1),
            &fx.setup.blocks[0],
            &fx.setup.blocks[1],
            &sender_shares,
            &fx.secrets,
            &fx.setup.certificates[1][0],
            &fx.secrets[1].neighbor_keys[0],
            &fx.dlog,
            &mut traffic,
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err, TransferError::CertificateShapeMismatch);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn prop_final_protocol_roundtrip(value in 0u64..256, seed in any::<u64>()) {
            let fx = fixture(2);
            let (_, received) = run_transfer(&fx, ProtocolVariant::Final { alpha: 0.5 }, value, seed);
            prop_assert_eq!(received, value);
        }
    }
}
