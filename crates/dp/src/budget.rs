//! Privacy-budget accounting.
//!
//! Differential privacy composes additively: running several ε-DP queries
//! against the same data spends the sum of their ε values.  DStress
//! maintains a budget both for the *output* releases (§4.5: the banks
//! replenish their budget once per year, allowing ≈3 runs) and for the
//! *edge-privacy* leakage of the transfer protocol (Appendix B).  The
//! [`PrivacyBudget`] ledger records every charge with a label so the
//! harness can print an audit trail.
//!
//! ## The boundary tolerance contract
//!
//! Budget arithmetic is done in **integer micro-ε units** of
//! [`EPSILON_RESOLUTION`] (10⁻¹²): every charge is rounded to the nearest
//! unit on entry and accumulated exactly from then on.  This makes the
//! three boundary-sensitive operations *provably consistent with each
//! other*, which pure `f64` accounting is not:
//!
//! * [`PrivacyBudget::charge`] succeeds exactly while
//!   `spent_units + charge_units ≤ total_units`;
//! * [`PrivacyBudget::max_queries`] is exactly `total_units / charge_units`
//!   — the number of identical charges that will succeed
//!   (`(0.3 / 0.1).floor()` in `f64` yields 2 because `0.3/0.1 ==
//!   2.999…`, while three sequential charges of 0.1 succeed; the integer
//!   ledger returns 3 for both);
//! * [`PrivacyBudget::spent`] is an O(1) exact running total — no
//!   re-summation of the ledger, no accumulated `f64` drift over the
//!   thousands of charges a recurring-release schedule performs.
//!
//! The contract callers rely on: two ε values closer than half a unit
//! (5·10⁻¹³) are the same charge, and no sequence of accepted charges can
//! ever exceed the total by more than the rounding of its own entries.

use core::fmt;

/// The resolution of the integer budget ledger: one micro-ε unit.
///
/// Charges are rounded to the nearest multiple of this value on entry;
/// see the module docs for the resulting boundary contract.
pub const EPSILON_RESOLUTION: f64 = 1e-12;

/// Errors raised by the budget ledger.
#[derive(Debug, Clone, PartialEq)]
pub enum BudgetError {
    /// The requested charge would exceed the remaining budget.
    Exhausted {
        /// Epsilon requested by the query.
        requested: f64,
        /// Epsilon still available.
        remaining: f64,
    },
    /// A charge with a non-positive, non-finite, or sub-resolution ε was
    /// requested (ε must round to at least one micro-ε unit and fit in
    /// the ledger's integer range).
    InvalidCharge {
        /// The offending value.
        epsilon: f64,
    },
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::Exhausted {
                requested,
                remaining,
            } => write!(
                f,
                "privacy budget exhausted: requested ε={requested}, remaining ε={remaining}"
            ),
            BudgetError::InvalidCharge { epsilon } => {
                write!(
                    f,
                    "privacy charges must be positive, finite and at least {EPSILON_RESOLUTION}, \
                     got ε={epsilon}"
                )
            }
        }
    }
}

impl std::error::Error for BudgetError {}

/// Converts an ε value to integer micro-ε units, rejecting values that
/// are non-positive, non-finite, below half a unit, or too large for the
/// ledger's integer range.
fn epsilon_units(epsilon: f64) -> Result<u128, BudgetError> {
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(BudgetError::InvalidCharge { epsilon });
    }
    let units = (epsilon / EPSILON_RESOLUTION).round();
    // 2^100 units ≈ 1.3e18 ε — far beyond any meaningful budget, and
    // small enough that u128 sums can never overflow in practice.
    if units < 1.0 || units >= (1u128 << 100) as f64 {
        return Err(BudgetError::InvalidCharge { epsilon });
    }
    Ok(units as u128)
}

/// A single recorded expenditure.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetCharge {
    /// Human-readable description of what consumed the budget.
    pub label: String,
    /// The ε spent.
    pub epsilon: f64,
}

/// An ε-differential-privacy budget ledger.
///
/// Also exported as `BudgetAccountant` — the name the recurring-release
/// scheduler uses for it.
#[derive(Debug, Clone)]
pub struct PrivacyBudget {
    /// The total as given (reported verbatim by [`Self::total`]).
    total: f64,
    /// The total in micro-ε units — the authoritative boundary.
    total_units: u128,
    /// Exact running total of all accepted charges, in micro-ε units.
    spent_units: u128,
    charges: Vec<BudgetCharge>,
}

impl PrivacyBudget {
    /// Creates a ledger with the given total ε.
    ///
    /// # Panics
    ///
    /// Panics if the total is not positive and finite.
    pub fn new(total_epsilon: f64) -> Self {
        let total_units = epsilon_units(total_epsilon)
            .unwrap_or_else(|_| panic!("total budget must be positive, got {total_epsilon}"));
        PrivacyBudget {
            total: total_epsilon,
            total_units,
            spent_units: 0,
            charges: Vec::new(),
        }
    }

    /// The budget the paper assumes for the systemic-risk deployment:
    /// ε_max = ln 2, i.e. no adversary may more than double its confidence
    /// in any fact about the inputs (§4.5).
    pub fn paper_annual_budget() -> Self {
        PrivacyBudget::new(2f64.ln())
    }

    /// Total ε available over the budget period.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// ε spent so far — an O(1) exact running total (the ledger is never
    /// re-summed, so a recurring-release run of 10⁶ charges pays 10⁶
    /// integer additions, not 10¹² float additions, and accumulates no
    /// drift against the boundary).
    pub fn spent(&self) -> f64 {
        self.spent_units as f64 * EPSILON_RESOLUTION
    }

    /// ε still available.
    pub fn remaining(&self) -> f64 {
        self.total_units.saturating_sub(self.spent_units) as f64 * EPSILON_RESOLUTION
    }

    /// Attempts to charge `epsilon` against the budget.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetError::Exhausted`] if the remaining budget is
    /// insufficient and [`BudgetError::InvalidCharge`] for non-positive,
    /// non-finite or sub-resolution ε.
    pub fn charge(&mut self, label: &str, epsilon: f64) -> Result<(), BudgetError> {
        let units = epsilon_units(epsilon)?;
        if self.spent_units + units > self.total_units {
            return Err(BudgetError::Exhausted {
                requested: epsilon,
                remaining: self.remaining(),
            });
        }
        self.spent_units += units;
        self.charges.push(BudgetCharge {
            label: label.to_string(),
            epsilon,
        });
        Ok(())
    }

    /// How many identical charges of `epsilon` fit in the *total* budget
    /// (the paper's "≈3 runs per year" computation).
    ///
    /// Computed on the integer ledger, so the result always equals the
    /// number of [`Self::charge`] calls of the same `epsilon` that would
    /// succeed on a fresh budget — including at floating-point
    /// boundaries like `max_queries(0.1)` on a 0.3 budget.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetError::InvalidCharge`] for non-positive,
    /// non-finite or sub-resolution ε.
    pub fn max_queries(&self, epsilon: f64) -> Result<u32, BudgetError> {
        let units = epsilon_units(epsilon)?;
        Ok(u32::try_from(self.total_units / units).unwrap_or(u32::MAX))
    }

    /// The audit trail of recorded charges.
    pub fn charges(&self) -> &[BudgetCharge] {
        &self.charges
    }

    /// Resets the ledger (the paper's annual replenishment, justified by
    /// the banks' mandatory yearly disclosures).
    pub fn replenish(&mut self) {
        self.spent_units = 0;
        self.charges.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn charges_accumulate() {
        let mut budget = PrivacyBudget::new(1.0);
        budget.charge("q1", 0.3).unwrap();
        budget.charge("q2", 0.4).unwrap();
        assert!((budget.spent() - 0.7).abs() < 1e-12);
        assert!((budget.remaining() - 0.3).abs() < 1e-12);
        assert_eq!(budget.charges().len(), 2);
        assert_eq!(budget.charges()[0].label, "q1");
    }

    #[test]
    fn exhaustion_is_detected() {
        let mut budget = PrivacyBudget::new(0.5);
        budget.charge("big", 0.4).unwrap();
        let err = budget.charge("too much", 0.2).unwrap_err();
        assert!(matches!(err, BudgetError::Exhausted { .. }));
        assert!(err.to_string().contains("exhausted"));
        // The failed charge is not recorded.
        assert_eq!(budget.charges().len(), 1);
    }

    #[test]
    fn invalid_charges_rejected() {
        let mut budget = PrivacyBudget::new(1.0);
        assert!(matches!(
            budget.charge("zero", 0.0).unwrap_err(),
            BudgetError::InvalidCharge { .. }
        ));
        assert!(budget.charge("nan", f64::NAN).is_err());
        assert!(budget.charge("neg", -0.1).is_err());
        assert!(budget.charge("inf", f64::INFINITY).is_err());
        // Below half a resolution unit the charge cannot be represented.
        assert!(budget.charge("tiny", 1e-14).is_err());
        assert_eq!(budget.charges().len(), 0);
    }

    #[test]
    fn paper_budget_allows_three_egj_runs() {
        // §4.5: ε_max = ln 2, ε_query = 0.23 ⇒ 3 runs per year.
        let budget = PrivacyBudget::paper_annual_budget();
        assert_eq!(budget.max_queries(0.23).unwrap(), 3);
        assert!((budget.total() - std::f64::consts::LN_2).abs() < 1e-3);
    }

    #[test]
    fn replenish_restores_budget() {
        let mut budget = PrivacyBudget::new(1.0);
        budget.charge("q", 0.9).unwrap();
        budget.replenish();
        assert_eq!(budget.spent(), 0.0);
        budget.charge("q2", 0.9).unwrap();
    }

    #[test]
    fn boundary_charge_is_allowed() {
        let mut budget = PrivacyBudget::new(std::f64::consts::LN_2);
        for _ in 0..3 {
            budget.charge("run", 0.23).unwrap();
        }
        assert!(budget.charge("fourth", 0.23).is_err());
    }

    #[test]
    #[should_panic(expected = "total budget must be positive")]
    fn zero_total_panics() {
        let _ = PrivacyBudget::new(0.0);
    }

    #[test]
    fn max_queries_agrees_with_charge_at_the_fp_boundary() {
        // The satellite regression: 0.3 / 0.1 == 2.999… in f64, so a naive
        // floor reports 2 even though three sequential charges of 0.1
        // succeed.  The integer ledger reports 3 for both.
        let mut budget = PrivacyBudget::new(0.3);
        assert_eq!(budget.max_queries(0.1).unwrap(), 3);
        let mut successes = 0u32;
        while budget.charge("run", 0.1).is_ok() {
            successes += 1;
        }
        assert_eq!(successes, 3);
    }

    #[test]
    fn max_queries_rejects_invalid_epsilon_with_a_typed_error() {
        let budget = PrivacyBudget::new(1.0);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, 1e-14] {
            assert!(matches!(
                budget.max_queries(bad).unwrap_err(),
                BudgetError::InvalidCharge { .. }
            ));
        }
    }

    #[test]
    fn a_million_equal_charges_never_over_spend() {
        // The satellite regression for running-total drift: N charges of
        // total/N must never push `spent` past `total`, and the number of
        // accepted charges must match `max_queries` exactly — for N all
        // the way up to 10⁶.
        for n in [10u32, 1_000, 1_000_000] {
            let total = 0.7f64;
            let mut budget = PrivacyBudget::new(total);
            let per = total / n as f64;
            let expected = budget.max_queries(per).unwrap();
            let mut successes = 0u32;
            for _ in 0..n {
                if budget.charge("", per).is_err() {
                    break;
                }
                successes += 1;
            }
            // Quantisation may round the per-charge ε up by at most half a
            // unit, which can cost at most the final charge.
            assert!(
                successes == n || successes + 1 == n,
                "N={n}: only {successes} charges accepted"
            );
            assert_eq!(successes, expected.min(n), "N={n}");
            assert!(
                budget.spent() <= budget.total() + EPSILON_RESOLUTION,
                "N={n}: spent {} exceeds total {}",
                budget.spent(),
                budget.total()
            );
        }
    }

    proptest! {
        #[test]
        fn max_queries_always_equals_the_number_of_successful_charges(
            total_steps in 1u64..50_000,
            eps_steps in 1u64..5_000,
        ) {
            // ε and the total are arbitrary multiples of 10⁻⁵ — a sweep
            // over the boundary-heavy region where f64 division and
            // repeated addition disagree (0.3/0.1 is steps 30_000/10_000).
            let epsilon = eps_steps as f64 * 1e-5;
            let total = total_steps as f64 * 1e-5;
            prop_assume!(total >= epsilon);
            let mut budget = PrivacyBudget::new(total);
            let predicted = budget.max_queries(epsilon).unwrap();
            let mut successes = 0u32;
            while successes <= predicted + 1 && budget.charge("p", epsilon).is_ok() {
                successes += 1;
            }
            prop_assert_eq!(successes, predicted);
            prop_assert!(budget.spent() <= budget.total() + EPSILON_RESOLUTION);
        }
    }
}
